//! # glocks-repro
//!
//! A full reproduction of *GLocks: Efficient Support for Highly-Contended
//! Locks in Many-Core CMPs* (Abellán, Fernández, Acacio — IPDPS 2011),
//! including the cycle-level tiled-CMP simulation substrate the paper's
//! evaluation runs on.
//!
//! This façade crate re-exports the workspace's public API:
//!
//! * [`glocks`] — the paper's contribution: G-line networks, the
//!   token-based controller hierarchy and the Table I cost model.
//! * [`sim`] — the assembled CMP simulator (cores + caches + MESI directory
//!   + 2D-mesh NoC + energy model).
//! * [`locks`] — software lock baselines (TATAS, MCS, ticket, …) expressed
//!   as state machines over simulated memory operations.
//! * [`workloads`] — the paper's microbenchmarks (SCTR, MCTR, DBLL, PRCO,
//!   ACTR) and application kernels (RAYTR, OCEAN, QSORT).
//! * [`harness`] — one experiment driver per paper table/figure.
//!
//! ```
//! use glocks_repro::prelude::*;
//!
//! // SCTR on an 8-core CMP: highly-contended lock backed by a GLock.
//! let bench = BenchConfig::smoke(BenchKind::Sctr, 8);
//! let inst = bench.build();
//! let cfg = CmpConfig::paper_baseline().with_cores(8);
//! let mapping = LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks());
//! let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, Default::default());
//! let (report, mem) = sim.run().expect("simulation wedged");
//! assert!((inst.verify)(mem.store()).is_ok());
//! assert!(report.cycles > 0);
//! ```

pub use glocks;
pub use glocks_cpu as cpu;
pub use glocks_energy as energy;
pub use glocks_harness as harness;
pub use glocks_locks as locks;
pub use glocks_mem as mem;
pub use glocks_noc as noc;
pub use glocks_sim as sim;
pub use glocks_sim_base as sim_base;
pub use glocks_stats as stats;
pub use glocks_workloads as workloads;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::glocks::{GBarrierNetwork, GlockCost, GlockNetwork, GlockPool, GlockRegisters, Topology};
    pub use crate::locks::LockAlgorithm;
    pub use crate::sim::summary::render as render_summary;
    pub use crate::sim::{LockMapping, SimReport, Simulation, SimulationOptions};
    pub use crate::sim_base::{Addr, CmpConfig, CoreId, Cycle, LockId, Mesh2D, ThreadId};
    pub use crate::workloads::{BenchConfig, BenchInstance, BenchKind};
}
