//! Quickstart: simulate the paper's SCTR microbenchmark on a small CMP,
//! once with MCS locks and once with a hardware GLock, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use glocks_repro::prelude::*;

fn run(algo: LockAlgorithm, threads: usize) -> SimReport {
    // 1. Pick a benchmark and size (Table III's defaults via `paper`,
    //    reduced sizes via `smoke`).
    let bench = BenchConfig::smoke(BenchKind::Sctr, threads);
    let inst = bench.build();

    // 2. Configure the CMP (Table II baseline) and the lock mapping: the
    //    benchmark's highly-contended locks use `algo`, the rest TATAS.
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let mapping = LockMapping::hybrid(&bench.hc_locks(), algo, bench.n_locks());

    // 3. Run the parallel phase to completion.
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, Default::default());
    let (report, mem) = sim.run().expect("simulation wedged");

    // 4. Every benchmark carries its own correctness verifier.
    (inst.verify)(mem.store()).expect("benchmark must verify");
    report
}

fn main() {
    let threads = 16;
    let mcs = run(LockAlgorithm::Mcs, threads);
    let gl = run(LockAlgorithm::Glock, threads);

    println!("SCTR on a {threads}-core CMP ({} lock acquisitions):", mcs.acquires[0]);
    for (name, r) in [("MCS  ", &mcs), ("GLock", &gl)] {
        let f = r.avg_fractions();
        println!(
            "  {name}: {:>8} cycles | busy {:>4.1}% mem {:>4.1}% lock {:>4.1}% | {:>8} NoC bytes | ED2P {:.2e}",
            r.cycles,
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            r.traffic.total_bytes(),
            r.ed2p,
        );
    }
    println!(
        "\nGLocks vs MCS: {:.0}% faster, {:.0}% less traffic, {:.0}% lower ED2P",
        (1.0 - gl.cycles as f64 / mcs.cycles as f64) * 100.0,
        (1.0 - gl.traffic.total_bytes() as f64 / mcs.traffic.total_bytes() as f64) * 100.0,
        (1.0 - gl.ed2p / mcs.ed2p) * 100.0,
    );
    println!(
        "hardware cost of that GLock (Table I): {:?}",
        GlockCost::for_cores(threads)
    );
}
