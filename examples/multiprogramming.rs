//! Section V future work, demonstrated: two independent programs share one
//! CMP on disjoint core halves, and the chip's two hardware GLocks are
//! statically split — one per program.
//!
//! ```text
//! cargo run --release --example multiprogramming
//! ```

use glocks_repro::prelude::*;
use glocks_repro::sim_base::table::TextTable;
use glocks_repro::workloads::multiprog::MultiprogConfig;

fn run(mp: &MultiprogConfig, algo: LockAlgorithm) -> SimReport {
    let inst = mp.build();
    let cfg = CmpConfig::paper_baseline().with_cores(mp.total_threads());
    let hc = if algo == LockAlgorithm::Glock { mp.statically_shared_hc() } else { mp.hc_locks() };
    let mapping = LockMapping::hybrid(&hc, algo, mp.n_locks());
    let opts = SimulationOptions {
        barrier_partitions: Some(mp.barrier_partitions()),
        ..Default::default()
    };
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, opts);
    let (report, mem) = sim.run().expect("simulation wedged");
    (inst.verify)(mem.store()).expect("both programs must verify");
    report
}

fn main() {
    let half = 8;
    let mp = MultiprogConfig {
        a: BenchConfig::smoke(BenchKind::Sctr, half),
        b: BenchConfig::smoke(BenchKind::Prco, half),
    };
    println!(
        "{} on cores 0..{half} | {} on cores {half}..{}\n",
        mp.a.kind.name(),
        mp.b.kind.name(),
        2 * half
    );
    let mcs = run(&mp, LockAlgorithm::Mcs);
    let gl = run(&mp, LockAlgorithm::Glock);
    let time = |r: &SimReport, range: std::ops::Range<usize>| {
        r.finished_at[range].iter().copied().max().unwrap_or(0)
    };
    let mut t = TextTable::new("per-program completion time (cycles)")
        .header(["program", "MCS", "GLocks split 1+1", "speedup"]);
    for (name, range) in [("A (SCTR)", 0..half), ("B (PRCO)", half..2 * half)] {
        let m = time(&mcs, range.clone());
        let g = time(&gl, range);
        t.row([name.to_string(), m.to_string(), g.to_string(), format!("{:.2}x", m as f64 / g as f64)]);
    }
    println!("{}", t.render());
    println!(
        "each hardware GLock served one program: {} + {} grants",
        gl.glocks[0].grants, gl.glocks[1].grants
    );
}
