//! Cycle-annotated protocol trace: watch lock acquisitions, G-line token
//! movement, MESI directory transactions and L1 misses interleave on a
//! small CMP — the kind of debug view real architecture simulators live by.
//!
//! ```text
//! cargo run --release --example protocol_trace [glock|mcs]
//! ```

use glocks_repro::prelude::*;
use glocks_repro::sim_base::trace::{self, TraceMask};

fn main() {
    let algo = match std::env::args().nth(1).as_deref() {
        Some("mcs") => LockAlgorithm::Mcs,
        _ => LockAlgorithm::Glock,
    };
    let threads = 4;
    let bench = BenchConfig { kind: BenchKind::Sctr, threads, scale: 8, seed: 1 };
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let mapping = LockMapping::hybrid(&bench.hc_locks(), algo, bench.n_locks());

    trace::enable(
        TraceMask::LOCK | TraceMask::GLOCK | TraceMask::COHERENCE | TraceMask::L1,
        4000,
    );
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, Default::default());
    let (report, mem) = sim.run().expect("simulation wedged");
    (inst.verify)(mem.store()).expect("verify");
    let records = trace::drain();
    trace::disable();

    println!(
        "SCTR x8 on {threads} cores under {}: {} cycles, {} trace records (showing first 60)\n",
        algo.name(),
        report.cycles,
        records.len()
    );
    for r in records.iter().take(60) {
        println!("{r}");
    }
    if records.len() > 60 {
        println!("... {} more", records.len() - 60);
    }
}
