//! Table IV in miniature: Raytrace speedup scaling under MCS vs GLocks,
//! plus the GLock hardware's own cost at each size.
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use glocks_repro::prelude::*;
use glocks_repro::sim_base::table::TextTable;

fn run(threads: usize, algo: LockAlgorithm) -> Cycle {
    let bench = BenchConfig::smoke(BenchKind::Raytr, threads);
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let mapping = LockMapping::hybrid(&bench.hc_locks(), algo, bench.n_locks());
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, Default::default());
    let (report, mem) = sim.run().expect("simulation wedged");
    (inst.verify)(mem.store()).expect("verify");
    report.cycles
}

fn main() {
    let serial = run(1, LockAlgorithm::Mcs) as f64;
    let mut t = TextTable::new("Raytrace speedup vs 1 core")
        .header(["cores", "MCS", "GLocks", "GLock G-lines"]);
    for n in [2usize, 4, 8, 16, 32] {
        let mcs = serial / run(n, LockAlgorithm::Mcs) as f64;
        let gl = serial / run(n, LockAlgorithm::Glock) as f64;
        t.row([
            n.to_string(),
            format!("{mcs:.2}"),
            format!("{gl:.2}"),
            GlockCost::for_cores(n).glines.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("GLocks keep Raytrace near its ideal slope; MCS falls away as the");
    println!("task-queue lock saturates (Table IV of the paper).");
}
