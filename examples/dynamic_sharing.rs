//! Section V future work, demonstrated: *dynamic* GLock sharing. RAYTR has
//! 34 locks but the CMP provides only 2 hardware GLocks; the binding table
//! hands them out at runtime, so the two highly-contended locks capture
//! the hardware by themselves — no programmer annotation.
//!
//! ```text
//! cargo run --release --example dynamic_sharing
//! ```

use glocks_repro::prelude::*;

fn run(mapping: &LockMapping, bench: &BenchConfig) -> SimReport {
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(bench.threads);
    let sim = Simulation::new(&cfg, mapping, inst.workloads, &inst.init, Default::default());
    let (report, mem) = sim.run().expect("simulation wedged");
    (inst.verify)(mem.store()).expect("verify");
    report
}

fn main() {
    let bench = BenchConfig::smoke(BenchKind::Raytr, 16);
    println!(
        "RAYTR: {} locks, {} highly contended, 2 hardware GLocks\n",
        bench.n_locks(),
        bench.hc_locks().len()
    );
    let mcs = run(
        &LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Mcs, bench.n_locks()),
        &bench,
    );
    let static_gl = run(
        &LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks()),
        &bench,
    );
    let dynamic = run(
        &LockMapping::uniform(LockAlgorithm::DynamicGlock, bench.n_locks()),
        &bench,
    );
    println!("MCS hybrid (annotated):     {:>8} cycles", mcs.cycles);
    println!("static GLocks (annotated):  {:>8} cycles", static_gl.cycles);
    println!("dynamic GLocks (automatic): {:>8} cycles", dynamic.cycles);
    let p = dynamic.pool.expect("pool stats");
    println!(
        "\nbinding table: {} hardware acquires, {} software spills, {} bind/{} unbind",
        p.hw_acquires, p.spills, p.binds, p.unbinds
    );
    println!(
        "→ dynamic sharing recovers {:.0}% of the static-GLock gain without",
        100.0 * (mcs.cycles as f64 - dynamic.cycles as f64)
            / (mcs.cycles as f64 - static_gl.cycles as f64).max(1.0)
    );
    println!("  the programmer naming the highly-contended locks.");
}
