//! Drive one GLock's G-line network directly — no CMP, no memory system —
//! and trace the token protocol cycle by cycle, reproducing the paper's
//! Figure 4 walkthrough on the 9-core example CMP.
//!
//! ```text
//! cargo run --release --example glock_hardware_demo
//! ```

use glocks_repro::prelude::*;

fn main() {
    // The paper's running example: a 9-core CMP, 3×3 mesh (Figure 2).
    let topo = Topology::flat(Mesh2D::new(3, 3));
    let mut net = GlockNetwork::new(&topo, 1);
    let regs = net.regs();
    println!("9-core GLock network: {} G-lines, {} managers, depth {}",
        topo.gline_count(), topo.n_arbiters(), topo.depth());
    println!("(Figure 4: all 9 cores request at cycle 0)\n");

    for c in 0..9 {
        regs.set_req(c);
    }
    let mut holder_prev: Option<CoreId> = None;
    let mut cs_left = 0u32;
    for now in 0..200 {
        net.tick(now);
        net.assert_token_invariants();
        let holder = net.holder();
        if holder != holder_prev {
            if let Some(h) = holder {
                println!(
                    "cycle {now:>3}: TOKEN granted to core {h}  ({} still waiting)",
                    net.n_waiting()
                );
                cs_left = 3; // hold the lock for a short critical section
            }
            holder_prev = holder;
        }
        if let Some(h) = holder {
            if cs_left == 0 {
                regs.set_rel(h.index());
                holder_prev = None; // the release is in flight
            } else {
                cs_left -= 1;
            }
        }
        if net.is_idle() && now > 10 {
            println!("\ncycle {now:>3}: network idle — all requests served");
            break;
        }
    }
    let stats = net.stats();
    println!(
        "{} grants, {} one-bit G-line signals ({} signals per acquire/release pair)",
        stats.grants,
        stats.signals,
        stats.signals / stats.grants
    );
    println!("grant order (round-robin fairness): {:?}", net.grant_log());
}
