//! Compare every lock implementation in the library on the same contended
//! workload — the Section II narrative in one table: simple locks degrade
//! under contention, queue locks scale but pay constant overhead, GLocks
//! track the ideal lock.
//!
//! ```text
//! cargo run --release --example lock_comparison [threads...]
//! ```

use glocks_repro::prelude::*;
use glocks_repro::sim_base::table::TextTable;

fn main() {
    let threads: Vec<usize> = {
        let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![2, 4, 8, 16]
        } else {
            args
        }
    };
    let algos = [
        LockAlgorithm::Simple,
        LockAlgorithm::Tatas,
        LockAlgorithm::TatasBackoff,
        LockAlgorithm::Ticket,
        LockAlgorithm::Anderson,
        LockAlgorithm::Mcs,
        LockAlgorithm::Reactive,
        LockAlgorithm::MpLock,
        LockAlgorithm::SyncBuf,
        LockAlgorithm::Glock,
        LockAlgorithm::Ideal,
    ];
    let mut t = TextTable::new("SCTR execution time by lock algorithm (cycles)").header(
        std::iter::once("algorithm".to_string())
            .chain(threads.iter().map(|n| format!("{n} cores")))
            .collect::<Vec<_>>(),
    );
    for algo in algos {
        let mut row = vec![algo.name().to_string()];
        for &n in &threads {
            let bench = BenchConfig::smoke(BenchKind::Sctr, n);
            let inst = bench.build();
            let cfg = CmpConfig::paper_baseline().with_cores(n);
            let mapping = LockMapping::uniform(algo, bench.n_locks());
            let sim =
                Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, Default::default());
            let (report, mem) = sim.run().expect("simulation wedged");
            (inst.verify)(mem.store()).expect("verify");
            row.push(report.cycles.to_string());
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("Note how MCS overtakes TATAS only once contention is high, while");
    println!("the hardware GLock tracks the ideal lock at every core count —");
    println!("the motivation for the paper's hybrid scheme.");
}
