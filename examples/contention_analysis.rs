//! The paper's post-mortem lock-contention analysis (Section IV-B,
//! Figure 7) applied to the Raytrace kernel: run under TATAS, sample grAC
//! cycle by cycle, decompose the lock contention rate per lock, and
//! classify which locks deserve a hardware GLock.
//!
//! ```text
//! cargo run --release --example contention_analysis
//! ```

use glocks_repro::prelude::*;
use glocks_repro::sim_base::table::{pct, TextTable};
use glocks_repro::workloads::contention::{classify_hc, summarize, BUCKETS};

fn main() {
    let threads = 16;
    let bench = BenchConfig::smoke(BenchKind::Raytr, threads);
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    // The paper measures contention with every lock as TATAS.
    let mapping = LockMapping::uniform(LockAlgorithm::Tatas, bench.n_locks());
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, Default::default());
    let (report, mem) = sim.run().expect("simulation wedged");
    (inst.verify)(mem.store()).expect("verify");

    let mut t = TextTable::new(format!(
        "RAYTR lock contention rate over {} cycles (Eq. 3)",
        report.cycles
    ))
    .header([
        "lock".to_string(),
        "acquires".to_string(),
        "weight".to_string(),
        format!("grAC {}-{}", BUCKETS[0].0, BUCKETS[0].1),
        format!("grAC {}-{}", BUCKETS[1].0, BUCKETS[1].1),
        format!("grAC {}-{}", BUCKETS[2].0, BUCKETS[2].1),
        format!("grAC >{}", BUCKETS[3].0 - 1),
    ]);
    for (i, s) in summarize(&report.lcr).iter().enumerate() {
        if s.weight < 0.001 && i >= 2 {
            continue; // skip the near-silent statistics locks
        }
        t.row([
            format!("L{i}"),
            report.acquires[i].to_string(),
            pct(s.weight),
            pct(s.buckets[0]),
            pct(s.buckets[1]),
            pct(s.buckets[2]),
            pct(s.buckets[3]),
        ]);
    }
    println!("{}", t.render());

    let hc = classify_hc(&report.lcr, threads / 4, 0.35, 0.02);
    println!(
        "highly-contended locks (footnote-3 criterion): {:?} of {} total",
        hc,
        bench.n_locks()
    );
    println!("→ these are the locks the paper backs with hardware GLocks.");
}
