//! Memory-consistency litmus tests on the simulated hierarchy.
//!
//! The simulated machine is sequentially consistent by construction
//! (blocking in-order cores, one outstanding operation, invalidation-based
//! coherence); these classic litmus patterns document and pin that
//! property.

use glocks_repro::mem::{MemOp, MemorySystem, RmwKind};
use glocks_repro::prelude::*;

fn drive(sys: &mut MemorySystem, plans: &mut [Vec<MemOp>], results: &mut [Vec<u64>]) {
    let n = plans.len();
    let mut cursor = vec![0usize; n];
    let mut inflight = vec![false; n];
    let mut now = 0u64;
    loop {
        let mut all_done = true;
        for c in 0..n {
            if inflight[c] {
                all_done = false;
                if let Some(r) = sys.take_result(CoreId(c as u16)) {
                    results[c].push(r.value);
                    inflight[c] = false;
                    cursor[c] += 1;
                }
            } else if cursor[c] < plans[c].len() {
                all_done = false;
                sys.submit(CoreId(c as u16), plans[c][cursor[c]], now);
                inflight[c] = true;
            }
        }
        if all_done {
            break;
        }
        sys.tick(now);
        now += 1;
        assert!(now < 10_000_000);
    }
}

/// Message passing (MP): if the consumer sees the flag, it must see the
/// data. Run many interleavings by staggering thread starts via repeats.
#[test]
fn litmus_message_passing() {
    for round in 0..10u64 {
        let cfg = CmpConfig::paper_baseline().with_cores(4);
        let mut sys = MemorySystem::new(&cfg);
        let data = Addr(0x100_0000 + round * 128);
        let flag = Addr(0x200_0000 + round * 128);
        // producer: data := 42; flag := 1
        // consumer: r1 := flag; r2 := data
        let mut plans = vec![
            vec![MemOp::Store(data, 42), MemOp::Store(flag, 1)],
            vec![MemOp::Load(flag), MemOp::Load(data)],
        ];
        let mut results = vec![Vec::new(), Vec::new()];
        drive(&mut sys, &mut plans, &mut results);
        let (r1, r2) = (results[1][0], results[1][1]);
        assert!(
            !(r1 == 1 && r2 != 42),
            "SC violation: saw flag=1 but data={r2} (round {round})"
        );
    }
}

/// Store buffering (SB): on a sequentially consistent machine at least one
/// of the two readers must observe the other's store — `r1 == 0 && r2 == 0`
/// is forbidden.
#[test]
fn litmus_store_buffering_forbidden_outcome() {
    for round in 0..10u64 {
        let cfg = CmpConfig::paper_baseline().with_cores(4);
        let mut sys = MemorySystem::new(&cfg);
        let x = Addr(0x300_0000 + round * 128);
        let y = Addr(0x400_0000 + round * 128);
        let mut plans = vec![
            vec![MemOp::Store(x, 1), MemOp::Load(y)],
            vec![MemOp::Store(y, 1), MemOp::Load(x)],
        ];
        let mut results = vec![Vec::new(), Vec::new()];
        drive(&mut sys, &mut plans, &mut results);
        let r1 = results[0][1];
        let r2 = results[1][1];
        assert!(
            !(r1 == 0 && r2 == 0),
            "SB's forbidden outcome appeared: r1={r1} r2={r2} (round {round})"
        );
    }
}

/// Coherence (CoRR): two reads of the same location by one core must not
/// observe values in an order contradicting the write order.
#[test]
fn litmus_read_read_coherence() {
    let cfg = CmpConfig::paper_baseline().with_cores(4);
    let mut sys = MemorySystem::new(&cfg);
    let x = Addr(0x500_0000);
    let mut plans = vec![
        vec![MemOp::Store(x, 1), MemOp::Store(x, 2)],
        vec![MemOp::Load(x), MemOp::Load(x)],
    ];
    let mut results = vec![Vec::new(), Vec::new()];
    drive(&mut sys, &mut plans, &mut results);
    let (a, b) = (results[1][0], results[1][1]);
    assert!(b >= a, "reads went backwards: {a} then {b}");
}

/// Atomicity (fetch&add pairs): concurrent RMWs to one word never overlap.
#[test]
fn litmus_rmw_atomicity() {
    let cfg = CmpConfig::paper_baseline().with_cores(8);
    let mut sys = MemorySystem::new(&cfg);
    let x = Addr(0x600_0000);
    let mut plans: Vec<Vec<MemOp>> = (0..8)
        .map(|_| vec![MemOp::Rmw(x, RmwKind::FetchAdd(1)); 4])
        .collect();
    let mut results = vec![Vec::new(); 8];
    drive(&mut sys, &mut plans, &mut results);
    let mut olds: Vec<u64> = results.iter().flatten().copied().collect();
    olds.sort_unstable();
    assert_eq!(olds, (0..32).collect::<Vec<_>>(), "lost or duplicated RMW");
    assert_eq!(sys.store().load(x), 32);
}
