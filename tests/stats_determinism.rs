//! The stats subsystem's two load-bearing guarantees, end-to-end:
//!
//! 1. **Determinism** — the same seed and configuration produce a
//!    byte-identical stats JSON dump, run after run, with and without an
//!    active fault plan. This is what lets CI gate on `glocks-stats diff`
//!    against a committed golden dump.
//! 2. **Paper-exactness** — turning stats on observes the simulation but
//!    never perturbs it: cycles, grants and G-line signal counts match the
//!    stats-off run bit for bit.

use glocks_repro::prelude::*;
use glocks_repro::sim_base::fault::{FaultPlan, FaultRates};
use glocks_repro::stats as gstats;

fn sim_for(kind: BenchKind, algo: LockAlgorithm, threads: usize, options: SimulationOptions) -> SimReport {
    let bench = BenchConfig::smoke(kind, threads);
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let mapping = LockMapping::hybrid(&bench.hc_locks(), algo, bench.n_locks());
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, options);
    let (report, mem) = sim.run().expect("simulation wedged");
    (inst.verify)(mem.store()).expect("verify");
    report
}

/// Run with a fresh stats session and return the dump's JSON text.
fn dump_json(options: SimulationOptions) -> String {
    gstats::enable(gstats::StatsConfig::default());
    let report = sim_for(BenchKind::Sctr, LockAlgorithm::Glock, 8, options);
    gstats::disable();
    report
        .stats
        .expect("stats session active, snapshot attached")
        .to_json()
}

#[test]
fn identical_runs_dump_byte_identical_stats_json() {
    let a = dump_json(Default::default());
    let b = dump_json(Default::default());
    assert!(!a.is_empty() && a.ends_with('\n'));
    assert_eq!(a, b, "same seed + config must dump byte-identical JSON");
}

/// The event-driven idle-skip scheduler (the default) and the dense cycle
/// loop must produce byte-identical dumps — which also means the one
/// committed golden dump gates both execution modes; no golden fork.
#[test]
fn event_driven_and_dense_loops_dump_byte_identical_stats_json() {
    let skip = dump_json(Default::default());
    let dense = dump_json(SimulationOptions { idle_skip: false, ..Default::default() });
    assert_eq!(skip, dense, "idle-skip changed an observable: dumps differ");
}

/// Same equivalence across the paper's workload families (barrier-phased
/// apps, queue-structured producers/consumers) and lock algorithms with
/// very different idle shapes (G-line wait vs spin-with-backoff).
#[test]
fn event_driven_and_dense_loops_agree_across_workloads() {
    for (kind, algo) in [
        (BenchKind::Mctr, LockAlgorithm::Glock),
        (BenchKind::Prco, LockAlgorithm::Mcs),
        (BenchKind::Qsort, LockAlgorithm::TatasBackoff),
        (BenchKind::Ocean, LockAlgorithm::Glock),
    ] {
        let skip = sim_for(kind, algo, 8, Default::default());
        let dense = sim_for(
            kind,
            algo,
            8,
            SimulationOptions { idle_skip: false, ..Default::default() },
        );
        assert_eq!(skip.cycles, dense.cycles, "{kind:?}/{algo:?}: cycle counts differ");
        assert_eq!(skip.finished_at, dense.finished_at, "{kind:?}/{algo:?}");
        assert_eq!(skip.acquires, dense.acquires, "{kind:?}/{algo:?}");
        assert_eq!(skip.instructions(), dense.instructions(), "{kind:?}/{algo:?}");
        assert_eq!(
            skip.traffic.total_messages, dense.traffic.total_messages,
            "{kind:?}/{algo:?}"
        );
        for (a, b) in skip.breakdowns.iter().zip(&dense.breakdowns) {
            assert_eq!(a, b, "{kind:?}/{algo:?}: per-core activity breakdowns differ");
        }
    }
}

#[test]
fn identical_runs_dump_byte_identical_stats_json_under_faults() {
    let opts = || {
        let mut plan = FaultPlan::seeded(0xFA01);
        plan.gline = FaultRates::drops(10_000); // 1% signal loss
        SimulationOptions {
            fault_plan: Some(plan),
            watchdog_cycles: 200_000,
            ..Default::default()
        }
    };
    let a = dump_json(opts());
    let b = dump_json(opts());
    assert_eq!(a, b, "a seeded fault plan must not break dump determinism");
    // The retransmission machinery actually fired, so the dump proves the
    // fault path is covered too.
    let dump = gstats::StatsDump::from_json(&a).expect("dump parses");
    let retransmits: u64 = dump
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("glock.") && k.ends_with(".retransmits"))
        .map(|(_, v)| *v)
        .sum();
    assert!(retransmits > 0, "1% G-line loss must cause retransmissions");
}

/// Dense and event-driven loops must also agree through the full
/// kill → failover → repair → fail-back lifecycle. The fail-back
/// controller's probe timers, hysteresis dwell and drain bookkeeping are
/// `next_event`-aware, so the idle-skip scheduler may leap across probe
/// gaps — and must still land on exactly the dense trajectory, down to
/// the `sim.repairs` / `sim.failbacks` counters.
#[test]
fn event_driven_and_dense_loops_agree_under_intermittent_faults() {
    let opts = |idle_skip: bool| {
        let mut plan = FaultPlan::seeded(0xFA02);
        plan.gline = FaultRates::drops(5_000); // transient loss on top
        plan.blink_all_glock_networks(1, 1_000, 5_000, 40_000);
        SimulationOptions {
            fault_plan: Some(plan),
            idle_skip,
            watchdog_cycles: 500_000,
            ..Default::default()
        }
    };
    let skip = dump_json(opts(true));
    let dense = dump_json(opts(false));
    assert_eq!(skip, dense, "the fail-back lifecycle diverged between loop modes");
    let dump = gstats::StatsDump::from_json(&skip).expect("dump parses");
    assert!(
        dump.counters.get("sim.repairs").copied().unwrap_or(0) > 0,
        "the blink plan must actually install a repair"
    );
    assert!(
        dump.counters.get("sim.failbacks").copied().unwrap_or(0) > 0,
        "the repaired network must actually be re-armed"
    );
}

#[test]
fn self_diff_of_a_dump_is_clean() {
    let text = dump_json(Default::default());
    let dump = gstats::StatsDump::from_json(&text).expect("dump parses");
    let report = gstats::diff(&dump, &dump, &gstats::DiffOptions::default());
    assert!(!report.failed);
    assert_eq!(report.changed().count(), 0);
}

/// Paper-exactness: stats are a pure observer. The numbers the paper's
/// figures are built from (execution cycles, grants, G-line signals) must
/// be bit-identical whether or not a stats session is recording.
#[test]
fn enabling_stats_does_not_perturb_the_simulation() {
    assert!(!gstats::is_enabled(), "test assumes a clean thread");
    let off = sim_for(BenchKind::Sctr, LockAlgorithm::Glock, 8, Default::default());
    assert!(off.stats.is_none(), "stats off ⇒ no snapshot in the report");

    gstats::enable(gstats::StatsConfig::default());
    let on = sim_for(BenchKind::Sctr, LockAlgorithm::Glock, 8, Default::default());
    gstats::disable();

    assert_eq!(off.cycles, on.cycles);
    assert_eq!(off.finished_at, on.finished_at);
    assert_eq!(off.glocks.len(), on.glocks.len());
    for (g_off, g_on) in off.glocks.iter().zip(&on.glocks) {
        assert_eq!(g_off.grants, g_on.grants);
        assert_eq!(g_off.signals, g_on.signals);
        assert_eq!(g_off.dropped, g_on.dropped);
        assert_eq!(g_off.retransmits, g_on.retransmits);
    }
    assert_eq!(off.traffic.total_messages, on.traffic.total_messages);
    assert_eq!(off.instructions(), on.instructions());

    // And the snapshot agrees with the report it rode in on.
    let dump = on.stats.expect("snapshot attached");
    assert_eq!(dump.counters.get("sim.cycles"), Some(&on.cycles));
}

/// The runtime protocol checker is a pure observer too: on a fault-free
/// run it must neither change a single paper-facing number nor add keys to
/// a dump it is not part of (the `checker.*` stats only register when a
/// checker is attached, keeping the golden dump's schema stable).
#[test]
fn enabling_the_checker_does_not_perturb_the_simulation() {
    use glocks_repro::sim::CheckerConfig;
    let off = sim_for(BenchKind::Sctr, LockAlgorithm::Glock, 8, Default::default());
    let on = sim_for(
        BenchKind::Sctr,
        LockAlgorithm::Glock,
        8,
        SimulationOptions {
            // Densest possible cadence — maximum opportunity to perturb.
            checker: Some(CheckerConfig { every: 1, fairness_window: 1_000_000 }),
            ..Default::default()
        },
    );

    assert_eq!(off.cycles, on.cycles);
    assert_eq!(off.finished_at, on.finished_at);
    assert_eq!(off.acquires, on.acquires);
    assert_eq!(off.glocks.len(), on.glocks.len());
    for (g_off, g_on) in off.glocks.iter().zip(&on.glocks) {
        assert_eq!(g_off.grants, g_on.grants);
        assert_eq!(g_off.signals, g_on.signals);
    }
    assert_eq!(off.traffic.total_messages, on.traffic.total_messages);
    assert_eq!(off.instructions(), on.instructions());

    // Dumps with the checker off must not grow checker keys...
    let plain = dump_json(Default::default());
    let plain = gstats::StatsDump::from_json(&plain).expect("dump parses");
    assert!(
        !plain.counters.keys().any(|k| k.starts_with("checker.")),
        "checker-off dumps must keep the golden schema"
    );
    // ...while checker-on dumps record that checks actually ran.
    let checked = dump_json(SimulationOptions {
        checker: Some(CheckerConfig::default()),
        ..Default::default()
    });
    let checked = gstats::StatsDump::from_json(&checked).expect("dump parses");
    assert!(
        checked.counters.get("checker.checks_run").copied().unwrap_or(0) > 0,
        "an attached checker must actually run checks"
    );
}
