//! The simulator must be bit-reproducible: identical configurations give
//! identical cycle counts, traffic, energy, and contention profiles.

use glocks_repro::prelude::*;

fn run_once(kind: BenchKind, algo: LockAlgorithm, threads: usize) -> (Cycle, u64, u64, String) {
    let bench = BenchConfig::smoke(kind, threads);
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let mapping = LockMapping::hybrid(&bench.hc_locks(), algo, bench.n_locks());
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, Default::default());
    let (report, mem) = sim.run().expect("simulation wedged");
    (inst.verify)(mem.store()).expect("verify");
    (
        report.cycles,
        report.traffic.total_bytes(),
        report.instructions(),
        format!("{:?}", report.lcr),
    )
}

#[test]
fn identical_runs_are_identical() {
    for kind in [BenchKind::Sctr, BenchKind::Qsort, BenchKind::Raytr] {
        for algo in [LockAlgorithm::Mcs, LockAlgorithm::Glock] {
            let a = run_once(kind, algo, 8);
            let b = run_once(kind, algo, 8);
            assert_eq!(a, b, "{kind:?}/{algo:?} diverged between runs");
        }
    }
}

#[test]
fn different_seeds_change_app_kernels() {
    let mut bench = BenchConfig::smoke(BenchKind::Qsort, 8);
    let build = |b: &BenchConfig| {
        let inst = b.build();
        let cfg = CmpConfig::paper_baseline().with_cores(8);
        let mapping = LockMapping::hybrid(&b.hc_locks(), LockAlgorithm::Mcs, b.n_locks());
        let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, Default::default());
        let (report, mem) = sim.run().expect("simulation wedged");
        (inst.verify)(mem.store()).expect("verify");
        report.cycles
    };
    let a = build(&bench);
    bench.seed ^= 0xDEAD_BEEF;
    let b = build(&bench);
    assert_ne!(a, b, "seed must influence the generated input data");
}
