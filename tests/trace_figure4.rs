//! The published Figure 4 walkthrough, verified through the trace
//! subsystem on the full simulator stack: all cores of a 9-core CMP
//! request at cycle 0 and core 0's token arrives at cycle 4.

use glocks_repro::glocks::{GlockNetwork, Topology};
use glocks_repro::sim_base::trace::{self, TraceMask};
use glocks_repro::sim_base::Mesh2D;

#[test]
fn figure_4_grant_sequence_in_the_trace() {
    trace::enable(TraceMask::GLOCK, 10_000);
    let mut net = GlockNetwork::new(&Topology::flat(Mesh2D::new(3, 3)), 1);
    let regs = net.regs();
    for c in 0..9 {
        regs.set_req(c);
    }
    let mut now = 0u64;
    while net.stats().grants < 9 {
        net.tick(now);
        if let Some(h) = net.holder() {
            regs.set_rel(h.index());
        }
        now += 1;
        assert!(now < 1000);
    }
    let records = trace::drain();
    trace::disable();
    // The first token grant is to core 0 at cycle 4 — exactly Figure 4(b).
    let first_grant = records
        .iter()
        .find(|r| r.text.contains("TOKEN granted"))
        .expect("a grant must be traced");
    assert_eq!(first_grant.cycle, 4, "Figure 4: Core0 granted at cycle 4");
    assert!(first_grant.text.contains("core 0"));
    // Grants appear in round-robin core order.
    let grant_cores: Vec<&str> = records
        .iter()
        .filter(|r| r.text.contains("TOKEN granted"))
        .map(|r| r.text.rsplit(' ').next().unwrap())
        .collect();
    assert_eq!(grant_cores, ["0", "1", "2", "3", "4", "5", "6", "7", "8"]);
}
