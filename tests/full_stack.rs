//! Whole-workspace integration through the façade crate's public API.

use glocks_repro::prelude::*;

fn run(
    kind: BenchKind,
    threads: usize,
    mapping: &LockMapping,
    opts: SimulationOptions,
) -> (SimReport, Result<(), String>) {
    let bench = BenchConfig::smoke(kind, threads);
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let sim = Simulation::new(&cfg, mapping, inst.workloads, &inst.init, opts);
    let (report, mem) = sim.run().expect("simulation wedged");
    let v = (inst.verify)(mem.store());
    (report, v)
}

#[test]
fn every_benchmark_under_the_paper_configurations() {
    for kind in BenchKind::ALL {
        let bench = BenchConfig::smoke(kind, 8);
        for algo in [LockAlgorithm::Mcs, LockAlgorithm::Glock] {
            let mapping = LockMapping::hybrid(&bench.hc_locks(), algo, bench.n_locks());
            let (report, verify) = run(kind, 8, &mapping, Default::default());
            verify.unwrap_or_else(|e| panic!("{kind:?}/{algo:?}: {e}"));
            assert!(report.cycles > 0);
            let f = report.avg_fractions();
            assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{kind:?}: fractions {f:?}");
        }
    }
}

#[test]
fn glock_networks_report_activity() {
    let bench = BenchConfig::smoke(BenchKind::Actr, 8);
    let mapping = LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks());
    let (report, verify) = run(BenchKind::Actr, 8, &mapping, Default::default());
    verify.unwrap();
    assert_eq!(report.glocks.len(), 2, "ACTR maps two locks to hardware");
    for (i, g) in report.glocks.iter().enumerate() {
        assert!(g.grants > 0, "GLock {i} never granted");
        assert!(g.signals >= 4 * g.grants, "GLock {i} signal count implausible");
    }
}

#[test]
fn invariant_checked_run_stays_clean() {
    let opts = SimulationOptions { check_invariants_every: 500, ..Default::default() };
    let bench = BenchConfig::smoke(BenchKind::Dbll, 8);
    let mapping = LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks());
    let (_, verify) = run(BenchKind::Dbll, 8, &mapping, opts);
    verify.unwrap();
}

#[test]
fn hierarchical_glocks_on_a_64_core_cmp() {
    // Beyond the 7×7 flat limit: the runner switches to the hierarchical
    // topology automatically.
    let bench = BenchConfig::smoke(BenchKind::Sctr, 64);
    let mapping = LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks());
    let (report, verify) = run(BenchKind::Sctr, 64, &mapping, Default::default());
    verify.unwrap();
    assert_eq!(report.glocks[0].grants, report.acquires[0]);
}

#[test]
fn forced_hierarchy_matches_flat_results_functionally() {
    let bench = BenchConfig::smoke(BenchKind::Sctr, 16);
    let mapping = LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks());
    let (flat, v1) = run(BenchKind::Sctr, 16, &mapping, Default::default());
    let opts = SimulationOptions { force_hierarchical_glocks: true, ..Default::default() };
    let (hier, v2) = run(BenchKind::Sctr, 16, &mapping, opts);
    v1.unwrap();
    v2.unwrap();
    assert_eq!(flat.acquires, hier.acquires);
    // identical protocol depth at 16 cores (4 rows ≤ 7 fan-in) ⇒ close
    // timing
    let ratio = hier.cycles as f64 / flat.cycles as f64;
    assert!((0.9..1.1).contains(&ratio), "flat {} vs hier {}", flat.cycles, hier.cycles);
}

#[test]
fn figure1_mappings_work_through_the_facade() {
    let bench = BenchConfig::smoke(BenchKind::Raytr, 8);
    let hc = bench.hc_locks();
    for x in 0..=2 {
        let mapping = LockMapping::tatas_x(&hc, x, bench.n_locks());
        let (_, verify) = run(BenchKind::Raytr, 8, &mapping, Default::default());
        verify.unwrap_or_else(|e| panic!("TATAS-{x}: {e}"));
    }
}
