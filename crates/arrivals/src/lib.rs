//! `glocks-arrivals` — an open-loop arrival engine for lock-service
//! workloads.
//!
//! Every workload the simulator grew up with is *closed-loop*: each core
//! loops acquire → critical section → release, so offered load is
//! implicitly bounded by core count and the machine can never be pushed
//! past its lock-service capacity. This crate adds the other half of the
//! queueing picture:
//!
//! * [`process`] — seeded, deterministic arrival processes (Poisson and
//!   bursty two-state MMPP), sampled with von Neumann's
//!   comparison-of-uniforms exponential method so the schedule is exact
//!   integer math (bit-reproducible across platforms, no `libm`);
//! * [`service`] — [`service::ServiceWorkload`], a per-core request server
//!   that sleeps between arrivals (`Action::WaitUntil`), serves a bounded
//!   FIFO backlog through any [`glocks_cpu::LockBackend`], and feeds
//!   per-request queue-wait / acquire-wait / total-latency log2 histograms;
//! * [`tenant`] — multi-tenant mixes: N independent request streams ×
//!   M locks mapped round-robin onto cores, each tenant with its own rate
//!   and its own latency histogram;
//! * [`slo`] — the end-of-run SLO report: interpolated p50/p90/p99/p999
//!   of total request latency, dropped/backlogged counts, and a
//!   saturation flag, published as `slo.*` counters in the stats dump
//!   (only when a service workload actually ran, so closed-loop dumps are
//!   untouched).
//!
//! Determinism contract: the arrival RNG derives from the top-level seed
//! through [`glocks_sim_base::SplitMix64::domain_stream`] under
//! [`ARRIVAL_DOMAIN`] — the same scheme the fault injector uses — so fault
//! plans and arrival schedules stay independently reproducible under one
//! seed, and every generator checkpoints through the snap codec.

pub mod process;
pub mod service;
pub mod slo;
pub mod tenant;

pub use process::{ArrivalGen, ArrivalProcess, ARRIVAL_DOMAIN};
pub use service::{ServiceConfig, ServiceWorkload};
pub use tenant::{mix_workloads, TenantSpec};
