//! The per-core lock-service workload: an open-loop request server.
//!
//! Requests arrive on a schedule the service does not control (the
//! defining property of open-loop load). Each request's lifecycle is
//!
//! ```text
//! arrival ──queue wait──▶ service start ──acquire wait──▶ grant
//!        ──hold (load, compute, store)──▶ release ──▶ completion
//! ```
//!
//! and three log2 histograms capture it per request: `queue_wait_cycles`
//! (arrival → service start, the open-loop signal closed-loop workloads
//! cannot produce), `acquire_wait_cycles` (lock contention as the backend
//! sees it), and `total_latency_cycles` (arrival → completion, the
//! quantity the `slo.*` report quotes tails of). The backlog is a bounded
//! FIFO: arrivals beyond `queue_cap` are dropped and counted, so a
//! saturated run degrades measurably instead of consuming unbounded
//! memory.

use crate::process::{ArrivalGen, ArrivalProcess};
use glocks_cpu::{Action, Workload};
use glocks_mem::MemOp;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, Cycle, LockId};
use std::collections::VecDeque;

/// Static shape of one core's request stream.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Lock guarding this stream's critical section.
    pub lock: LockId,
    /// Shared data word the critical section increments (lets the harness
    /// verify mutual exclusion: final value = completed requests).
    pub data: Addr,
    /// Pure-compute instructions inside the critical section.
    pub cs_instructions: u64,
    /// Requests this core generates before the stream ends (termination
    /// bound; every generated request is either completed or dropped).
    pub requests: u64,
    /// Max requests waiting in the backlog; arrivals beyond it are dropped.
    pub queue_cap: usize,
    /// Arrival process shape and rate.
    pub process: ArrivalProcess,
    /// Tenant index, for per-tenant stats namespaces (`service.t{k}.*`).
    pub tenant: u32,
}

/// Where the state machine is between two `next()` calls. Tags are the
/// snapshot encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Nothing in flight; the next call dispatches (first call, or woken
    /// from an inter-arrival sleep with `last` = now).
    Dispatch = 0,
    /// Issued `Acquire`; next call sees the grant (at unknown cycle).
    Acquiring = 1,
    /// Issued `WaitUntil(0)` to read the grant cycle.
    GrantRead = 2,
    /// Issued the critical-section load.
    CsLoad = 3,
    /// Issued the critical-section store.
    CsStore = 4,
    /// Issued the critical-section compute.
    CsCompute = 5,
    /// Issued `Release`.
    Releasing = 6,
    /// Issued `WaitUntil(0)` to read the completion cycle.
    DoneRead = 7,
    /// All requests completed or dropped; `Done` returned.
    Finished = 8,
}

impl Phase {
    fn from_tag(tag: u8) -> Result<Phase, SnapError> {
        Ok(match tag {
            0 => Phase::Dispatch,
            1 => Phase::Acquiring,
            2 => Phase::GrantRead,
            3 => Phase::CsLoad,
            4 => Phase::CsStore,
            5 => Phase::CsCompute,
            6 => Phase::Releasing,
            7 => Phase::DoneRead,
            8 => Phase::Finished,
            t => return Err(SnapError::BadTag { what: "service phase", tag: u64::from(t) }),
        })
    }
}

/// One core's open-loop request server (see module docs).
pub struct ServiceWorkload {
    cfg: ServiceConfig,
    gen: ArrivalGen,
    /// Next scheduled arrival, if any requests remain to generate.
    next_at: Option<Cycle>,
    /// Arrival timestamps admitted but not yet served (FIFO).
    backlog: VecDeque<Cycle>,
    phase: Phase,
    /// Arrival timestamp of the request in service.
    cur_arrival: Cycle,
    /// Cycle the in-service request left the backlog.
    service_start: Cycle,
    generated: u64,
    completed: u64,
    dropped: u64,
    backlog_max: u64,
    /// Stream index (normally the core id), for the RNG stream and the
    /// per-stream stats namespace.
    stream: u64,
    // Stats handles (NONE when stats are off).
    h_queue: glocks_stats::HistId,
    h_acquire: glocks_stats::HistId,
    h_total: glocks_stats::HistId,
    h_tenant_total: glocks_stats::HistId,
    c_arrivals: glocks_stats::CounterId,
    c_completed: glocks_stats::CounterId,
    c_dropped: glocks_stats::CounterId,
    c_tenant_completed: glocks_stats::CounterId,
}

impl ServiceWorkload {
    /// Build the server for stream `stream` (normally the core index) of a
    /// run seeded with `seed`. Stats must already be enabled if the run
    /// wants histograms — ids are registered here, deterministically in
    /// construction order, which is what lets a resumed run's registry
    /// restore line up.
    pub fn new(cfg: ServiceConfig, seed: u64, stream: u64) -> Self {
        assert!(cfg.queue_cap >= 1, "service queue_cap must be >= 1");
        let mut gen = ArrivalGen::new(cfg.process, seed, stream);
        let next_at = (cfg.requests > 0).then(|| gen.next_arrival());
        let t = cfg.tenant;
        ServiceWorkload {
            gen,
            next_at,
            backlog: VecDeque::new(),
            phase: Phase::Dispatch,
            cur_arrival: 0,
            service_start: 0,
            generated: 0,
            completed: 0,
            dropped: 0,
            backlog_max: 0,
            stream,
            h_queue: glocks_stats::hist("service.queue_wait_cycles"),
            h_acquire: glocks_stats::hist("service.acquire_wait_cycles"),
            h_total: glocks_stats::hist("service.total_latency_cycles"),
            h_tenant_total: glocks_stats::hist(&format!("service.t{t}.total_latency_cycles")),
            c_arrivals: glocks_stats::counter("service.arrivals"),
            c_completed: glocks_stats::counter("service.completed"),
            c_dropped: glocks_stats::counter("service.dropped"),
            c_tenant_completed: glocks_stats::counter(&format!("service.t{t}.completed")),
            cfg,
        }
    }

    pub fn completed(&self) -> u64 {
        self.completed
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Admit every arrival scheduled at or before `now` into the bounded
    /// backlog (dropping past the cap) and schedule the next one.
    fn admit(&mut self, now: Cycle) {
        while let Some(at) = self.next_at {
            if at > now {
                break;
            }
            self.generated += 1;
            glocks_stats::add(self.c_arrivals, 1);
            if self.backlog.len() < self.cfg.queue_cap {
                self.backlog.push_back(at);
            } else {
                self.dropped += 1;
                glocks_stats::add(self.c_dropped, 1);
            }
            self.backlog_max = self.backlog_max.max(self.backlog.len() as u64);
            self.next_at =
                (self.generated < self.cfg.requests).then(|| self.gen.next_arrival());
        }
    }

    /// Serve the backlog head, sleep until the next arrival, or finish.
    fn dispatch(&mut self, now: Cycle) -> Action {
        self.admit(now);
        if let Some(arrival) = self.backlog.pop_front() {
            glocks_stats::hist_record(self.h_queue, now - arrival);
            self.cur_arrival = arrival;
            self.service_start = now;
            self.phase = Phase::Acquiring;
            return Action::Acquire(self.cfg.lock);
        }
        match self.next_at {
            // `admit` drained everything due, so next_at > now: a real sleep.
            Some(at) => Action::WaitUntil(at),
            None => {
                self.phase = Phase::Finished;
                Action::Done
            }
        }
    }
}

impl Workload for ServiceWorkload {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            // After construction `last` is 0 (cycle 0); after a sleep it is
            // the wake cycle — either way it is "now".
            Phase::Dispatch => self.dispatch(last),
            Phase::Acquiring => {
                self.phase = Phase::GrantRead;
                Action::WaitUntil(0)
            }
            Phase::GrantRead => {
                glocks_stats::hist_record(self.h_acquire, last - self.service_start);
                self.phase = Phase::CsLoad;
                Action::Mem(MemOp::Load(self.cfg.data))
            }
            Phase::CsLoad => {
                self.phase = Phase::CsStore;
                Action::Mem(MemOp::Store(self.cfg.data, last + 1))
            }
            Phase::CsStore => {
                self.phase = Phase::CsCompute;
                Action::Compute(self.cfg.cs_instructions)
            }
            Phase::CsCompute => {
                self.phase = Phase::Releasing;
                Action::Release(self.cfg.lock)
            }
            Phase::Releasing => {
                self.phase = Phase::DoneRead;
                Action::WaitUntil(0)
            }
            Phase::DoneRead => {
                let now = last;
                glocks_stats::hist_record(self.h_total, now - self.cur_arrival);
                glocks_stats::hist_record(self.h_tenant_total, now - self.cur_arrival);
                self.completed += 1;
                glocks_stats::add(self.c_completed, 1);
                glocks_stats::add(self.c_tenant_completed, 1);
                self.phase = Phase::Dispatch;
                self.dispatch(now)
            }
            Phase::Finished => Action::Done,
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.mark("service-workload");
        self.gen.save_state(w);
        w.opt_u64(self.next_at);
        w.seq(self.backlog.iter().copied().collect::<Vec<_>>().as_slice(), |w, &t| w.u64(t));
        w.u8(self.phase as u8);
        w.u64(self.cur_arrival);
        w.u64(self.service_start);
        w.u64(self.generated);
        w.u64(self.completed);
        w.u64(self.dropped);
        w.u64(self.backlog_max);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect("service-workload")?;
        self.gen.load_state(r)?;
        self.next_at = r.opt_u64()?;
        self.backlog = r.seq(|r| r.u64())?.into();
        self.phase = Phase::from_tag(r.u8()?)?;
        self.cur_arrival = r.u64()?;
        self.service_start = r.u64()?;
        self.generated = r.u64()?;
        self.completed = r.u64()?;
        self.dropped = r.u64()?;
        self.backlog_max = r.u64()?;
        Ok(())
    }

    fn publish_stats(&self) {
        if !glocks_stats::is_enabled() {
            return;
        }
        let s = self.stream;
        glocks_stats::set(
            glocks_stats::counter(&format!("service.s{s}.backlog_max")),
            self.backlog_max,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(requests: u64, mean_gap: u64) -> ServiceConfig {
        ServiceConfig {
            lock: LockId(0),
            data: Addr(0x0200_0000),
            cs_instructions: 16,
            requests,
            queue_cap: 64,
            process: ArrivalProcess::Poisson { mean_gap },
            tenant: 0,
        }
    }

    /// Drive the workload's state machine directly, simulating a core that
    /// completes every action after `step` cycles and honors WaitUntil.
    fn drive(w: &mut ServiceWorkload, step: u64, limit: u64) -> (u64, Cycle) {
        let mut now: Cycle = 0;
        let mut last = 0u64;
        let mut served = 0u64;
        loop {
            match w.next(last) {
                Action::Done => return (served, now),
                Action::WaitUntil(t) => {
                    now = now.max(t);
                    last = now;
                }
                Action::Acquire(_) => {
                    now += step;
                    last = 0;
                }
                Action::Release(_) => {
                    now += step;
                    last = 0;
                    served += 1;
                }
                Action::Mem(_) | Action::Compute(_) => {
                    now += step;
                    last = 0;
                }
                Action::Barrier => unreachable!("service workloads never barrier"),
            }
            assert!(now < limit, "service run exceeded {limit} cycles");
        }
    }

    #[test]
    fn serves_every_request_when_underloaded() {
        let mut w = ServiceWorkload::new(cfg(50, 1_000), 42, 0);
        // Service time ≈ 5 actions × 4 cycles ≪ 1000-cycle mean gap.
        let (served, _) = drive(&mut w, 4, 2_000_000);
        assert_eq!(served, 50);
        assert_eq!(w.completed(), 50);
        assert_eq!(w.dropped(), 0);
    }

    #[test]
    fn overload_drops_beyond_queue_cap() {
        let mut c = cfg(200, 10);
        c.queue_cap = 4;
        let mut w = ServiceWorkload::new(c, 42, 0);
        // Service time ≈ 5 × 100 cycles ≫ 10-cycle mean gap: heavy overload.
        let (served, _) = drive(&mut w, 100, 10_000_000);
        assert!(w.dropped() > 0, "overload must drop");
        assert_eq!(served + w.dropped(), 200, "every request accounted for");
        assert_eq!(w.completed(), served);
    }

    #[test]
    fn state_machine_is_deterministic() {
        let run = || {
            let mut w = ServiceWorkload::new(cfg(30, 100), 7, 2);
            drive(&mut w, 8, 2_000_000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn checkpoint_mid_request_resumes_identically() {
        let c = cfg(40, 50);
        let mut a = ServiceWorkload::new(c, 9, 1);
        // Advance partway through the stream (some requests in flight).
        let mut last = 0u64;
        let mut now = 0u64;
        for _ in 0..37 {
            match a.next(last) {
                Action::WaitUntil(t) => {
                    now = now.max(t);
                    last = now;
                }
                Action::Done => break,
                _ => {
                    now += 12;
                    last = 0;
                }
            }
        }
        let mut w = SnapWriter::new();
        a.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut b = ServiceWorkload::new(c, 9, 1);
        b.load_state(&mut SnapReader::new(&bytes)).unwrap();
        // Identical continuations.
        let mut la = last;
        let mut lb = last;
        for _ in 0..500 {
            let xa = a.next(la);
            let xb = b.next(lb);
            assert_eq!(xa, xb);
            if xa == Action::Done {
                break;
            }
            now += 5;
            la = if matches!(xa, Action::WaitUntil(_)) { now } else { 0 };
            lb = la;
        }
    }
}
