//! Multi-tenant service mixes: N independent request streams × M locks.
//!
//! The closed-loop analogue lives in `glocks-workloads::multiprog`
//! (two benchmarks space-shared on disjoint locks and address ranges);
//! here the same idea is applied to open-loop streams. Each
//! [`TenantSpec`] is an independent "app" with its own arrival process,
//! lock, and data word; cores are assigned round-robin so every tenant
//! gets an even share of the machine, and per-tenant latency histograms
//! (`service.t{k}.total_latency_cycles`) let the SLO report show how a
//! bursty neighbor degrades a well-behaved tenant's tail.

use crate::process::ArrivalProcess;
use crate::service::{ServiceConfig, ServiceWorkload};
use glocks_cpu::Workload;
use glocks_sim_base::{Addr, LockId};

/// One tenant ("app") of a multi-tenant service mix.
#[derive(Clone, Copy, Debug)]
pub struct TenantSpec {
    /// Arrival process for each of this tenant's cores.
    pub process: ArrivalProcess,
    /// The lock all of this tenant's cores contend on.
    pub lock: LockId,
    /// The shared data word its critical sections increment. Tenants must
    /// use disjoint words (and disjoint locks) to be independent.
    pub data: Addr,
    /// Requests generated per core of this tenant.
    pub requests_per_core: u64,
    /// Critical-section compute length, in instructions.
    pub cs_instructions: u64,
    /// Per-core backlog bound.
    pub queue_cap: usize,
}

/// Build one [`ServiceWorkload`] per core, assigning cores to tenants
/// round-robin (`core i` → `tenant i % tenants.len()`). The workload for
/// core `i` uses arrival stream `i`, so the schedule is independent of the
/// tenant layout. Returns the per-core workloads in core order.
pub fn mix_workloads(
    seed: u64,
    tenants: &[TenantSpec],
    n_cores: usize,
) -> Vec<Box<dyn Workload>> {
    assert!(!tenants.is_empty(), "a service mix needs at least one tenant");
    (0..n_cores)
        .map(|core| {
            let t = core % tenants.len();
            let spec = &tenants[t];
            let cfg = ServiceConfig {
                lock: spec.lock,
                data: spec.data,
                cs_instructions: spec.cs_instructions,
                requests: spec.requests_per_core,
                queue_cap: spec.queue_cap,
                process: spec.process,
                tenant: t as u32,
            };
            Box::new(ServiceWorkload::new(cfg, seed, core as u64)) as Box<dyn Workload>
        })
        .collect()
}

/// Initial memory image for a mix: every tenant's shared data word starts
/// at 0. The pairs feed straight into `Simulation::new`'s `init` slice.
pub fn mix_init(tenants: &[TenantSpec]) -> Vec<(Addr, u64)> {
    tenants.iter().map(|t| (t.data, 0)).collect()
}

/// Expected final value of each tenant's data word: completed requests of
/// that tenant (drops never enter the critical section). Returns
/// `(data, expected)` pairs for a fleet of per-core workloads built by
/// [`mix_workloads`].
pub fn mix_expected(
    tenants: &[TenantSpec],
    workloads: &[Box<ServiceWorkload>],
) -> Vec<(Addr, u64)> {
    tenants
        .iter()
        .enumerate()
        .map(|(t, spec)| {
            let total: u64 = workloads
                .iter()
                .enumerate()
                .filter(|(core, _)| core % tenants.len() == t)
                .map(|(_, w)| w.completed())
                .sum();
            (spec.data, total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assignment_covers_all_tenants() {
        let tenants = [
            TenantSpec {
                process: ArrivalProcess::Poisson { mean_gap: 500 },
                lock: LockId(0),
                data: Addr(0x0200_0000),
                requests_per_core: 10,
                cs_instructions: 16,
                queue_cap: 32,
            },
            TenantSpec {
                process: ArrivalProcess::Mmpp {
                    calm_gap: 800,
                    burst_gap: 40,
                    calm_dwell: 10_000,
                    burst_dwell: 3_000,
                },
                lock: LockId(1),
                data: Addr(0x1200_0000),
                requests_per_core: 10,
                cs_instructions: 16,
                queue_cap: 32,
            },
        ];
        let ws = mix_workloads(0xB10C, &tenants, 8);
        assert_eq!(ws.len(), 8);
        let init = mix_init(&tenants);
        assert_eq!(init.len(), 2);
        assert_eq!(init[0], (Addr(0x0200_0000), 0));
    }
}
