//! Deterministic arrival processes.
//!
//! Open-loop generators must be bit-reproducible across platforms, which
//! rules out the usual `-ln(U) · mean` exponential sampler: `ln` goes
//! through the platform's libm and is not required to round identically
//! everywhere. Instead [`exp_gap`] uses von Neumann's comparison method
//! (Devroye, *Non-Uniform Random Variate Generation*, ch. IX.2), which
//! samples Exp(1) using only `u64` comparisons, and scales to cycles with
//! `u128` integer arithmetic. The price is a variable number of uniforms
//! per sample (≈4 on average); the payoff is an arrival schedule that is a
//! pure function of the seed on every platform.

use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Cycle, SplitMix64};

/// Domain tag for [`SplitMix64::domain_stream`]: "ARRV". Arrival
/// generators derive their streams as `domain_stream(seed, ARRIVAL_DOMAIN,
/// core_index)`, parallel to the fault injector's `(seed, site, stream)`
/// scheme, so reseeding or enabling faults never perturbs arrivals and
/// vice versa.
pub const ARRIVAL_DOMAIN: u64 = 0x4152_5256;

/// Shape of one request stream. All rates are expressed as *mean
/// inter-arrival gaps in cycles* so configs are exact integers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: gaps are iid Exp(mean `mean_gap`).
    Poisson { mean_gap: u64 },
    /// Bursty two-state Markov-modulated Poisson process: the stream
    /// alternates between a calm phase (mean gap `calm_gap`) and a burst
    /// phase (mean gap `burst_gap`), with exponentially distributed phase
    /// dwell times (means `calm_dwell` / `burst_dwell` cycles). Phase
    /// changes take effect at arrival generation points — the standard
    /// discrete approximation of an MMPP.
    Mmpp {
        calm_gap: u64,
        burst_gap: u64,
        calm_dwell: u64,
        burst_dwell: u64,
    },
}

impl ArrivalProcess {
    /// Mean inter-arrival gap of the long-run stream, for offered-load
    /// labels: Poisson's `mean_gap`, or the dwell-weighted harmonic mix of
    /// the two MMPP phases.
    pub fn mean_gap(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => mean_gap as f64,
            ArrivalProcess::Mmpp { calm_gap, burst_gap, calm_dwell, burst_dwell } => {
                // Arrivals per cycle: time-weighted average of phase rates.
                let total = (calm_dwell + burst_dwell) as f64;
                let rate = (calm_dwell as f64 / calm_gap as f64
                    + burst_dwell as f64 / burst_gap as f64)
                    / total;
                1.0 / rate
            }
        }
    }

    fn validate(&self) {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => {
                assert!(mean_gap >= 1, "Poisson mean gap must be >= 1 cycle")
            }
            ArrivalProcess::Mmpp { calm_gap, burst_gap, calm_dwell, burst_dwell } => {
                assert!(
                    calm_gap >= 1 && burst_gap >= 1 && calm_dwell >= 1 && burst_dwell >= 1,
                    "MMPP gaps and dwells must be >= 1 cycle"
                )
            }
        }
    }
}

/// Sample an exponential gap with the given mean, in cycles.
///
/// Von Neumann's algorithm: draw a candidate fractional part `T`, then
/// count the length `n` of the strictly decreasing run it starts
/// (`T ≥ V₁ ≥ …`). An odd run length accepts `j + T` where `j` counts
/// prior rejections; an even one rejects and increments the integer part.
/// The accepted value is Exp(1); scaling by `mean` happens in `u128`
/// fixed-point (`T` is a 0.64 fraction), so the result is exact integer
/// math end to end.
pub fn exp_gap(rng: &mut SplitMix64, mean: u64) -> u64 {
    let mut j: u64 = 0;
    loop {
        let t = rng.next_u64();
        let mut prev = t;
        let mut n: u64 = 1;
        loop {
            let v = rng.next_u64();
            if v > prev {
                break;
            }
            prev = v;
            n += 1;
        }
        if n % 2 == 1 {
            let frac = ((t as u128 * mean as u128) >> 64) as u64;
            return j.saturating_mul(mean).saturating_add(frac);
        }
        j += 1;
    }
}

/// A seeded arrival-timestamp generator for one core's request stream.
/// Yields a nondecreasing sequence of absolute cycles.
#[derive(Clone, Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SplitMix64,
    /// Timestamp of the most recently generated arrival.
    clock: Cycle,
    /// MMPP phase: currently in the burst phase?
    burst: bool,
    /// Cycle at which the current MMPP phase ends.
    phase_until: Cycle,
}

impl ArrivalGen {
    /// Build the generator for stream `stream` (normally the core index)
    /// of a run with top-level seed `seed`. The RNG comes from the shared
    /// [`SplitMix64::domain_stream`] scheme — see [`ARRIVAL_DOMAIN`].
    pub fn new(process: ArrivalProcess, seed: u64, stream: u64) -> Self {
        process.validate();
        let mut rng = SplitMix64::domain_stream(seed, ARRIVAL_DOMAIN, stream);
        let (burst, phase_until) = match process {
            ArrivalProcess::Poisson { .. } => (false, 0),
            // Every stream starts calm; the first dwell is sampled so
            // streams don't burst in lockstep.
            ArrivalProcess::Mmpp { calm_dwell, .. } => (false, exp_gap(&mut rng, calm_dwell)),
        };
        ArrivalGen { process, rng, clock: 0, burst, phase_until }
    }

    /// The next arrival timestamp (absolute cycle).
    pub fn next_arrival(&mut self) -> Cycle {
        let gap = match self.process {
            ArrivalProcess::Poisson { mean_gap } => exp_gap(&mut self.rng, mean_gap),
            ArrivalProcess::Mmpp { calm_gap, burst_gap, calm_dwell, burst_dwell } => {
                // Advance phases that expired before this generation point.
                while self.clock >= self.phase_until {
                    self.burst = !self.burst;
                    let dwell = if self.burst { burst_dwell } else { calm_dwell };
                    self.phase_until =
                        self.phase_until.saturating_add(exp_gap(&mut self.rng, dwell).max(1));
                }
                let gap = if self.burst { burst_gap } else { calm_gap };
                exp_gap(&mut self.rng, gap)
            }
        };
        self.clock = self.clock.saturating_add(gap);
        self.clock
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.mark("arrival-gen");
        self.rng.save_state(w);
        w.u64(self.clock);
        w.bool(self.burst);
        w.u64(self.phase_until);
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect("arrival-gen")?;
        self.rng.load_state(r)?;
        self.clock = r.u64()?;
        self.burst = r.bool()?;
        self.phase_until = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_gap_mean_is_close() {
        let mut rng = SplitMix64::new(7);
        let mean = 1_000u64;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| exp_gap(&mut rng, mean)).sum();
        let avg = sum as f64 / n as f64;
        assert!(
            (avg - mean as f64).abs() < 0.03 * mean as f64,
            "sample mean {avg} too far from {mean}"
        );
    }

    #[test]
    fn exp_gap_is_deterministic() {
        let xs: Vec<u64> = {
            let mut r = SplitMix64::new(99);
            (0..64).map(|_| exp_gap(&mut r, 500)).collect()
        };
        let ys: Vec<u64> = {
            let mut r = SplitMix64::new(99);
            (0..64).map(|_| exp_gap(&mut r, 500)).collect()
        };
        assert_eq!(xs, ys);
    }

    #[test]
    fn exp_gap_tail_is_heavier_than_uniform() {
        // An exponential with mean 100 should produce samples beyond 3×
        // the mean (P ≈ e⁻³ ≈ 5%) — a smoke test that we are not
        // accidentally sampling a bounded distribution.
        let mut rng = SplitMix64::new(3);
        let big = (0..10_000).filter(|_| exp_gap(&mut rng, 100) > 300).count();
        assert!((200..=1200).contains(&big), "tail count {big}");
    }

    #[test]
    fn arrivals_are_nondecreasing_and_reproducible() {
        let gen = |seed, stream| -> Vec<Cycle> {
            let mut g = ArrivalGen::new(ArrivalProcess::Poisson { mean_gap: 200 }, seed, stream);
            (0..100).map(|_| g.next_arrival()).collect()
        };
        let a = gen(42, 0);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a, gen(42, 0));
        assert_ne!(a, gen(42, 1), "streams are independent per core");
        assert_ne!(a, gen(43, 0), "and per seed");
    }

    #[test]
    fn mmpp_bursts_change_local_rate() {
        let p = ArrivalProcess::Mmpp {
            calm_gap: 1_000,
            burst_gap: 10,
            calm_dwell: 20_000,
            burst_dwell: 20_000,
        };
        let mut g = ArrivalGen::new(p, 7, 0);
        let ts: Vec<Cycle> = (0..2_000).map(|_| g.next_arrival()).collect();
        let gaps: Vec<u64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
        let short = gaps.iter().filter(|&&g| g < 100).count();
        let long = gaps.iter().filter(|&&g| g >= 100).count();
        assert!(short > 100, "burst phase should yield many short gaps, got {short}");
        assert!(long > 10, "calm phase should yield long gaps, got {long}");
        // Long-run mean-gap label stays finite and between the two rates.
        let m = p.mean_gap();
        assert!(m > 10.0 && m < 1_000.0, "{m}");
    }

    #[test]
    fn generator_checkpoint_roundtrips_mid_stream() {
        let p = ArrivalProcess::Mmpp {
            calm_gap: 300,
            burst_gap: 30,
            calm_dwell: 5_000,
            burst_dwell: 2_000,
        };
        let mut a = ArrivalGen::new(p, 11, 3);
        for _ in 0..57 {
            a.next_arrival();
        }
        let mut w = SnapWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = ArrivalGen::new(p, 999, 0); // wrong seed: state must fully restore
        let mut r = SnapReader::new(&bytes);
        b.load_state(&mut r).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }
}
