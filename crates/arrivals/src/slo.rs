//! End-of-run SLO report.
//!
//! [`publish`] inspects the live stats registry for service histograms and,
//! when (and only when) an open-loop workload ran, adds an `slo.*` family
//! of counters to the dump:
//!
//! | key | meaning |
//! |-----|---------|
//! | `slo.p50` / `slo.p90` / `slo.p99` / `slo.p999` | interpolated quantiles of `service.total_latency_cycles` |
//! | `slo.dropped` | requests rejected by full backlogs |
//! | `slo.backlogged` | requests arrived but neither completed nor dropped when the run ended |
//! | `slo.saturated` | 1 when the run was past the knee (see [`is_saturated`]) |
//! | `slo.t{k}.p99` / `slo.t{k}.p999` | per-tenant total-latency tails |
//!
//! Closed-loop runs register no `service.*` stats, so `publish` is a no-op
//! for them and the committed golden dump stays byte-identical.

use glocks_stats::StatsDump;

/// Saturation threshold: mean queue wait exceeding this multiple of the
/// mean service time flags the run as past the knee. In an M/M/1 queue
/// mean wait = ρ/(1−ρ) service times, so a factor of 8 corresponds to
/// utilization ρ ≈ 0.89 — comfortably past the hockey-stick bend but
/// before latencies diverge to the horizon.
pub const SATURATION_WAIT_FACTOR: f64 = 8.0;

/// The saturation predicate, shared by [`publish`] and the harness sweep:
/// a run is saturated when requests were dropped, when requests were still
/// backlogged at the end, or when the mean queue wait exceeds
/// [`SATURATION_WAIT_FACTOR`] × the mean service time.
pub fn is_saturated(
    dropped: u64,
    backlogged: u64,
    mean_queue_wait: f64,
    mean_service: f64,
) -> bool {
    dropped > 0
        || backlogged > 0
        || mean_queue_wait > SATURATION_WAIT_FACTOR * mean_service.max(1.0)
}

/// Compute the SLO figures from a dump's service stats. Returns `None`
/// when the dump has no service histograms (a closed-loop run).
pub fn report(dump: &StatsDump) -> Option<Vec<(String, u64)>> {
    let total = dump.hists.get("service.total_latency_cycles")?;
    let queue = dump.hists.get("service.queue_wait_cycles");
    let arrivals = dump.counters.get("service.arrivals").copied().unwrap_or(0);
    let completed = dump.counters.get("service.completed").copied().unwrap_or(0);
    let dropped = dump.counters.get("service.dropped").copied().unwrap_or(0);
    let backlogged = arrivals.saturating_sub(completed).saturating_sub(dropped);

    let mean_queue = queue.map_or(0.0, |h| h.mean());
    // Mean time actually being served = total latency minus queue wait.
    let mean_service = (total.mean() - mean_queue).max(0.0);
    let saturated = is_saturated(dropped, backlogged, mean_queue, mean_service);

    let mut out = vec![
        ("slo.p50".to_string(), total.quantile(0.50)),
        ("slo.p90".to_string(), total.quantile(0.90)),
        ("slo.p99".to_string(), total.quantile(0.99)),
        ("slo.p999".to_string(), total.quantile(0.999)),
        ("slo.dropped".to_string(), dropped),
        ("slo.backlogged".to_string(), backlogged),
        ("slo.saturated".to_string(), u64::from(saturated)),
    ];
    // Per-tenant tails, for multi-tenant interference rows.
    for (name, h) in &dump.hists {
        let Some(rest) = name.strip_prefix("service.t") else { continue };
        let Some(tenant) = rest.strip_suffix(".total_latency_cycles") else { continue };
        if tenant.is_empty() || !tenant.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        out.push((format!("slo.t{tenant}.p99"), h.quantile(0.99)));
        out.push((format!("slo.t{tenant}.p999"), h.quantile(0.999)));
    }
    Some(out)
}

/// Publish the SLO counters into the live registry (no-op when stats are
/// off or no service workload ran). The runner calls this right before
/// taking the final snapshot.
pub fn publish() {
    if !glocks_stats::is_enabled() {
        return;
    }
    let dump = glocks_stats::snapshot();
    let Some(figures) = report(&dump) else { return };
    for (name, v) in figures {
        glocks_stats::set(glocks_stats::counter(&name), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_is_noop_without_service_stats() {
        glocks_stats::enable(glocks_stats::StatsConfig::default());
        glocks_stats::add(glocks_stats::counter("sim.cycles"), 100);
        publish();
        let d = glocks_stats::snapshot();
        assert!(
            d.counters.keys().all(|k| !k.starts_with("slo.")),
            "closed-loop dumps must stay slo-free: {:?}",
            d.counters.keys().collect::<Vec<_>>()
        );
        glocks_stats::disable();
    }

    #[test]
    fn publish_emits_slo_family_for_service_runs() {
        glocks_stats::enable(glocks_stats::StatsConfig::default());
        let ht = glocks_stats::hist("service.total_latency_cycles");
        let hq = glocks_stats::hist("service.queue_wait_cycles");
        let h0 = glocks_stats::hist("service.t0.total_latency_cycles");
        for v in [40u64, 44, 60, 200] {
            glocks_stats::hist_record(ht, v);
            glocks_stats::hist_record(h0, v);
        }
        for v in [2u64, 3, 4, 100] {
            glocks_stats::hist_record(hq, v);
        }
        glocks_stats::set(glocks_stats::counter("service.arrivals"), 5);
        glocks_stats::set(glocks_stats::counter("service.completed"), 4);
        glocks_stats::set(glocks_stats::counter("service.dropped"), 1);
        publish();
        let d = glocks_stats::snapshot();
        for k in ["slo.p50", "slo.p90", "slo.p99", "slo.p999", "slo.t0.p99", "slo.t0.p999"] {
            assert!(d.counters.contains_key(k), "missing {k}");
        }
        assert_eq!(d.counters["slo.dropped"], 1);
        assert_eq!(d.counters["slo.backlogged"], 0);
        assert_eq!(d.counters["slo.saturated"], 1, "drops imply saturation");
        assert!(d.counters["slo.p999"] >= d.counters["slo.p50"]);
        glocks_stats::disable();
    }

    #[test]
    fn saturation_predicate_matches_definition() {
        assert!(is_saturated(1, 0, 0.0, 100.0), "drops saturate");
        assert!(is_saturated(0, 3, 0.0, 100.0), "leftover backlog saturates");
        assert!(!is_saturated(0, 0, 100.0, 100.0), "short waits are healthy");
        assert!(is_saturated(0, 0, 1_000.0, 100.0), "long waits saturate");
        assert!(
            is_saturated(0, 0, 20.0, 0.0),
            "zero measured service time clamps to 1 cycle, not divide-by-zero"
        );
    }
}
