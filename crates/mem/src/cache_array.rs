//! A generic set-associative cache array with true-LRU replacement.
//!
//! Used twice: as the L1 tag/state array (state = MESI state) and as the L2
//! slice's data-presence array (state = `()`, timing only).

use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::LineAddr;

#[derive(Clone, Debug)]
struct Way<S> {
    line: LineAddr,
    state: S,
    /// Monotone use-stamp; the smallest stamp in a set is the LRU victim.
    stamp: u64,
}

/// Set-associative, true-LRU cache array.
#[derive(Clone, Debug)]
pub struct CacheArray<S> {
    sets: Vec<Vec<Way<S>>>,
    ways: usize,
    clock: u64,
}

impl<S> CacheArray<S> {
    pub fn new(n_sets: usize, ways: usize) -> Self {
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways >= 1);
        CacheArray {
            sets: (0..n_sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            clock: 0,
        }
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets.len() - 1)
    }

    /// Look up a line without touching LRU state.
    pub fn peek(&self, line: LineAddr) -> Option<&S> {
        let set = &self.sets[self.set_index(line)];
        set.iter().find(|w| w.line == line).map(|w| &w.state)
    }

    /// Look up a line and mark it most-recently-used.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut S> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        set.iter_mut().find(|w| w.line == line).map(|w| {
            w.stamp = clock;
            &mut w.state
        })
    }

    /// Insert a line (must not already be present), evicting the LRU way if
    /// the set is full. Returns the evicted `(line, state)` if any.
    pub fn insert(&mut self, line: LineAddr, state: S) -> Option<(LineAddr, S)> {
        debug_assert!(self.peek(line).is_none(), "inserting a present line");
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        let evicted = if set.len() == ways {
            let (vi, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .expect("full set is non-empty");
            let v = set.swap_remove(vi);
            Some((v.line, v.state))
        } else {
            None
        };
        set.push(Way { line, state, stamp: clock });
        evicted
    }

    /// Remove a line, returning its state if present.
    pub fn remove(&mut self, line: LineAddr) -> Option<S> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        set.iter()
            .position(|w| w.line == line)
            .map(|i| set.swap_remove(i).state)
    }

    /// Number of resident lines.
    pub fn population(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Iterate over all resident lines and their states.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &S)> {
        self.sets.iter().flatten().map(|w| (w.line, &w.state))
    }

    /// Serialize resident lines with their LRU stamps (set membership and
    /// within-set order are part of the replacement behavior).
    pub fn save_state(&self, w: &mut SnapWriter, save_way: &mut dyn FnMut(&mut SnapWriter, &S)) {
        w.u64(self.clock);
        w.usize(self.sets.len());
        for set in &self.sets {
            w.usize(set.len());
            for way in set {
                w.u64(way.line.0);
                w.u64(way.stamp);
                save_way(w, &way.state);
            }
        }
    }

    pub fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        load_way: &mut dyn FnMut(&mut SnapReader<'_>) -> Result<S, SnapError>,
    ) -> Result<(), SnapError> {
        self.clock = r.u64()?;
        if r.usize()? != self.sets.len() {
            return Err(SnapError::Corrupt { what: "cache array set count" });
        }
        for set in &mut self.sets {
            let n = r.usize()?;
            if n > self.ways {
                return Err(SnapError::Corrupt { what: "cache array way count" });
            }
            set.clear();
            for _ in 0..n {
                let line = LineAddr(r.u64()?);
                let stamp = r.u64()?;
                let state = load_way(r)?;
                set.push(Way { line, state, stamp });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> CacheArray<u32> {
        CacheArray::new(4, 2)
    }

    #[test]
    fn insert_and_lookup() {
        let mut a = arr();
        assert!(a.insert(LineAddr(0), 10).is_none());
        assert_eq!(a.lookup(LineAddr(0)), Some(&mut 10));
        assert_eq!(a.lookup(LineAddr(4)), None);
        assert_eq!(a.population(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut a = arr();
        // lines 0, 4, 8 all map to set 0 (4 sets)
        a.insert(LineAddr(0), 1);
        a.insert(LineAddr(4), 2);
        // touch 0 so 4 becomes LRU
        a.lookup(LineAddr(0));
        let ev = a.insert(LineAddr(8), 3);
        assert_eq!(ev, Some((LineAddr(4), 2)));
        assert!(a.peek(LineAddr(0)).is_some());
        assert!(a.peek(LineAddr(8)).is_some());
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut a = arr();
        for i in 0..4 {
            assert!(a.insert(LineAddr(i), i as u32).is_none());
        }
        assert_eq!(a.population(), 4);
    }

    #[test]
    fn remove_returns_state() {
        let mut a = arr();
        a.insert(LineAddr(3), 9);
        assert_eq!(a.remove(LineAddr(3)), Some(9));
        assert_eq!(a.remove(LineAddr(3)), None);
        assert_eq!(a.population(), 0);
    }

    #[test]
    fn peek_does_not_perturb_lru() {
        let mut a = arr();
        a.insert(LineAddr(0), 1);
        a.insert(LineAddr(4), 2);
        // peek(0) must NOT protect 0: line 0 stays LRU and is evicted
        assert!(a.peek(LineAddr(0)).is_some());
        let ev = a.insert(LineAddr(8), 3);
        assert_eq!(ev, Some((LineAddr(0), 1)));
    }

    #[test]
    fn iter_sees_all_lines() {
        let mut a = arr();
        a.insert(LineAddr(1), 11);
        a.insert(LineAddr(2), 22);
        let mut got: Vec<_> = a.iter().map(|(l, &s)| (l.0, s)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 11), (2, 22)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = CacheArray::<()>::new(3, 1);
    }
}
