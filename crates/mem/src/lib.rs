//! The simulated memory hierarchy: per-core L1 data caches, a distributed
//! shared L2, and a blocking full-map MESI directory protocol over the mesh
//! NoC — the substrate the paper's Sim-PowerCMP provides.
//!
//! # Protocol overview
//!
//! Each cache line has a *home* tile (line-interleaved). The home tile's
//! directory controller serializes all transactions on a line: while a
//! transaction is in flight the line is *busy* and later requests queue at
//! the home. Cores are in-order with blocking caches (one outstanding miss
//! per core), matching Table II's "in-order 2-way model".
//!
//! Directory state is held in an unbounded map (a "perfect" full-map
//! directory), while the L2 *data array* is modeled as a real
//! set-associative array for timing: a directory-satisfied fetch that
//! misses in the L2 array pays the 400-cycle memory latency. This standard
//! decoupling (correctness in the directory map, timing in the array)
//! avoids back-invalidation complexity without changing any of the traffic
//! or latency effects the paper measures.
//!
//! All data responses flow through the home tile (a 4-hop protocol):
//! cache-to-cache transfers appear as `WbData` messages from the previous
//! owner to the home, which the paper's Figure 9 counts in its *Coherence*
//! category.
//!
//! # Values
//!
//! Memory values are held word-granular in one authoritative
//! [`store::WordStore`], read/written at the commit point of each memory
//! operation. Because the protocol is invalidation-based, a cached copy is
//! never stale, so commit-time reads return exactly the coherent value
//! while timing comes entirely from the protocol simulation.

pub mod cache_array;
pub mod events;
pub mod l1;
pub mod dir;
pub mod mplock;
pub mod msg;
pub mod store;
pub mod subsystem;

pub use msg::{CoherenceMsg, MemOp, MemResult, MpLockMsg, RmwKind, SysMsg};
pub use subsystem::{MemDiag, MemorySystem};
