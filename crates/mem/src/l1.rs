//! The per-core L1 data-cache controller.
//!
//! Blocking (one outstanding miss, matching the in-order core), write
//! allocate, with a MESI state per resident line. Dirty/exclusive evictions
//! use a writeback handshake (`PutM`/`PutE` → `PutAck`) through a writeback
//! buffer, so a forwarded probe that races an eviction always finds the
//! line either in the array or in the buffer — the protocol has no Nacks.

use crate::cache_array::CacheArray;
use crate::events::EventQueue;
use crate::msg::{CoherenceMsg, MemOp, MemResult, SysMsg};
use crate::store::WordStore;
use glocks_noc::{MeshNoc, Packet};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::stats::CounterSet;
use glocks_sim_base::trace::TraceMask;
use glocks_sim_base::{trace_event, CmpConfig, CoreId, Cycle, LineAddr, TileId};

/// MESI state of a resident L1 line (absent = Invalid).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L1State {
    Shared,
    Exclusive,
    Modified,
}

impl L1State {
    fn save_state(self, w: &mut SnapWriter) {
        w.u8(match self {
            L1State::Shared => 0,
            L1State::Exclusive => 1,
            L1State::Modified => 2,
        });
    }

    fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => L1State::Shared,
            1 => L1State::Exclusive,
            2 => L1State::Modified,
            tag => return Err(SnapError::BadTag { what: "l1 mesi state", tag: u64::from(tag) }),
        })
    }
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    op: MemOp,
    line: LineAddr,
    /// We held the line in S and asked for an upgrade.
    is_upgrade: bool,
    /// The line is still in the writeback buffer; the request is deferred
    /// until its `PutAck` arrives.
    stalled_on_wb: bool,
}

enum L1Event {
    /// Tag/data access completes; decide hit or miss.
    Access(MemOp),
}

/// One L1 data cache + controller.
pub struct L1Cache {
    core: CoreId,
    array: CacheArray<L1State>,
    pending: Option<Pending>,
    /// Lines evicted from the array, awaiting `PutAck`.
    wb: Vec<LineAddr>,
    events: EventQueue<L1Event>,
    done: Option<MemResult>,
    counters: CounterSet,
    /// Submit cycle of the in-flight op, for the miss-latency histogram.
    submitted_at: Option<Cycle>,
    /// `mem.l1.t{N}.miss_latency` (free `NONE` id when stats are off).
    miss_hist: glocks_stats::HistId,
    l1_latency: u64,
    line_bytes: u64,
    num_tiles: usize,
    ctrl_bytes: u32,
    data_bytes: u32,
}

impl L1Cache {
    pub fn new(core: CoreId, cfg: &CmpConfig) -> Self {
        L1Cache {
            core,
            array: CacheArray::new(cfg.l1.sets(cfg.line_bytes), cfg.l1.ways as usize),
            pending: None,
            wb: Vec::new(),
            events: EventQueue::new(),
            done: None,
            counters: CounterSet::default(),
            submitted_at: None,
            miss_hist: glocks_stats::hist(&format!("mem.l1.t{}.miss_latency", core.0)),
            l1_latency: cfg.l1.total_latency(),
            line_bytes: cfg.line_bytes,
            num_tiles: cfg.num_cores,
            ctrl_bytes: cfg.noc.ctrl_msg_bytes,
            data_bytes: cfg.noc.data_msg_bytes,
        }
    }

    /// The home tile of a line (line-interleaved across tiles).
    #[inline]
    fn home(&self, line: LineAddr) -> TileId {
        TileId((line.0 % self.num_tiles as u64) as u16)
    }

    /// True while an operation is in flight or its result not yet taken.
    pub fn busy(&self) -> bool {
        self.pending.is_some() || self.done.is_some() || !self.events.is_empty()
    }

    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Begin a memory operation. Panics if one is already outstanding
    /// (cores are in-order and blocking).
    pub fn submit(&mut self, op: MemOp, now: Cycle) {
        assert!(!self.busy(), "core {} submitted while L1 busy", self.core);
        self.counters.add("l1_access", 1);
        self.submitted_at = Some(now);
        self.events.schedule(now + self.l1_latency, L1Event::Access(op));
    }

    /// Retrieve the completion of the last submitted operation, if ready.
    pub fn take_result(&mut self) -> Option<MemResult> {
        self.done.take()
    }

    fn send(
        &mut self,
        msg: CoherenceMsg,
        dst: TileId,
        now: Cycle,
        net: &mut MeshNoc<SysMsg>,
    ) {
        let bytes = if msg.carries_data() { self.data_bytes } else { self.ctrl_bytes };
        net.inject(
            Packet {
                src: TileId(self.core.0),
                dst,
                bytes,
                class: msg.traffic_class(),
                injected_at: now,
                payload: SysMsg::Coh(msg),
            },
            now,
        );
    }

    fn commit(&mut self, op: MemOp, now: Cycle, store: &mut WordStore, l1_hit: bool) {
        let value = match op {
            MemOp::Load(a) => store.load(a),
            MemOp::Store(a, v) => {
                store.store(a, v);
                0
            }
            MemOp::Rmw(a, kind) => {
                let (new, old) = kind.apply(store.load(a));
                store.store(a, new);
                old
            }
        };
        debug_assert!(self.done.is_none());
        if let Some(at) = self.submitted_at.take() {
            if !l1_hit {
                glocks_stats::hist_record(self.miss_hist, now.saturating_sub(at));
            }
        }
        self.done = Some(MemResult { op, value, finished_at: now, l1_hit });
    }

    fn issue_request(&mut self, now: Cycle, net: &mut MeshNoc<SysMsg>) {
        let p = self.pending.expect("pending request to issue");
        trace_event!(
            TraceMask::L1,
            now,
            "l1[{}]: miss on {:?} ({:?}), requesting",
            self.core,
            p.line,
            p.op
        );
        let msg = if p.is_upgrade {
            CoherenceMsg::UpgradeM { line: p.line, from: self.core }
        } else if p.op.needs_exclusive() {
            CoherenceMsg::GetM { line: p.line, from: self.core }
        } else {
            CoherenceMsg::GetS { line: p.line, from: self.core }
        };
        let home = self.home(p.line);
        self.send(msg, home, now, net);
    }

    /// Process due internal events (the tag-access pipeline).
    pub fn tick(&mut self, now: Cycle, store: &mut WordStore, net: &mut MeshNoc<SysMsg>) {
        while let Some((at, ev)) = self.events.pop_due(now) {
            match ev {
                L1Event::Access(op) => self.access(op, at, store, net),
            }
        }
    }

    fn access(
        &mut self,
        op: MemOp,
        now: Cycle,
        store: &mut WordStore,
        net: &mut MeshNoc<SysMsg>,
    ) {
        let line = op.addr().line(self.line_bytes);
        match self.array.lookup(line).copied() {
            Some(L1State::Modified) => {
                self.counters.add("l1_hit", 1);
                self.commit(op, now, store, true);
            }
            Some(L1State::Exclusive) => {
                self.counters.add("l1_hit", 1);
                if op.needs_exclusive() {
                    // Silent E→M upgrade: the hallmark of MESI.
                    *self.array.lookup(line).expect("resident") = L1State::Modified;
                }
                self.commit(op, now, store, true);
            }
            Some(L1State::Shared) => {
                if op.needs_exclusive() {
                    self.counters.add("l1_upgrade", 1);
                    self.pending = Some(Pending {
                        op,
                        line,
                        is_upgrade: true,
                        stalled_on_wb: false,
                    });
                    self.issue_request(now, net);
                } else {
                    self.counters.add("l1_hit", 1);
                    self.commit(op, now, store, true);
                }
            }
            None => {
                self.counters.add("l1_miss", 1);
                let stalled = self.wb.contains(&line);
                self.pending = Some(Pending {
                    op,
                    line,
                    is_upgrade: false,
                    stalled_on_wb: stalled,
                });
                if !stalled {
                    self.issue_request(now, net);
                }
            }
        }
    }

    /// Install a line granted by the directory, handling victim eviction.
    fn install(
        &mut self,
        line: LineAddr,
        state: L1State,
        now: Cycle,
        net: &mut MeshNoc<SysMsg>,
    ) {
        self.counters.add("l1_fill", 1);
        if let Some((vline, vstate)) = self.array.insert(line, state) {
            match vstate {
                L1State::Modified => {
                    self.counters.add("l1_wb_dirty", 1);
                    self.wb.push(vline);
                    let home = self.home(vline);
                    self.send(CoherenceMsg::PutM { line: vline, from: self.core }, home, now, net);
                }
                L1State::Exclusive => {
                    self.counters.add("l1_wb_clean", 1);
                    self.wb.push(vline);
                    let home = self.home(vline);
                    self.send(CoherenceMsg::PutE { line: vline, from: self.core }, home, now, net);
                }
                L1State::Shared => {
                    // Silent: the directory tolerates stale sharer bits.
                    self.counters.add("l1_evict_shared", 1);
                }
            }
        }
    }

    /// Handle a protocol message addressed to this L1.
    pub fn handle_msg(
        &mut self,
        msg: CoherenceMsg,
        now: Cycle,
        store: &mut WordStore,
        net: &mut MeshNoc<SysMsg>,
    ) {
        let line = msg.line();
        match msg {
            CoherenceMsg::DataS { .. } | CoherenceMsg::DataE { .. } | CoherenceMsg::DataM { .. } => {
                let state = match msg {
                    CoherenceMsg::DataS { .. } => L1State::Shared,
                    CoherenceMsg::DataE { .. } => L1State::Exclusive,
                    _ => L1State::Modified,
                };
                let p = self
                    .pending
                    .take()
                    .expect("data grant without a pending request");
                debug_assert_eq!(p.line, line, "grant for the wrong line");
                // A raced upgrade can come back as full data; if the Inv
                // already removed our S copy, the line is absent and we
                // install fresh. If we still hold S (directory chose to send
                // data anyway), replace the state in place.
                if self.array.peek(line).is_some() {
                    *self.array.lookup(line).expect("resident") = state;
                    self.counters.add("l1_access", 1);
                } else {
                    self.install(line, state, now, net);
                }
                let state_after = if p.op.needs_exclusive() {
                    L1State::Modified
                } else {
                    state
                };
                *self.array.lookup(line).expect("just installed") = state_after;
                self.commit(p.op, now, store, false);
            }
            CoherenceMsg::GrantM { .. } => {
                let p = self
                    .pending
                    .take()
                    .expect("GrantM without a pending upgrade");
                debug_assert!(p.is_upgrade);
                debug_assert_eq!(p.line, line);
                let s = self
                    .array
                    .lookup(line)
                    .expect("GrantM implies the S copy survived");
                *s = L1State::Modified;
                self.commit(p.op, now, store, false);
            }
            CoherenceMsg::Inv { .. } => {
                trace_event!(TraceMask::L1, now, "l1[{}]: Inv {line:?}", self.core);
                self.counters.add("l1_inv_recv", 1);
                // May be absent (stale sharer bit after a silent S evict).
                self.array.remove(line);
                let home = self.home(line);
                self.send(CoherenceMsg::InvAck { line, from: self.core }, home, now, net);
            }
            CoherenceMsg::FwdGetS { .. } => {
                self.counters.add("l1_fwd_recv", 1);
                if let Some(s) = self.array.lookup(line) {
                    *s = L1State::Shared;
                } else {
                    debug_assert!(
                        self.wb.contains(&line),
                        "FwdGetS for a line neither resident nor in WB"
                    );
                }
                let home = self.home(line);
                self.send(CoherenceMsg::WbData { line, from: self.core }, home, now, net);
            }
            CoherenceMsg::FwdGetM { .. } => {
                self.counters.add("l1_fwd_recv", 1);
                if self.array.remove(line).is_none() {
                    debug_assert!(
                        self.wb.contains(&line),
                        "FwdGetM for a line neither resident nor in WB"
                    );
                }
                let home = self.home(line);
                self.send(CoherenceMsg::WbData { line, from: self.core }, home, now, net);
            }
            CoherenceMsg::PutAck { .. } => {
                if let Some(i) = self.wb.iter().position(|&l| l == line) {
                    self.wb.swap_remove(i);
                }
                // A deferred miss on the same line can now be issued.
                if let Some(p) = self.pending.as_mut() {
                    if p.stalled_on_wb && p.line == line {
                        p.stalled_on_wb = false;
                        self.issue_request(now, net);
                    }
                }
            }
            other => unreachable!("L1 received a directory-bound message: {other:?}"),
        }
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.mark("l1");
        self.array.save_state(w, &mut |w, &s| s.save_state(w));
        match &self.pending {
            None => w.bool(false),
            Some(p) => {
                w.bool(true);
                p.op.save_state(w);
                w.u64(p.line.0);
                w.bool(p.is_upgrade);
                w.bool(p.stalled_on_wb);
            }
        }
        w.seq(&self.wb, |w, l| w.u64(l.0));
        self.events.save_state(w, &mut |w, L1Event::Access(op)| op.save_state(w));
        match &self.done {
            None => w.bool(false),
            Some(res) => {
                w.bool(true);
                res.save_state(w);
            }
        }
        self.counters.save_state(w);
        w.opt_u64(self.submitted_at);
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect("l1")?;
        self.array.load_state(r, &mut L1State::load_state)?;
        self.pending = if r.bool()? {
            Some(Pending {
                op: MemOp::load_state(r)?,
                line: LineAddr(r.u64()?),
                is_upgrade: r.bool()?,
                stalled_on_wb: r.bool()?,
            })
        } else {
            None
        };
        self.wb = r.seq(|r| Ok(LineAddr(r.u64()?)))?;
        self.events
            .load_state(r, &mut |r| Ok(L1Event::Access(MemOp::load_state(r)?)))?;
        self.done = if r.bool()? { Some(MemResult::load_state(r)?) } else { None };
        self.counters.load_state(r)?;
        self.submitted_at = r.opt_u64()?;
        Ok(())
    }

    /// The MESI state this L1 currently holds for `line` (tests/invariants).
    pub fn state_of(&self, line: LineAddr) -> Option<L1State> {
        self.array.peek(line).copied()
    }

    /// Lines awaiting PutAck (tests/invariants).
    pub fn wb_lines(&self) -> &[LineAddr] {
        &self.wb
    }

    /// All lines currently resident in the array (tests/invariants).
    pub fn resident_lines(&self) -> Vec<LineAddr> {
        self.array.iter().map(|(l, _)| l).collect()
    }
}
