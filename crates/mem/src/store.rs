//! The authoritative functional value store.
//!
//! Values are word-granular (8 bytes). Cached copies in the protocol
//! simulation are never stale (the protocol is invalidation-based), so
//! reading the store at an operation's commit point yields exactly the
//! value a real coherent machine would return, while all timing comes from
//! the protocol model.

use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::Addr;
use std::collections::HashMap;

/// Word-addressed backing store; absent words read as zero.
#[derive(Clone, Debug, Default)]
pub struct WordStore {
    words: HashMap<u64, u64>,
}

impl WordStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the 8-byte word containing `addr`.
    pub fn load(&self, addr: Addr) -> u64 {
        self.words.get(&addr.word().0).copied().unwrap_or(0)
    }

    /// Write the 8-byte word containing `addr`.
    pub fn store(&mut self, addr: Addr, value: u64) {
        if value == 0 {
            // Keep the map sparse; absent means zero.
            self.words.remove(&addr.word().0);
        } else {
            self.words.insert(addr.word().0, value);
        }
    }

    /// Number of non-zero words (used by tests).
    pub fn population(&self) -> usize {
        self.words.len()
    }

    /// Iterate over all non-zero words as `(word_address, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.words.iter().map(|(&a, &v)| (Addr(a), v))
    }

    /// Serialize in sorted word-address order (the map is unordered).
    pub fn save_state(&self, w: &mut SnapWriter) {
        let mut words: Vec<(u64, u64)> = self.words.iter().map(|(&a, &v)| (a, v)).collect();
        words.sort_unstable();
        w.usize(words.len());
        for (a, v) in words {
            w.u64(a);
            w.u64(v);
        }
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        self.words.clear();
        for _ in 0..n {
            let a = r.u64()?;
            let v = r.u64()?;
            self.words.insert(a, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        let s = WordStore::new();
        assert_eq!(s.load(Addr(0)), 0);
        assert_eq!(s.load(Addr(123456)), 0);
    }

    #[test]
    fn store_then_load() {
        let mut s = WordStore::new();
        s.store(Addr(64), 7);
        assert_eq!(s.load(Addr(64)), 7);
        // same word through an unaligned address
        assert_eq!(s.load(Addr(67)), 7);
        // different word
        assert_eq!(s.load(Addr(72)), 0);
    }

    #[test]
    fn iter_enumerates_nonzero_words() {
        let mut s = WordStore::new();
        s.store(Addr(8), 1);
        s.store(Addr(64), 2);
        s.store(Addr(128), 0);
        let mut got: Vec<_> = s.iter().map(|(a, v)| (a.0, v)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(8, 1), (64, 2)]);
    }

    #[test]
    fn storing_zero_erases() {
        let mut s = WordStore::new();
        s.store(Addr(8), 5);
        assert_eq!(s.population(), 1);
        s.store(Addr(8), 0);
        assert_eq!(s.population(), 0);
        assert_eq!(s.load(Addr(8)), 0);
    }
}
