//! Coherence protocol messages and the core-facing memory operations.

use glocks_sim_base::{Addr, CoreId, Cycle, LineAddr};
use glocks_noc::TrafficClass;

/// Atomic read-modify-write flavors — the hardware primitives the paper's
/// software lock algorithms are built from (Section II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwKind {
    /// `test&set`: write 1, return the old value.
    TestAndSet,
    /// `swap`: write the operand, return the old value.
    Swap(u64),
    /// `fetch&add`: add the operand, return the old value
    /// (`fetch&increment` is `FetchAdd(1)`).
    FetchAdd(u64),
    /// `compare&swap { expected, new }`: write `new` iff the current value
    /// equals `expected`; always returns the old value.
    CompareAndSwap { expected: u64, new: u64 },
}

impl RmwKind {
    /// Apply the RMW to a value, returning `(new_value, returned_old)`.
    pub fn apply(self, old: u64) -> (u64, u64) {
        match self {
            RmwKind::TestAndSet => (1, old),
            RmwKind::Swap(v) => (v, old),
            RmwKind::FetchAdd(d) => (old.wrapping_add(d), old),
            RmwKind::CompareAndSwap { expected, new } => {
                if old == expected {
                    (new, old)
                } else {
                    (old, old)
                }
            }
        }
    }
}

/// A memory operation issued by a core. One word (8 bytes) at a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    Load(Addr),
    Store(Addr, u64),
    Rmw(Addr, RmwKind),
}

impl MemOp {
    pub fn addr(&self) -> Addr {
        match *self {
            MemOp::Load(a) | MemOp::Store(a, _) | MemOp::Rmw(a, _) => a,
        }
    }

    /// Does this operation require exclusive (M) permission?
    pub fn needs_exclusive(&self) -> bool {
        !matches!(self, MemOp::Load(_))
    }
}

/// Completion record handed back to the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemResult {
    pub op: MemOp,
    /// Loaded value (loads) or the old value (RMWs); 0 for stores.
    pub value: u64,
    pub finished_at: Cycle,
    /// True if the op completed without leaving the L1 (an L1 hit with
    /// sufficient permissions).
    pub l1_hit: bool,
}

/// Messages of the MP-Locks message-passing lock protocol (Kuo et al.,
/// "MP-LOCKs", HPCA 1999 — the paper's related work \[14\]): lock
/// synchronization via explicit messages to per-tile kernel lock managers,
/// carried over the **main data network** (unlike GLocks' dedicated
/// G-lines).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpLockMsg {
    /// Ask the manager for the lock.
    Req { lock: u16, from: CoreId },
    /// Manager grants the lock to the destination core.
    Grant { lock: u16 },
    /// Give the lock back to the manager.
    Rel { lock: u16, from: CoreId },
}

impl MpLockMsg {
    /// Figure-9 class of this message on the shared network.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            MpLockMsg::Req { .. } => TrafficClass::Request,
            MpLockMsg::Grant { .. } => TrafficClass::Reply,
            MpLockMsg::Rel { .. } => TrafficClass::Coherence,
        }
    }
}

/// Everything the main data network carries: coherence protocol messages
/// plus (when MP-Locks are in use) lock-manager messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SysMsg {
    Coh(CoherenceMsg),
    Lock(MpLockMsg),
}

/// Messages of the directory MESI protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoherenceMsg {
    // ---- L1 → home directory (requests) ----
    /// Read miss.
    GetS { line: LineAddr, from: CoreId },
    /// Write/RMW miss (line absent at requester).
    GetM { line: LineAddr, from: CoreId },
    /// Write/RMW upgrade (requester holds the line in S).
    UpgradeM { line: LineAddr, from: CoreId },
    /// Dirty eviction writeback (carries data).
    PutM { line: LineAddr, from: CoreId },
    /// Clean-exclusive eviction notice (no data).
    PutE { line: LineAddr, from: CoreId },
    /// Response to a `Fwd*`: the previous owner's data, sent to the home
    /// (the paper's "cache-to-cache transfer").
    WbData { line: LineAddr, from: CoreId },
    /// Invalidation acknowledgment.
    InvAck { line: LineAddr, from: CoreId },

    // ---- home directory → L1 ----
    /// Data grant, shared.
    DataS { line: LineAddr },
    /// Data grant, exclusive-clean (MESI E: granted when no other copy).
    DataE { line: LineAddr },
    /// Data grant, modified permission.
    DataM { line: LineAddr },
    /// Permission-only M grant for an upgrade (requester already has data).
    GrantM { line: LineAddr },
    /// Invalidate your copy and ack to the home.
    Inv { line: LineAddr },
    /// Demote to S and send `WbData` to the home.
    FwdGetS { line: LineAddr },
    /// Invalidate and send `WbData` to the home.
    FwdGetM { line: LineAddr },
    /// Eviction handshake completion.
    PutAck { line: LineAddr },
}

impl CoherenceMsg {
    pub fn line(&self) -> LineAddr {
        match *self {
            CoherenceMsg::GetS { line, .. }
            | CoherenceMsg::GetM { line, .. }
            | CoherenceMsg::UpgradeM { line, .. }
            | CoherenceMsg::PutM { line, .. }
            | CoherenceMsg::PutE { line, .. }
            | CoherenceMsg::WbData { line, .. }
            | CoherenceMsg::InvAck { line, .. }
            | CoherenceMsg::DataS { line }
            | CoherenceMsg::DataE { line }
            | CoherenceMsg::DataM { line }
            | CoherenceMsg::GrantM { line }
            | CoherenceMsg::Inv { line }
            | CoherenceMsg::FwdGetS { line }
            | CoherenceMsg::FwdGetM { line }
            | CoherenceMsg::PutAck { line } => line,
        }
    }

    /// True for messages handled by the home directory; false for messages
    /// handled by an L1 controller.
    pub fn to_directory(&self) -> bool {
        matches!(
            self,
            CoherenceMsg::GetS { .. }
                | CoherenceMsg::GetM { .. }
                | CoherenceMsg::UpgradeM { .. }
                | CoherenceMsg::PutM { .. }
                | CoherenceMsg::PutE { .. }
                | CoherenceMsg::WbData { .. }
                | CoherenceMsg::InvAck { .. }
        )
    }

    /// Does the message carry a full cache line of data?
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            CoherenceMsg::PutM { .. }
                | CoherenceMsg::WbData { .. }
                | CoherenceMsg::DataS { .. }
                | CoherenceMsg::DataE { .. }
                | CoherenceMsg::DataM { .. }
        )
    }

    /// Figure 9 traffic category of this message.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            // "messages generated when load and store instructions miss in
            // cache and must access a remote directory"
            CoherenceMsg::GetS { .. }
            | CoherenceMsg::GetM { .. }
            | CoherenceMsg::UpgradeM { .. } => TrafficClass::Request,
            // "messages with data" plus the upgrade permission grant and
            // writebacks
            CoherenceMsg::DataS { .. }
            | CoherenceMsg::DataE { .. }
            | CoherenceMsg::DataM { .. }
            | CoherenceMsg::GrantM { .. }
            | CoherenceMsg::PutM { .. } => TrafficClass::Reply,
            // "messages generated by the cache coherence protocol
            // (e.g. invalidations and cache-to-cache transfers)"
            CoherenceMsg::Inv { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::FwdGetS { .. }
            | CoherenceMsg::FwdGetM { .. }
            | CoherenceMsg::WbData { .. }
            | CoherenceMsg::PutE { .. }
            | CoherenceMsg::PutAck { .. } => TrafficClass::Coherence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_semantics() {
        assert_eq!(RmwKind::TestAndSet.apply(0), (1, 0));
        assert_eq!(RmwKind::TestAndSet.apply(1), (1, 1));
        assert_eq!(RmwKind::Swap(9).apply(4), (9, 4));
        assert_eq!(RmwKind::FetchAdd(3).apply(7), (10, 7));
        assert_eq!(
            RmwKind::CompareAndSwap { expected: 7, new: 1 }.apply(7),
            (1, 7)
        );
        assert_eq!(
            RmwKind::CompareAndSwap { expected: 7, new: 1 }.apply(8),
            (8, 8)
        );
    }

    #[test]
    fn fetch_add_wraps() {
        assert_eq!(RmwKind::FetchAdd(2).apply(u64::MAX), (1, u64::MAX));
    }

    #[test]
    fn op_exclusive_requirements() {
        let a = Addr(64);
        assert!(!MemOp::Load(a).needs_exclusive());
        assert!(MemOp::Store(a, 1).needs_exclusive());
        assert!(MemOp::Rmw(a, RmwKind::TestAndSet).needs_exclusive());
    }

    #[test]
    fn message_routing_split() {
        let l = LineAddr(5);
        let c = CoreId(1);
        assert!(CoherenceMsg::GetS { line: l, from: c }.to_directory());
        assert!(CoherenceMsg::InvAck { line: l, from: c }.to_directory());
        assert!(!CoherenceMsg::DataM { line: l }.to_directory());
        assert!(!CoherenceMsg::PutAck { line: l }.to_directory());
    }

    #[test]
    fn traffic_classes_match_paper() {
        let l = LineAddr(5);
        let c = CoreId(0);
        assert_eq!(
            CoherenceMsg::GetM { line: l, from: c }.traffic_class(),
            TrafficClass::Request
        );
        assert_eq!(
            CoherenceMsg::DataS { line: l }.traffic_class(),
            TrafficClass::Reply
        );
        assert_eq!(
            CoherenceMsg::WbData { line: l, from: c }.traffic_class(),
            TrafficClass::Coherence
        );
        assert_eq!(
            CoherenceMsg::Inv { line: l }.traffic_class(),
            TrafficClass::Coherence
        );
    }

    #[test]
    fn mp_lock_traffic_classes() {
        let c = CoreId(1);
        assert_eq!(
            MpLockMsg::Req { lock: 0, from: c }.traffic_class(),
            TrafficClass::Request
        );
        assert_eq!(MpLockMsg::Grant { lock: 0 }.traffic_class(), TrafficClass::Reply);
        assert_eq!(
            MpLockMsg::Rel { lock: 0, from: c }.traffic_class(),
            TrafficClass::Coherence
        );
    }

    #[test]
    fn sysmsg_wraps_both_protocols() {
        let l = LineAddr(2);
        let a = SysMsg::Coh(CoherenceMsg::GetS { line: l, from: CoreId(0) });
        let b = SysMsg::Lock(MpLockMsg::Grant { lock: 1 });
        assert_ne!(a, b);
        match a {
            SysMsg::Coh(m) => assert!(m.to_directory()),
            SysMsg::Lock(_) => panic!("wrong arm"),
        }
    }

    #[test]
    fn data_flag_matches_variants() {
        let l = LineAddr(1);
        let c = CoreId(0);
        assert!(CoherenceMsg::DataS { line: l }.carries_data());
        assert!(CoherenceMsg::PutM { line: l, from: c }.carries_data());
        assert!(!CoherenceMsg::GrantM { line: l }.carries_data());
        assert!(!CoherenceMsg::Inv { line: l }.carries_data());
    }
}
