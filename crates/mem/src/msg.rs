//! Coherence protocol messages and the core-facing memory operations.

use glocks_noc::TrafficClass;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, CoreId, Cycle, LineAddr};

/// Atomic read-modify-write flavors — the hardware primitives the paper's
/// software lock algorithms are built from (Section II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmwKind {
    /// `test&set`: write 1, return the old value.
    TestAndSet,
    /// `swap`: write the operand, return the old value.
    Swap(u64),
    /// `fetch&add`: add the operand, return the old value
    /// (`fetch&increment` is `FetchAdd(1)`).
    FetchAdd(u64),
    /// `compare&swap { expected, new }`: write `new` iff the current value
    /// equals `expected`; always returns the old value.
    CompareAndSwap { expected: u64, new: u64 },
}

impl RmwKind {
    /// Apply the RMW to a value, returning `(new_value, returned_old)`.
    pub fn apply(self, old: u64) -> (u64, u64) {
        match self {
            RmwKind::TestAndSet => (1, old),
            RmwKind::Swap(v) => (v, old),
            RmwKind::FetchAdd(d) => (old.wrapping_add(d), old),
            RmwKind::CompareAndSwap { expected, new } => {
                if old == expected {
                    (new, old)
                } else {
                    (old, old)
                }
            }
        }
    }
}

impl RmwKind {
    pub fn save_state(self, w: &mut SnapWriter) {
        match self {
            RmwKind::TestAndSet => w.u8(0),
            RmwKind::Swap(v) => {
                w.u8(1);
                w.u64(v);
            }
            RmwKind::FetchAdd(d) => {
                w.u8(2);
                w.u64(d);
            }
            RmwKind::CompareAndSwap { expected, new } => {
                w.u8(3);
                w.u64(expected);
                w.u64(new);
            }
        }
    }

    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => RmwKind::TestAndSet,
            1 => RmwKind::Swap(r.u64()?),
            2 => RmwKind::FetchAdd(r.u64()?),
            3 => RmwKind::CompareAndSwap { expected: r.u64()?, new: r.u64()? },
            tag => return Err(SnapError::BadTag { what: "rmw kind", tag: u64::from(tag) }),
        })
    }
}

/// A memory operation issued by a core. One word (8 bytes) at a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    Load(Addr),
    Store(Addr, u64),
    Rmw(Addr, RmwKind),
}

impl MemOp {
    pub fn addr(&self) -> Addr {
        match *self {
            MemOp::Load(a) | MemOp::Store(a, _) | MemOp::Rmw(a, _) => a,
        }
    }

    /// Does this operation require exclusive (M) permission?
    pub fn needs_exclusive(&self) -> bool {
        !matches!(self, MemOp::Load(_))
    }

    pub fn save_state(self, w: &mut SnapWriter) {
        match self {
            MemOp::Load(a) => {
                w.u8(0);
                w.u64(a.0);
            }
            MemOp::Store(a, v) => {
                w.u8(1);
                w.u64(a.0);
                w.u64(v);
            }
            MemOp::Rmw(a, kind) => {
                w.u8(2);
                w.u64(a.0);
                kind.save_state(w);
            }
        }
    }

    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => MemOp::Load(Addr(r.u64()?)),
            1 => MemOp::Store(Addr(r.u64()?), r.u64()?),
            2 => MemOp::Rmw(Addr(r.u64()?), RmwKind::load_state(r)?),
            tag => return Err(SnapError::BadTag { what: "mem op", tag: u64::from(tag) }),
        })
    }
}

/// Completion record handed back to the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemResult {
    pub op: MemOp,
    /// Loaded value (loads) or the old value (RMWs); 0 for stores.
    pub value: u64,
    pub finished_at: Cycle,
    /// True if the op completed without leaving the L1 (an L1 hit with
    /// sufficient permissions).
    pub l1_hit: bool,
}

impl MemResult {
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.op.save_state(w);
        w.u64(self.value);
        w.u64(self.finished_at);
        w.bool(self.l1_hit);
    }

    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MemResult {
            op: MemOp::load_state(r)?,
            value: r.u64()?,
            finished_at: r.u64()?,
            l1_hit: r.bool()?,
        })
    }
}

/// Messages of the MP-Locks message-passing lock protocol (Kuo et al.,
/// "MP-LOCKs", HPCA 1999 — the paper's related work \[14\]): lock
/// synchronization via explicit messages to per-tile kernel lock managers,
/// carried over the **main data network** (unlike GLocks' dedicated
/// G-lines).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpLockMsg {
    /// Ask the manager for the lock.
    Req { lock: u16, from: CoreId },
    /// Manager grants the lock to the destination core.
    Grant { lock: u16 },
    /// Give the lock back to the manager.
    Rel { lock: u16, from: CoreId },
}

impl MpLockMsg {
    /// Figure-9 class of this message on the shared network.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            MpLockMsg::Req { .. } => TrafficClass::Request,
            MpLockMsg::Grant { .. } => TrafficClass::Reply,
            MpLockMsg::Rel { .. } => TrafficClass::Coherence,
        }
    }
}

impl MpLockMsg {
    pub fn save_state(self, w: &mut SnapWriter) {
        match self {
            MpLockMsg::Req { lock, from } => {
                w.u8(0);
                w.u16(lock);
                w.u16(from.0);
            }
            MpLockMsg::Grant { lock } => {
                w.u8(1);
                w.u16(lock);
            }
            MpLockMsg::Rel { lock, from } => {
                w.u8(2);
                w.u16(lock);
                w.u16(from.0);
            }
        }
    }

    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => MpLockMsg::Req { lock: r.u16()?, from: CoreId(r.u16()?) },
            1 => MpLockMsg::Grant { lock: r.u16()? },
            2 => MpLockMsg::Rel { lock: r.u16()?, from: CoreId(r.u16()?) },
            tag => return Err(SnapError::BadTag { what: "mp-lock message", tag: u64::from(tag) }),
        })
    }
}

/// Everything the main data network carries: coherence protocol messages
/// plus (when MP-Locks are in use) lock-manager messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SysMsg {
    Coh(CoherenceMsg),
    Lock(MpLockMsg),
}

impl SysMsg {
    pub fn save_state(self, w: &mut SnapWriter) {
        match self {
            SysMsg::Coh(m) => {
                w.u8(0);
                m.save_state(w);
            }
            SysMsg::Lock(m) => {
                w.u8(1);
                m.save_state(w);
            }
        }
    }

    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => SysMsg::Coh(CoherenceMsg::load_state(r)?),
            1 => SysMsg::Lock(MpLockMsg::load_state(r)?),
            tag => return Err(SnapError::BadTag { what: "system message", tag: u64::from(tag) }),
        })
    }
}

/// Messages of the directory MESI protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoherenceMsg {
    // ---- L1 → home directory (requests) ----
    /// Read miss.
    GetS { line: LineAddr, from: CoreId },
    /// Write/RMW miss (line absent at requester).
    GetM { line: LineAddr, from: CoreId },
    /// Write/RMW upgrade (requester holds the line in S).
    UpgradeM { line: LineAddr, from: CoreId },
    /// Dirty eviction writeback (carries data).
    PutM { line: LineAddr, from: CoreId },
    /// Clean-exclusive eviction notice (no data).
    PutE { line: LineAddr, from: CoreId },
    /// Response to a `Fwd*`: the previous owner's data, sent to the home
    /// (the paper's "cache-to-cache transfer").
    WbData { line: LineAddr, from: CoreId },
    /// Invalidation acknowledgment.
    InvAck { line: LineAddr, from: CoreId },

    // ---- home directory → L1 ----
    /// Data grant, shared.
    DataS { line: LineAddr },
    /// Data grant, exclusive-clean (MESI E: granted when no other copy).
    DataE { line: LineAddr },
    /// Data grant, modified permission.
    DataM { line: LineAddr },
    /// Permission-only M grant for an upgrade (requester already has data).
    GrantM { line: LineAddr },
    /// Invalidate your copy and ack to the home.
    Inv { line: LineAddr },
    /// Demote to S and send `WbData` to the home.
    FwdGetS { line: LineAddr },
    /// Invalidate and send `WbData` to the home.
    FwdGetM { line: LineAddr },
    /// Eviction handshake completion.
    PutAck { line: LineAddr },
}

impl CoherenceMsg {
    pub fn line(&self) -> LineAddr {
        match *self {
            CoherenceMsg::GetS { line, .. }
            | CoherenceMsg::GetM { line, .. }
            | CoherenceMsg::UpgradeM { line, .. }
            | CoherenceMsg::PutM { line, .. }
            | CoherenceMsg::PutE { line, .. }
            | CoherenceMsg::WbData { line, .. }
            | CoherenceMsg::InvAck { line, .. }
            | CoherenceMsg::DataS { line }
            | CoherenceMsg::DataE { line }
            | CoherenceMsg::DataM { line }
            | CoherenceMsg::GrantM { line }
            | CoherenceMsg::Inv { line }
            | CoherenceMsg::FwdGetS { line }
            | CoherenceMsg::FwdGetM { line }
            | CoherenceMsg::PutAck { line } => line,
        }
    }

    /// True for messages handled by the home directory; false for messages
    /// handled by an L1 controller.
    pub fn to_directory(&self) -> bool {
        matches!(
            self,
            CoherenceMsg::GetS { .. }
                | CoherenceMsg::GetM { .. }
                | CoherenceMsg::UpgradeM { .. }
                | CoherenceMsg::PutM { .. }
                | CoherenceMsg::PutE { .. }
                | CoherenceMsg::WbData { .. }
                | CoherenceMsg::InvAck { .. }
        )
    }

    /// Does the message carry a full cache line of data?
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            CoherenceMsg::PutM { .. }
                | CoherenceMsg::WbData { .. }
                | CoherenceMsg::DataS { .. }
                | CoherenceMsg::DataE { .. }
                | CoherenceMsg::DataM { .. }
        )
    }

    pub fn save_state(self, w: &mut SnapWriter) {
        let (tag, line, from) = match self {
            CoherenceMsg::GetS { line, from } => (0u8, line, Some(from)),
            CoherenceMsg::GetM { line, from } => (1, line, Some(from)),
            CoherenceMsg::UpgradeM { line, from } => (2, line, Some(from)),
            CoherenceMsg::PutM { line, from } => (3, line, Some(from)),
            CoherenceMsg::PutE { line, from } => (4, line, Some(from)),
            CoherenceMsg::WbData { line, from } => (5, line, Some(from)),
            CoherenceMsg::InvAck { line, from } => (6, line, Some(from)),
            CoherenceMsg::DataS { line } => (7, line, None),
            CoherenceMsg::DataE { line } => (8, line, None),
            CoherenceMsg::DataM { line } => (9, line, None),
            CoherenceMsg::GrantM { line } => (10, line, None),
            CoherenceMsg::Inv { line } => (11, line, None),
            CoherenceMsg::FwdGetS { line } => (12, line, None),
            CoherenceMsg::FwdGetM { line } => (13, line, None),
            CoherenceMsg::PutAck { line } => (14, line, None),
        };
        w.u8(tag);
        w.u64(line.0);
        if let Some(from) = from {
            w.u16(from.0);
        }
    }

    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let tag = r.u8()?;
        let line = LineAddr(r.u64()?);
        Ok(match tag {
            0 => CoherenceMsg::GetS { line, from: CoreId(r.u16()?) },
            1 => CoherenceMsg::GetM { line, from: CoreId(r.u16()?) },
            2 => CoherenceMsg::UpgradeM { line, from: CoreId(r.u16()?) },
            3 => CoherenceMsg::PutM { line, from: CoreId(r.u16()?) },
            4 => CoherenceMsg::PutE { line, from: CoreId(r.u16()?) },
            5 => CoherenceMsg::WbData { line, from: CoreId(r.u16()?) },
            6 => CoherenceMsg::InvAck { line, from: CoreId(r.u16()?) },
            7 => CoherenceMsg::DataS { line },
            8 => CoherenceMsg::DataE { line },
            9 => CoherenceMsg::DataM { line },
            10 => CoherenceMsg::GrantM { line },
            11 => CoherenceMsg::Inv { line },
            12 => CoherenceMsg::FwdGetS { line },
            13 => CoherenceMsg::FwdGetM { line },
            14 => CoherenceMsg::PutAck { line },
            tag => return Err(SnapError::BadTag { what: "coherence message", tag: u64::from(tag) }),
        })
    }

    /// Figure 9 traffic category of this message.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            // "messages generated when load and store instructions miss in
            // cache and must access a remote directory"
            CoherenceMsg::GetS { .. }
            | CoherenceMsg::GetM { .. }
            | CoherenceMsg::UpgradeM { .. } => TrafficClass::Request,
            // "messages with data" plus the upgrade permission grant and
            // writebacks
            CoherenceMsg::DataS { .. }
            | CoherenceMsg::DataE { .. }
            | CoherenceMsg::DataM { .. }
            | CoherenceMsg::GrantM { .. }
            | CoherenceMsg::PutM { .. } => TrafficClass::Reply,
            // "messages generated by the cache coherence protocol
            // (e.g. invalidations and cache-to-cache transfers)"
            CoherenceMsg::Inv { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::FwdGetS { .. }
            | CoherenceMsg::FwdGetM { .. }
            | CoherenceMsg::WbData { .. }
            | CoherenceMsg::PutE { .. }
            | CoherenceMsg::PutAck { .. } => TrafficClass::Coherence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_semantics() {
        assert_eq!(RmwKind::TestAndSet.apply(0), (1, 0));
        assert_eq!(RmwKind::TestAndSet.apply(1), (1, 1));
        assert_eq!(RmwKind::Swap(9).apply(4), (9, 4));
        assert_eq!(RmwKind::FetchAdd(3).apply(7), (10, 7));
        assert_eq!(
            RmwKind::CompareAndSwap { expected: 7, new: 1 }.apply(7),
            (1, 7)
        );
        assert_eq!(
            RmwKind::CompareAndSwap { expected: 7, new: 1 }.apply(8),
            (8, 8)
        );
    }

    #[test]
    fn fetch_add_wraps() {
        assert_eq!(RmwKind::FetchAdd(2).apply(u64::MAX), (1, u64::MAX));
    }

    #[test]
    fn op_exclusive_requirements() {
        let a = Addr(64);
        assert!(!MemOp::Load(a).needs_exclusive());
        assert!(MemOp::Store(a, 1).needs_exclusive());
        assert!(MemOp::Rmw(a, RmwKind::TestAndSet).needs_exclusive());
    }

    #[test]
    fn message_routing_split() {
        let l = LineAddr(5);
        let c = CoreId(1);
        assert!(CoherenceMsg::GetS { line: l, from: c }.to_directory());
        assert!(CoherenceMsg::InvAck { line: l, from: c }.to_directory());
        assert!(!CoherenceMsg::DataM { line: l }.to_directory());
        assert!(!CoherenceMsg::PutAck { line: l }.to_directory());
    }

    #[test]
    fn traffic_classes_match_paper() {
        let l = LineAddr(5);
        let c = CoreId(0);
        assert_eq!(
            CoherenceMsg::GetM { line: l, from: c }.traffic_class(),
            TrafficClass::Request
        );
        assert_eq!(
            CoherenceMsg::DataS { line: l }.traffic_class(),
            TrafficClass::Reply
        );
        assert_eq!(
            CoherenceMsg::WbData { line: l, from: c }.traffic_class(),
            TrafficClass::Coherence
        );
        assert_eq!(
            CoherenceMsg::Inv { line: l }.traffic_class(),
            TrafficClass::Coherence
        );
    }

    #[test]
    fn mp_lock_traffic_classes() {
        let c = CoreId(1);
        assert_eq!(
            MpLockMsg::Req { lock: 0, from: c }.traffic_class(),
            TrafficClass::Request
        );
        assert_eq!(MpLockMsg::Grant { lock: 0 }.traffic_class(), TrafficClass::Reply);
        assert_eq!(
            MpLockMsg::Rel { lock: 0, from: c }.traffic_class(),
            TrafficClass::Coherence
        );
    }

    #[test]
    fn sysmsg_wraps_both_protocols() {
        let l = LineAddr(2);
        let a = SysMsg::Coh(CoherenceMsg::GetS { line: l, from: CoreId(0) });
        let b = SysMsg::Lock(MpLockMsg::Grant { lock: 1 });
        assert_ne!(a, b);
        match a {
            SysMsg::Coh(m) => assert!(m.to_directory()),
            SysMsg::Lock(_) => panic!("wrong arm"),
        }
    }

    #[test]
    fn data_flag_matches_variants() {
        let l = LineAddr(1);
        let c = CoreId(0);
        assert!(CoherenceMsg::DataS { line: l }.carries_data());
        assert!(CoherenceMsg::PutM { line: l, from: c }.carries_data());
        assert!(!CoherenceMsg::GrantM { line: l }.carries_data());
        assert!(!CoherenceMsg::Inv { line: l }.carries_data());
    }
}
