//! MP-Locks: message-passing lock synchronization over the main data
//! network (related work \[14\] of the paper — Kuo, Carter & Kuramkote,
//! "MP-LOCKs: Replacing H/W Synchronization Primitives with Message
//! Passing", HPCA 1999, *centralized* flavor).
//!
//! Each lock is owned by a kernel lock manager at its home tile
//! (`lock % tiles`). A core acquires by sending `Req` and busy-waiting on
//! a local NIC grant flag; the manager queues contenders FIFO and answers
//! with `Grant`; `Rel` passes the lock on. All three message types ride
//! the shared mesh — so unlike GLocks they contend with coherence traffic
//! and pay NoC latency, but like GLocks they avoid coherence storms on
//! lock variables.
//!
//! The core-side NIC ([`MpFabric`]) is shared state between the lock
//! backend's scripts and the memory system, exactly like the GLock
//! register file: scripts enqueue operations and poll grant flags; the
//! memory system moves messages.

use crate::events::EventQueue;
use crate::msg::MpLockMsg;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{CoreId, Cycle};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Kernel lock-manager software overhead per processed message, in cycles
/// (the "embedded kernel lock managers" of \[14\] run handler code).
pub const MANAGER_LATENCY: u64 = 20;

/// Hardware lock-buffer latency per processed message (the
/// Synchronization-operation Buffer of \[16\] augments the memory
/// controller with dedicated queueing hardware).
pub const SYNC_BUF_LATENCY: u64 = 2;

/// Maximum MP-lock id (grant flags are a u64 bitmask per core).
pub const MAX_MP_LOCKS: u16 = 64;

/// The per-core NIC interface shared with the lock backend.
#[derive(Debug, Default)]
pub struct MpFabric {
    /// Operations enqueued by scripts, drained by the memory system.
    outbox: RefCell<VecDeque<(CoreId, MpLockMsg)>>,
    /// Per-core bitmask of granted lock ids.
    granted: RefCell<Vec<Cell<u64>>>,
}

impl MpFabric {
    pub fn new(n_cores: usize) -> Rc<Self> {
        Rc::new(MpFabric {
            outbox: RefCell::new(VecDeque::new()),
            granted: RefCell::new((0..n_cores).map(|_| Cell::new(0)).collect()),
        })
    }

    /// Script side: send a lock request.
    pub fn request(&self, core: CoreId, lock: u16) {
        assert!(lock < MAX_MP_LOCKS);
        self.outbox
            .borrow_mut()
            .push_back((core, MpLockMsg::Req { lock, from: core }));
    }

    /// Script side: send a release.
    pub fn release(&self, core: CoreId, lock: u16) {
        self.outbox
            .borrow_mut()
            .push_back((core, MpLockMsg::Rel { lock, from: core }));
    }

    /// Script side: consume a grant if it has arrived.
    pub fn take_grant(&self, core: CoreId, lock: u16) -> bool {
        let g = &self.granted.borrow()[core.index()];
        let bit = 1u64 << lock;
        if g.get() & bit != 0 {
            g.set(g.get() & !bit);
            true
        } else {
            false
        }
    }

    /// Memory-system side: pop the next outgoing operation.
    pub(crate) fn pop_outgoing(&self) -> Option<(CoreId, MpLockMsg)> {
        self.outbox.borrow_mut().pop_front()
    }

    /// Memory-system side: a `Grant` arrived at `core`'s tile.
    pub(crate) fn deliver_grant(&self, core: CoreId, lock: u16) {
        let g = &self.granted.borrow()[core.index()];
        g.set(g.get() | (1u64 << lock));
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        let outbox = self.outbox.borrow();
        w.usize(outbox.len());
        for (c, msg) in outbox.iter() {
            w.u16(c.0);
            msg.save_state(w);
        }
        let granted = self.granted.borrow();
        w.usize(granted.len());
        for g in granted.iter() {
            w.u64(g.get());
        }
    }

    pub fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        let mut outbox = self.outbox.borrow_mut();
        outbox.clear();
        for _ in 0..n {
            let c = CoreId(r.u16()?);
            let msg = MpLockMsg::load_state(r)?;
            outbox.push_back((c, msg));
        }
        let granted = self.granted.borrow();
        if r.usize()? != granted.len() {
            return Err(SnapError::Corrupt { what: "mp fabric core count" });
        }
        for g in granted.iter() {
            g.set(r.u64()?);
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct LockState {
    held: bool,
    queue: VecDeque<CoreId>,
}

enum MgrEvent {
    Process(MpLockMsg),
}

/// The kernel lock manager of one tile (serves the locks homed there).
pub struct MpManager {
    locks: HashMap<u16, LockState>,
    events: EventQueue<MgrEvent>,
    /// Grants decided this tick, to be sent by the memory system.
    outgoing: Vec<(CoreId, MpLockMsg)>,
    pub grants: u64,
}

impl Default for MpManager {
    fn default() -> Self {
        MpManager {
            locks: HashMap::new(),
            events: EventQueue::new(),
            outgoing: Vec::new(),
            grants: 0,
        }
    }
}

impl MpManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// A lock message arrived at this tile: process it after the manager's
    /// processing latency (software kernel manager for MP-Locks, ~2 cycles
    /// for the hardware Synchronization-operation Buffer of \[16\]).
    pub fn handle(&mut self, msg: MpLockMsg, now: Cycle, latency: u64) {
        self.events.schedule(now + latency, MgrEvent::Process(msg));
    }

    /// Advance; decided grants appear in the outgoing buffer.
    pub fn tick(&mut self, now: Cycle) {
        while let Some((_, MgrEvent::Process(msg))) = self.events.pop_due(now) {
            match msg {
                MpLockMsg::Req { lock, from } => {
                    let st = self.locks.entry(lock).or_default();
                    if st.held {
                        st.queue.push_back(from);
                    } else {
                        st.held = true;
                        self.grants += 1;
                        self.outgoing.push((from, MpLockMsg::Grant { lock }));
                    }
                }
                MpLockMsg::Rel { lock, from: _ } => {
                    let st = self.locks.entry(lock).or_default();
                    debug_assert!(st.held, "release of a free MP lock");
                    if let Some(next) = st.queue.pop_front() {
                        self.grants += 1;
                        self.outgoing.push((next, MpLockMsg::Grant { lock }));
                    } else {
                        st.held = false;
                    }
                }
                MpLockMsg::Grant { .. } => unreachable!("managers do not receive grants"),
            }
        }
    }

    /// Drain decided grants.
    pub fn take_outgoing(&mut self, out: &mut Vec<(CoreId, MpLockMsg)>) {
        out.append(&mut self.outgoing);
    }

    /// No queued work (end-of-run check).
    pub fn is_quiescent(&self) -> bool {
        self.events.is_empty() && self.outgoing.is_empty()
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        // The lock map is unordered; serialize sorted by lock id.
        let mut ids: Vec<u16> = self.locks.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            let st = &self.locks[&id];
            w.u16(id);
            w.bool(st.held);
            w.usize(st.queue.len());
            for c in &st.queue {
                w.u16(c.0);
            }
        }
        self.events.save_state(w, &mut |w, MgrEvent::Process(msg)| msg.save_state(w));
        w.usize(self.outgoing.len());
        for (c, msg) in &self.outgoing {
            w.u16(c.0);
            msg.save_state(w);
        }
        w.u64(self.grants);
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        self.locks.clear();
        for _ in 0..n {
            let id = r.u16()?;
            let held = r.bool()?;
            let n_q = r.usize()?;
            let mut queue = VecDeque::with_capacity(n_q);
            for _ in 0..n_q {
                queue.push_back(CoreId(r.u16()?));
            }
            self.locks.insert(id, LockState { held, queue });
        }
        self.events
            .load_state(r, &mut |r| Ok(MgrEvent::Process(MpLockMsg::load_state(r)?)))?;
        let n_out = r.usize()?;
        self.outgoing.clear();
        for _ in 0..n_out {
            let c = CoreId(r.u16()?);
            let msg = MpLockMsg::load_state(r)?;
            self.outgoing.push((c, msg));
        }
        self.grants = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_grant_order() {
        let mut m = MpManager::new();
        m.handle(MpLockMsg::Req { lock: 3, from: CoreId(1) }, 0, MANAGER_LATENCY);
        m.handle(MpLockMsg::Req { lock: 3, from: CoreId(2) }, 1, MANAGER_LATENCY);
        m.tick(MANAGER_LATENCY + 1);
        let mut out = Vec::new();
        m.take_outgoing(&mut out);
        assert_eq!(out, vec![(CoreId(1), MpLockMsg::Grant { lock: 3 })]);
        // release passes the lock to the queued core
        m.handle(MpLockMsg::Rel { lock: 3, from: CoreId(1) }, 10, MANAGER_LATENCY);
        m.tick(10 + MANAGER_LATENCY);
        out.clear();
        m.take_outgoing(&mut out);
        assert_eq!(out, vec![(CoreId(2), MpLockMsg::Grant { lock: 3 })]);
        // final release leaves the lock free
        m.handle(MpLockMsg::Rel { lock: 3, from: CoreId(2) }, 40, MANAGER_LATENCY);
        m.tick(40 + MANAGER_LATENCY);
        out.clear();
        m.take_outgoing(&mut out);
        assert!(out.is_empty());
        assert!(m.is_quiescent());
    }

    #[test]
    fn manager_latency_is_respected() {
        let mut m = MpManager::new();
        m.handle(MpLockMsg::Req { lock: 0, from: CoreId(0) }, 100, MANAGER_LATENCY);
        m.tick(100 + MANAGER_LATENCY - 1);
        let mut out = Vec::new();
        m.take_outgoing(&mut out);
        assert!(out.is_empty(), "grant decided too early");
        m.tick(100 + MANAGER_LATENCY);
        m.take_outgoing(&mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn fabric_grant_flags() {
        let f = MpFabric::new(4);
        f.request(CoreId(2), 5);
        assert!(!f.take_grant(CoreId(2), 5));
        f.deliver_grant(CoreId(2), 5);
        assert!(f.take_grant(CoreId(2), 5));
        assert!(!f.take_grant(CoreId(2), 5), "grant is consumed once");
        let (c, msg) = f.pop_outgoing().unwrap();
        assert_eq!(c, CoreId(2));
        assert!(matches!(msg, MpLockMsg::Req { lock: 5, .. }));
        assert!(f.pop_outgoing().is_none());
    }

    #[test]
    fn independent_locks_do_not_interact() {
        let mut m = MpManager::new();
        m.handle(MpLockMsg::Req { lock: 1, from: CoreId(0) }, 0, MANAGER_LATENCY);
        m.handle(MpLockMsg::Req { lock: 2, from: CoreId(1) }, 0, MANAGER_LATENCY);
        m.tick(MANAGER_LATENCY);
        let mut out = Vec::new();
        m.take_outgoing(&mut out);
        assert_eq!(out.len(), 2, "both locks granted immediately");
    }
}
