//! A deterministic time-ordered event queue.
//!
//! Ties at the same cycle are broken by insertion order (FIFO), which keeps
//! the whole simulation bit-reproducible.

use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: Cycle,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Min-heap of `(cycle, item)` with FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn schedule(&mut self, at: Cycle, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, item }));
    }

    /// Pop the next event due at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.at <= now) {
            let Reverse(e) = self.heap.pop().expect("peeked");
            Some((e.at, e.item))
        } else {
            None
        }
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Cycle of the earliest pending event, if any.
    pub fn next_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Serialize entries in deterministic `(at, seq)` order with their raw
    /// sequence numbers, so a restored queue pops in exactly the same order
    /// and new events keep strictly increasing sequence numbers.
    pub fn save_state(&self, w: &mut SnapWriter, save_item: &mut dyn FnMut(&mut SnapWriter, &T)) {
        w.u64(self.next_seq);
        let mut entries: Vec<&Entry<T>> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort_by_key(|e| (e.at, e.seq));
        w.usize(entries.len());
        for e in entries {
            w.u64(e.at);
            w.u64(e.seq);
            save_item(w, &e.item);
        }
    }

    pub fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        load_item: &mut dyn FnMut(&mut SnapReader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        self.next_seq = r.u64()?;
        let n = r.usize()?;
        self.heap.clear();
        for _ in 0..n {
            let at = r.u64()?;
            let seq = r.u64()?;
            if seq >= self.next_seq {
                return Err(SnapError::Corrupt { what: "event queue sequence number" });
            }
            let item = load_item(r)?;
            self.heap.push(Reverse(Entry { at, seq, item }));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(10, "b");
        q.schedule(5, "a");
        q.schedule(20, "c");
        assert_eq!(q.pop_due(100), Some((5, "a")));
        assert_eq!(q.pop_due(100), Some((10, "b")));
        assert_eq!(q.pop_due(100), Some((20, "c")));
        assert_eq!(q.pop_due(100), None);
    }

    #[test]
    fn respects_due_time() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.pop_due(10), Some((10, 1)));
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = EventQueue::new();
        q.schedule(7, "first");
        q.schedule(7, "second");
        q.schedule(7, "third");
        assert_eq!(q.pop_due(7).unwrap().1, "first");
        assert_eq!(q.pop_due(7).unwrap().1, "second");
        assert_eq!(q.pop_due(7).unwrap().1, "third");
    }

    #[test]
    fn next_due_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_due(), None);
        q.schedule(3, ());
        q.schedule(1, ());
        assert_eq!(q.next_due(), Some(1));
        assert_eq!(q.len(), 2);
    }
}
