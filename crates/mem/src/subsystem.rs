//! The assembled memory subsystem: per-tile L1 + directory over the mesh.
//!
//! This is the interface the simulated cores talk to: submit one memory
//! operation, tick the world, poll for the completion.

use crate::dir::{DirState, Directory};
use crate::l1::{L1Cache, L1State};
use crate::mplock::{MpFabric, MpManager, MANAGER_LATENCY, MAX_MP_LOCKS};
use crate::msg::{MemOp, MemResult, MpLockMsg, SysMsg};
use crate::store::WordStore;
use glocks_noc::{MeshNoc, Packet, TrafficStats};
use glocks_sim_base::fault::{FaultPlan, FaultSite};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::stats::CounterSet;
use glocks_sim_base::{CmpConfig, CoreId, Cycle, LineAddr, TileId};

/// A point-in-time picture of what the memory system is doing — part of
/// the runner's diagnostic snapshot when a run wedges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemDiag {
    /// Packets inside the fabric or delivery buffers.
    pub noc_in_flight: usize,
    /// Packets sitting in router input queues (congestion).
    pub noc_queued: usize,
    /// Packets lost to an injected fault schedule.
    pub noc_dropped: u64,
    /// L1s with an operation outstanding.
    pub busy_l1s: usize,
    /// Directory lines with a transaction in flight.
    pub dir_busy_lines: usize,
    /// Requests queued behind busy directory lines.
    pub dir_queued_requests: usize,
}

/// The full memory hierarchy of the simulated CMP.
pub struct MemorySystem {
    l1s: Vec<L1Cache>,
    dirs: Vec<Directory>,
    store: WordStore,
    net: MeshNoc<SysMsg>,
    drain_buf: Vec<Packet<SysMsg>>,
    /// MP-Locks kernel lock managers, one per tile (related work \[14\]).
    mp_managers: Vec<MpManager>,
    /// Core-side MP-Locks NIC, shared with the lock backend.
    mp_fabric: std::rc::Rc<MpFabric>,
    mp_out_buf: Vec<(CoreId, MpLockMsg)>,
    /// Per-MP-lock manager processing latency (software kernel manager by
    /// default; 2 cycles for the hardware SB of related work \[16\]).
    mp_latency: Vec<u64>,
    ctrl_bytes: u32,
    n_tiles: usize,
}

impl MemorySystem {
    pub fn new(cfg: &CmpConfig) -> Self {
        cfg.validate();
        let mesh = cfg.mesh();
        MemorySystem {
            l1s: (0..cfg.num_cores)
                .map(|i| L1Cache::new(CoreId(i as u16), cfg))
                .collect(),
            dirs: mesh.tiles().map(|t| Directory::new(t, cfg)).collect(),
            store: WordStore::new(),
            net: MeshNoc::new(mesh, cfg.noc),
            drain_buf: Vec::new(),
            mp_managers: (0..mesh.len()).map(|_| MpManager::new()).collect(),
            mp_fabric: MpFabric::new(cfg.num_cores),
            mp_out_buf: Vec::new(),
            mp_latency: vec![MANAGER_LATENCY; MAX_MP_LOCKS as usize],
            ctrl_bytes: cfg.noc.ctrl_msg_bytes,
            n_tiles: mesh.len(),
        }
    }

    /// The MP-Locks NIC handle for lock backends.
    pub fn mp_fabric(&self) -> std::rc::Rc<MpFabric> {
        std::rc::Rc::clone(&self.mp_fabric)
    }

    /// Configure one MP lock's manager latency (e.g.
    /// [`crate::mplock::SYNC_BUF_LATENCY`] for the hardware SB flavor).
    pub fn set_mp_latency(&mut self, lock: u16, cycles: u64) {
        self.mp_latency[lock as usize] = cycles;
    }

    /// Home tile of an MP lock.
    fn mp_home(&self, lock: u16) -> TileId {
        TileId(lock % self.n_tiles as u16)
    }

    fn inject_mp(&mut self, src: TileId, dst: TileId, msg: MpLockMsg, now: Cycle) {
        self.net.inject(
            Packet {
                src,
                dst,
                bytes: self.ctrl_bytes,
                class: msg.traffic_class(),
                injected_at: now,
                payload: SysMsg::Lock(msg),
            },
            now,
        );
    }

    /// Submit a memory operation for `core`. One outstanding op per core.
    pub fn submit(&mut self, core: CoreId, op: MemOp, now: Cycle) {
        self.l1s[core.index()].submit(op, now);
    }

    /// Is `core`'s L1 free to accept a new operation?
    pub fn can_submit(&self, core: CoreId) -> bool {
        !self.l1s[core.index()].busy()
    }

    /// Take the completion for `core`, if its operation finished.
    pub fn take_result(&mut self, core: CoreId) -> Option<MemResult> {
        self.l1s[core.index()].take_result()
    }

    /// Advance the memory world by one cycle. Call once per simulated cycle
    /// *after* cores have submitted their operations for this cycle.
    pub fn tick(&mut self, now: Cycle) {
        // 1. The fabric moves packets.
        self.net.tick(now);
        // 2. Deliver arrived packets to their tile's L1, directory, NIC
        //    or lock manager.
        for t in 0..self.dirs.len() {
            self.drain_buf.clear();
            self.net.drain(TileId(t as u16), now, &mut self.drain_buf);
            for i in 0..self.drain_buf.len() {
                match self.drain_buf[i].payload {
                    SysMsg::Coh(msg) => {
                        if msg.to_directory() {
                            self.dirs[t].handle_msg(msg, now, &mut self.store, &mut self.net);
                        } else {
                            self.l1s[t].handle_msg(msg, now, &mut self.store, &mut self.net);
                        }
                    }
                    SysMsg::Lock(MpLockMsg::Grant { lock }) => {
                        self.mp_fabric.deliver_grant(CoreId(t as u16), lock);
                    }
                    SysMsg::Lock(msg) => {
                        let lock = match msg {
                            MpLockMsg::Req { lock, .. } | MpLockMsg::Rel { lock, .. } => lock,
                            MpLockMsg::Grant { .. } => unreachable!("handled above"),
                        };
                        self.mp_managers[t].handle(msg, now, self.mp_latency[lock as usize]);
                    }
                }
            }
        }
        // 3. Controllers process their scheduled work.
        for l1 in &mut self.l1s {
            l1.tick(now, &mut self.store, &mut self.net);
        }
        for dir in &mut self.dirs {
            dir.tick(now, &mut self.store, &mut self.net);
        }
        // 4. MP-Locks: NIC outbox → network; manager decisions → network.
        while let Some((core, msg)) = self.mp_fabric.pop_outgoing() {
            let dst = match msg {
                MpLockMsg::Req { lock, .. } | MpLockMsg::Rel { lock, .. } => self.mp_home(lock),
                MpLockMsg::Grant { .. } => unreachable!("cores do not send grants"),
            };
            self.inject_mp(TileId(core.0), dst, msg, now);
        }
        for t in 0..self.mp_managers.len() {
            self.mp_managers[t].tick(now);
            self.mp_out_buf.clear();
            self.mp_managers[t].take_outgoing(&mut self.mp_out_buf);
            for i in 0..self.mp_out_buf.len() {
                let (core, msg) = self.mp_out_buf[i];
                self.inject_mp(TileId(t as u16), TileId(core.0), msg, now);
            }
        }
    }

    /// Serialize the full memory hierarchy's dynamic state. `drain_buf` and
    /// `mp_out_buf` are scratch buffers that are empty between ticks (and a
    /// checkpoint always lands on a cycle boundary), so they are not saved.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.mark("mem");
        w.usize(self.l1s.len());
        for l1 in &self.l1s {
            l1.save_state(w);
        }
        w.usize(self.dirs.len());
        for dir in &self.dirs {
            dir.save_state(w);
        }
        self.store.save_state(w);
        self.net.save_state(w, &mut |w, msg| msg.save_state(w));
        w.usize(self.mp_managers.len());
        for m in &self.mp_managers {
            m.save_state(w);
        }
        self.mp_fabric.save_state(w);
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect("mem")?;
        if r.usize()? != self.l1s.len() {
            return Err(SnapError::Corrupt { what: "l1 count" });
        }
        for l1 in &mut self.l1s {
            l1.load_state(r)?;
        }
        if r.usize()? != self.dirs.len() {
            return Err(SnapError::Corrupt { what: "directory count" });
        }
        for dir in &mut self.dirs {
            dir.load_state(r)?;
        }
        self.store.load_state(r)?;
        self.net.load_state(r, &mut SysMsg::load_state)?;
        if r.usize()? != self.mp_managers.len() {
            return Err(SnapError::Corrupt { what: "mp manager count" });
        }
        for m in &mut self.mp_managers {
            m.load_state(r)?;
        }
        self.mp_fabric.load_state(r)?;
        Ok(())
    }

    /// True when no packet, transaction or pending L1 request exists (used
    /// to detect simulation quiescence and by invariant checks).
    pub fn is_quiescent(&self) -> bool {
        self.net.is_idle()
            && self.dirs.iter().all(Directory::is_quiescent)
            && self.l1s.iter().all(|l1| !l1.busy())
            && self.mp_managers.iter().all(MpManager::is_quiescent)
    }

    /// The earliest future cycle at which ticking the memory system could
    /// change state, or `None` if it is quiescent with nothing scheduled.
    ///
    /// The memory hierarchy is event-dense while anything is in flight
    /// (router arbitration, delayed deliveries and controller event queues
    /// interact cycle by cycle), so a non-quiescent system reports
    /// `Some(now)` — "hot, tick me densely". A quiescent system only ever
    /// wakes for a scheduled permanent router fault: the kill mutates the
    /// fabric (the router dies in place) even with no packet anywhere.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.is_quiescent() {
            return Some(now);
        }
        self.net.next_scheduled_kill(now)
    }

    /// Network traffic statistics (Figure 9's raw material).
    pub fn traffic(&self) -> &TrafficStats {
        self.net.stats()
    }

    /// Wire the NoC and every directory into a fault plan's schedule.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.noc.is_active() {
            self.net.set_faults(plan.injector(FaultSite::Noc, 0));
        }
        if plan.dir.is_active() {
            for (t, dir) in self.dirs.iter_mut().enumerate() {
                dir.set_faults(plan.injector(FaultSite::Dir, t as u64));
            }
        }
    }

    /// Soft-fault totals from the NoC's injector, if one is attached.
    pub fn noc_fault_stats(&self) -> Option<glocks_sim_base::fault::FaultStats> {
        self.net.fault_stats()
    }

    /// Aggregate soft-fault totals over every directory injector, or
    /// `None` when no directory carries one.
    pub fn dir_fault_stats(&self) -> Option<glocks_sim_base::fault::FaultStats> {
        let mut any = false;
        let mut total = glocks_sim_base::fault::FaultStats::default();
        for dir in &self.dirs {
            if let Some(s) = dir.fault_stats() {
                any = true;
                total.decided += s.decided;
                total.dropped += s.dropped;
                total.delayed += s.delayed;
                total.duplicated += s.duplicated;
            }
        }
        any.then_some(total)
    }

    /// Schedule a permanent NoC router fault (see
    /// [`MeshNoc::schedule_router_kill`]): from cycle `at` every packet
    /// through `tile`'s router is lost. The coherence protocol has no
    /// retransmission layer, so transactions through the dead router wedge
    /// and the runner's watchdog escalates with this diagnosis.
    pub fn schedule_router_kill(&mut self, tile: TileId, at: Cycle) {
        self.net.schedule_router_kill(tile, at);
    }

    /// Cycle at which `tile`'s router died, if a scheduled kill has fired.
    pub fn router_dead_at(&self, tile: TileId) -> Option<Cycle> {
        self.net.router_dead_at(tile)
    }

    /// Snapshot of in-flight state for wedge diagnostics.
    pub fn diag(&self) -> MemDiag {
        MemDiag {
            noc_in_flight: self.net.in_flight(),
            noc_queued: self.net.queued_packets(),
            noc_dropped: self.net.packets_dropped(),
            busy_l1s: self.l1s.iter().filter(|l1| l1.busy()).count(),
            dir_busy_lines: self.dirs.iter().map(Directory::busy_lines).sum(),
            dir_queued_requests: self.dirs.iter().map(Directory::queued_requests).sum(),
        }
    }

    /// Pre-install a line's home L2 entry (initialization-phase data).
    pub fn prewarm(&mut self, line: LineAddr) {
        let home = (line.0 % self.dirs.len() as u64) as usize;
        self.dirs[home].prewarm(line);
    }

    /// Direct access to the functional store (workload setup/verification).
    pub fn store(&self) -> &WordStore {
        &self.store
    }

    pub fn store_mut(&mut self) -> &mut WordStore {
        &mut self.store
    }

    /// Aggregated event counters of all L1s and directories (energy input).
    pub fn counters(&self) -> CounterSet {
        let mut c = CounterSet::default();
        for l1 in &self.l1s {
            c.merge(l1.counters());
        }
        for d in &self.dirs {
            c.merge(d.counters());
        }
        c
    }

    /// Publish end-of-run memory-hierarchy totals into the stats registry:
    /// per-tile L1 and directory event counters plus chip-wide aggregates
    /// (no-op when stats are off).
    pub fn publish_stats(&self) {
        if !glocks_stats::is_enabled() {
            return;
        }
        for (t, l1) in self.l1s.iter().enumerate() {
            for (k, v) in l1.counters().iter() {
                glocks_stats::set(glocks_stats::counter(&format!("mem.l1.t{t}.{k}")), v);
            }
        }
        for (t, dir) in self.dirs.iter().enumerate() {
            for (k, v) in dir.counters().iter() {
                glocks_stats::set(glocks_stats::counter(&format!("mem.dir.t{t}.{k}")), v);
            }
        }
        for (k, v) in self.counters().iter() {
            glocks_stats::set(glocks_stats::counter(&format!("mem.total.{k}")), v);
        }
        self.net.publish_stats();
    }

    /// Check the MESI system invariants; panics with a description if one
    /// is violated. Intended for tests (called every N cycles). The
    /// non-panicking flavor is [`Self::find_invariant_violation`], used by
    /// the runtime protocol checker to produce a structured `SimError`.
    pub fn check_invariants(&self) {
        if let Some(v) = self.find_invariant_violation() {
            panic!("{v}");
        }
    }

    /// Scan the MESI system invariants; returns a description of the first
    /// violation found, or `None` when the hierarchy is coherent.
    ///
    /// * At most one L1 holds a line in M or E, and then no other L1 holds
    ///   it at all — true at *every* cycle.
    /// * If any L1 holds a line in S, no L1 holds it in M/E — ditto.
    /// * The directory's stable state is consistent with (a superset of)
    ///   the true cache states — checked only when no grant can still be
    ///   in flight (network idle and the involved L1 not mid-transaction),
    ///   since e.g. a sent `GrantM` updates the directory to Owned while
    ///   the requester still holds S until the grant is delivered.
    pub fn find_invariant_violation(&self) -> Option<String> {
        use std::collections::HashMap;
        let net_idle = self.net.is_idle();
        let mut holders: HashMap<LineAddr, (Vec<CoreId>, Vec<CoreId>)> = HashMap::new();
        for (i, l1) in self.l1s.iter().enumerate() {
            let core = CoreId(i as u16);
            for line in self.lines_of(l1) {
                let entry = holders.entry(line).or_default();
                match l1.state_of(line).expect("enumerated line") {
                    L1State::Modified | L1State::Exclusive => entry.0.push(core),
                    L1State::Shared => entry.1.push(core),
                }
            }
        }
        for (line, (excl, shared)) in &holders {
            if excl.len() > 1 {
                return Some(format!("line {line:?} exclusively held by {excl:?}"));
            }
            if !excl.is_empty() && !shared.is_empty() {
                return Some(format!(
                    "line {line:?} both exclusive ({excl:?}) and shared ({shared:?})"
                ));
            }
            if let Some(&owner) = excl.first() {
                let home = &self.dirs[(line.0 % self.dirs.len() as u64) as usize];
                match home.state_of(*line) {
                    DirState::Owned(o) => {
                        if o != owner {
                            return Some(format!(
                                "directory owner mismatch for {line:?}: L1 {owner:?} owns it but the directory says {o:?}"
                            ));
                        }
                    }
                    // A transaction or in-flight message may be moving
                    // ownership.
                    _ if !home.is_quiescent()
                        || !net_idle
                        || self.l1s[owner.index()].busy() => {}
                    st => {
                        return Some(format!(
                            "L1 {owner:?} owns {line:?} but directory says {st:?}"
                        ))
                    }
                }
            }
            for &s in shared {
                let home = &self.dirs[(line.0 % self.dirs.len() as u64) as usize];
                match home.state_of(*line) {
                    DirState::Shared(mask) => {
                        if mask & (1u128 << s.index()) == 0 {
                            return Some(format!(
                                "L1 {s:?} holds {line:?} in S but is not in the sharer mask"
                            ));
                        }
                    }
                    _ if !home.is_quiescent()
                        || !net_idle
                        || self.l1s[s.index()].busy() => {}
                    st => {
                        return Some(format!(
                            "L1 {s:?} shares {line:?} but directory says {st:?}"
                        ))
                    }
                }
            }
        }
        None
    }

    fn lines_of(&self, l1: &L1Cache) -> Vec<LineAddr> {
        l1.resident_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::RmwKind;
    use glocks_sim_base::Addr;

    fn system() -> MemorySystem {
        MemorySystem::new(&CmpConfig::paper_baseline())
    }

    /// Drive the system until `core`'s op completes; returns (result, cycles).
    fn run_op(sys: &mut MemorySystem, core: CoreId, op: MemOp, start: Cycle) -> (MemResult, Cycle) {
        sys.submit(core, op, start);
        for now in start..start + 100_000 {
            sys.tick(now);
            if let Some(r) = sys.take_result(core) {
                return (r, now - start);
            }
        }
        panic!("op never completed: {op:?}");
    }

    #[test]
    fn load_miss_then_hit() {
        let mut sys = system();
        let a = Addr(0x1000);
        let (r1, lat1) = run_op(&mut sys, CoreId(0), MemOp::Load(a), 0);
        assert_eq!(r1.value, 0);
        assert!(!r1.l1_hit);
        assert!(lat1 > 400, "cold miss must reach memory (took {lat1})");
        let (r2, lat2) = run_op(&mut sys, CoreId(0), MemOp::Load(a), 10_000);
        assert!(r2.l1_hit);
        assert_eq!(lat2, 2, "L1 hit is 2 cycles");
    }

    #[test]
    fn store_then_remote_load_sees_value() {
        let mut sys = system();
        let a = Addr(0x2000);
        run_op(&mut sys, CoreId(0), MemOp::Store(a, 77), 0);
        let (r, _) = run_op(&mut sys, CoreId(5), MemOp::Load(a), 10_000);
        assert_eq!(r.value, 77, "remote core must see the committed store");
        sys.check_invariants();
    }

    #[test]
    fn second_sharer_is_faster_than_memory() {
        let mut sys = system();
        let a = Addr(0x3000);
        run_op(&mut sys, CoreId(0), MemOp::Load(a), 0);
        // L2 now holds the line; another core's miss stays on chip.
        let (_, lat) = run_op(&mut sys, CoreId(1), MemOp::Load(a), 10_000);
        assert!(lat < 400, "L2 hit must beat memory (took {lat})");
    }

    #[test]
    fn exclusive_grant_enables_silent_upgrade() {
        let mut sys = system();
        let a = Addr(0x4000);
        // Sole reader gets E...
        run_op(&mut sys, CoreId(3), MemOp::Load(a), 0);
        // ...so the following store hits locally (silent E→M).
        let (r, lat) = run_op(&mut sys, CoreId(3), MemOp::Store(a, 5), 10_000);
        assert!(r.l1_hit);
        assert_eq!(lat, 2);
        sys.check_invariants();
    }

    #[test]
    fn rmw_is_atomic_under_contention() {
        let mut sys = system();
        let a = Addr(0x5000);
        // All cores increment the same word once, interleaved.
        let n = 32;
        for c in 0..n {
            sys.submit(CoreId(c as u16), MemOp::Rmw(a, RmwKind::FetchAdd(1)), 0);
        }
        let mut done = 0;
        let mut olds = Vec::new();
        for now in 0..2_000_000 {
            sys.tick(now);
            for c in 0..n {
                if let Some(r) = sys.take_result(CoreId(c as u16)) {
                    olds.push(r.value);
                    done += 1;
                }
            }
            if done == n {
                break;
            }
        }
        assert_eq!(done, n, "all increments must complete");
        olds.sort_unstable();
        // Atomicity ⟹ the observed old values are exactly 0..n-1.
        assert_eq!(olds, (0..n as u64).collect::<Vec<_>>());
        assert_eq!(sys.store().load(a), n as u64);
        sys.check_invariants();
    }

    #[test]
    fn invalidation_updates_sharers() {
        let mut sys = system();
        let a = Addr(0x6000);
        // Three readers...
        for c in [0u16, 1, 2] {
            run_op(&mut sys, CoreId(c), MemOp::Load(a), 0);
        }
        // ...then core 3 writes: all readers must be invalidated.
        run_op(&mut sys, CoreId(3), MemOp::Store(a, 1), 50_000);
        let line = a.line(64);
        for c in [0u16, 1, 2] {
            assert_eq!(sys.l1s[c as usize].state_of(line), None);
        }
        assert_eq!(sys.l1s[3].state_of(line), Some(L1State::Modified));
        sys.check_invariants();
    }

    #[test]
    fn upgrade_from_shared_uses_grant() {
        let mut sys = system();
        let a = Addr(0x7000);
        run_op(&mut sys, CoreId(0), MemOp::Load(a), 0);
        run_op(&mut sys, CoreId(1), MemOp::Load(a), 20_000);
        // Core 0 now shares; its store is an upgrade (no data transfer).
        let before = sys.traffic().bytes(glocks_noc::TrafficClass::Reply);
        run_op(&mut sys, CoreId(0), MemOp::Store(a, 9), 40_000);
        let after = sys.traffic().bytes(glocks_noc::TrafficClass::Reply);
        // Home of 0x7000/64 = line 448 % 32 = tile 0 == the requester, so
        // the GrantM reply crosses zero links; any growth must stay far
        // below a data packet crossing the mesh.
        assert!(
            after - before < 72,
            "upgrade moved a full data packet ({} bytes)",
            after - before
        );
        sys.check_invariants();
    }

    #[test]
    fn dirty_line_migrates_between_cores() {
        let mut sys = system();
        let a = Addr(0x8000);
        run_op(&mut sys, CoreId(0), MemOp::Store(a, 1), 0);
        let (r, _) = run_op(&mut sys, CoreId(7), MemOp::Rmw(a, RmwKind::TestAndSet), 20_000);
        assert_eq!(r.value, 1, "migrated dirty value visible");
        let line = a.line(64);
        assert_eq!(sys.l1s[0].state_of(line), None, "old owner invalidated");
        assert_eq!(sys.l1s[7].state_of(line), Some(L1State::Modified));
        sys.check_invariants();
    }

    #[test]
    fn quiescence_after_activity() {
        let mut sys = system();
        for c in 0..8u16 {
            run_op(&mut sys, CoreId(c), MemOp::Store(Addr(0x9000 + c as u64 * 8), c as u64), 0);
        }
        // settle any writeback handshakes
        for now in 500_000..600_000 {
            sys.tick(now);
        }
        assert!(sys.is_quiescent());
    }

    #[test]
    fn capacity_eviction_writes_back() {
        let mut sys = system();
        // Fill one L1 set (4 ways) plus one more line mapping to the same
        // set (128 sets ⇒ stride 128 lines = 8192 bytes), all dirty.
        let stride = 128 * 64;
        for i in 0..5u64 {
            run_op(&mut sys, CoreId(0), MemOp::Store(Addr(i * stride), i + 1), i * 50_000);
        }
        // Everything still readable with correct values.
        for i in 0..5u64 {
            let (r, _) = run_op(
                &mut sys,
                CoreId(0),
                MemOp::Load(Addr(i * stride)),
                1_000_000 + i * 50_000,
            );
            assert_eq!(r.value, i + 1);
        }
        sys.check_invariants();
    }
}
