//! The home-tile controller: full-map MESI directory + L2 slice.
//!
//! One transaction is in flight per line (a *blocking* directory); later
//! requests queue at the home and are served in arrival order. Directory
//! state (who caches what) lives in an unbounded map — a "perfect"
//! directory — while the L2 data array is a real set-associative array used
//! for timing: a data fetch that misses in the array pays the 400-cycle
//! memory latency.
//!
//! The one genuinely racy interaction, an eviction (`PutM`/`PutE`) crossing
//! a forwarded probe, is resolved here: while the directory waits for the
//! owner's `WbData`, a `PutM`/`PutE` arriving *from that owner* is absorbed
//! as the response (and acknowledged); a later stale `WbData` is dropped.

use crate::cache_array::CacheArray;
use crate::events::EventQueue;
use crate::msg::{CoherenceMsg, SysMsg};
use crate::store::WordStore;
use glocks_noc::{MeshNoc, Packet};
use glocks_sim_base::fault::{FaultDecision, FaultInjector};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::stats::CounterSet;
use glocks_sim_base::trace::TraceMask;
use glocks_sim_base::{trace_event, CmpConfig, CoreId, Cycle, LineAddr, TileId};
use std::collections::{HashMap, VecDeque};

/// Sharer bit-set (supports CMPs up to 128 cores).
pub type SharerMask = u128;

/// Stable directory state of a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// No cached copy the directory knows of; L2/memory data is current.
    Uncached,
    /// Cached read-only by the set cores (bits may be stale-inclusive after
    /// silent S evictions).
    Shared(SharerMask),
    /// Cached exclusively (E or M) by one core; L2 data may be stale.
    Owned(CoreId),
}

/// Request kinds processed as directory transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReqKind {
    GetS,
    GetM,
    UpgradeM,
    PutM,
    PutE,
}

impl DirState {
    fn save_state(self, w: &mut SnapWriter) {
        match self {
            DirState::Uncached => w.u8(0),
            DirState::Shared(s) => {
                w.u8(1);
                w.u64(s as u64);
                w.u64((s >> 64) as u64);
            }
            DirState::Owned(c) => {
                w.u8(2);
                w.u16(c.0);
            }
        }
    }

    fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => DirState::Uncached,
            1 => {
                let lo = r.u64()? as u128;
                let hi = r.u64()? as u128;
                DirState::Shared(lo | (hi << 64))
            }
            2 => DirState::Owned(CoreId(r.u16()?)),
            tag => return Err(SnapError::BadTag { what: "directory state", tag: u64::from(tag) }),
        })
    }
}

impl ReqKind {
    fn save_state(self, w: &mut SnapWriter) {
        w.u8(match self {
            ReqKind::GetS => 0,
            ReqKind::GetM => 1,
            ReqKind::UpgradeM => 2,
            ReqKind::PutM => 3,
            ReqKind::PutE => 4,
        });
    }

    fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => ReqKind::GetS,
            1 => ReqKind::GetM,
            2 => ReqKind::UpgradeM,
            3 => ReqKind::PutM,
            4 => ReqKind::PutE,
            tag => return Err(SnapError::BadTag { what: "directory request", tag: u64::from(tag) }),
        })
    }

    fn of(msg: &CoherenceMsg) -> Option<(CoreId, ReqKind)> {
        match *msg {
            CoherenceMsg::GetS { from, .. } => Some((from, ReqKind::GetS)),
            CoherenceMsg::GetM { from, .. } => Some((from, ReqKind::GetM)),
            CoherenceMsg::UpgradeM { from, .. } => Some((from, ReqKind::UpgradeM)),
            CoherenceMsg::PutM { from, .. } => Some((from, ReqKind::PutM)),
            CoherenceMsg::PutE { from, .. } => Some((from, ReqKind::PutE)),
            _ => None,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Phase {
    /// Tag/directory lookup in progress (the `Act` event is scheduled).
    Deciding,
    /// Waiting for the owner's `WbData` (or a crossed `PutM`/`PutE`).
    AwaitOwner { owner: CoreId },
    /// Waiting for `acks_left` invalidation acks.
    AwaitAcks { acks_left: u32 },
    /// Data fetch or reply send scheduled; no message can affect us.
    Completing,
}

impl Phase {
    fn save_state(self, w: &mut SnapWriter) {
        match self {
            Phase::Deciding => w.u8(0),
            Phase::AwaitOwner { owner } => {
                w.u8(1);
                w.u16(owner.0);
            }
            Phase::AwaitAcks { acks_left } => {
                w.u8(2);
                w.u32(acks_left);
            }
            Phase::Completing => w.u8(3),
        }
    }

    fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Phase::Deciding,
            1 => Phase::AwaitOwner { owner: CoreId(r.u16()?) },
            2 => Phase::AwaitAcks { acks_left: r.u32()? },
            3 => Phase::Completing,
            tag => {
                return Err(SnapError::BadTag { what: "directory txn phase", tag: u64::from(tag) })
            }
        })
    }
}

#[derive(Clone, Copy, Debug)]
struct Busy {
    requester: CoreId,
    kind: ReqKind,
    phase: Phase,
}

#[derive(Clone, Debug)]
struct DirEntry {
    state: DirState,
    busy: Option<Busy>,
    pending: VecDeque<(CoreId, ReqKind)>,
}

impl DirEntry {
    fn new() -> Self {
        DirEntry {
            state: DirState::Uncached,
            busy: None,
            pending: VecDeque::new(),
        }
    }
}

enum DirEvent {
    /// Pop the next queued request for the line, if idle.
    StartNext(LineAddr),
    /// Tag latency elapsed: act on the transaction.
    Act(LineAddr),
    /// Send `msg`, commit `final_state`, release the line.
    Finish {
        line: LineAddr,
        msg: CoherenceMsg,
        dst: CoreId,
        final_state: DirState,
        /// Also acknowledge a crossed eviction to this core.
        put_ack_to: Option<CoreId>,
    },
}

impl DirEvent {
    fn save_state(&self, w: &mut SnapWriter) {
        match self {
            DirEvent::StartNext(line) => {
                w.u8(0);
                w.u64(line.0);
            }
            DirEvent::Act(line) => {
                w.u8(1);
                w.u64(line.0);
            }
            DirEvent::Finish { line, msg, dst, final_state, put_ack_to } => {
                w.u8(2);
                w.u64(line.0);
                msg.save_state(w);
                w.u16(dst.0);
                final_state.save_state(w);
                match put_ack_to {
                    None => w.bool(false),
                    Some(c) => {
                        w.bool(true);
                        w.u16(c.0);
                    }
                }
            }
        }
    }

    fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => DirEvent::StartNext(LineAddr(r.u64()?)),
            1 => DirEvent::Act(LineAddr(r.u64()?)),
            2 => {
                let line = LineAddr(r.u64()?);
                let msg = CoherenceMsg::load_state(r)?;
                let dst = CoreId(r.u16()?);
                let final_state = DirState::load_state(r)?;
                let put_ack_to = if r.bool()? { Some(CoreId(r.u16()?)) } else { None };
                DirEvent::Finish { line, msg, dst, final_state, put_ack_to }
            }
            tag => return Err(SnapError::BadTag { what: "directory event", tag: u64::from(tag) }),
        })
    }
}

/// Directory + L2-slice controller of one home tile.
pub struct Directory {
    tile: TileId,
    entries: HashMap<u64, DirEntry>,
    l2_array: CacheArray<()>,
    events: EventQueue<DirEvent>,
    counters: CounterSet,
    tag_latency: u64,
    data_latency: u64,
    mem_latency: u64,
    ctrl_bytes: u32,
    data_bytes: u32,
    faults: Option<FaultInjector>,
}

impl Directory {
    pub fn new(tile: TileId, cfg: &CmpConfig) -> Self {
        Directory {
            tile,
            entries: HashMap::new(),
            l2_array: CacheArray::new(cfg.l2.sets(cfg.line_bytes), cfg.l2.ways as usize),
            events: EventQueue::new(),
            counters: CounterSet::default(),
            tag_latency: cfg.l2.latency,
            data_latency: cfg.l2.extra_data_latency,
            mem_latency: cfg.mem_latency,
            ctrl_bytes: cfg.noc.ctrl_msg_bytes,
            data_bytes: cfg.noc.data_msg_bytes,
            faults: None,
        }
    }

    /// Stall completing replies according to a deterministic delay
    /// schedule (only the `delay` component of the rates is meaningful for
    /// a directory — it cannot "drop" its own transaction).
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = Some(faults);
    }

    /// Soft-fault totals from the injector, if one is attached.
    pub fn fault_stats(&self) -> Option<glocks_sim_base::fault::FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Lines with a transaction in flight (diagnostics input).
    pub fn busy_lines(&self) -> usize {
        self.entries.values().filter(|e| e.busy.is_some()).count()
    }

    /// Requests queued behind busy lines (diagnostics input).
    pub fn queued_requests(&self) -> usize {
        self.entries.values().map(|e| e.pending.len()).sum()
    }

    /// Directory-visible state of a line (tests/invariants).
    pub fn state_of(&self, line: LineAddr) -> DirState {
        self.entries
            .get(&line.0)
            .map(|e| e.state)
            .unwrap_or(DirState::Uncached)
    }

    /// True when no transaction or queued request exists anywhere.
    pub fn is_quiescent(&self) -> bool {
        self.events.is_empty()
            && self
                .entries
                .values()
                .all(|e| e.busy.is_none() && e.pending.is_empty())
    }

    fn send(&mut self, msg: CoherenceMsg, dst: CoreId, now: Cycle, net: &mut MeshNoc<SysMsg>) {
        let bytes = if msg.carries_data() { self.data_bytes } else { self.ctrl_bytes };
        net.inject(
            Packet {
                src: self.tile,
                dst: TileId(dst.0),
                bytes,
                class: msg.traffic_class(),
                injected_at: now,
                payload: SysMsg::Coh(msg),
            },
            now,
        );
    }

    fn entry(&mut self, line: LineAddr) -> &mut DirEntry {
        self.entries.entry(line.0).or_insert_with(DirEntry::new)
    }

    /// Probe the L2 data array for `line`; returns the extra latency beyond
    /// the tag access (data array, plus memory on a miss) and installs the
    /// line on a miss.
    fn data_fetch_latency(&mut self, line: LineAddr) -> u64 {
        self.counters.add("l2_access", 1);
        if self.l2_array.lookup(line).is_some() {
            self.counters.add("l2_hit", 1);
            self.data_latency
        } else {
            self.counters.add("l2_miss", 1);
            self.counters.add("mem_access", 1);
            // Silent eviction: the array is timing-only.
            self.l2_array.insert(line, ());
            self.data_latency + self.mem_latency
        }
    }

    /// Pre-install a line into the L2 data array without timing or
    /// counters — models data produced by the (untimed) initialization
    /// phase that precedes the measured parallel phase.
    pub fn prewarm(&mut self, line: LineAddr) {
        if self.l2_array.lookup(line).is_none() {
            self.l2_array.insert(line, ());
        }
    }

    /// Record a data write into the L2 array (WbData/PutM install).
    fn data_install(&mut self, line: LineAddr) {
        self.counters.add("l2_access", 1);
        if self.l2_array.lookup(line).is_none() {
            self.l2_array.insert(line, ());
        }
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.mark("directory");
        // The entry map is unordered; serialize sorted by line address.
        let mut lines: Vec<u64> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        w.usize(lines.len());
        for line in lines {
            let e = &self.entries[&line];
            w.u64(line);
            e.state.save_state(w);
            match &e.busy {
                None => w.bool(false),
                Some(b) => {
                    w.bool(true);
                    w.u16(b.requester.0);
                    b.kind.save_state(w);
                    b.phase.save_state(w);
                }
            }
            w.usize(e.pending.len());
            for (c, k) in &e.pending {
                w.u16(c.0);
                k.save_state(w);
            }
        }
        self.l2_array.save_state(w, &mut |_, ()| {});
        self.events.save_state(w, &mut |w, ev| ev.save_state(w));
        self.counters.save_state(w);
        w.bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.save_state(w);
        }
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect("directory")?;
        let n = r.usize()?;
        self.entries.clear();
        for _ in 0..n {
            let line = r.u64()?;
            let state = DirState::load_state(r)?;
            let busy = if r.bool()? {
                Some(Busy {
                    requester: CoreId(r.u16()?),
                    kind: ReqKind::load_state(r)?,
                    phase: Phase::load_state(r)?,
                })
            } else {
                None
            };
            let n_pending = r.usize()?;
            let mut pending = VecDeque::with_capacity(n_pending);
            for _ in 0..n_pending {
                let c = CoreId(r.u16()?);
                let k = ReqKind::load_state(r)?;
                pending.push_back((c, k));
            }
            self.entries.insert(line, DirEntry { state, busy, pending });
        }
        self.l2_array.load_state(r, &mut |_| Ok(()))?;
        self.events.load_state(r, &mut DirEvent::load_state)?;
        self.counters.load_state(r)?;
        if r.bool()? {
            match self.faults.as_mut() {
                Some(f) => f.load_state(r)?,
                None => {
                    return Err(SnapError::Corrupt { what: "directory fault injector presence" })
                }
            }
        } else if self.faults.is_some() {
            return Err(SnapError::Corrupt { what: "directory fault injector presence" });
        }
        Ok(())
    }

    /// Handle a message addressed to this directory.
    pub fn handle_msg(
        &mut self,
        msg: CoherenceMsg,
        now: Cycle,
        _store: &mut WordStore,
        net: &mut MeshNoc<SysMsg>,
    ) {
        let line = msg.line();
        match msg {
            CoherenceMsg::WbData { from, .. } => {
                let e = self.entry(line);
                match e.busy {
                    Some(Busy { phase: Phase::AwaitOwner { owner }, .. }) if owner == from => {
                        self.counters.add("dir_c2c", 1);
                        self.owner_responded(line, from, true, false, now, net);
                    }
                    // Stale WbData from a previous owner that raced its own
                    // eviction: the data was already absorbed via PutM.
                    _ => self.counters.add("dir_stale_wbdata", 1),
                }
            }
            CoherenceMsg::InvAck { from: _, .. } => {
                let e = self.entry(line);
                let Some(busy) = e.busy.as_mut() else {
                    unreachable!("InvAck for an idle line")
                };
                let Phase::AwaitAcks { acks_left } = &mut busy.phase else {
                    unreachable!("InvAck outside collection phase")
                };
                *acks_left -= 1;
                if *acks_left == 0 {
                    self.acks_complete(line, now);
                }
            }
            CoherenceMsg::PutM { from, .. } | CoherenceMsg::PutE { from, .. } => {
                let with_data = matches!(msg, CoherenceMsg::PutM { .. });
                let e = self.entry(line);
                match e.busy {
                    Some(Busy { phase: Phase::AwaitOwner { owner }, .. }) if owner == from => {
                        // Crossed eviction: this *is* the owner's response.
                        self.counters.add("dir_crossed_put", 1);
                        self.owner_responded(line, from, with_data, true, now, net);
                    }
                    _ => {
                        // Normal (or stale) eviction: a regular transaction.
                        let (core, kind) = ReqKind::of(&msg).expect("put is a request");
                        self.enqueue(line, core, kind, now);
                    }
                }
            }
            _ => {
                let (core, kind) = ReqKind::of(&msg).expect("directory-bound request");
                self.enqueue(line, core, kind, now);
            }
        }
    }

    fn enqueue(&mut self, line: LineAddr, core: CoreId, kind: ReqKind, now: Cycle) {
        let e = self.entry(line);
        e.pending.push_back((core, kind));
        if e.busy.is_none() {
            self.start_next(line, now);
        }
    }

    fn start_next(&mut self, line: LineAddr, now: Cycle) {
        let tag_latency = self.tag_latency;
        let e = self.entry(line);
        debug_assert!(e.busy.is_none());
        let Some((requester, kind)) = e.pending.pop_front() else {
            return;
        };
        e.busy = Some(Busy { requester, kind, phase: Phase::Deciding });
        trace_event!(
            TraceMask::COHERENCE,
            now,
            "dir{}: start {kind:?} on {line:?} for core {requester}",
            self.tile
        );
        self.counters.add("dir_txn", 1);
        self.events.schedule(now + tag_latency, DirEvent::Act(line));
    }

    /// Process due internal events.
    pub fn tick(&mut self, now: Cycle, _store: &mut WordStore, net: &mut MeshNoc<SysMsg>) {
        while let Some((at, ev)) = self.events.pop_due(now) {
            match ev {
                DirEvent::StartNext(line) => {
                    if self.entry(line).busy.is_none() {
                        self.start_next(line, at);
                    }
                }
                DirEvent::Act(line) => self.act(line, at, net),
                DirEvent::Finish { line, msg, dst, final_state, put_ack_to } => {
                    trace_event!(
                        TraceMask::COHERENCE,
                        at,
                        "dir{}: finish {line:?} -> {msg:?} to core {dst}, state {final_state:?}",
                        self.tile
                    );
                    self.send(msg, dst, at, net);
                    if let Some(victim) = put_ack_to {
                        self.send(CoherenceMsg::PutAck { line }, victim, at, net);
                    }
                    let e = self.entry(line);
                    e.state = final_state;
                    e.busy = None;
                    self.events.schedule(at + 1, DirEvent::StartNext(line));
                }
            }
        }
    }

    /// Tag latency elapsed: dispatch on (state, kind).
    fn act(&mut self, line: LineAddr, now: Cycle, net: &mut MeshNoc<SysMsg>) {
        let e = self.entry(line);
        let busy = e.busy.as_mut().expect("Act on idle line");
        let requester = busy.requester;
        let state = e.state;
        // An upgrade by a core that is no longer a sharer (its copy raced an
        // invalidation) degrades to a full GetM.
        let mut degraded = false;
        if busy.kind == ReqKind::UpgradeM {
            let still_sharer =
                matches!(state, DirState::Shared(s) if s & (1u128 << requester.index()) != 0);
            if !still_sharer {
                busy.kind = ReqKind::GetM;
                degraded = true;
            }
        }
        let kind = busy.kind;
        if degraded {
            self.counters.add("dir_upgrade_degraded", 1);
        }
        match (state, kind) {
            // ---- reads ----
            (DirState::Uncached, ReqKind::GetS) => {
                let lat = self.data_fetch_latency(line);
                self.finish(
                    line,
                    CoherenceMsg::DataE { line },
                    requester,
                    DirState::Owned(requester),
                    None,
                    now + lat,
                );
            }
            (DirState::Shared(s), ReqKind::GetS) => {
                let lat = self.data_fetch_latency(line);
                self.finish(
                    line,
                    CoherenceMsg::DataS { line },
                    requester,
                    DirState::Shared(s | (1u128 << requester.index())),
                    None,
                    now + lat,
                );
            }
            (DirState::Owned(owner), ReqKind::GetS) => {
                debug_assert_ne!(owner, requester, "owner re-requesting GetS");
                let e = self.entry(line);
                e.busy.as_mut().expect("busy").phase = Phase::AwaitOwner { owner };
                self.send(CoherenceMsg::FwdGetS { line }, owner, now, net);
            }
            // ---- writes ----
            (DirState::Uncached, ReqKind::GetM | ReqKind::UpgradeM) => {
                let lat = self.data_fetch_latency(line);
                self.finish(
                    line,
                    CoherenceMsg::DataM { line },
                    requester,
                    DirState::Owned(requester),
                    None,
                    now + lat,
                );
            }
            (DirState::Shared(s), ReqKind::GetM | ReqKind::UpgradeM) => {
                let invs = s & !(1u128 << requester.index());
                let n = invs.count_ones();
                if n == 0 {
                    // Sole (possibly stale-listed) sharer: grant directly.
                    if kind == ReqKind::UpgradeM {
                        self.finish(
                            line,
                            CoherenceMsg::GrantM { line },
                            requester,
                            DirState::Owned(requester),
                            None,
                            now,
                        );
                    } else {
                        let lat = self.data_fetch_latency(line);
                        self.finish(
                            line,
                            CoherenceMsg::DataM { line },
                            requester,
                            DirState::Owned(requester),
                            None,
                            now + lat,
                        );
                    }
                } else {
                    let e = self.entry(line);
                    e.busy.as_mut().expect("busy").phase = Phase::AwaitAcks { acks_left: n };
                    self.counters.add("dir_inv_sent", n as u64);
                    for c in 0..128u32 {
                        if invs & (1u128 << c) != 0 {
                            self.send(CoherenceMsg::Inv { line }, CoreId(c as u16), now, net);
                        }
                    }
                }
            }
            (DirState::Owned(owner), ReqKind::GetM | ReqKind::UpgradeM) => {
                debug_assert_ne!(owner, requester, "owner re-requesting GetM");
                let e = self.entry(line);
                e.busy.as_mut().expect("busy").phase = Phase::AwaitOwner { owner };
                self.send(CoherenceMsg::FwdGetM { line }, owner, now, net);
            }
            // ---- evictions ----
            (st, ReqKind::PutM | ReqKind::PutE) => {
                let is_owner = matches!(st, DirState::Owned(o) if o == requester);
                let final_state = if is_owner { DirState::Uncached } else { st };
                if is_owner && kind == ReqKind::PutM {
                    self.data_install(line);
                } else if !is_owner {
                    self.counters.add("dir_stale_put", 1);
                }
                self.finish(
                    line,
                    CoherenceMsg::PutAck { line },
                    requester,
                    final_state,
                    None,
                    now,
                );
            }
        }
    }

    /// Schedule the completing reply.
    fn finish(
        &mut self,
        line: LineAddr,
        msg: CoherenceMsg,
        dst: CoreId,
        final_state: DirState,
        put_ack_to: Option<CoreId>,
        at: Cycle,
    ) {
        // Injected fault: the completing reply stalls for extra cycles
        // (models a slow bank / flaky controller pipeline).
        let at = match self.faults.as_mut().map(|f| f.decide()) {
            Some(FaultDecision::Delay(extra)) => at + extra,
            _ => at,
        };
        let e = self.entry(line);
        e.busy.as_mut().expect("busy while finishing").phase = Phase::Completing;
        self.events.schedule(
            at,
            DirEvent::Finish { line, msg, dst, final_state, put_ack_to },
        );
    }

    /// The awaited owner answered — via `WbData` (kept data flowing through
    /// the protocol) or a crossed `PutM`/`PutE` (eviction in flight, which
    /// also needs a `PutAck`).
    fn owner_responded(
        &mut self,
        line: LineAddr,
        owner: CoreId,
        with_data: bool,
        crossed_put: bool,
        now: Cycle,
        net: &mut MeshNoc<SysMsg>,
    ) {
        let _ = net;
        let e = self.entry(line);
        let busy = *e.busy.as_ref().expect("owner response while idle");
        let requester = busy.requester;
        let extra = if with_data {
            self.data_install(line);
            self.data_latency
        } else {
            // Clean-exclusive eviction carried no data: fetch from L2/mem.
            self.data_fetch_latency(line)
        };
        let put_ack_to = crossed_put.then_some(owner);
        match busy.kind {
            ReqKind::GetS => {
                // On a crossed eviction the old owner kept no copy.
                let mut sharers = 1u128 << requester.index();
                if !crossed_put {
                    sharers |= 1u128 << owner.index();
                }
                self.finish(
                    line,
                    CoherenceMsg::DataS { line },
                    requester,
                    DirState::Shared(sharers),
                    put_ack_to,
                    now + extra,
                );
            }
            ReqKind::GetM | ReqKind::UpgradeM => {
                self.finish(
                    line,
                    CoherenceMsg::DataM { line },
                    requester,
                    DirState::Owned(requester),
                    put_ack_to,
                    now + extra,
                );
            }
            k => unreachable!("owner response during {k:?}"),
        }
    }

    /// All invalidation acks arrived: grant M.
    fn acks_complete(&mut self, line: LineAddr, now: Cycle) {
        let e = self.entry(line);
        let busy = *e.busy.as_ref().expect("acks for idle line");
        let requester = busy.requester;
        match busy.kind {
            ReqKind::UpgradeM => {
                self.finish(
                    line,
                    CoherenceMsg::GrantM { line },
                    requester,
                    DirState::Owned(requester),
                    None,
                    now,
                );
            }
            ReqKind::GetM => {
                let lat = self.data_fetch_latency(line);
                self.finish(
                    line,
                    CoherenceMsg::DataM { line },
                    requester,
                    DirState::Owned(requester),
                    None,
                    now + lat,
                );
            }
            k => unreachable!("ack collection during {k:?}"),
        }
    }
}
