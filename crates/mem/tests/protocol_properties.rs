//! Property-based tests of the MESI memory system.
//!
//! Random multi-core operation streams are executed on the simulator and on
//! a trivially-correct sequential oracle. Because the simulated cores are
//! blocking and the test drives them in a fixed serialization (each op
//! completes before the next conflicting one is observed), per-word final
//! values must match an atomic interleaving, and the system invariants must
//! hold at every quiescent point.

use glocks_mem::{MemOp, MemorySystem, RmwKind};
use glocks_sim_base::{Addr, CmpConfig, CoreId, Cycle};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct OpSpec {
    core: u16,
    word: u8,
    kind: u8,
    operand: u8,
}

fn op_strategy(cores: u16, words: u8) -> impl Strategy<Value = OpSpec> {
    (0..cores, 0..words, 0u8..6, any::<u8>()).prop_map(|(core, word, kind, operand)| OpSpec {
        core,
        word,
        kind,
        operand,
    })
}

fn to_mem_op(s: &OpSpec) -> MemOp {
    // Words spread over several cache lines and home tiles.
    let addr = Addr(0x4_0000 + s.word as u64 * 8);
    match s.kind {
        0 => MemOp::Load(addr),
        1 => MemOp::Store(addr, s.operand as u64),
        2 => MemOp::Rmw(addr, RmwKind::TestAndSet),
        3 => MemOp::Rmw(addr, RmwKind::Swap(s.operand as u64)),
        4 => MemOp::Rmw(addr, RmwKind::FetchAdd(s.operand as u64)),
        _ => MemOp::Rmw(
            addr,
            RmwKind::CompareAndSwap { expected: s.operand as u64 % 4, new: s.operand as u64 },
        ),
    }
}

/// Sequential oracle: apply the op to a plain array.
fn oracle_apply(mem: &mut [u64], op: &MemOp) -> u64 {
    let idx = ((op.addr().0 - 0x4_0000) / 8) as usize;
    match *op {
        MemOp::Load(_) => mem[idx],
        MemOp::Store(_, v) => {
            mem[idx] = v;
            0
        }
        MemOp::Rmw(_, kind) => {
            let (new, old) = kind.apply(mem[idx]);
            mem[idx] = new;
            old
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One core at a time (fully serialized): the simulator must agree with
    /// the sequential oracle on every returned value.
    #[test]
    fn serialized_ops_match_oracle(ops in proptest::collection::vec(op_strategy(8, 16), 1..60)) {
        let cfg = CmpConfig::paper_baseline().with_cores(8);
        let mut sys = MemorySystem::new(&cfg);
        let mut oracle = vec![0u64; 16];
        let mut now: Cycle = 0;
        for spec in &ops {
            let op = to_mem_op(spec);
            let core = CoreId(spec.core);
            sys.submit(core, op, now);
            let result = loop {
                sys.tick(now);
                now += 1;
                if let Some(r) = sys.take_result(core) {
                    break r;
                }
                prop_assert!(now < 10_000_000, "operation hung");
            };
            let expect = oracle_apply(&mut oracle, &op);
            if !matches!(op, MemOp::Store(..)) {
                prop_assert_eq!(result.value, expect, "op {:?}", op);
            }
        }
        // Let writebacks settle, then check invariants and final memory.
        for _ in 0..20_000 {
            sys.tick(now);
            now += 1;
        }
        prop_assert!(sys.is_quiescent());
        sys.check_invariants();
        for (i, &v) in oracle.iter().enumerate() {
            prop_assert_eq!(sys.store().load(Addr(0x4_0000 + i as u64 * 8)), v);
        }
    }

    /// All cores fire concurrently at random offsets: every op completes,
    /// invariants hold at quiescence, and commutative updates (fetch&add)
    /// sum correctly.
    #[test]
    fn concurrent_fetch_adds_sum(
        plan in proptest::collection::vec((0u16..16, 0u8..4, 1u64..5), 1..80)
    ) {
        let cfg = CmpConfig::paper_baseline().with_cores(16);
        let mut sys = MemorySystem::new(&cfg);
        // Each core executes its own queue of fetch&adds.
        let mut queues: Vec<Vec<(u8, u64)>> = vec![Vec::new(); 16];
        let mut expected = [0u64; 4];
        for &(core, word, delta) in &plan {
            queues[core as usize].push((word, delta));
            expected[word as usize] += delta;
        }
        let mut cursors = [0usize; 16];
        let mut inflight = [false; 16];
        let mut now: Cycle = 0;
        loop {
            let mut all_done = true;
            for c in 0..16u16 {
                let q = &queues[c as usize];
                if inflight[c as usize] {
                    all_done = false;
                    if let Some(_r) = sys.take_result(CoreId(c)) {
                        inflight[c as usize] = false;
                        cursors[c as usize] += 1;
                    }
                } else if cursors[c as usize] < q.len() {
                    all_done = false;
                    let (word, delta) = q[cursors[c as usize]];
                    let addr = Addr(0x8_0000 + word as u64 * 8);
                    sys.submit(CoreId(c), MemOp::Rmw(addr, RmwKind::FetchAdd(delta)), now);
                    inflight[c as usize] = true;
                }
            }
            if all_done {
                break;
            }
            sys.tick(now);
            now += 1;
            prop_assert!(now < 50_000_000, "workload hung at cycle {}", now);
        }
        for _ in 0..20_000 {
            sys.tick(now);
            now += 1;
        }
        prop_assert!(sys.is_quiescent());
        sys.check_invariants();
        for (w, &want) in expected.iter().enumerate() {
            prop_assert_eq!(
                sys.store().load(Addr(0x8_0000 + w as u64 * 8)),
                want,
                "word {} lost updates", w
            );
        }
    }
}
