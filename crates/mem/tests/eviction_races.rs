//! Scenario tests that force the protocol's hairiest interactions:
//! dirty/clean evictions racing forwarded probes, deferred misses on
//! lines with in-flight writebacks, and upgrade/invalidation crossings.
//! The simulator is deterministic, so these scenarios replay identically.

use glocks_mem::{MemOp, MemorySystem, RmwKind};
use glocks_sim_base::{Addr, CmpConfig, CoreId, Cycle};

/// Lines 0, 128, 256, ... all map to L1 set 0 (128 sets × 64 B = 8 KiB).
const SET_STRIDE: u64 = 128 * 64;

fn system(cores: usize) -> MemorySystem {
    MemorySystem::new(&CmpConfig::paper_baseline().with_cores(cores))
}

fn run_op(sys: &mut MemorySystem, core: CoreId, op: MemOp, start: Cycle) -> (u64, Cycle) {
    sys.submit(core, op, start);
    let mut now = start;
    loop {
        sys.tick(now);
        if let Some(r) = sys.take_result(core) {
            return (r.value, now);
        }
        now += 1;
        assert!(now < start + 1_000_000, "op hung");
    }
}

fn settle(sys: &mut MemorySystem, from: Cycle) -> Cycle {
    let mut now = from;
    while !sys.is_quiescent() {
        now += 1;
        sys.tick(now);
        assert!(now < from + 100_000, "failed to settle");
    }
    now
}

/// Force a dirty eviction (PutM) while a remote core concurrently demands
/// the same line (FwdGetM): the WB-buffer handshake must resolve the race
/// and preserve the value.
#[test]
fn dirty_eviction_races_remote_getm() {
    let mut sys = system(8);
    // Core 0 dirties 4 lines of set 0 (fills all ways).
    let mut now = 0;
    for w in 0..4u64 {
        let (_, t) = run_op(&mut sys, CoreId(0), MemOp::Store(Addr(w * SET_STRIDE), w + 1), now);
        now = t + 1;
    }
    // 5th dirty store to the same set evicts the LRU victim (line 0, value 1)
    // via PutM, while core 1 simultaneously RMWs line 0.
    sys.submit(CoreId(0), MemOp::Store(Addr(4 * SET_STRIDE), 5), now);
    sys.submit(CoreId(1), MemOp::Rmw(Addr(0), RmwKind::FetchAdd(10)), now);
    let mut done = 0;
    let mut old_seen = 0;
    while done < 2 {
        sys.tick(now);
        if sys.take_result(CoreId(0)).is_some() {
            done += 1;
        }
        if let Some(r) = sys.take_result(CoreId(1)) {
            old_seen = r.value;
            done += 1;
        }
        now += 1;
        assert!(now < 1_000_000);
    }
    let now = settle(&mut sys, now);
    assert_eq!(old_seen, 1, "core 1 must observe the evicted dirty value");
    assert_eq!(sys.store().load(Addr(0)), 11);
    sys.check_invariants();
    let _ = now;
}

/// Clean-exclusive eviction (PutE) racing a remote read (FwdGetS).
#[test]
fn clean_eviction_races_remote_gets() {
    let mut sys = system(8);
    let mut now = 0;
    // Core 0 reads 4 distinct set-0 lines: each granted Exclusive.
    for w in 0..4u64 {
        let (_, t) = run_op(&mut sys, CoreId(0), MemOp::Load(Addr(w * SET_STRIDE)), now);
        now = t + 1;
    }
    // Pre-set line 0's value through another core, then re-read by core 0?
    // Simpler: evict line 0 (clean E) by a 5th load while core 2 loads it.
    sys.submit(CoreId(0), MemOp::Load(Addr(4 * SET_STRIDE)), now);
    sys.submit(CoreId(2), MemOp::Load(Addr(0)), now);
    let mut done = 0;
    while done < 2 {
        sys.tick(now);
        if sys.take_result(CoreId(0)).is_some() {
            done += 1;
        }
        if sys.take_result(CoreId(2)).is_some() {
            done += 1;
        }
        now += 1;
        assert!(now < 1_000_000);
    }
    settle(&mut sys, now);
    sys.check_invariants();
}

/// A miss on a line whose writeback is still in flight must stall until
/// the PutAck and then complete correctly (the WB-buffer deferral path).
#[test]
fn reload_of_inflight_writeback() {
    let mut sys = system(4);
    let mut now = 0;
    for w in 0..4u64 {
        let (_, t) = run_op(&mut sys, CoreId(0), MemOp::Store(Addr(w * SET_STRIDE), w + 1), now);
        now = t + 1;
    }
    // Evict line 0, then immediately reload it: the L1 must defer the
    // GetS until its own PutM is acknowledged.
    sys.submit(CoreId(0), MemOp::Store(Addr(4 * SET_STRIDE), 5), now);
    let mut done = false;
    while !done {
        sys.tick(now);
        done = sys.take_result(CoreId(0)).is_some();
        now += 1;
    }
    // Reload straight away — likely while PutM is still in flight.
    let (v, t) = run_op(&mut sys, CoreId(0), MemOp::Load(Addr(0)), now);
    assert_eq!(v, 1);
    settle(&mut sys, t);
    sys.check_invariants();
}

/// Two sharers race upgrades on the same line: exactly one wins the first
/// grant; both eventually write; no update is lost.
#[test]
fn crossing_upgrades() {
    let mut sys = system(4);
    let a = Addr(0x7040);
    // Both cores obtain S copies.
    let (_, t1) = run_op(&mut sys, CoreId(0), MemOp::Load(a), 0);
    let (_, t2) = run_op(&mut sys, CoreId(1), MemOp::Load(a), t1 + 1);
    // Simultaneous RMWs: both are upgrades from S.
    let mut now = t2 + 1;
    sys.submit(CoreId(0), MemOp::Rmw(a, RmwKind::FetchAdd(1)), now);
    sys.submit(CoreId(1), MemOp::Rmw(a, RmwKind::FetchAdd(1)), now);
    let mut olds = Vec::new();
    while olds.len() < 2 {
        sys.tick(now);
        for c in [CoreId(0), CoreId(1)] {
            if let Some(r) = sys.take_result(c) {
                olds.push(r.value);
            }
        }
        now += 1;
        assert!(now < 1_000_000);
    }
    olds.sort_unstable();
    assert_eq!(olds, vec![0, 1], "upgrades must serialize");
    assert_eq!(sys.store().load(a), 2);
    settle(&mut sys, now);
    sys.check_invariants();
}

/// Hammering one set from many cores with dirty lines: every eviction
/// handshake, forward, and refill must preserve all values.
#[test]
fn set_conflict_storm() {
    let mut sys = system(8);
    let mut now = 0;
    // 8 cores × 6 lines, all in L1 set 0, written round-robin twice.
    for round in 0..2u64 {
        for w in 0..6u64 {
            for c in 0..8u16 {
                let addr = Addr(w * SET_STRIDE + c as u64 * 8);
                let (_, t) =
                    run_op(&mut sys, CoreId(c), MemOp::Store(addr, round * 100 + w * 8 + c as u64), now);
                now = t + 1;
            }
        }
    }
    settle(&mut sys, now);
    sys.check_invariants();
    for w in 0..6u64 {
        for c in 0..8u64 {
            assert_eq!(
                sys.store().load(Addr(w * SET_STRIDE + c * 8)),
                100 + w * 8 + c,
                "line {w} word {c}"
            );
        }
    }
}
