//! Per-thread execution-time attribution — Figure 8's four categories,
//! plus an `Idle` bucket for open-loop service workloads (a core sleeping
//! between request arrivals is doing none of the paper's four things).

use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};

/// Where a core cycle is spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Computation ("Busy").
    Busy,
    /// Waiting on workload memory operations ("Memory").
    Memory,
    /// Inside lock acquire/release ("Lock").
    Lock,
    /// Inside a barrier episode ("Barrier").
    Barrier,
    /// Sleeping until a scheduled arrival (`Action::WaitUntil`). Closed-loop
    /// workloads never charge this, so Figure 8's four-way split is intact.
    Idle,
}

/// Cycle counts per category for one thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    pub busy: u64,
    pub memory: u64,
    pub lock: u64,
    pub barrier: u64,
    /// Open-loop inter-arrival sleep; always 0 for closed-loop workloads.
    pub idle: u64,
    /// Dynamic instructions executed (energy-model input).
    pub instructions: u64,
}

impl Breakdown {
    #[inline]
    pub fn charge(&mut self, cat: Category, cycles: u64) {
        match cat {
            Category::Busy => self.busy += cycles,
            Category::Memory => self.memory += cycles,
            Category::Lock => self.lock += cycles,
            Category::Barrier => self.barrier += cycles,
            Category::Idle => self.idle += cycles,
        }
    }

    /// Total attributed cycles (including idle sleep).
    pub fn total(&self) -> u64 {
        self.busy + self.memory + self.lock + self.barrier + self.idle
    }

    /// Attributed cycles spent doing work, excluding inter-arrival sleep —
    /// the denominator for Figure 8's four-way fractions.
    pub fn active(&self) -> u64 {
        self.busy + self.memory + self.lock + self.barrier
    }

    /// Element-wise sum (for fleet averages).
    pub fn merge(&mut self, other: &Breakdown) {
        self.busy += other.busy;
        self.memory += other.memory;
        self.lock += other.lock;
        self.barrier += other.barrier;
        self.idle += other.idle;
        self.instructions += other.instructions;
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        for v in [self.busy, self.memory, self.lock, self.barrier, self.idle, self.instructions] {
            w.u64(v);
        }
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.busy = r.u64()?;
        self.memory = r.u64()?;
        self.lock = r.u64()?;
        self.barrier = r.u64()?;
        self.idle = r.u64()?;
        self.instructions = r.u64()?;
        Ok(())
    }

    /// Fractions of the active (non-idle) cycles per category
    /// `[busy, memory, lock, barrier]`; zeros if nothing attributed.
    /// Idle sleep is excluded so the Figure 8 split stays a distribution
    /// over working cycles even for open-loop service runs.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.active();
        if t == 0 {
            return [0.0; 4];
        }
        [
            self.busy as f64 / t as f64,
            self.memory as f64 / t as f64,
            self.lock as f64 / t as f64,
            self.barrier as f64 / t as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut b = Breakdown::default();
        b.charge(Category::Busy, 10);
        b.charge(Category::Lock, 30);
        b.charge(Category::Memory, 40);
        b.charge(Category::Barrier, 20);
        assert_eq!(b.total(), 100);
        let f = b.fractions();
        assert_eq!(f, [0.1, 0.4, 0.3, 0.2]);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(Breakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a =
            Breakdown { busy: 1, memory: 2, lock: 3, barrier: 4, idle: 0, instructions: 5 };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert_eq!(a.instructions, 10);
    }

    #[test]
    fn idle_excluded_from_fractions_but_counted_in_total() {
        let mut b = Breakdown::default();
        b.charge(Category::Busy, 30);
        b.charge(Category::Memory, 10);
        b.charge(Category::Idle, 60);
        assert_eq!(b.total(), 100);
        assert_eq!(b.active(), 40);
        assert_eq!(b.fractions(), [0.75, 0.25, 0.0, 0.0]);
    }
}
