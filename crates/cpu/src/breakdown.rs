//! Per-thread execution-time attribution — Figure 8's four categories.

use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};

/// Where a core cycle is spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Computation ("Busy").
    Busy,
    /// Waiting on workload memory operations ("Memory").
    Memory,
    /// Inside lock acquire/release ("Lock").
    Lock,
    /// Inside a barrier episode ("Barrier").
    Barrier,
}

/// Cycle counts per category for one thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    pub busy: u64,
    pub memory: u64,
    pub lock: u64,
    pub barrier: u64,
    /// Dynamic instructions executed (energy-model input).
    pub instructions: u64,
}

impl Breakdown {
    #[inline]
    pub fn charge(&mut self, cat: Category, cycles: u64) {
        match cat {
            Category::Busy => self.busy += cycles,
            Category::Memory => self.memory += cycles,
            Category::Lock => self.lock += cycles,
            Category::Barrier => self.barrier += cycles,
        }
    }

    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.memory + self.lock + self.barrier
    }

    /// Element-wise sum (for fleet averages).
    pub fn merge(&mut self, other: &Breakdown) {
        self.busy += other.busy;
        self.memory += other.memory;
        self.lock += other.lock;
        self.barrier += other.barrier;
        self.instructions += other.instructions;
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        for v in [self.busy, self.memory, self.lock, self.barrier, self.instructions] {
            w.u64(v);
        }
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.busy = r.u64()?;
        self.memory = r.u64()?;
        self.lock = r.u64()?;
        self.barrier = r.u64()?;
        self.instructions = r.u64()?;
        Ok(())
    }

    /// Fractions of the total per category
    /// `[busy, memory, lock, barrier]`; zeros if nothing attributed.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        [
            self.busy as f64 / t as f64,
            self.memory as f64 / t as f64,
            self.lock as f64 / t as f64,
            self.barrier as f64 / t as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut b = Breakdown::default();
        b.charge(Category::Busy, 10);
        b.charge(Category::Lock, 30);
        b.charge(Category::Memory, 40);
        b.charge(Category::Barrier, 20);
        assert_eq!(b.total(), 100);
        let f = b.fractions();
        assert_eq!(f, [0.1, 0.4, 0.3, 0.2]);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(Breakdown::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Breakdown { busy: 1, memory: 2, lock: 3, barrier: 4, instructions: 5 };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert_eq!(a.instructions, 10);
    }
}
