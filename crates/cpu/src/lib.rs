//! The simulated cores and the thread-program abstraction.
//!
//! A workload thread is a resumable state machine yielding [`Action`]s:
//! computation, memory operations, lock acquire/release and barriers. The
//! per-core driver ([`core::Core`]) expands lock and barrier actions into
//! *scripts* supplied by a lock backend (a software lock algorithm over
//! simulated memory operations, or the GLocks hardware's register
//! interface) and attributes every cycle to one of the four categories of
//! the paper's Figure 8 breakdown: **Busy**, **Memory**, **Lock**,
//! **Barrier**.
//!
//! The paper's grAC contention analysis (Figure 7, Eqs. 1–3) is fed by
//! [`tracker::LockTracker`], which samples the number of concurrent
//! requesters of every lock on a cycle-by-cycle basis and enforces mutual
//! exclusion as a checked invariant.

pub mod breakdown;
pub mod core;
pub mod program;
pub mod tracker;

pub use crate::core::{Backends, Core, CoreActivity};
pub use breakdown::{Breakdown, Category};
pub use program::{Action, BarrierBackend, FixedScript, LockBackend, Script, Step, Workload};
pub use tracker::LockTracker;
