//! Thread programs, scripts and backend traits.

use glocks_mem::MemOp;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Cycle, LockId, ThreadId};

/// What a workload thread asks its core to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Execute `n` instructions of pure computation
    /// (`ceil(n / issue_width)` cycles on the 2-way core).
    Compute(u64),
    /// Issue one memory operation and wait for it.
    Mem(MemOp),
    /// Acquire a workload lock. The lock mapping decides whether this is a
    /// software algorithm or a hardware GLock.
    Acquire(LockId),
    /// Release a workload lock.
    Release(LockId),
    /// Wait at the global barrier.
    Barrier,
    /// Sleep until the given absolute cycle, then resume the workload with
    /// `last` = the current cycle. A target at or before the current cycle
    /// completes immediately at zero cost, so `WaitUntil(0)` doubles as a
    /// clock read. This is the open-loop request-injection point: an
    /// arrival-driven workload sleeps here between scheduled requests, and
    /// the sleep is attributed to the `Idle` breakdown category rather than
    /// any of Figure 8's four working categories.
    WaitUntil(Cycle),
    /// This thread has finished the parallel phase.
    Done,
}

/// What a lock/barrier script asks the core to do next. Scripts interact
/// with devices (GLock registers, ideal-lock queues) through shared state
/// they carry internally, so only two primitive step kinds are needed —
/// exactly mirroring Figure 5, where `GL_Lock` is a register write plus a
/// branch loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Execute `n` instructions (polling loops yield `Compute(1)` per
    /// iteration).
    Compute(u64),
    /// Issue one memory operation and wait for it; the script is resumed
    /// with the loaded/old value.
    Mem(MemOp),
    /// The script has finished (lock acquired / released / barrier passed).
    Done,
}

/// A resumable sub-program (one lock acquire, one release, one barrier
/// episode). `resume` is called with the result of the previously returned
/// step (the loaded/old value of a `Mem` step, else 0).
pub trait Script {
    fn resume(&mut self, last: u64) -> Step;

    /// Whether this script is currently an *inert register-poll spin*:
    /// until some device flips the register it polls, every `resume` will
    /// return `Step::Compute(1)` (one `bnz reg, loop` iteration) and leave
    /// the script in the same position. Declaring it lets the event-driven
    /// runner replicate those poll cycles in bulk instead of executing
    /// them one by one; the polled device's own `next_event` is what
    /// bounds the jump, so a script may only return `true` while the
    /// register flip it waits for is produced by a component the runner
    /// polls for wakes. The default (`false`) keeps a script hot, which is
    /// always safe.
    fn idle_spin(&self) -> bool {
        false
    }

    /// Serialize this script's resumable position for a checkpoint. The
    /// default refuses: a backend that wants checkpointing must implement
    /// it on every script it manufactures — silently saving nothing would
    /// corrupt the restore instead of failing it.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Err(SnapError::Unsupported { what: "script snapshot" })
    }
}

/// A workload thread: one instance per simulated thread. `next` is called
/// when the previous action completed; `last` carries the value of a
/// completed `Mem` action (else 0).
pub trait Workload {
    fn next(&mut self, last: u64) -> Action;

    /// Serialize the thread's program counter and loop state. Defaults to
    /// refusing, so only workloads that opted in can be checkpointed.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Err(SnapError::Unsupported { what: "workload snapshot" })
    }

    /// Restore state saved by [`Workload::save_state`] into a freshly
    /// constructed instance of the same workload.
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Err(SnapError::Unsupported { what: "workload snapshot" })
    }

    /// End-of-run hook: publish workload-level summary counters into the
    /// stats registry (called once per core from [`crate::Core::publish_stats`],
    /// only when stats are enabled). Closed-loop workloads have nothing
    /// beyond what the core already reports, so the default is a no-op;
    /// open-loop service workloads publish arrival/completion/drop totals
    /// here.
    fn publish_stats(&self) {}
}

/// A lock implementation: manufactures acquire/release scripts. Backends
/// share state among threads internally (e.g. the MCS tail pointer is a
/// simulated memory address; the GLock backend holds the per-core register
/// files).
pub trait LockBackend {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script>;
    fn release(&self, tid: ThreadId) -> Box<dyn Script>;
    /// Short name for reports ("MCS", "GLock", "TATAS", ...).
    fn name(&self) -> &'static str;

    /// Serialize the backend's shared state (queues, counters, regime
    /// flags). Per-thread script positions are saved separately through
    /// [`Script::save_state`]. Defaults to refusing.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Err(SnapError::Unsupported { what: "lock backend snapshot" })
    }

    /// Restore state saved by [`LockBackend::save_state`]. Backends hold
    /// their mutable state behind interior mutability (the same reason
    /// `acquire` takes `&self`), so restore does too.
    fn load_state(&self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Err(SnapError::Unsupported { what: "lock backend snapshot" })
    }

    /// Reconstruct an in-progress acquire script from its saved position.
    /// This must NOT go through [`LockBackend::acquire`]: manufacturing a
    /// fresh acquire has side effects (queue entries, pool pinning) that
    /// already happened before the checkpoint and are restored with the
    /// backend state.
    fn load_acquire_script(
        &self,
        _tid: ThreadId,
        _r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        Err(SnapError::Unsupported { what: "lock backend script restore" })
    }

    /// Reconstruct an in-progress release script from its saved position.
    fn load_release_script(
        &self,
        _tid: ThreadId,
        _r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        Err(SnapError::Unsupported { what: "lock backend script restore" })
    }
}

/// A barrier implementation: manufactures one wait-episode script per call.
pub trait BarrierBackend {
    fn wait(&self, tid: ThreadId) -> Box<dyn Script>;

    /// Serialize the barrier's shared state. Defaults to refusing.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Err(SnapError::Unsupported { what: "barrier backend snapshot" })
    }

    /// Restore state saved by [`BarrierBackend::save_state`].
    fn load_state(&self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Err(SnapError::Unsupported { what: "barrier backend snapshot" })
    }

    /// Reconstruct an in-progress wait script (see
    /// [`LockBackend::load_acquire_script`] for why this bypasses `wait`).
    fn load_wait_script(
        &self,
        _tid: ThreadId,
        _r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        Err(SnapError::Unsupported { what: "barrier backend script restore" })
    }
}

/// A trivial script that finishes after a fixed instruction count —
/// useful for ideal devices and tests.
pub struct FixedScript {
    left: Option<u64>,
}

impl FixedScript {
    /// A script costing `instructions` then done.
    pub fn new(instructions: u64) -> Self {
        FixedScript { left: Some(instructions) }
    }
}

impl FixedScript {
    /// Rebuild a script saved via its [`Script::save_state`].
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FixedScript { left: r.opt_u64()? })
    }
}

impl Script for FixedScript {
    fn resume(&mut self, _last: u64) -> Step {
        match self.left.take() {
            Some(n) => Step::Compute(n),
            None => Step::Done,
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.opt_u64(self.left);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_script_runs_once() {
        let mut s = FixedScript::new(3);
        assert_eq!(s.resume(0), Step::Compute(3));
        assert_eq!(s.resume(0), Step::Done);
        assert_eq!(s.resume(0), Step::Done);
    }
}
