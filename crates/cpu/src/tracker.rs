//! Lock bookkeeping: mutual-exclusion enforcement, grant-order logging
//! (fairness analysis) and the paper's cycle-by-cycle contention sampling.
//!
//! The paper computes every lock's contention rate (LCR, Eqs. 1 and 3) from
//! a post-mortem trace: "Every time a core tries to acquire a lock, we
//! register the number of concurrent requesters (grAC, ranging from 1 to
//! 32) on a cycle-by-cycle basis until the lock is granted". `sample` does
//! exactly that each cycle.

use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::stats::Histogram;
use glocks_sim_base::{Cycle, LockId, ThreadId};
use glocks_stats as gstats;

/// Per-lock live state and accumulated statistics.
#[derive(Clone, Debug)]
struct LockState {
    holder: Option<ThreadId>,
    /// Threads currently between acquire-start and grant.
    requesters: Vec<ThreadId>,
    /// grAC histogram: bin g = cycles with exactly g concurrent requesters
    /// (bin 0 unused).
    grac: Histogram,
    /// Grant order (bounded) for fairness analysis.
    grants: Vec<ThreadId>,
    acquires: u64,
    /// Sum over acquires of (grant − request) cycles.
    wait_cycles: u64,
    /// Request timestamps of in-flight acquires.
    since: Vec<(ThreadId, Cycle)>,
    /// Grant cycle of the current holder (critical-section hold time).
    held_since: Option<Cycle>,
    /// Cycle of the most recent release (owner-to-owner handoff latency).
    last_release: Option<Cycle>,
    /// Latency distributions, recorded live because they cannot be
    /// reconstructed from end-of-run totals. All three are `NONE` (free)
    /// when stats are off. The tracker sits above every lock backend, so
    /// GLock, MCS and TATAS get identical distribution coverage.
    wait_hist: gstats::HistId,
    hold_hist: gstats::HistId,
    handoff_hist: gstats::HistId,
}

const GRANT_LOG_CAP: usize = 200_000;

/// Tracks all workload locks during a simulation.
pub struct LockTracker {
    locks: Vec<LockState>,
    max_grac: usize,
}

impl LockTracker {
    /// `n_locks` workload locks on a CMP with `n_cores` cores (the grAC
    /// axis runs 1..=n_cores).
    pub fn new(n_locks: usize, n_cores: usize) -> Self {
        LockTracker {
            locks: (0..n_locks)
                .map(|i| LockState {
                    holder: None,
                    requesters: Vec::new(),
                    grac: Histogram::new(n_cores + 1),
                    grants: Vec::new(),
                    acquires: 0,
                    wait_cycles: 0,
                    since: Vec::new(),
                    held_since: None,
                    last_release: None,
                    wait_hist: gstats::hist(&format!("lock.{i}.acquire_wait_cycles")),
                    hold_hist: gstats::hist(&format!("lock.{i}.hold_cycles")),
                    handoff_hist: gstats::hist(&format!("lock.{i}.handoff_cycles")),
                })
                .collect(),
            max_grac: n_cores,
        }
    }

    pub fn n_locks(&self) -> usize {
        self.locks.len()
    }

    /// A thread began an acquire.
    pub fn on_acquire_start(&mut self, lock: LockId, tid: ThreadId, now: Cycle) {
        let l = &mut self.locks[lock.index()];
        debug_assert!(!l.requesters.contains(&tid), "{tid:?} double-requests {lock:?}");
        l.requesters.push(tid);
        l.since.push((tid, now));
    }

    /// A thread's acquire completed: it now owns the lock.
    ///
    /// Panics if mutual exclusion would be violated — this is the
    /// simulation-wide safety check for every lock implementation.
    pub fn on_acquired(&mut self, lock: LockId, tid: ThreadId, now: Cycle) {
        let l = &mut self.locks[lock.index()];
        assert!(
            l.holder.is_none(),
            "MUTUAL EXCLUSION VIOLATED: {tid:?} acquired {lock:?} held by {:?}",
            l.holder
        );
        l.holder = Some(tid);
        l.held_since = Some(now);
        if let Some(at) = l.last_release {
            // Handoff: release of the previous owner to grant of the next.
            gstats::hist_record(l.handoff_hist, now.saturating_sub(at));
            l.last_release = None;
        }
        if let Some(i) = l.requesters.iter().position(|&t| t == tid) {
            l.requesters.swap_remove(i);
        }
        if let Some(i) = l.since.iter().position(|&(t, _)| t == tid) {
            let (_, at) = l.since.swap_remove(i);
            l.wait_cycles += now.saturating_sub(at);
            gstats::hist_record(l.wait_hist, now.saturating_sub(at));
        }
        l.acquires += 1;
        if l.grants.len() < GRANT_LOG_CAP {
            l.grants.push(tid);
        }
    }

    /// A thread began its release: the critical section is over.
    pub fn on_release_start(&mut self, lock: LockId, tid: ThreadId, now: Cycle) {
        let l = &mut self.locks[lock.index()];
        assert_eq!(
            l.holder,
            Some(tid),
            "{tid:?} released {lock:?} it does not hold"
        );
        l.holder = None;
        if let Some(at) = l.held_since.take() {
            gstats::hist_record(l.hold_hist, now.saturating_sub(at));
        }
        l.last_release = Some(now);
    }

    /// Sample the grAC histograms — call once per simulated cycle.
    pub fn sample(&mut self) {
        for l in &mut self.locks {
            let n = l.requesters.len();
            if n > 0 {
                l.grac.record(n.min(self.max_grac), 1);
            }
        }
    }

    /// Record `k` consecutive cycles' worth of grAC samples at once.
    /// Equivalent to calling [`LockTracker::sample`] `k` times, valid
    /// whenever the requester sets are known not to change across those
    /// cycles (the idle-skip fast-forward: requester sets only mutate from
    /// core pulls, and no core pulls during a skip).
    pub fn sample_n(&mut self, k: u64) {
        for l in &mut self.locks {
            let n = l.requesters.len();
            if n > 0 {
                l.grac.record(n.min(self.max_grac), k);
            }
        }
    }

    /// The grAC histogram of one lock (bin g = cycles with g requesters).
    pub fn grac_histogram(&self, lock: LockId) -> &Histogram {
        &self.locks[lock.index()].grac
    }

    /// Total acquires granted on a lock.
    pub fn acquires(&self, lock: LockId) -> u64 {
        self.locks[lock.index()].acquires
    }

    /// Mean acquire wait in cycles.
    pub fn mean_wait(&self, lock: LockId) -> f64 {
        let l = &self.locks[lock.index()];
        if l.acquires == 0 {
            0.0
        } else {
            l.wait_cycles as f64 / l.acquires as f64
        }
    }

    /// Grant order (bounded log) for fairness analysis.
    pub fn grant_log(&self, lock: LockId) -> &[ThreadId] {
        &self.locks[lock.index()].grants
    }

    /// Current holder (tests).
    pub fn holder(&self, lock: LockId) -> Option<ThreadId> {
        self.locks[lock.index()].holder
    }

    /// Oldest outstanding acquire on a lock, as `(thread, request cycle)` —
    /// the runtime checker's raw material for bounded-waiting analysis.
    pub fn oldest_request(&self, lock: LockId) -> Option<(ThreadId, Cycle)> {
        self.locks[lock.index()]
            .since
            .iter()
            .copied()
            .min_by_key(|&(_, at)| at)
    }

    /// Non-panicking mutual-exclusion consistency scan for the runtime
    /// protocol checker; the tracker's own asserts fire first for bugs in
    /// this crate's bookkeeping, so a hit here means a lock backend
    /// confused the holder/requester picture.
    pub fn find_violation(&self) -> Option<String> {
        for (i, l) in self.locks.iter().enumerate() {
            if let Some(h) = l.holder {
                if l.requesters.contains(&h) {
                    return Some(format!(
                        "lock {i}: holder {h:?} still listed as a requester"
                    ));
                }
            }
            if l.requesters.len() != l.since.len() {
                return Some(format!(
                    "lock {i}: {} requesters but {} request timestamps",
                    l.requesters.len(),
                    l.since.len()
                ));
            }
        }
        None
    }

    /// Publish end-of-run per-lock totals into the stats registry (cheap
    /// no-op when stats are off; the live histograms record on the fly).
    pub fn publish_stats(&self) {
        if !gstats::is_enabled() {
            return;
        }
        for (i, l) in self.locks.iter().enumerate() {
            gstats::set(gstats::counter(&format!("lock.{i}.acquires")), l.acquires);
            gstats::set(
                gstats::counter(&format!("lock.{i}.wait_cycles_total")),
                l.wait_cycles,
            );
        }
    }

    /// No thread holds or requests any lock (end-of-run sanity).
    pub fn all_quiet(&self) -> bool {
        self.locks
            .iter()
            .all(|l| l.holder.is_none() && l.requesters.is_empty())
    }

    /// Serialize the tracker's live and accumulated state. The histogram
    /// registry ids (`wait_hist` etc.) are rebuilt by the constructor.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.mark("lock-tracker");
        w.usize(self.locks.len());
        for l in &self.locks {
            w.opt_u64(l.holder.map(|t| u64::from(t.0)));
            w.seq(&l.requesters, |w, t| w.u16(t.0));
            l.grac.save_state(w);
            w.seq(&l.grants, |w, t| w.u16(t.0));
            w.u64(l.acquires);
            w.u64(l.wait_cycles);
            w.seq(&l.since, |w, &(t, at)| {
                w.u16(t.0);
                w.u64(at);
            });
            w.opt_u64(l.held_since);
            w.opt_u64(l.last_release);
        }
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect("lock-tracker")?;
        if r.usize()? != self.locks.len() {
            return Err(SnapError::Corrupt { what: "lock tracker lock count" });
        }
        for l in &mut self.locks {
            l.holder = r.opt_u64()?.map(|t| ThreadId(t as u16));
            l.requesters = r.seq(|r| Ok(ThreadId(r.u16()?)))?;
            l.grac.load_state(r)?;
            l.grants = r.seq(|r| Ok(ThreadId(r.u16()?)))?;
            l.acquires = r.u64()?;
            l.wait_cycles = r.u64()?;
            l.since = r.seq(|r| {
                let t = ThreadId(r.u16()?);
                let at = r.u64()?;
                Ok((t, at))
            })?;
            l.held_since = r.opt_u64()?;
            l.last_release = r.opt_u64()?;
        }
        Ok(())
    }

    /// Eq. 3 of the paper: each lock's per-grAC contention rate normalized
    /// by the cycles of *all* locks, so the whole benchmark sums to 1
    /// (Eq. 2). Returns `lcr[lock][grac]`, `grac ∈ 0..=n_cores` with bin 0
    /// always zero.
    pub fn lcr(&self) -> Vec<Vec<f64>> {
        let total: u64 = self.locks.iter().map(|l| l.grac.total()).sum();
        self.locks
            .iter()
            .map(|l| {
                (0..l.grac.n_bins())
                    .map(|g| {
                        if total == 0 {
                            0.0
                        } else {
                            l.grac.bin(g) as f64 / total as f64
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_holder_and_requesters() {
        let mut t = LockTracker::new(1, 4);
        let l = LockId(0);
        t.on_acquire_start(l, ThreadId(0), 0);
        t.on_acquire_start(l, ThreadId(1), 0);
        t.sample(); // 2 requesters
        t.on_acquired(l, ThreadId(0), 5);
        t.sample(); // 1 requester (thread 1)
        assert_eq!(t.holder(l), Some(ThreadId(0)));
        assert_eq!(t.grac_histogram(l).bin(2), 1);
        assert_eq!(t.grac_histogram(l).bin(1), 1);
        t.on_release_start(l, ThreadId(0), 10);
        t.on_acquired(l, ThreadId(1), 11);
        t.on_release_start(l, ThreadId(1), 12);
        assert!(t.all_quiet());
        assert_eq!(t.acquires(l), 2);
        assert_eq!(t.grant_log(l), &[ThreadId(0), ThreadId(1)]);
    }

    #[test]
    #[should_panic(expected = "MUTUAL EXCLUSION VIOLATED")]
    fn detects_double_acquire() {
        let mut t = LockTracker::new(1, 4);
        let l = LockId(0);
        t.on_acquire_start(l, ThreadId(0), 0);
        t.on_acquire_start(l, ThreadId(1), 0);
        t.on_acquired(l, ThreadId(0), 1);
        t.on_acquired(l, ThreadId(1), 2);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn detects_bogus_release() {
        let mut t = LockTracker::new(1, 4);
        t.on_release_start(LockId(0), ThreadId(3), 0);
    }

    #[test]
    fn lcr_sums_to_one_across_locks() {
        let mut t = LockTracker::new(2, 8);
        t.on_acquire_start(LockId(0), ThreadId(0), 0);
        t.on_acquire_start(LockId(1), ThreadId(1), 0);
        t.on_acquire_start(LockId(1), ThreadId(2), 0);
        for _ in 0..10 {
            t.sample();
        }
        let lcr = t.lcr();
        let total: f64 = lcr.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // lock 0 sampled 10 cycles at grAC=1; lock 1 at grAC=2
        assert!((lcr[0][1] - 0.5).abs() < 1e-12);
        assert!((lcr[1][2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_wait_measures_grant_delay() {
        let mut t = LockTracker::new(1, 4);
        let l = LockId(0);
        t.on_acquire_start(l, ThreadId(0), 100);
        t.on_acquired(l, ThreadId(0), 130);
        assert_eq!(t.mean_wait(l), 30.0);
    }

    #[test]
    fn records_latency_histograms_when_stats_enabled() {
        gstats::enable(gstats::StatsConfig::default());
        let mut t = LockTracker::new(1, 4);
        let l = LockId(0);
        t.on_acquire_start(l, ThreadId(0), 100);
        t.on_acquired(l, ThreadId(0), 130); // wait = 30
        t.on_release_start(l, ThreadId(0), 180); // hold = 50
        t.on_acquire_start(l, ThreadId(1), 150);
        t.on_acquired(l, ThreadId(1), 184); // handoff = 4, wait = 34
        t.on_release_start(l, ThreadId(1), 200);
        t.publish_stats();
        let d = gstats::snapshot();
        gstats::disable();
        assert_eq!(d.hists["lock.0.acquire_wait_cycles"].count, 2);
        assert_eq!(d.hists["lock.0.acquire_wait_cycles"].sum, 64);
        assert_eq!(d.hists["lock.0.hold_cycles"].count, 2);
        assert_eq!(d.hists["lock.0.hold_cycles"].sum, 50 + 16);
        assert_eq!(d.hists["lock.0.handoff_cycles"].count, 1);
        assert_eq!(d.hists["lock.0.handoff_cycles"].sum, 4);
        assert_eq!(d.counters["lock.0.acquires"], 2);
        assert_eq!(d.counters["lock.0.wait_cycles_total"], 64);
    }

    #[test]
    fn empty_lcr_is_zero() {
        let t = LockTracker::new(1, 4);
        assert!(t.lcr()[0].iter().all(|&x| x == 0.0));
        assert_eq!(t.mean_wait(LockId(0)), 0.0);
    }
}
