//! The per-core driver: runs one thread program, expands lock/barrier
//! actions into backend scripts, and attributes every cycle.

use crate::breakdown::{Breakdown, Category};
use crate::program::{Action, BarrierBackend, LockBackend, Script, Step, Workload};
use crate::tracker::LockTracker;
use glocks_mem::MemorySystem;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::trace::TraceMask;
use glocks_sim_base::{trace_event, CoreId, Cycle, LockId, ThreadId};

/// Lock and barrier implementations available to the cores.
pub struct Backends<'a> {
    /// Indexed by `LockId`.
    pub locks: &'a [Box<dyn LockBackend>],
    pub barrier: &'a dyn BarrierBackend,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SubKind {
    Acquire(LockId),
    Release(LockId),
    Barrier,
}

struct Sub {
    script: Box<dyn Script>,
    kind: SubKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Needs the next step pulled.
    Ready,
    /// Busy computing for this many more cycles.
    Computing(u64),
    /// Waiting for the memory system.
    WaitingMem,
    /// Thread completed.
    Finished,
    /// Sleeping until this absolute cycle (`Action::WaitUntil`).
    WaitingUntil(Cycle),
}

/// What a core is doing right now, at sub-script granularity — the unit of
/// the runner's wedge diagnostics. A core spinning inside a lock acquire
/// reports `Acquiring`, not `Computing`, because the spin itself retires
/// instructions every cycle and would otherwise look healthy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreActivity {
    /// Between steps.
    Ready,
    /// Retiring plain compute.
    Computing,
    /// Blocked on the memory system.
    WaitingMem,
    /// Inside a lock-acquire script.
    Acquiring(LockId),
    /// Inside a lock-release script.
    Releasing(LockId),
    /// Inside a barrier-wait script.
    InBarrier,
    /// Sleeping until a scheduled arrival (open-loop workloads).
    Idle,
    /// Thread done.
    Finished,
}

/// One in-order core running one thread.
pub struct Core {
    id: CoreId,
    tid: ThreadId,
    issue_width: u64,
    state: State,
    workload: Box<dyn Workload>,
    sub: Option<Sub>,
    last_value: u64,
    breakdown: Breakdown,
    finished_at: Option<Cycle>,
    progress_events: u64,
    /// Permanent tile fault: from this cycle on the core is frozen — it
    /// retires nothing and makes no progress. A halted core that still had
    /// work wedges the run, and the watchdog escalates the wedge into a
    /// structured diagnosis (failover applies to lock networks, not to the
    /// computation a dead tile was carrying).
    halt_at: Option<Cycle>,
}

impl Core {
    pub fn new(id: CoreId, issue_width: u64, workload: Box<dyn Workload>) -> Self {
        assert!(issue_width >= 1);
        Core {
            id,
            tid: ThreadId(id.0),
            issue_width,
            state: State::Ready,
            workload,
            sub: None,
            last_value: 0,
            breakdown: Breakdown::default(),
            finished_at: None,
            progress_events: 0,
            halt_at: None,
        }
    }

    /// Schedule a permanent tile fault: the core freezes at cycle `at`.
    pub fn schedule_halt(&mut self, at: Cycle) {
        self.halt_at = Some(self.halt_at.map_or(at, |h| h.min(at)));
    }

    /// True once a scheduled tile fault has frozen this core.
    pub fn is_halted_at(&self, now: Cycle) -> bool {
        self.halt_at.is_some_and(|h| now >= h)
    }

    pub fn id(&self) -> CoreId {
        self.id
    }

    pub fn is_finished(&self) -> bool {
        matches!(self.state, State::Finished)
    }

    /// Cycle at which this thread returned `Action::Done`.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    pub fn breakdown(&self) -> &Breakdown {
        &self.breakdown
    }

    /// Publish this core's end-of-run stall breakdown into the stats
    /// registry under `cpu.core{N}.*` (no-op when stats are off).
    pub fn publish_stats(&self) {
        if !glocks_stats::is_enabled() {
            return;
        }
        let n = self.id.0;
        let b = &self.breakdown;
        for (field, v) in [
            ("busy_cycles", b.busy),
            ("memory_cycles", b.memory),
            ("lock_cycles", b.lock),
            ("barrier_cycles", b.barrier),
            ("instructions", b.instructions),
        ] {
            glocks_stats::set(glocks_stats::counter(&format!("cpu.core{n}.{field}")), v);
        }
        // Only open-loop workloads ever accumulate idle sleep; publishing
        // the key conditionally keeps closed-loop dumps (and the committed
        // golden) byte-identical.
        if b.idle > 0 {
            glocks_stats::set(glocks_stats::counter(&format!("cpu.core{n}.idle_cycles")), b.idle);
        }
        if let Some(at) = self.finished_at {
            glocks_stats::set(glocks_stats::counter(&format!("cpu.core{n}.finished_at")), at);
        }
        self.workload.publish_stats();
    }

    /// Monotone count of workload-level progress: top-level actions pulled
    /// and lock/barrier sub-scripts completed. A core livelocked in a spin
    /// loop retires instructions but never bumps this, which is exactly
    /// what the runner's watchdog needs to see.
    pub fn progress_events(&self) -> u64 {
        self.progress_events
    }

    /// Current activity for wedge diagnostics.
    pub fn activity(&self) -> CoreActivity {
        if let Some(sub) = &self.sub {
            return match sub.kind {
                SubKind::Acquire(l) => CoreActivity::Acquiring(l),
                SubKind::Release(l) => CoreActivity::Releasing(l),
                SubKind::Barrier => CoreActivity::InBarrier,
            };
        }
        match self.state {
            State::Ready => CoreActivity::Ready,
            State::Computing(_) => CoreActivity::Computing,
            State::WaitingMem => CoreActivity::WaitingMem,
            State::Finished => CoreActivity::Finished,
            State::WaitingUntil(_) => CoreActivity::Idle,
        }
    }

    /// If this core is asleep in `Action::WaitUntil` past `now`, the cycle
    /// it will wake at. The runner's watchdog treats a fully-sleeping
    /// machine as healthy (progress resumes at the earliest wake), unlike a
    /// spinning or wedged one.
    pub fn sleeping_until(&self, now: Cycle) -> Option<Cycle> {
        match self.state {
            State::WaitingUntil(t) if t > now => Some(t),
            _ => None,
        }
    }

    fn category(&self) -> Category {
        match &self.sub {
            Some(s) => match s.kind {
                SubKind::Acquire(_) | SubKind::Release(_) => Category::Lock,
                SubKind::Barrier => Category::Barrier,
            },
            None => match self.state {
                State::WaitingMem => Category::Memory,
                State::WaitingUntil(_) => Category::Idle,
                _ => Category::Busy,
            },
        }
    }

    /// Serialize this core's dynamic state. The workload and any
    /// in-progress lock/barrier sub-script save through their traits, so
    /// this fails with [`SnapError::Unsupported`] unless every piece has
    /// opted into checkpointing.
    pub fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.mark("core");
        match self.state {
            State::Ready => w.u8(0),
            State::Computing(left) => {
                w.u8(1);
                w.u64(left);
            }
            State::WaitingMem => w.u8(2),
            State::Finished => w.u8(3),
            State::WaitingUntil(t) => {
                w.u8(4);
                w.u64(t);
            }
        }
        self.workload.save_state(w)?;
        w.bool(self.sub.is_some());
        if let Some(sub) = &self.sub {
            match sub.kind {
                SubKind::Acquire(l) => {
                    w.u8(0);
                    w.u16(l.0);
                }
                SubKind::Release(l) => {
                    w.u8(1);
                    w.u16(l.0);
                }
                SubKind::Barrier => w.u8(2),
            }
            sub.script.save_state(w)?;
        }
        w.u64(self.last_value);
        self.breakdown.save_state(w);
        w.opt_u64(self.finished_at);
        w.u64(self.progress_events);
        w.opt_u64(self.halt_at);
        Ok(())
    }

    /// Restore state saved by [`Core::save_state`]. In-progress sub-scripts
    /// are rebuilt through the backends' `load_*_script` constructors —
    /// never through `acquire`/`release`/`wait`, whose side effects already
    /// happened before the checkpoint.
    pub fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        backends: &Backends<'_>,
    ) -> Result<(), SnapError> {
        r.expect("core")?;
        self.state = match r.u8()? {
            0 => State::Ready,
            1 => State::Computing(r.u64()?),
            2 => State::WaitingMem,
            3 => State::Finished,
            4 => State::WaitingUntil(r.u64()?),
            tag => return Err(SnapError::BadTag { what: "core state", tag: u64::from(tag) }),
        };
        self.workload.load_state(r)?;
        self.sub = if r.bool()? {
            let (kind, script) = match r.u8()? {
                0 => {
                    let l = LockId(r.u16()?);
                    if l.index() >= backends.locks.len() {
                        return Err(SnapError::Corrupt { what: "core sub-script lock id" });
                    }
                    (SubKind::Acquire(l), backends.locks[l.index()].load_acquire_script(self.tid, r)?)
                }
                1 => {
                    let l = LockId(r.u16()?);
                    if l.index() >= backends.locks.len() {
                        return Err(SnapError::Corrupt { what: "core sub-script lock id" });
                    }
                    (SubKind::Release(l), backends.locks[l.index()].load_release_script(self.tid, r)?)
                }
                2 => (SubKind::Barrier, backends.barrier.load_wait_script(self.tid, r)?),
                tag => {
                    return Err(SnapError::BadTag { what: "core sub-script kind", tag: u64::from(tag) })
                }
            };
            Some(Sub { script, kind })
        } else {
            None
        };
        self.last_value = r.u64()?;
        self.breakdown.load_state(r)?;
        self.finished_at = r.opt_u64()?;
        self.progress_events = r.u64()?;
        self.halt_at = r.opt_u64()?;
        Ok(())
    }

    /// The earliest future cycle at which ticking this core could do
    /// anything observable, given the state it is in *after* the tick of
    /// cycle `now`, or `None` if it is quiescent forever.
    ///
    /// This is the core's half of the idle-skip contract: for every cycle
    /// `c` in `now+1 .. next_event(now)`, `tick(c)` would only re-charge
    /// the same breakdown category (replicated exactly by
    /// [`Core::skip_ahead`]) and, for `Computing`, decrement the counter —
    /// it pulls no step, touches no backend, and submits nothing to the
    /// memory system. States whose wake depends on another component
    /// (`Ready`, `WaitingMem`) report `Some(now)`, i.e. "hot, tick me
    /// densely".
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if matches!(self.state, State::Finished) {
            return None;
        }
        if self.is_halted_at(now) {
            // A dead tile never acts again; it is quiescent even if it
            // still "had work".
            return None;
        }
        let fence = |t: Cycle| Some(self.halt_at.map_or(t, |h| t.min(h)));
        match self.state {
            // A declared register-poll spin (`bnz lock_req, loop`) is
            // inert: each cycle retires exactly one poll instruction until
            // a device — whose own `next_event` the runner consults —
            // flips the register. A scheduled tile death still fences the
            // poll charges, so it stays observable.
            State::Ready if self.sub.as_ref().is_some_and(|s| s.script.idle_spin()) => {
                self.halt_at
            }
            // Otherwise a pull could run scripts / submit memory ops —
            // unpredictable from here.
            State::Ready | State::WaitingMem => Some(now),
            // Wakes exactly when the countdown hits zero (or the tile
            // fault freezes it first — the fence keeps the halt cycle
            // observable for the watchdog).
            State::Computing(left) => fence(now + left),
            State::WaitingUntil(t) => fence(t),
            State::Finished => unreachable!("handled above"),
        }
    }

    /// Replicate `k` dense [`Core::tick`] calls for cycles
    /// `now .. now + k`, valid only when the runner proved (via
    /// [`Core::next_event`] on the previous cycle) that none of those ticks
    /// would pull a step. Charges the same category each skipped cycle and
    /// advances a `Computing` countdown; everything else is untouched.
    pub fn skip_ahead(&mut self, now: Cycle, k: u64) {
        if matches!(self.state, State::Finished) || self.is_halted_at(now) {
            return;
        }
        if matches!(self.state, State::Ready) {
            // Only reachable for a declared register-poll spin (see
            // `next_event`): each skipped cycle retires exactly the one
            // poll instruction and charges the same category the dense
            // loop would have.
            debug_assert!(
                self.sub.as_ref().is_some_and(|s| s.script.idle_spin()),
                "core {}: skipped while hot",
                self.id
            );
            self.breakdown.instructions += k;
            self.breakdown.charge(self.category(), k);
            return;
        }
        debug_assert!(
            !matches!(self.state, State::WaitingMem),
            "core {}: skipped while hot",
            self.id
        );
        if let State::WaitingUntil(t) = self.state {
            debug_assert!(now + k <= t, "core {}: skipped past its wake cycle", self.id);
        }
        self.breakdown.charge(self.category(), k);
        if let State::Computing(ref mut left) = self.state {
            debug_assert!(*left >= k, "core {}: skipped past compute end", self.id);
            *left -= k;
            if *left == 0 {
                self.state = State::Ready;
            }
        }
    }

    /// Advance this core by one cycle.
    pub fn tick(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        backends: &Backends<'_>,
        tracker: &mut LockTracker,
    ) {
        if matches!(self.state, State::Finished) {
            return;
        }
        if self.is_halted_at(now) {
            // Dead tile: nothing retires, nothing is charged, and
            // `progress_events` stops — exactly what the watchdog samples.
            return;
        }
        if matches!(self.state, State::WaitingMem) {
            if let Some(r) = mem.take_result(self.id) {
                self.last_value = r.value;
                self.state = State::Ready;
            }
        }
        if let State::WaitingUntil(t) = self.state {
            if now >= t {
                // Wake: the workload is resumed with the current cycle so
                // open-loop generators can timestamp the request.
                self.last_value = now;
                self.state = State::Ready;
            }
        }
        if matches!(self.state, State::Ready) {
            self.pull(now, mem, backends, tracker);
            if matches!(self.state, State::Finished) {
                return;
            }
        }
        self.breakdown.charge(self.category(), 1);
        if let State::Computing(ref mut left) = self.state {
            *left -= 1;
            if *left == 0 {
                self.state = State::Ready;
            }
        }
    }

    /// Pull steps until one that consumes time is started.
    fn pull(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        backends: &Backends<'_>,
        tracker: &mut LockTracker,
    ) {
        // A zero-cycle-step cap: catches scripts that never make progress.
        for _ in 0..10_000 {
            let step = if let Some(sub) = self.sub.as_mut() {
                let s = sub.script.resume(self.last_value);
                if let Step::Done = s {
                    self.progress_events += 1;
                    if let SubKind::Acquire(l) = sub.kind {
                        trace_event!(
                            TraceMask::LOCK,
                            now,
                            "core {}: acquired lock {l}",
                            self.id
                        );
                        tracker.on_acquired(l, self.tid, now);
                    }
                    self.sub = None;
                    self.last_value = 0;
                    continue;
                }
                s
            } else {
                self.progress_events += 1;
                match self.workload.next(self.last_value) {
                    Action::Compute(n) => Step::Compute(n),
                    Action::Mem(op) => Step::Mem(op),
                    Action::Acquire(l) => {
                        trace_event!(
                            TraceMask::LOCK,
                            now,
                            "core {}: acquire lock {l} start",
                            self.id
                        );
                        tracker.on_acquire_start(l, self.tid, now);
                        self.sub = Some(Sub {
                            script: backends.locks[l.index()].acquire(self.tid),
                            kind: SubKind::Acquire(l),
                        });
                        self.last_value = 0;
                        continue;
                    }
                    Action::Release(l) => {
                        // The critical section ends when the release begins.
                        tracker.on_release_start(l, self.tid, now);
                        self.sub = Some(Sub {
                            script: backends.locks[l.index()].release(self.tid),
                            kind: SubKind::Release(l),
                        });
                        self.last_value = 0;
                        continue;
                    }
                    Action::Barrier => {
                        self.sub = Some(Sub {
                            script: backends.barrier.wait(self.tid),
                            kind: SubKind::Barrier,
                        });
                        self.last_value = 0;
                        continue;
                    }
                    Action::WaitUntil(t) => {
                        if t <= now {
                            // Already due: a zero-cost clock read.
                            self.last_value = now;
                            continue;
                        }
                        self.state = State::WaitingUntil(t);
                        return;
                    }
                    Action::Done => {
                        self.state = State::Finished;
                        self.finished_at = Some(now);
                        return;
                    }
                }
            };
            match step {
                Step::Compute(0) => {
                    self.last_value = 0;
                    continue;
                }
                Step::Compute(n) => {
                    self.breakdown.instructions += n;
                    self.state = State::Computing(n.div_ceil(self.issue_width));
                    self.last_value = 0;
                    return;
                }
                Step::Mem(op) => {
                    self.breakdown.instructions += 1;
                    mem.submit(self.id, op, now);
                    self.state = State::WaitingMem;
                    return;
                }
                Step::Done => unreachable!("handled above"),
            }
        }
        panic!(
            "core {}: script made no progress for 10k zero-cycle steps",
            self.id
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FixedScript;
    use glocks_mem::MemOp;
    use glocks_sim_base::{Addr, CmpConfig};

    /// A scripted workload from a fixed action list.
    struct Scripted {
        actions: Vec<Action>,
        i: usize,
        pub seen_values: Vec<u64>,
    }

    impl Scripted {
        fn new(actions: Vec<Action>) -> Self {
            Scripted { actions, i: 0, seen_values: Vec::new() }
        }
    }

    impl Workload for Scripted {
        fn next(&mut self, last: u64) -> Action {
            self.seen_values.push(last);
            let a = self.actions.get(self.i).copied().unwrap_or(Action::Done);
            self.i += 1;
            a
        }
    }

    /// Lock backend whose acquire/release cost a fixed instruction count.
    struct FixedLock(u64);

    impl LockBackend for FixedLock {
        fn acquire(&self, _tid: ThreadId) -> Box<dyn Script> {
            Box::new(FixedScript::new(self.0))
        }
        fn release(&self, _tid: ThreadId) -> Box<dyn Script> {
            Box::new(FixedScript::new(self.0))
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    struct FixedBarrier(u64);

    impl BarrierBackend for FixedBarrier {
        fn wait(&self, _tid: ThreadId) -> Box<dyn Script> {
            Box::new(FixedScript::new(self.0))
        }
    }

    fn run(actions: Vec<Action>, cores: usize) -> (Core, Cycle) {
        let cfg = CmpConfig::paper_baseline().with_cores(cores);
        let mut mem = MemorySystem::new(&cfg);
        let locks: Vec<Box<dyn LockBackend>> = vec![Box::new(FixedLock(4))];
        let barrier = FixedBarrier(6);
        let backends = Backends { locks: &locks, barrier: &barrier };
        let mut tracker = LockTracker::new(1, cores);
        let mut core = Core::new(CoreId(0), cfg.issue_width, Box::new(Scripted::new(actions)));
        for now in 0..1_000_000 {
            core.tick(now, &mut mem, &backends, &mut tracker);
            mem.tick(now);
            tracker.sample();
            if core.is_finished() {
                return (core, now);
            }
        }
        panic!("workload never finished");
    }

    #[test]
    fn compute_uses_issue_width() {
        // 10 instructions on a 2-way core = 5 cycles of Busy.
        let (core, _) = run(vec![Action::Compute(10)], 4);
        assert_eq!(core.breakdown().busy, 5);
        assert_eq!(core.breakdown().memory, 0);
        assert_eq!(core.breakdown().instructions, 10);
    }

    #[test]
    fn memory_wait_attributed_to_memory() {
        let (core, _) = run(vec![Action::Mem(MemOp::Load(Addr(0x100)))], 4);
        assert!(core.breakdown().memory > 100, "cold miss should dominate");
        assert_eq!(core.breakdown().busy, 0);
        assert_eq!(core.breakdown().instructions, 1);
    }

    #[test]
    fn lock_and_barrier_categories() {
        let (core, _) = run(
            vec![
                Action::Acquire(LockId(0)),
                Action::Compute(8),
                Action::Release(LockId(0)),
                Action::Barrier,
            ],
            4,
        );
        // acquire 4 instr + release 4 instr @ 2-wide = 4 cycles of Lock
        assert_eq!(core.breakdown().lock, 4);
        assert_eq!(core.breakdown().barrier, 3);
        assert_eq!(core.breakdown().busy, 4);
    }

    #[test]
    fn mem_value_reaches_workload() {
        let a = Addr(0x200);
        let (core, _) = run(
            vec![
                Action::Mem(MemOp::Store(a, 42)),
                Action::Mem(MemOp::Load(a)),
                Action::Compute(2),
            ],
            4,
        );
        // `seen_values` isn't reachable after the move; verify via the
        // breakdown instead: 2 mem instructions + 2 compute.
        assert_eq!(core.breakdown().instructions, 4);
    }

    #[test]
    fn wait_until_sleeps_and_charges_idle() {
        // Compute 2 instr (1 cycle busy), sleep until cycle 100, compute 2.
        let (core, at) = run(
            vec![Action::Compute(2), Action::WaitUntil(100), Action::Compute(2)],
            4,
        );
        assert_eq!(core.breakdown().busy, 2);
        assert_eq!(core.breakdown().idle, 99, "cycles 1..=99 sleep");
        assert_eq!(core.breakdown().lock, 0);
        assert_eq!(at, 101, "wakes at 100, computes, finishes at 101");
        assert_eq!(core.breakdown().fractions(), [1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn wait_until_in_past_is_free_clock_read() {
        let (core, at) = run(vec![Action::WaitUntil(0), Action::Compute(2)], 4);
        assert_eq!(core.breakdown().idle, 0);
        assert_eq!(core.breakdown().busy, 1);
        let (plain, plain_at) = run(vec![Action::Compute(2)], 4);
        assert_eq!(at, plain_at, "an already-due wait costs nothing");
        assert_eq!(core.breakdown().total(), plain.breakdown().total());
    }

    #[test]
    fn sleeping_core_reports_wake_cycle() {
        let cfg = CmpConfig::paper_baseline().with_cores(2);
        let mut mem = MemorySystem::new(&cfg);
        let locks: Vec<Box<dyn LockBackend>> = vec![Box::new(FixedLock(4))];
        let barrier = FixedBarrier(1);
        let backends = Backends { locks: &locks, barrier: &barrier };
        let mut tracker = LockTracker::new(1, 2);
        let mut core = Core::new(
            CoreId(0),
            2,
            Box::new(Scripted::new(vec![Action::WaitUntil(500)])),
        );
        for now in 0..10 {
            core.tick(now, &mut mem, &backends, &mut tracker);
            mem.tick(now);
        }
        assert_eq!(core.sleeping_until(9), Some(500));
        assert_eq!(core.activity(), CoreActivity::Idle);
        assert_eq!(core.sleeping_until(500), None, "due means not sleeping");
    }

    #[test]
    fn finishes_and_reports_cycle() {
        let (core, at) = run(vec![Action::Compute(2)], 4);
        assert!(core.is_finished());
        assert_eq!(core.finished_at(), Some(at));
        // total attributed cycles never exceed wall cycles
        assert!(core.breakdown().total() <= at + 1);
    }

    /// A lock script that never makes progress (always zero-cost compute).
    struct StuckLock;

    impl LockBackend for StuckLock {
        fn acquire(&self, _tid: ThreadId) -> Box<dyn Script> {
            struct Spin;
            impl Script for Spin {
                fn resume(&mut self, _last: u64) -> Step {
                    Step::Compute(0)
                }
            }
            Box::new(Spin)
        }
        fn release(&self, _tid: ThreadId) -> Box<dyn Script> {
            Box::new(FixedScript::new(1))
        }
        fn name(&self) -> &'static str {
            "stuck"
        }
    }

    #[test]
    #[should_panic(expected = "no progress")]
    fn runaway_zero_cost_script_is_detected() {
        let cfg = CmpConfig::paper_baseline().with_cores(2);
        let mut mem = MemorySystem::new(&cfg);
        let locks: Vec<Box<dyn LockBackend>> = vec![Box::new(StuckLock)];
        let barrier = FixedBarrier(1);
        let backends = Backends { locks: &locks, barrier: &barrier };
        let mut tracker = LockTracker::new(1, 2);
        let mut core = Core::new(
            CoreId(0),
            2,
            Box::new(Scripted::new(vec![Action::Acquire(LockId(0))])),
        );
        for now in 0..100 {
            core.tick(now, &mut mem, &backends, &mut tracker);
        }
    }

    #[test]
    fn halted_core_freezes_and_stops_progress() {
        let cfg = CmpConfig::paper_baseline().with_cores(2);
        let mut mem = MemorySystem::new(&cfg);
        let locks: Vec<Box<dyn LockBackend>> = vec![Box::new(FixedLock(4))];
        let barrier = FixedBarrier(1);
        let backends = Backends { locks: &locks, barrier: &barrier };
        let mut tracker = LockTracker::new(1, 2);
        let mut core = Core::new(
            CoreId(0),
            2,
            Box::new(Scripted::new(vec![Action::Compute(10_000)])),
        );
        core.schedule_halt(50);
        for now in 0..200 {
            core.tick(now, &mut mem, &backends, &mut tracker);
            mem.tick(now);
        }
        assert!(core.is_halted_at(200));
        assert!(!core.is_finished(), "a dead tile never completes its work");
        let frozen = core.progress_events();
        let cycles = core.breakdown().total();
        for now in 200..400 {
            core.tick(now, &mut mem, &backends, &mut tracker);
            mem.tick(now);
        }
        assert_eq!(core.progress_events(), frozen, "no progress after death");
        assert_eq!(core.breakdown().total(), cycles, "no cycles attributed");
    }

    #[test]
    fn tracker_sees_acquire_release() {
        let cfg = CmpConfig::paper_baseline().with_cores(4);
        let mut mem = MemorySystem::new(&cfg);
        let locks: Vec<Box<dyn LockBackend>> = vec![Box::new(FixedLock(2))];
        let barrier = FixedBarrier(2);
        let backends = Backends { locks: &locks, barrier: &barrier };
        let mut tracker = LockTracker::new(1, 4);
        let mut core = Core::new(
            CoreId(0),
            2,
            Box::new(Scripted::new(vec![
                Action::Acquire(LockId(0)),
                Action::Release(LockId(0)),
            ])),
        );
        for now in 0..1000 {
            core.tick(now, &mut mem, &backends, &mut tracker);
            mem.tick(now);
            if core.is_finished() {
                break;
            }
        }
        assert!(core.is_finished());
        assert_eq!(tracker.acquires(LockId(0)), 1);
        assert!(tracker.all_quiet());
    }
}
