//! Offline property-testing shim.
//!
//! This crate presents the subset of the `proptest` API that the GLocks
//! workspace uses — `proptest!`, `prop_assert*!`, `any`, integer-range and
//! tuple strategies, `prop_map`, `proptest::collection::vec`, and
//! `ProptestConfig::with_cases` — implemented on a deterministic SplitMix64
//! generator with **no external dependencies**, so `cargo test` works
//! without registry access.
//!
//! Differences from real proptest, by design:
//!
//! * Inputs are derived from a hash of the test path and case index, so
//!   every run (and every machine) sees the same schedule. A failure
//!   message names the case index; re-running the test reproduces it.
//! * No shrinking: the failing inputs are printed as-is.
//! * `prop_assert*!` panic immediately instead of returning `Err`.

pub mod test_runner {
    //! Case configuration and the deterministic generator.

    /// Per-block configuration; `with_cases(n)` mirrors
    /// `ProptestConfig::with_cases`.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Error type for the `Result` a property body runs inside. Bodies here
    /// only ever fail by panicking (`prop_assert!` maps to `assert!`), so
    /// this exists purely to type `return Ok(())` early exits.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// SplitMix64 seeded from `(test path, case index)` — self-contained so
    /// the shim stays dependency-free.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the path, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let state = h ^ u64::from(case + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }

    /// Prints which deterministic case failed when the property body
    /// panics, since the shim does not shrink.
    pub struct CaseGuard {
        name: &'static str,
        case: u32,
    }

    impl CaseGuard {
        pub fn new(name: &'static str, case: u32) -> Self {
            CaseGuard { name, case }
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest shim: property `{}` failed on deterministic case {} \
                     (inputs are reproduced on every run)",
                    self.name, self.case
                );
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for producing values of `Self::Value`. Unlike real
    /// proptest there is no shrink tree — `sample` draws a value directly.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values (mirrors `Strategy::prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — every value of `T` is fair game.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                #[allow(clippy::unnecessary_cast)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                #[allow(clippy::unnecessary_cast)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    let v = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.below(span + 1)
                    };
                    lo + v as $t
                }
            }
        )+};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($s:ident : $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property body (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The `proptest! { ... }` block: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs the body over `config.cases`
/// deterministic input samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..__cfg.cases {
                let __path = concat!(module_path!(), "::", stringify!($name));
                let mut __rng = $crate::test_runner::TestRng::for_case(__path, __case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __guard = $crate::test_runner::CaseGuard::new(__path, __case);
                // Body runs inside a `Result` closure so `return Ok(())`
                // early-exits a case exactly as it does under real proptest.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    ::core::panic!("property case rejected: {:?}", __e);
                }
                drop(__guard);
            }
        }
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_and_vec_strategies_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..200 {
            let v = Strategy::sample(&(3u16..9), &mut rng);
            assert!((3..9).contains(&v));
            let xs = crate::collection::vec(0u8..4, 1..6).sample(&mut rng);
            assert!((1..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let s = (0u16..4, any::<bool>()).prop_map(|(a, b)| (u32::from(a) * 2, b));
        let (v, _) = s.sample(&mut rng);
        assert!(v < 8 && v % 2 == 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn generated_tests_run_all_cases(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
            prop_assert_eq!(x / 100, 0);
        }
    }
}
