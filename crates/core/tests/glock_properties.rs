//! Property tests of the GLock G-line network: under arbitrary
//! request/hold/release schedules the token stays unique, every request is
//! eventually granted, and saturated rounds are round-robin fair — and all
//! of that holds unchanged under randomized fault schedules that drop,
//! delay, and duplicate G-line signals.

use glocks::{GlockNetwork, Topology};
use glocks_sim_base::fault::{FaultPlan, FaultRates, FaultSite};
use glocks_sim_base::{Mesh2D, SplitMix64};
use proptest::prelude::*;

/// Drive a network with a random schedule derived from `seed`:
/// each core requests `rounds` times with random think/hold times.
fn drive(topo: &Topology, latency: u64, seed: u64, rounds: u32) -> GlockNetwork {
    drive_with_faults(topo, latency, seed, rounds, FaultRates::NONE)
}

/// [`drive`] with an injected fault schedule on the G-lines.
fn drive_with_faults(
    topo: &Topology,
    latency: u64,
    seed: u64,
    rounds: u32,
    rates: FaultRates,
) -> GlockNetwork {
    let n = topo.n_cores;
    let mut net = GlockNetwork::new(topo, latency);
    if rates.is_active() {
        let mut plan = FaultPlan::seeded(seed ^ 0xFA17);
        plan.gline = rates;
        net.set_faults(plan.injector(FaultSite::Gline, 0));
    }
    let regs = net.regs();
    let mut rng = SplitMix64::new(seed);
    // Per-core plan: remaining rounds, state (0 idle-wait, 1 requested,
    // 2 holding), and a timer.
    let mut left = vec![rounds; n];
    let mut state = vec![0u8; n];
    let mut timer: Vec<u64> = (0..n).map(|_| rng.next_below(20)).collect();
    let mut now = 0u64;
    let mut total_grants_expected = 0u64;
    for l in &left {
        total_grants_expected += *l as u64;
    }
    let mut grants_seen = 0u64;
    while grants_seen < total_grants_expected {
        for c in 0..n {
            match state[c] {
                0 => {
                    if left[c] > 0 {
                        if timer[c] == 0 {
                            regs.set_req(c);
                            state[c] = 1;
                        } else {
                            timer[c] -= 1;
                        }
                    }
                }
                1 => {
                    if !regs.req_pending(c) {
                        // granted
                        grants_seen += 1;
                        state[c] = 2;
                        timer[c] = rng.next_below(12);
                    }
                }
                _ => {
                    if timer[c] == 0 {
                        regs.set_rel(c);
                        left[c] -= 1;
                        state[c] = 0;
                        timer[c] = rng.next_below(20);
                    } else {
                        timer[c] -= 1;
                    }
                }
            }
        }
        net.tick(now);
        net.assert_token_invariants();
        // Mutual exclusion at the register level: at most one core can be
        // in the "holding" state per the network's view.
        now += 1;
        assert!(
            now < 1_000_000,
            "protocol stalled at {grants_seen}/{total_grants_expected} grants"
        );
    }
    // Let the final holder release and the wires drain.
    while state.iter().any(|&s| s != 0) {
        for c in 0..n {
            match state[c] {
                2 => {
                    if timer[c] == 0 {
                        regs.set_rel(c);
                        left[c] -= 1;
                        state[c] = 0;
                    } else {
                        timer[c] -= 1;
                    }
                }
                1
                    if !regs.req_pending(c) => {
                        state[c] = 2;
                        timer[c] = 0;
                    }
                _ => {}
            }
        }
        net.tick(now);
        now += 1;
        assert!(now < 2_000_000, "drain stalled");
    }
    // Post-workload recovery: a REL or TOKEN lost at the very end is only
    // repaired by the retry timers (bounded exponential backoff), so
    // draining to idle can legitimately take several timeout periods.
    let mut t = now;
    while !net.is_idle() {
        net.tick(t);
        t += 1;
        assert!(t < now + 2_000_000, "wires never drained");
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_schedules_preserve_liveness_and_uniqueness(
        seed in any::<u64>(),
        cols in 2u16..6,
        rows in 1u16..5,
        latency in 1u64..3,
        rounds in 1u32..5,
    ) {
        let topo = Topology::flat(Mesh2D::new(cols, rows));
        let net = drive(&topo, latency, seed, rounds);
        prop_assert!(net.is_idle(), "network must drain");
        prop_assert_eq!(
            net.stats().grants,
            (cols as u64 * rows as u64) * rounds as u64
        );
    }

    #[test]
    fn hierarchical_topologies_behave_identically(
        seed in any::<u64>(),
        n in 2usize..80,
    ) {
        let mesh = Mesh2D::near_square(n);
        let topo = Topology::hierarchical(mesh, 7);
        topo.validate();
        let net = drive(&topo, 1, seed, 2);
        prop_assert!(net.is_idle());
        prop_assert_eq!(net.stats().grants, n as u64 * 2);
    }
}

// Same invariants, hostile wires: every schedule keeps mutual exclusion
// (checked every tick inside `drive_with_faults`) and grants every request
// exactly once, no matter what the fault plan drops, delays, or duplicates.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_schedules_survive_mixed_gline_faults(
        seed in any::<u64>(),
        cols in 2u16..5,
        rows in 1u16..4,
        rounds in 1u32..4,
        drop_ppm in 0u32..80_000,
        dup_ppm in 0u32..40_000,
        delay_ppm in 0u32..80_000,
    ) {
        let topo = Topology::flat(Mesh2D::new(cols, rows));
        let rates = FaultRates {
            drop_ppm,
            duplicate_ppm: dup_ppm,
            delay_ppm,
            max_delay: 32,
        };
        let net = drive_with_faults(&topo, 1, seed, rounds, rates);
        prop_assert!(net.is_idle(), "network must drain under faults");
        prop_assert_eq!(
            net.stats().grants,
            (cols as u64 * rows as u64) * rounds as u64
        );
    }

    #[test]
    fn hierarchical_topologies_survive_dropped_signals(
        seed in any::<u64>(),
        n in 2usize..40,
        drop_ppm in 1_000u32..60_000,
    ) {
        let mesh = Mesh2D::near_square(n);
        let topo = Topology::hierarchical(mesh, 7);
        let net = drive_with_faults(&topo, 1, seed, 2, FaultRates::drops(drop_ppm));
        prop_assert!(net.is_idle());
        prop_assert_eq!(net.stats().grants, n as u64 * 2);
        if drop_ppm > 10_000 {
            // A lossy run of this size essentially always loses at least
            // one signal, and recovery must show up as retransmissions.
            prop_assert!(net.stats().dropped == 0 || net.stats().retransmits > 0);
        }
    }
}

#[test]
fn saturated_rounds_are_round_robin_fair() {
    // Deterministic saturation check over several sizes: in every full
    // round each core is granted exactly once.
    for n in [4usize, 9, 32] {
        let topo = Topology::flat(Mesh2D::near_square(n));
        let mut net = GlockNetwork::new(&topo, 1);
        let regs = net.regs();
        let rounds = 3;
        let mut remaining = vec![rounds; n];
        for c in 0..n {
            regs.set_req(c);
        }
        let mut now = 0u64;
        while net.stats().grants < (n * rounds) as u64 {
            net.tick(now);
            if let Some(h) = net.holder() {
                let c = h.index();
                regs.set_rel(c);
                remaining[c] -= 1;
                if remaining[c] > 0 {
                    regs.set_req(c);
                }
            }
            now += 1;
            assert!(now < 200_000);
        }
        assert!(!net.grant_log_truncated(), "fairness checked on a full log");
        let log = net.grant_log();
        for r in 0..rounds {
            let mut round: Vec<u16> = log[r * n..(r + 1) * n].iter().map(|c| c.0).collect();
            round.sort_unstable();
            assert_eq!(round, (0..n as u16).collect::<Vec<_>>(), "{n} cores, round {r}");
        }
    }
}
