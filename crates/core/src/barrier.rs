//! A G-line barrier network — the authors' companion mechanism (reference
//! \[22\]: Abellán, Fernández & Acacio, "A G-line-based Network for Fast
//! and Efficient Barrier Synchronization in Many-Core CMPs", ICPP 2010),
//! which the GLocks paper builds on.
//!
//! The same controller tree as a GLock is used, but with an
//! arrive/release protocol instead of a token: each core signals ARRIVE
//! up its row's G-line; a controller that has collected every child's
//! arrival forwards ARRIVE to its parent; when the root completes, a
//! RELEASE broadcast walks back down (G-lines broadcast across a whole
//! dimension in one cycle). A full barrier episode therefore costs
//! `2 × depth` cycles after the last arrival — single-digit cycles versus
//! hundreds for a memory-based combining tree.
//!
//! On the wires we reuse the GLock signal vocabulary: `REQ` carries
//! ARRIVE and `TOKEN` carries RELEASE.

use crate::signal::{Endpoint, InFlight, Sig, Wires};
use crate::topology::Topology;
use crate::node::Child;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::Cycle;
use std::cell::Cell;
use std::rc::Rc;

/// Per-core barrier interface: the core raises `arrive` and busy-waits on
/// it; the network resets it when the barrier opens.
#[derive(Debug)]
pub struct BarrierRegs {
    arrive: Vec<Cell<bool>>,
}

impl BarrierRegs {
    fn new(n_cores: usize) -> Rc<Self> {
        Rc::new(BarrierRegs { arrive: (0..n_cores).map(|_| Cell::new(false)).collect() })
    }

    /// Core side: signal arrival (`mov 1, barrier_arrive`).
    pub fn set_arrive(&self, core: usize) {
        self.arrive[core].set(true);
    }

    /// Core side: busy-wait test — still waiting while true.
    pub fn waiting(&self, core: usize) -> bool {
        self.arrive[core].get()
    }

    fn release(&self, core: usize) {
        self.arrive[core].set(false);
    }

    fn raised(&self, core: usize) -> bool {
        self.arrive[core].get()
    }
}

/// The assembled G-line barrier network.
pub struct GBarrierNetwork {
    latency: u64,
    parents: Vec<Option<(usize, usize)>>,
    children: Vec<Vec<Child>>,
    leaf_parent: Vec<(usize, usize)>,
    /// Arrivals collected this episode, per controller.
    counts: Vec<u32>,
    expected: Vec<u32>,
    /// Controller forwarded its ARRIVE and awaits the release.
    forwarded: Vec<bool>,
    /// Leaf already signalled the current episode.
    leaf_sent: Vec<bool>,
    regs: Rc<BarrierRegs>,
    wires: Wires,
    buf: Vec<InFlight>,
    episodes: u64,
}

impl GBarrierNetwork {
    pub fn new(topo: &Topology, gline_latency: u64) -> Self {
        assert!(gline_latency >= 1);
        let expected = topo.arbiters.iter().map(|(_, c)| c.len() as u32).collect::<Vec<_>>();
        GBarrierNetwork {
            latency: gline_latency,
            parents: topo.arbiters.iter().map(|(p, _)| *p).collect(),
            children: topo.arbiters.iter().map(|(_, c)| c.clone()).collect(),
            leaf_parent: topo.leaf_parent.clone(),
            counts: vec![0; topo.n_arbiters()],
            expected,
            forwarded: vec![false; topo.n_arbiters()],
            leaf_sent: vec![false; topo.n_cores],
            regs: BarrierRegs::new(topo.n_cores),
            wires: Wires::new(),
            buf: Vec::new(),
            episodes: 0,
        }
    }

    pub fn regs(&self) -> Rc<BarrierRegs> {
        Rc::clone(&self.regs)
    }

    /// Completed barrier episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// 1-bit signal transmissions so far.
    pub fn signals(&self) -> u64 {
        self.wires.signals_sent()
    }

    fn broadcast_release(&mut self, node: usize, now: Cycle) {
        // A G-line broadcast reaches every child in one line crossing.
        self.counts[node] = 0;
        self.forwarded[node] = false;
        let children = self.children[node].clone();
        for c in children {
            match c {
                Child::Arb(a) => self.wires.send(now, self.latency, Endpoint::Arb(a), Sig::Token, 0, 0),
                Child::Leaf(core) => {
                    self.wires.send(now, self.latency, Endpoint::Leaf(core), Sig::Token, 0, 0)
                }
            }
        }
    }

    /// Advance the barrier network one cycle.
    pub fn tick(&mut self, now: Cycle) {
        // Deliver due signals.
        self.buf.clear();
        self.wires.deliver_due(now, &mut self.buf);
        for i in 0..self.buf.len() {
            let s = self.buf[i];
            match (s.dst, s.sig) {
                (Endpoint::Arb(a), Sig::Req) => {
                    self.counts[a] += 1;
                    debug_assert!(
                        self.counts[a] <= self.expected[a],
                        "controller {a} over-counted arrivals"
                    );
                }
                (Endpoint::Arb(a), Sig::Token) => self.broadcast_release(a, now),
                (Endpoint::Leaf(c), Sig::Token) => {
                    self.regs.release(c.index());
                    self.leaf_sent[c.index()] = false;
                }
                other => unreachable!("unexpected barrier signal {other:?}"),
            }
        }
        // Leaves: signal fresh arrivals.
        for c in 0..self.leaf_sent.len() {
            if !self.leaf_sent[c] && self.regs.raised(c) {
                let (p, ci) = self.leaf_parent[c];
                self.wires.send(now, self.latency, Endpoint::Arb(p), Sig::Req, ci, 0);
                self.leaf_sent[c] = true;
            }
        }
        // Controllers: forward completed sub-barriers / open the barrier.
        for a in 0..self.counts.len() {
            if self.counts[a] == self.expected[a] && !self.forwarded[a] {
                match self.parents[a] {
                    Some((p, ci)) => {
                        self.wires.send(now, self.latency, Endpoint::Arb(p), Sig::Req, ci, 0);
                        self.forwarded[a] = true;
                    }
                    None => {
                        // Root complete: the barrier opens.
                        self.episodes += 1;
                        self.broadcast_release(a, now);
                    }
                }
            }
        }
    }

    /// Nothing in flight and no arrivals pending.
    pub fn is_idle(&self) -> bool {
        self.wires.is_idle()
            && self.counts.iter().all(|&c| c == 0)
            && self.leaf_sent.iter().all(|&s| !s)
    }

    /// The earliest cycle ≥ `now` at which ticking this network could do
    /// anything, or `None` if it is inert until a core raises `arrive`.
    ///
    /// The barrier automaton has no timers, so the only wake sources are
    /// in-flight signals, an unsignalled fresh arrival, and a completed
    /// sub-barrier not yet forwarded — all of which demand a dense tick
    /// right away. A partially-collected barrier waiting on stragglers is
    /// inert: nothing happens until another core arrives.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.wires.is_idle() {
            return Some(now);
        }
        if (0..self.leaf_sent.len()).any(|c| !self.leaf_sent[c] && self.regs.raised(c)) {
            return Some(now);
        }
        if (0..self.counts.len()).any(|a| self.counts[a] == self.expected[a] && !self.forwarded[a])
        {
            return Some(now);
        }
        None
    }

    /// Serialize the dynamic barrier state (tree shape and `expected`
    /// counts are structure; `buf` is per-tick scratch).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.mark("gbarrier");
        w.seq(&self.counts, |w, &c| w.u32(c));
        w.seq(&self.forwarded, |w, &f| w.bool(f));
        w.seq(&self.leaf_sent, |w, &s| w.bool(s));
        w.usize(self.regs.arrive.len());
        for a in &self.regs.arrive {
            w.bool(a.get());
        }
        self.wires.save_state(w);
        w.u64(self.episodes);
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect("gbarrier")?;
        let counts = r.seq(|r| r.u32())?;
        if counts.len() != self.counts.len() {
            return Err(SnapError::Corrupt { what: "gbarrier controller count" });
        }
        self.counts = counts;
        let forwarded = r.seq(|r| r.bool())?;
        if forwarded.len() != self.forwarded.len() {
            return Err(SnapError::Corrupt { what: "gbarrier controller count" });
        }
        self.forwarded = forwarded;
        let leaf_sent = r.seq(|r| r.bool())?;
        if leaf_sent.len() != self.leaf_sent.len() {
            return Err(SnapError::Corrupt { what: "gbarrier core count" });
        }
        self.leaf_sent = leaf_sent;
        if r.usize()? != self.regs.arrive.len() {
            return Err(SnapError::Corrupt { what: "gbarrier core count" });
        }
        for a in &self.regs.arrive {
            a.set(r.bool()?);
        }
        self.wires.load_state(r)?;
        self.episodes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glocks_sim_base::Mesh2D;

    fn net(n: usize) -> GBarrierNetwork {
        GBarrierNetwork::new(&Topology::flat(Mesh2D::near_square(n)), 1)
    }

    /// All cores arrive at cycle 0; returns the cycle the last core is
    /// released.
    fn episode(net: &mut GBarrierNetwork, n: usize, start: Cycle) -> Cycle {
        let regs = net.regs();
        for c in 0..n {
            regs.set_arrive(c);
        }
        for now in start..start + 1000 {
            net.tick(now);
            if (0..n).all(|c| !regs.waiting(c)) {
                return now;
            }
        }
        panic!("barrier never opened");
    }

    #[test]
    fn nine_core_barrier_costs_two_times_depth() {
        let mut b = net(9);
        let done = episode(&mut b, 9, 0);
        // ARRIVE leaf→row (1), row→root (1), RELEASE root→row (1),
        // row→leaf (1): released at cycle 4.
        assert_eq!(done, 4);
        assert_eq!(b.episodes(), 1);
        for t in 5..20 {
            b.tick(t);
        }
        assert!(b.is_idle());
    }

    #[test]
    fn repeated_episodes_work() {
        let mut b = net(16);
        let mut t = 0;
        for e in 1..=5 {
            t = episode(&mut b, 16, t) + 1;
            assert_eq!(b.episodes(), e);
        }
    }

    #[test]
    fn straggler_holds_the_barrier() {
        let mut b = net(4);
        let regs = b.regs();
        for c in 0..3 {
            regs.set_arrive(c);
        }
        for now in 0..50 {
            b.tick(now);
        }
        assert!(regs.waiting(0), "must wait for the straggler");
        assert_eq!(b.episodes(), 0);
        regs.set_arrive(3);
        for now in 50..60 {
            b.tick(now);
            if (0..4).all(|c| !regs.waiting(c)) {
                assert_eq!(b.episodes(), 1);
                return;
            }
        }
        panic!("barrier stuck after straggler arrived");
    }

    #[test]
    fn hierarchical_barrier_on_64_cores() {
        let topo = Topology::hierarchical(Mesh2D::near_square(64), 7);
        let mut b = GBarrierNetwork::new(&topo, 1);
        let done = episode(&mut b, 64, 0);
        // one extra level: 2 × 3 = 6 cycles
        assert_eq!(done, 2 * topo.depth() as u64);
    }

    #[test]
    fn signal_count_is_linear_in_cores() {
        let mut b = net(9);
        episode(&mut b, 9, 0);
        // 9 leaf ARRIVEs + 3 row ARRIVEs... the root's row also forwards;
        // releases: root broadcasts to 3 rows + rows to 9 leaves.
        assert_eq!(b.signals(), 9 + 3 + 3 + 9);
    }
}
