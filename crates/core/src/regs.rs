//! The programmer-visible GLock register interface (Figure 5).
//!
//! Each core gets a pair of flags per hardware lock: `lock_req` (set to
//! request; reset by the local controller when the lock is granted — the
//! core busy-waits on it) and `lock_rel` (set to release; reset by the
//! controller once the REL signal is sent). The paper groups all pairs in
//! one special lock register per core.
//!
//! The simulation is single-threaded, so the register file is shared
//! between the core-side scripts and the G-line network through
//! `Rc<GlockRegisters>` with `Cell` fields — modelling memory-mapped
//! device registers.

use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use std::cell::Cell;
use std::rc::Rc;

/// The register pairs of one hardware lock, one pair per core.
#[derive(Debug)]
pub struct GlockRegisters {
    lock_req: Vec<Cell<bool>>,
    lock_rel: Vec<Cell<bool>>,
    /// The core whose request was granted and whose release the
    /// controller has not yet consumed. Updated atomically with the grant
    /// delivery, so observers (invariant checker, failover drain) never
    /// see a torn holder — unlike polling the core-side scripts, which
    /// learn of a grant one resume later.
    holder: Cell<Option<usize>>,
}

impl GlockRegisters {
    pub fn new(n_cores: usize) -> Rc<Self> {
        Rc::new(GlockRegisters {
            lock_req: (0..n_cores).map(|_| Cell::new(false)).collect(),
            lock_rel: (0..n_cores).map(|_| Cell::new(false)).collect(),
            holder: Cell::new(None),
        })
    }

    pub fn n_cores(&self) -> usize {
        self.lock_req.len()
    }

    /// Core side: request the lock (`mov 1, lock_req`).
    pub fn set_req(&self, core: usize) {
        self.lock_req[core].set(true);
    }

    /// Core side: busy-wait test (`bnz lock_req, loop`).
    pub fn req_pending(&self, core: usize) -> bool {
        self.lock_req[core].get()
    }

    /// Core side: release the lock (`mov 1, lock_rel`).
    pub fn set_rel(&self, core: usize) {
        self.lock_rel[core].set(true);
    }

    /// Core side: is a release still being processed?
    pub fn rel_pending(&self, core: usize) -> bool {
        self.lock_rel[core].get()
    }

    /// The core currently granted on the hardware path, if any. On a dead
    /// (quarantined) network the controller never consumes the holder's
    /// release, so the holder stays set with `rel_pending(holder)` true
    /// once its critical section ended — see [`Self::hw_drained`].
    pub fn hw_holder(&self) -> Option<usize> {
        self.holder.get()
    }

    /// Failover drain predicate: the hardware path holds nobody inside a
    /// critical section. True when no grant is outstanding, or when the
    /// grantee has already written its release (the controller of a dead
    /// network will never consume it, but the critical section is over).
    pub fn hw_drained(&self) -> bool {
        match self.holder.get() {
            None => true,
            Some(h) => self.lock_rel[h].get(),
        }
    }

    /// Controller side: the grant — resets `lock_req`.
    pub(crate) fn grant(&self, core: usize) {
        self.lock_req[core].set(false);
        self.holder.set(Some(core));
    }

    /// Controller side: consume a pending release, if any.
    pub(crate) fn take_rel(&self, core: usize) -> bool {
        let v = self.lock_rel[core].get();
        if v {
            self.lock_rel[core].set(false);
            if self.holder.get() == Some(core) {
                self.holder.set(None);
            }
        }
        v
    }

    /// Controller side: observe a pending request (left set until grant).
    pub(crate) fn req_raised(&self, core: usize) -> bool {
        self.lock_req[core].get()
    }

    /// Repair: wipe the register file back to the boot image (no requests,
    /// no releases, no holder). Only valid while the network is dead and
    /// drained — every core-side script must already have observed the
    /// death and failed over, or a cleared `lock_req` could be mistaken
    /// for a grant.
    pub(crate) fn reset(&self) {
        for c in &self.lock_req {
            c.set(false);
        }
        for c in &self.lock_rel {
            c.set(false);
        }
        self.holder.set(None);
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.lock_req.len());
        for c in &self.lock_req {
            w.bool(c.get());
        }
        for c in &self.lock_rel {
            w.bool(c.get());
        }
        w.opt_u64(self.holder.get().map(|h| h as u64));
    }

    pub fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.lock_req.len() {
            return Err(SnapError::Corrupt { what: "glock register core count" });
        }
        for c in &self.lock_req {
            c.set(r.bool()?);
        }
        for c in &self.lock_rel {
            c.set(r.bool()?);
        }
        self.holder.set(r.opt_u64()?.map(|h| h as usize));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_grant_cycle() {
        let r = GlockRegisters::new(4);
        assert!(!r.req_pending(2));
        r.set_req(2);
        assert!(r.req_pending(2));
        assert!(r.req_raised(2));
        r.grant(2);
        assert!(!r.req_pending(2), "grant resets lock_req");
    }

    #[test]
    fn release_is_consumed_once() {
        let r = GlockRegisters::new(2);
        r.set_rel(1);
        assert!(r.rel_pending(1));
        assert!(r.take_rel(1));
        assert!(!r.rel_pending(1));
        assert!(!r.take_rel(1));
    }

    #[test]
    fn holder_tracks_grant_to_release_consumption() {
        let r = GlockRegisters::new(2);
        assert_eq!(r.hw_holder(), None);
        assert!(r.hw_drained());
        r.set_req(1);
        r.grant(1);
        assert_eq!(r.hw_holder(), Some(1));
        assert!(!r.hw_drained(), "grantee is inside its critical section");
        // The grantee writes its release: drained even before (or without)
        // the controller consuming it — the dead-network drain case.
        r.set_rel(1);
        assert!(r.hw_drained());
        assert_eq!(r.hw_holder(), Some(1), "holder cleared only by the controller");
        assert!(r.take_rel(1));
        assert_eq!(r.hw_holder(), None);
        assert!(r.hw_drained());
    }

    #[test]
    fn cores_are_independent() {
        let r = GlockRegisters::new(3);
        r.set_req(0);
        assert!(!r.req_pending(1));
        assert!(!r.req_pending(2));
    }
}
