//! Controller-tree layouts: the paper's flat organization (Figure 2/3) and
//! the hierarchical scaling extension of Section III-F.

use crate::node::Child;
use glocks_sim_base::Mesh2D;

/// One arbiter's blueprint: `(parent link, children)`, where the parent
/// link is `(parent index, child index at the parent)`.
pub type ArbiterSpec = (Option<(usize, usize)>, Vec<Child>);

/// A blueprint of one lock's controller tree.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Per arbiter. Index 0 is the root (primary lock manager).
    pub arbiters: Vec<ArbiterSpec>,
    /// Per core: `(arbiter index, child index)` of its local controller.
    pub leaf_parent: Vec<(usize, usize)>,
    /// Number of cores.
    pub n_cores: usize,
}

impl Topology {
    /// The paper's flat layout: one secondary lock manager per mesh row,
    /// one primary manager over them. Supported "up to 7×7 cores" by the
    /// 6-transmitter G-line fan-in constraint; larger CMPs should use
    /// [`Topology::hierarchical`].
    pub fn flat(mesh: Mesh2D) -> Self {
        let n_cores = mesh.len();
        assert!(
            n_cores <= 49,
            "flat GLock networks support up to 7×7 cores (Section III-F); \
             use Topology::hierarchical for {n_cores} cores"
        );
        let rows = mesh.rows();
        let mut arbiters: Vec<ArbiterSpec> = Vec::new();
        // Root first (primary lock manager).
        arbiters.push((None, Vec::new()));
        let mut leaf_parent = vec![(0usize, 0usize); n_cores];
        for y in 0..rows {
            let arb_idx = arbiters.len();
            let children: Vec<Child> = mesh
                .row(y)
                .map(|t| Child::Leaf(glocks_sim_base::CoreId(t.0)))
                .collect();
            for (ci, child) in children.iter().enumerate() {
                if let Child::Leaf(core) = child {
                    leaf_parent[core.index()] = (arb_idx, ci);
                }
            }
            let root_child_idx = arbiters[0].1.len();
            arbiters[0].1.push(Child::Arb(arb_idx));
            arbiters.push((Some((0, root_child_idx)), children));
        }
        Topology { arbiters, leaf_parent, n_cores }
    }

    /// The hierarchical extension: build a tree where no arbiter has more
    /// than `max_fan_in` children (the G-line transmitter limit plus the
    /// co-located receiver: 7 in the paper), by splitting rows into
    /// segments and stacking arbiter levels until a single root remains.
    pub fn hierarchical(mesh: Mesh2D, max_fan_in: usize) -> Self {
        assert!(max_fan_in >= 2);
        let n_cores = mesh.len();
        let mut arbiters: Vec<ArbiterSpec> = Vec::new();
        let mut leaf_parent = vec![(0usize, 0usize); n_cores];
        // Level 0: segment each row into groups of ≤ max_fan_in cores.
        let mut level: Vec<usize> = Vec::new();
        for y in 0..mesh.rows() {
            let row: Vec<_> = mesh.row(y).collect();
            for seg in row.chunks(max_fan_in) {
                let idx = arbiters.len();
                let children: Vec<Child> = seg
                    .iter()
                    .map(|t| Child::Leaf(glocks_sim_base::CoreId(t.0)))
                    .collect();
                for (ci, t) in seg.iter().enumerate() {
                    leaf_parent[t.index()] = (idx, ci);
                }
                arbiters.push((None, children)); // parent patched below
                level.push(idx);
            }
        }
        // Stack levels of arbiters until one root remains.
        while level.len() > 1 {
            let mut next: Vec<usize> = Vec::new();
            for group in level.chunks(max_fan_in) {
                let idx = arbiters.len();
                let children: Vec<Child> = group.iter().map(|&a| Child::Arb(a)).collect();
                for (ci, &a) in group.iter().enumerate() {
                    arbiters[a].0 = Some((idx, ci));
                }
                arbiters.push((None, children));
                next.push(idx);
            }
            level = next;
        }
        // Move the root to index 0 (the network assumes arbiter 0 = root).
        let root = level[0];
        if root != 0 {
            arbiters.swap(0, root);
            // Fix references to the two swapped indices.
            let fix = |i: usize| if i == root { 0 } else if i == 0 { root } else { i };
            for (parent, children) in arbiters.iter_mut() {
                if let Some((p, ci)) = parent {
                    *parent = Some((fix(*p), *ci));
                }
                for c in children.iter_mut() {
                    if let Child::Arb(a) = c {
                        *c = Child::Arb(fix(*a));
                    }
                }
            }
            for lp in leaf_parent.iter_mut() {
                lp.0 = fix(lp.0);
            }
        }
        Topology { arbiters, leaf_parent, n_cores }
    }

    /// Number of arbiter (manager) nodes.
    pub fn n_arbiters(&self) -> usize {
        self.arbiters.len()
    }

    /// Tree depth in arbiter levels (flat = 2: secondaries + primary).
    pub fn depth(&self) -> usize {
        fn depth_of(t: &Topology, a: usize) -> usize {
            1 + t.arbiters[a]
                .1
                .iter()
                .map(|c| match c {
                    Child::Arb(i) => depth_of(t, *i),
                    Child::Leaf(_) => 0,
                })
                .max()
                .unwrap_or(0)
        }
        depth_of(self, 0)
    }

    /// Number of G-lines this network needs. Every controller (leaf or
    /// arbiter) has a dedicated line to its manager except the one
    /// co-located with it, giving the paper's `C − 1` for the flat layout.
    pub fn gline_count(&self) -> usize {
        // edges = leaves + (arbiters − 1); co-locations = arbiters.
        self.n_cores + self.n_arbiters() - 1 - self.n_arbiters()
    }

    /// Worst-case acquire latency in cycles (Table I: 4 for the flat
    /// layout): one REQ per level up, one TOKEN per level down.
    pub fn worst_case_acquire(&self, gline_latency: u64) -> u64 {
        2 * self.depth() as u64 * gline_latency
    }

    /// Best-case acquire latency (Table I: 2): REQ to the row manager that
    /// is actively scanning, TOKEN straight back.
    pub fn best_case_acquire(&self, gline_latency: u64) -> u64 {
        2 * gline_latency
    }

    /// Internal consistency check (tests).
    pub fn validate(&self) {
        assert!(self.arbiters[0].0.is_none(), "arbiter 0 must be the root");
        let mut seen_leaves = vec![false; self.n_cores];
        for (i, (parent, children)) in self.arbiters.iter().enumerate() {
            assert!(!children.is_empty());
            if i != 0 {
                let (p, ci) = parent.expect("non-root must have a parent");
                assert_eq!(self.arbiters[p].1[ci], Child::Arb(i), "parent link broken");
            }
            for (ci, c) in children.iter().enumerate() {
                if let Child::Leaf(core) = c {
                    assert!(!seen_leaves[core.index()], "core attached twice");
                    seen_leaves[core.index()] = true;
                    assert_eq!(self.leaf_parent[core.index()], (i, ci));
                }
            }
        }
        assert!(seen_leaves.iter().all(|&s| s), "every core must be attached");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_9_core_matches_paper_example() {
        let t = Topology::flat(Mesh2D::new(3, 3));
        t.validate();
        assert_eq!(t.n_arbiters(), 4, "primary + 3 secondaries");
        assert_eq!(t.depth(), 2);
        assert_eq!(t.gline_count(), 8, "Table I: C − 1 G-lines");
        assert_eq!(t.worst_case_acquire(1), 4, "Table I worst case");
        assert_eq!(t.best_case_acquire(1), 2, "Table I best case");
    }

    #[test]
    fn flat_32_core_baseline() {
        let t = Topology::flat(Mesh2D::new(8, 4));
        t.validate();
        assert_eq!(t.n_arbiters(), 5, "primary + 4 row secondaries");
        assert_eq!(t.gline_count(), 31);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "up to 7×7")]
    fn flat_rejects_large_cmps() {
        let _ = Topology::flat(Mesh2D::new(8, 8));
    }

    #[test]
    fn hierarchical_64_cores() {
        let t = Topology::hierarchical(Mesh2D::new(8, 8), 7);
        t.validate();
        assert!(t.depth() >= 3, "64 cores need an extra level");
        assert_eq!(t.gline_count(), 63, "C − 1 still holds");
        for (_, children) in &t.arbiters {
            assert!(children.len() <= 7, "fan-in constraint respected");
        }
    }

    #[test]
    fn hierarchical_matches_flat_depth_when_small() {
        let t = Topology::hierarchical(Mesh2D::new(3, 3), 7);
        t.validate();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.worst_case_acquire(1), 4);
    }

    #[test]
    fn hierarchical_100_cores() {
        let t = Topology::hierarchical(Mesh2D::new(10, 10), 7);
        t.validate();
        assert_eq!(t.gline_count(), 99);
        for (_, children) in &t.arbiters {
            assert!(children.len() <= 7);
        }
    }

    #[test]
    fn single_core_degenerates() {
        let t = Topology::flat(Mesh2D::new(1, 1));
        t.validate();
        assert_eq!(t.gline_count(), 0);
    }
}
