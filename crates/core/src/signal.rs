//! G-line signals and their propagation.
//!
//! A G-line carries one bit across one chip dimension in a single cycle
//! (configurable via `gline_latency` for the paper's "longer-latency
//! G-lines" scaling path). The synchronization protocol needs three signal
//! types (Section III-B).
//!
//! Beyond the paper, every `TOKEN`/`REL` carries the delegating arbiter's
//! **epoch** (a per-arbiter monotone delegation counter) so the hardened
//! automata in [`crate::node`] can reject stale and duplicated tokens, and
//! the wires accept an optional [`FaultInjector`] that drops, delays or
//! duplicates transmissions according to a deterministic schedule.

use glocks_sim_base::fault::{FaultDecision, FaultInjector};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{CoreId, Cycle};

/// The three 1-bit signal types of the GLocks protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sig {
    /// Ask for the lock (controller → manager, manager → parent manager).
    Req,
    /// Grant the lock (manager → controller / child manager).
    Token,
    /// Give the lock back (controller → manager, manager → parent).
    Rel,
}

/// A signal in flight on a G-line.
#[derive(Clone, Copy, Debug)]
pub struct InFlight {
    pub deliver_at: Cycle,
    pub dst: Endpoint,
    pub sig: Sig,
    /// Sender's index within the receiver's child list (for `Req`/`Rel`
    /// to arbiters; ignored for `Token` and leaf deliveries).
    pub child_index: usize,
    /// Delegation epoch: the delegating arbiter's counter value for
    /// `Token`, echoed back on the matching `Rel`; 0 for `Req`.
    pub epoch: u64,
}

/// A signal destination inside one lock's controller tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// An arbiter node (secondary / primary / super-primary manager),
    /// by node index.
    Arb(usize),
    /// A core's local controller.
    Leaf(CoreId),
}

/// The set of signals currently on the wires of one lock's network.
#[derive(Debug, Default)]
pub struct Wires {
    in_flight: Vec<InFlight>,
    sent: u64,
    dropped: u64,
    faults: Option<FaultInjector>,
    /// Hard fault: the G-line segments are dead from this cycle on. Every
    /// later transmission is lost and undelivered in-flight signals whose
    /// arrival falls at or past the death cycle never arrive.
    dead_from: Option<Cycle>,
}

impl Wires {
    pub fn new() -> Self {
        Self::default()
    }

    /// Subject every subsequent transmission to the injector's schedule.
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = Some(faults);
    }

    /// Permanently kill the wires from cycle `at` on (hard fault). Signals
    /// already in flight that would arrive at or after `at` are purged.
    pub fn kill(&mut self, at: Cycle) {
        self.dead_from = Some(at);
        let before = self.in_flight.len();
        self.in_flight.retain(|s| s.deliver_at < at);
        self.dropped += (before - self.in_flight.len()) as u64;
    }

    pub fn is_dead(&self) -> bool {
        self.dead_from.is_some()
    }

    /// Repair: the dead metal is replaced. Leftover in-flight signals (sent
    /// pre-death but never delivered) are scrapped with the old wires; the
    /// cumulative `sent`/`dropped` energy counters survive, as does the
    /// fault injector (its schedule is a pure function of the event index,
    /// so replacement hardware on the same glitchy substrate keeps faulting).
    pub fn revive(&mut self) {
        let before = self.in_flight.len();
        self.in_flight.clear();
        self.dropped += before as u64;
        self.dead_from = None;
    }

    /// Soft-fault totals from the injector, if one is attached.
    pub fn fault_stats(&self) -> Option<glocks_sim_base::fault::FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// Put a signal on a G-line at cycle `now`; it is visible to the
    /// receiver's automaton from cycle `now + latency` on — unless the
    /// fault schedule drops, delays or duplicates it.
    pub fn send(
        &mut self,
        now: Cycle,
        latency: u64,
        dst: Endpoint,
        sig: Sig,
        child_index: usize,
        epoch: u64,
    ) {
        self.sent += 1;
        if self.dead_from.is_some_and(|d| now >= d) {
            // Driven onto dead metal: counts as a transmission (the sender
            // spent the energy) but can never arrive.
            self.dropped += 1;
            return;
        }
        let mut deliver_at = now + latency;
        if let Some(f) = self.faults.as_mut() {
            match f.decide() {
                FaultDecision::Deliver => {}
                FaultDecision::Drop => {
                    self.dropped += 1;
                    return;
                }
                FaultDecision::Delay(extra) => deliver_at += extra,
                FaultDecision::Duplicate => {
                    // The glitched copy trails the original by one cycle
                    // and is a real transmission for the energy model.
                    self.sent += 1;
                    self.in_flight.push(InFlight {
                        deliver_at: deliver_at + 1,
                        dst,
                        sig,
                        child_index,
                        epoch,
                    });
                }
            }
        }
        self.in_flight.push(InFlight { deliver_at, dst, sig, child_index, epoch });
    }

    /// Pop all signals due at `now` (in send order).
    pub fn deliver_due(&mut self, now: Cycle, out: &mut Vec<InFlight>) {
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].deliver_at <= now {
                out.push(self.in_flight.remove(i));
            } else {
                i += 1;
            }
        }
    }

    /// Total signal transmissions so far (energy-model input; dropped
    /// signals were still driven onto the wire and count).
    pub fn signals_sent(&self) -> u64 {
        self.sent
    }

    /// Transmissions lost to the fault schedule.
    pub fn signals_dropped(&self) -> u64 {
        self.dropped
    }

    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.in_flight.len());
        for s in &self.in_flight {
            w.u64(s.deliver_at);
            match s.dst {
                Endpoint::Arb(i) => {
                    w.u8(0);
                    w.usize(i);
                }
                Endpoint::Leaf(c) => {
                    w.u8(1);
                    w.u16(c.0);
                }
            }
            w.u8(match s.sig {
                Sig::Req => 0,
                Sig::Token => 1,
                Sig::Rel => 2,
            });
            w.usize(s.child_index);
            w.u64(s.epoch);
        }
        w.u64(self.sent);
        w.u64(self.dropped);
        w.bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.save_state(w);
        }
        w.opt_u64(self.dead_from);
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        self.in_flight.clear();
        for _ in 0..n {
            let deliver_at = r.u64()?;
            let dst = match r.u8()? {
                0 => Endpoint::Arb(r.usize()?),
                1 => Endpoint::Leaf(CoreId(r.u16()?)),
                tag => {
                    return Err(SnapError::BadTag { what: "g-line endpoint", tag: u64::from(tag) })
                }
            };
            let sig = match r.u8()? {
                0 => Sig::Req,
                1 => Sig::Token,
                2 => Sig::Rel,
                tag => {
                    return Err(SnapError::BadTag { what: "g-line signal", tag: u64::from(tag) })
                }
            };
            let child_index = r.usize()?;
            let epoch = r.u64()?;
            self.in_flight.push(InFlight { deliver_at, dst, sig, child_index, epoch });
        }
        self.sent = r.u64()?;
        self.dropped = r.u64()?;
        if r.bool()? {
            match self.faults.as_mut() {
                Some(f) => f.load_state(r)?,
                None => return Err(SnapError::Corrupt { what: "g-line fault injector presence" }),
            }
        } else if self.faults.is_some() {
            return Err(SnapError::Corrupt { what: "g-line fault injector presence" });
        }
        self.dead_from = r.opt_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glocks_sim_base::fault::{FaultPlan, FaultRates, FaultSite};

    #[test]
    fn delivery_respects_latency_and_order() {
        let mut w = Wires::new();
        w.send(10, 1, Endpoint::Arb(0), Sig::Req, 2, 0);
        w.send(10, 1, Endpoint::Arb(0), Sig::Rel, 3, 7);
        w.send(10, 2, Endpoint::Leaf(CoreId(5)), Sig::Token, 0, 9);
        let mut got = Vec::new();
        w.deliver_due(10, &mut got);
        assert!(got.is_empty());
        w.deliver_due(11, &mut got);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].sig, Sig::Req);
        assert_eq!(got[1].sig, Sig::Rel);
        assert_eq!(got[1].epoch, 7);
        got.clear();
        w.deliver_due(12, &mut got);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].dst, Endpoint::Leaf(CoreId(5)));
        assert_eq!(got[0].epoch, 9);
        assert!(w.is_idle());
        assert_eq!(w.signals_sent(), 3);
        assert_eq!(w.signals_dropped(), 0);
    }

    #[test]
    fn dropped_signals_never_arrive_but_still_count() {
        let mut plan = FaultPlan::seeded(7);
        plan.gline = FaultRates::drops(1_000_000);
        let mut w = Wires::new();
        w.set_faults(plan.injector(FaultSite::Gline, 0));
        for i in 0..20 {
            w.send(i, 1, Endpoint::Arb(0), Sig::Req, 0, 0);
        }
        let mut got = Vec::new();
        w.deliver_due(1_000, &mut got);
        assert!(got.is_empty(), "all transmissions were dropped");
        assert_eq!(w.signals_sent(), 20);
        assert_eq!(w.signals_dropped(), 20);
    }

    #[test]
    fn killed_wires_purge_and_refuse() {
        let mut w = Wires::new();
        w.send(0, 1, Endpoint::Arb(0), Sig::Req, 0, 0); // arrives at 1
        w.send(0, 10, Endpoint::Arb(0), Sig::Rel, 0, 2); // would arrive at 10
        w.kill(5);
        assert!(w.is_dead());
        let mut got = Vec::new();
        w.deliver_due(1, &mut got);
        assert_eq!(got.len(), 1, "pre-death arrival still delivered");
        got.clear();
        w.deliver_due(100, &mut got);
        assert!(got.is_empty(), "post-death arrival was purged");
        w.send(6, 1, Endpoint::Arb(0), Sig::Req, 0, 0);
        w.deliver_due(100, &mut got);
        assert!(got.is_empty(), "sends onto dead wires are lost");
        assert_eq!(w.signals_sent(), 3, "lost sends still drove the wire");
        assert_eq!(w.signals_dropped(), 2);
        assert!(w.is_idle());
    }

    #[test]
    fn duplicated_signals_arrive_twice() {
        let mut plan = FaultPlan::seeded(7);
        plan.gline = FaultRates::duplicates(1_000_000);
        let mut w = Wires::new();
        w.set_faults(plan.injector(FaultSite::Gline, 0));
        w.send(0, 1, Endpoint::Leaf(CoreId(1)), Sig::Token, 0, 3);
        let mut got = Vec::new();
        w.deliver_due(100, &mut got);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|s| s.epoch == 3));
        assert_eq!(w.signals_sent(), 2);
    }
}
