//! G-line signals and their propagation.
//!
//! A G-line carries one bit across one chip dimension in a single cycle
//! (configurable via `gline_latency` for the paper's "longer-latency
//! G-lines" scaling path). The synchronization protocol needs three signal
//! types (Section III-B).

use glocks_sim_base::{CoreId, Cycle};

/// The three 1-bit signal types of the GLocks protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sig {
    /// Ask for the lock (controller → manager, manager → parent manager).
    Req,
    /// Grant the lock (manager → controller / child manager).
    Token,
    /// Give the lock back (controller → manager, manager → parent).
    Rel,
}

/// A signal destination inside one lock's controller tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// An arbiter node (secondary / primary / super-primary manager),
    /// by node index.
    Arb(usize),
    /// A core's local controller.
    Leaf(CoreId),
}

/// A signal in flight on a G-line.
#[derive(Clone, Copy, Debug)]
pub struct InFlight {
    pub deliver_at: Cycle,
    pub dst: Endpoint,
    pub sig: Sig,
    /// Sender's index within the receiver's child list (for `Req`/`Rel`
    /// to arbiters; ignored for `Token` and leaf deliveries).
    pub child_index: usize,
}

/// The set of signals currently on the wires of one lock's network.
#[derive(Debug, Default)]
pub struct Wires {
    in_flight: Vec<InFlight>,
    sent: u64,
}

impl Wires {
    pub fn new() -> Self {
        Self::default()
    }

    /// Put a signal on a G-line at cycle `now`; it is visible to the
    /// receiver's automaton from cycle `now + latency` on.
    pub fn send(&mut self, now: Cycle, latency: u64, dst: Endpoint, sig: Sig, child_index: usize) {
        self.sent += 1;
        self.in_flight.push(InFlight {
            deliver_at: now + latency,
            dst,
            sig,
            child_index,
        });
    }

    /// Pop all signals due at `now` (in send order).
    pub fn deliver_due(&mut self, now: Cycle, out: &mut Vec<InFlight>) {
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].deliver_at <= now {
                out.push(self.in_flight.remove(i));
            } else {
                i += 1;
            }
        }
    }

    /// Total signal transmissions so far (energy-model input).
    pub fn signals_sent(&self) -> u64 {
        self.sent
    }

    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_latency_and_order() {
        let mut w = Wires::new();
        w.send(10, 1, Endpoint::Arb(0), Sig::Req, 2);
        w.send(10, 1, Endpoint::Arb(0), Sig::Rel, 3);
        w.send(10, 2, Endpoint::Leaf(CoreId(5)), Sig::Token, 0);
        let mut got = Vec::new();
        w.deliver_due(10, &mut got);
        assert!(got.is_empty());
        w.deliver_due(11, &mut got);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].sig, Sig::Req);
        assert_eq!(got[1].sig, Sig::Rel);
        got.clear();
        w.deliver_due(12, &mut got);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].dst, Endpoint::Leaf(CoreId(5)));
        assert!(w.is_idle());
        assert_eq!(w.signals_sent(), 3);
    }
}
