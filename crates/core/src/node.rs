//! The controller automata of Figure 6, generalized to an arbiter tree.
//!
//! The paper's flat organization is a three-level tree: local controllers
//! (leaves) → secondary lock managers (one per mesh row) → the primary lock
//! manager (root, which initially holds the token). The hierarchical
//! scaling extension sketched in Section III-F simply adds one more arbiter
//! level, so both layouts run the same automata:
//!
//! * An **arbiter** with the token scans its flag vector round-robin and
//!   delegates the token to the next requesting child; when the child
//!   returns `REL` it continues the scan; when the scan is exhausted a
//!   non-root arbiter returns the token to its parent (Figure 4d), while
//!   the root keeps it (and keeps its scan pointer, making the global order
//!   cyclic — "the process would start again from Core0").
//! * An arbiter without the token sends `REQ` to its parent as soon as any
//!   of its flags is raised.
//! * A **leaf** (local controller) bridges the core's `lock_req`/`lock_rel`
//!   registers to the wires: `REQ` on request, reset of `lock_req` on
//!   `TOKEN` (the grant), `REL` on release.

use crate::regs::GlockRegisters;
use crate::signal::{Endpoint, Sig, Wires};
use glocks_sim_base::{CoreId, Cycle};

/// A child of an arbiter node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Child {
    /// Another arbiter (e.g. a secondary manager under the primary).
    Arb(usize),
    /// A core's local controller.
    Leaf(CoreId),
}

/// A lock manager (secondary, primary, or super-primary).
#[derive(Debug)]
pub struct ArbiterNode {
    /// `(parent node index, this node's child index at the parent)`;
    /// `None` for the root, which initially holds the token.
    pub parent: Option<(usize, usize)>,
    pub children: Vec<Child>,
    /// One flag per child (the paper's `fx` / `fSx` flag vectors).
    flags: Vec<bool>,
    has_token: bool,
    requested: bool,
    /// Child index the token is currently delegated to.
    delegated: Option<usize>,
    scan_pos: usize,
}

impl ArbiterNode {
    pub fn new(parent: Option<(usize, usize)>, children: Vec<Child>) -> Self {
        let n = children.len();
        assert!(n > 0, "arbiter with no children");
        ArbiterNode {
            parent,
            children,
            flags: vec![false; n],
            has_token: parent.is_none(),
            requested: false,
            delegated: None,
            scan_pos: 0,
        }
    }

    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    pub fn has_token(&self) -> bool {
        self.has_token
    }

    pub fn delegated(&self) -> Option<usize> {
        self.delegated
    }

    pub fn flags_raised(&self) -> usize {
        self.flags.iter().filter(|&&f| f).count()
    }

    /// Deliver a signal from a child or the parent.
    pub fn on_signal(&mut self, sig: Sig, child_index: usize) {
        match sig {
            Sig::Req => {
                self.flags[child_index] = true;
            }
            Sig::Rel => {
                debug_assert_eq!(
                    self.delegated,
                    Some(child_index),
                    "REL from a child that was not delegated"
                );
                self.delegated = None;
            }
            Sig::Token => {
                debug_assert!(!self.is_root(), "root never receives TOKEN");
                debug_assert!(!self.has_token, "duplicate TOKEN");
                self.has_token = true;
                self.requested = false;
                // A fresh tenure scans the flag vector from the start.
                self.scan_pos = 0;
            }
        }
    }

    /// Find the next raised flag: the root scans cyclically (one full
    /// wrap), a non-root arbiter scans only to the end of its vector.
    fn next_flag(&self) -> Option<usize> {
        let n = self.flags.len();
        if self.is_root() {
            (0..n).map(|k| (self.scan_pos + k) % n).find(|&i| self.flags[i])
        } else {
            (self.scan_pos..n).find(|&i| self.flags[i])
        }
    }

    /// One cycle of the automaton. Emits at most one signal.
    pub fn tick(&mut self, now: Cycle, latency: u64, wires: &mut Wires) {
        if !self.has_token {
            // [fX = 1] / SglineP := REQ
            if !self.requested && self.flags.iter().any(|&f| f) {
                let (p, my_idx) = self.parent.expect("tokenless node has a parent");
                wires.send(now, latency, Endpoint::Arb(p), Sig::Req, my_idx);
                self.requested = true;
            }
            return;
        }
        if self.delegated.is_some() {
            return; // waiting for the child's REL
        }
        match self.next_flag() {
            Some(i) => {
                // RoundRobin() = fX / grant
                self.flags[i] = false;
                self.delegated = Some(i);
                self.scan_pos = i + 1;
                let (dst, child_index) = match self.children[i] {
                    Child::Arb(a) => (Endpoint::Arb(a), 0),
                    Child::Leaf(c) => (Endpoint::Leaf(c), 0),
                };
                wires.send(now, latency, dst, Sig::Token, child_index);
            }
            None => {
                // RoundRobin() = NULL: the scan is exhausted.
                if let Some((p, my_idx)) = self.parent {
                    wires.send(now, latency, Endpoint::Arb(p), Sig::Rel, my_idx);
                    self.has_token = false;
                    self.requested = false;
                }
                // The root simply keeps the token.
            }
        }
    }
}

/// A core's local controller state (Figure 6, bottom automaton).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafState {
    Idle,
    /// REQ sent; busy-waiting for TOKEN.
    Waiting,
    /// This core holds the lock.
    Holding,
}

/// A core's local controller.
#[derive(Debug)]
pub struct LeafCtl {
    pub core: CoreId,
    /// `(arbiter node index, child index at that arbiter)`.
    pub parent: (usize, usize),
    state: LeafState,
}

impl LeafCtl {
    pub fn new(core: CoreId, parent: (usize, usize)) -> Self {
        LeafCtl { core, parent, state: LeafState::Idle }
    }

    pub fn state(&self) -> LeafState {
        self.state
    }

    /// TOKEN delivery: grant the lock by resetting `lock_req` (Figure 5's
    /// busy-wait loop falls through).
    pub fn on_token(&mut self, regs: &GlockRegisters) {
        debug_assert_eq!(self.state, LeafState::Waiting, "TOKEN to a non-waiting core");
        regs.grant(self.core.index());
        self.state = LeafState::Holding;
    }

    /// One cycle: watch the core's register pair.
    pub fn tick(&mut self, now: Cycle, latency: u64, regs: &GlockRegisters, wires: &mut Wires) {
        match self.state {
            LeafState::Idle => {
                if regs.req_raised(self.core.index()) {
                    let (p, my_idx) = self.parent;
                    wires.send(now, latency, Endpoint::Arb(p), Sig::Req, my_idx);
                    self.state = LeafState::Waiting;
                }
            }
            LeafState::Holding => {
                if regs.take_rel(self.core.index()) {
                    let (p, my_idx) = self.parent;
                    wires.send(now, latency, Endpoint::Arb(p), Sig::Rel, my_idx);
                    self.state = LeafState::Idle;
                }
            }
            LeafState::Waiting => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::InFlight;

    fn drain(wires: &mut Wires, now: Cycle) -> Vec<InFlight> {
        let mut v = Vec::new();
        wires.deliver_due(now, &mut v);
        v
    }

    #[test]
    fn root_grants_round_robin_cyclically() {
        let mut wires = Wires::new();
        let mut root = ArbiterNode::new(
            None,
            vec![Child::Leaf(CoreId(0)), Child::Leaf(CoreId(1)), Child::Leaf(CoreId(2))],
        );
        assert!(root.has_token());
        root.on_signal(Sig::Req, 1);
        root.on_signal(Sig::Req, 2);
        root.tick(0, 1, &mut wires);
        let d = drain(&mut wires, 1);
        assert_eq!(d[0].dst, Endpoint::Leaf(CoreId(1)));
        assert_eq!(d[0].sig, Sig::Token);
        // child 1 returns the token; child 0 requests late
        root.on_signal(Sig::Rel, 1);
        root.on_signal(Sig::Req, 0);
        root.tick(2, 1, &mut wires);
        // scan continues cyclically from index 2, not restarting at 0
        let d = drain(&mut wires, 3);
        assert_eq!(d[0].dst, Endpoint::Leaf(CoreId(2)));
        root.on_signal(Sig::Rel, 2);
        root.tick(4, 1, &mut wires);
        let d = drain(&mut wires, 5);
        assert_eq!(d[0].dst, Endpoint::Leaf(CoreId(0)));
    }

    #[test]
    fn root_keeps_token_when_idle() {
        let mut wires = Wires::new();
        let mut root = ArbiterNode::new(None, vec![Child::Leaf(CoreId(0))]);
        root.tick(0, 1, &mut wires);
        assert!(root.has_token());
        assert!(wires.is_idle(), "no spurious signals");
    }

    #[test]
    fn secondary_requests_then_single_pass_then_returns() {
        let mut wires = Wires::new();
        // node 1 is a secondary under root 0, child index 3 at the root
        let mut s = ArbiterNode::new(
            Some((0, 3)),
            vec![Child::Leaf(CoreId(4)), Child::Leaf(CoreId(5))],
        );
        assert!(!s.has_token());
        s.on_signal(Sig::Req, 1); // core 5 requests
        s.tick(0, 1, &mut wires);
        let d = drain(&mut wires, 1);
        assert_eq!(d[0].dst, Endpoint::Arb(0));
        assert_eq!(d[0].sig, Sig::Req);
        assert_eq!(d[0].child_index, 3);
        // no duplicate REQ while waiting
        s.tick(1, 1, &mut wires);
        assert!(wires.is_idle());
        // token arrives; single pass grants core 5 then returns the token
        s.on_signal(Sig::Token, 0);
        s.tick(2, 1, &mut wires);
        let d = drain(&mut wires, 3);
        assert_eq!(d[0].dst, Endpoint::Leaf(CoreId(5)));
        // core 4 requests *during* the tenure at an earlier index:
        // it must wait for the next tenure (single forward pass).
        s.on_signal(Sig::Req, 0);
        s.on_signal(Sig::Rel, 1);
        s.tick(4, 1, &mut wires);
        let d = drain(&mut wires, 5);
        assert_eq!(d[0].sig, Sig::Rel, "token returned, not re-granted");
        assert!(!s.has_token());
        // and it re-requests on the next cycle because a flag is raised
        s.tick(5, 1, &mut wires);
        let d = drain(&mut wires, 6);
        assert_eq!(d[0].sig, Sig::Req);
    }

    #[test]
    fn leaf_follows_figure5_discipline() {
        let regs = GlockRegisters::new(8);
        let mut wires = Wires::new();
        let mut leaf = LeafCtl::new(CoreId(3), (1, 2));
        // idle until the core raises lock_req
        leaf.tick(0, 1, &regs, &mut wires);
        assert!(wires.is_idle());
        regs.set_req(3);
        leaf.tick(1, 1, &regs, &mut wires);
        assert_eq!(leaf.state(), LeafState::Waiting);
        let d = drain(&mut wires, 2);
        assert_eq!(d[0].sig, Sig::Req);
        assert_eq!(d[0].dst, Endpoint::Arb(1));
        assert_eq!(d[0].child_index, 2);
        // grant resets lock_req
        leaf.on_token(&regs);
        assert!(!regs.req_pending(3));
        assert_eq!(leaf.state(), LeafState::Holding);
        // release
        regs.set_rel(3);
        leaf.tick(5, 1, &regs, &mut wires);
        assert_eq!(leaf.state(), LeafState::Idle);
        assert!(!regs.rel_pending(3), "controller consumed lock_rel");
        let d = drain(&mut wires, 6);
        assert_eq!(d[0].sig, Sig::Rel);
    }

    #[test]
    #[should_panic(expected = "duplicate TOKEN")]
    fn duplicate_token_is_detected() {
        let mut s = ArbiterNode::new(Some((0, 0)), vec![Child::Leaf(CoreId(0))]);
        s.on_signal(Sig::Token, 0);
        s.on_signal(Sig::Token, 0);
    }
}
