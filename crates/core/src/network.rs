//! One hardware lock's assembled G-line network.

use crate::node::{ArbiterNode, LeafCtl, LeafState, RetryPolicy};
use crate::regs::GlockRegisters;
use crate::signal::{Endpoint, InFlight, Sig, Wires};
use crate::topology::Topology;
use glocks_sim_base::fault::FaultInjector;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::trace::TraceMask;
use glocks_sim_base::{trace_event, CoreId, Cycle};
use glocks_stats as gstats;
use std::cell::Cell;
use std::rc::Rc;

/// Retransmission attempts before a controller declares the network dead.
/// Only set when a hard fault is scheduled — transient-only fault plans keep
/// the unbounded PR-1 behavior (any sub-100% loss rate is survivable, so
/// giving up would be a false verdict).
pub const DETECTION_ATTEMPTS: u32 = 5;

/// Trust state of one GLock network's hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HealthMode {
    /// Fully operational and trusted by the lock backends.
    Healthy,
    /// Death verdict reached: quarantined, never delivers or grants.
    Dead,
    /// Physically repaired (rebooted to a clean image) but not yet trusted:
    /// only the fail-back probes may exercise it until hysteresis clears it.
    Untrusted,
}

/// Shared liveness handle of one GLock network. Set to `Dead` when failure
/// detection (exhausted retransmission budgets) escalates to a
/// `NetworkDead` verdict; the lock backends and the dynamic pool observe it
/// to fail over to the software path. A scheduled repair moves it to
/// `Untrusted`, and the fail-back state machine in the failover backend
/// promotes it back to `Healthy` once its probe hysteresis is satisfied —
/// so under intermittent faults the cycle can repeat.
#[derive(Debug)]
pub struct NetworkHealth {
    mode: Cell<HealthMode>,
    dead_since: Cell<Cycle>,
    /// Times this network's hardware was repaired (rebooted to the boot
    /// image). Cumulative across flapping episodes.
    repairs: Cell<u64>,
}

impl Default for NetworkHealth {
    fn default() -> Self {
        NetworkHealth {
            mode: Cell::new(HealthMode::Healthy),
            dead_since: Cell::new(0),
            repairs: Cell::new(0),
        }
    }
}

impl NetworkHealth {
    pub fn is_dead(&self) -> bool {
        self.mode.get() == HealthMode::Dead
    }

    /// Fully trusted: the lock backends may route acquires through the
    /// hardware path. False while dead *and* while repaired-but-untrusted.
    pub fn is_trusted(&self) -> bool {
        self.mode.get() == HealthMode::Healthy
    }

    /// Cycle the (latest) death verdict was reached (not the physical
    /// fault cycle). `None` unless the network is currently dead.
    pub fn dead_since(&self) -> Option<Cycle> {
        self.is_dead().then(|| self.dead_since.get())
    }

    /// Times this network was repaired (hardware reboots survived).
    pub fn repairs(&self) -> u64 {
        self.repairs.get()
    }

    pub(crate) fn mark_dead(&self, now: Cycle) {
        if self.mode.get() != HealthMode::Dead {
            self.mode.set(HealthMode::Dead);
            self.dead_since.set(now);
        }
    }

    /// Repair: the hardware was rebooted to a clean image. Untrusted until
    /// the fail-back probes promote it via [`Self::mark_trusted`].
    pub(crate) fn mark_untrusted(&self) {
        debug_assert_eq!(self.mode.get(), HealthMode::Dead, "only dead hardware is repaired");
        self.mode.set(HealthMode::Untrusted);
        self.repairs.set(self.repairs.get() + 1);
    }

    /// Fail-back commit: the probe hysteresis is satisfied; the hardware
    /// path is trusted again. Called by the failover backend.
    pub fn mark_trusted(&self) {
        self.mode.set(HealthMode::Healthy);
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u8(match self.mode.get() {
            HealthMode::Healthy => 0,
            HealthMode::Dead => 1,
            HealthMode::Untrusted => 2,
        });
        w.u64(self.dead_since.get());
        w.u64(self.repairs.get());
    }

    pub fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.mode.set(match r.u8()? {
            0 => HealthMode::Healthy,
            1 => HealthMode::Dead,
            2 => HealthMode::Untrusted,
            tag => return Err(SnapError::BadTag { what: "network health mode", tag: u64::from(tag) }),
        });
        self.dead_since.set(r.u64()?);
        self.repairs.set(r.u64()?);
        Ok(())
    }
}

/// A scheduled permanent failure inside one network.
#[derive(Clone, Copy, Debug)]
enum Kill {
    /// The shared G-line segments: all communication stops.
    Line,
    /// One arbiter (manager) node, by index.
    Manager(usize),
    /// One core's local controller.
    Leaf(usize),
}

/// Event counters of one GLock network (energy-model input).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GlockStats {
    /// Lock grants performed (fresh tokens accepted by cores; duplicates
    /// and stale regenerations are not counted).
    pub grants: u64,
    /// 1-bit signal transmissions on G-lines.
    pub signals: u64,
    /// Transmissions lost to an injected fault schedule.
    pub dropped: u64,
    /// Signals regenerated by the loss-recovery timers.
    pub retransmits: u64,
}

/// The hardware of one GLock: the controller tree plus its G-lines.
///
/// ```
/// use glocks::{GlockNetwork, Topology};
/// use glocks_sim_base::Mesh2D;
///
/// // The paper's 9-core example (Figure 2): request at cycle 0,
/// // token granted at cycle 4 (Table I worst case).
/// let mut net = GlockNetwork::new(&Topology::flat(Mesh2D::new(3, 3)), 1);
/// let regs = net.regs();
/// regs.set_req(0);
/// for now in 0..=4 {
///     net.tick(now);
/// }
/// assert!(!regs.req_pending(0), "granted at cycle 4");
/// assert_eq!(net.holder().unwrap().index(), 0);
/// ```
pub struct GlockNetwork {
    latency: u64,
    policy: RetryPolicy,
    /// Loss-recovery timers run only when armed. Fault-free networks keep
    /// them off so legitimate long waits under contention never trigger a
    /// spurious retransmission — signal counts stay exactly the paper's.
    timers_armed: bool,
    arbs: Vec<ArbiterNode>,
    leaves: Vec<LeafCtl>,
    wires: Wires,
    regs: Rc<GlockRegisters>,
    deliver_buf: Vec<InFlight>,
    grants: u64,
    /// Grant order (bounded) for fairness tests.
    grant_log: Vec<CoreId>,
    /// Set once the log hits [`GRANT_LOG_CAP`], so fairness checks can
    /// refuse to run on a partial record.
    grant_log_truncated: bool,
    /// Cycle of the previous token acceptance (grant-to-grant gap).
    last_grant_at: Option<Cycle>,
    /// Per-run instance number for stable stat names: a network does not
    /// know its own lock index, so the registry hands out `glock.{k}`.
    stats_idx: u32,
    /// `glock.{k}.grant_gap_cycles` (free `NONE` id when stats are off).
    gap_hist: gstats::HistId,
    /// Pending hard faults, applied when their cycle comes up.
    scheduled_kills: Vec<(Cycle, Kill)>,
    /// Pending repairs (intermittent faults). A repair becomes *claimable*
    /// at its cycle but only installs once the dead network is drained.
    scheduled_repairs: Vec<Cycle>,
    /// The (policy, timers_armed) pair in force before `arm_detection`
    /// first mutated them, restored when a repair reboots the hardware so
    /// the replacement runs with the original (pre-fault) timer setup.
    prearm: Option<(RetryPolicy, bool)>,
    /// Liveness flag shared with lock backends (failover trigger).
    health: Rc<NetworkHealth>,
}

const GRANT_LOG_CAP: usize = 100_000;

impl GlockNetwork {
    /// Build the network for a topology with the given G-line latency.
    pub fn new(topo: &Topology, gline_latency: u64) -> Self {
        assert!(gline_latency >= 1);
        let arbs: Vec<ArbiterNode> = topo
            .arbiters
            .iter()
            .map(|(parent, children)| ArbiterNode::new(*parent, children.clone()))
            .collect();
        let leaves: Vec<LeafCtl> = (0..topo.n_cores)
            .map(|c| LeafCtl::new(CoreId(c as u16), topo.leaf_parent[c]))
            .collect();
        let stats_idx = gstats::next_instance("glock");
        GlockNetwork {
            latency: gline_latency,
            policy: RetryPolicy::DEFAULT,
            timers_armed: false,
            arbs,
            leaves,
            wires: Wires::new(),
            regs: GlockRegisters::new(topo.n_cores),
            deliver_buf: Vec::new(),
            grants: 0,
            grant_log: Vec::new(),
            grant_log_truncated: false,
            last_grant_at: None,
            stats_idx,
            gap_hist: gstats::hist(&format!("glock.{stats_idx}.grant_gap_cycles")),
            scheduled_kills: Vec::new(),
            scheduled_repairs: Vec::new(),
            prearm: None,
            health: Rc::new(NetworkHealth::default()),
        }
    }

    /// The register file the cores (and the lock backend's scripts) use.
    pub fn regs(&self) -> Rc<GlockRegisters> {
        Rc::clone(&self.regs)
    }

    /// Override the loss-recovery retransmission timing. This also arms
    /// the timers; pass [`RetryPolicy::DISABLED`] to force them off even
    /// under faults.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
        self.timers_armed = policy.enabled();
    }

    /// Subject this network's G-lines to a deterministic fault schedule.
    /// Arms the loss-recovery timers: a lossy wire needs retransmission
    /// to stay live, whereas a fault-free network keeps them disarmed so
    /// signal counts match the paper exactly.
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.wires.set_faults(faults);
        self.timers_armed = true;
    }

    /// Soft-fault totals from the wires' injector, if one is attached.
    pub fn fault_stats(&self) -> Option<glocks_sim_base::fault::FaultStats> {
        self.wires.fault_stats()
    }

    /// The retry policy the controllers actually see this cycle.
    fn active_policy(&self) -> RetryPolicy {
        if self.timers_armed {
            self.policy
        } else {
            RetryPolicy::DISABLED
        }
    }

    /// This network's liveness handle (shared with the failover backends).
    pub fn health(&self) -> Rc<NetworkHealth> {
        Rc::clone(&self.health)
    }

    /// Schedule the G-line segments to die permanently at `at`.
    pub fn schedule_line_kill(&mut self, at: Cycle) {
        self.scheduled_kills.push((at, Kill::Line));
    }

    /// Schedule manager (arbiter) `node` to die permanently at `at`.
    pub fn schedule_manager_kill(&mut self, at: Cycle, node: usize) {
        assert!(node < self.arbs.len(), "no such manager node");
        self.scheduled_kills.push((at, Kill::Manager(node)));
    }

    /// Schedule core `core`'s local controller to die permanently at `at`.
    pub fn schedule_leaf_kill(&mut self, at: Cycle, core: usize) {
        assert!(core < self.leaves.len(), "no such core");
        self.scheduled_kills.push((at, Kill::Leaf(core)));
    }

    /// Schedule a repair (intermittent fault): from cycle `at` on, the
    /// replacement hardware is available. It installs at the first cycle
    /// `>= at` at which the network is dead *and* drained (the frozen
    /// holder's release has been written), rebooting every automaton, the
    /// wires, and the register file to a clean image — after which the
    /// network is repaired-but-untrusted until fail-back promotes it.
    pub fn schedule_repair(&mut self, at: Cycle) {
        self.scheduled_repairs.push(at);
    }

    /// Arm the loss-recovery timers with a *bounded* retransmission budget
    /// so survivors escalate to a death verdict instead of retrying
    /// forever. Called when a scheduled hard fault fires — never before,
    /// so legitimately long waits under fault-free (or transient-fault)
    /// contention can never produce a false `NetworkDead`.
    fn arm_detection(&mut self) {
        if self.prearm.is_none() {
            self.prearm = Some((self.policy, self.timers_armed));
        }
        self.timers_armed = true;
        if self.policy.max_attempts == 0 {
            self.policy.max_attempts = DETECTION_ATTEMPTS;
        }
    }

    /// Install the replacement hardware: reboot every automaton, the wires
    /// and the register file to the boot image, restore the pre-detection
    /// retry setup (a later kill re-arms it), and mark the network
    /// repaired-but-untrusted. Only called on a dead, drained network, so
    /// no core is inside a hardware critical section and every core-side
    /// script has already observed the death and failed over — wiping
    /// `lock_req` can never be mistaken for a grant.
    fn repair(&mut self, now: Cycle) {
        debug_assert!(self.regs.hw_drained());
        for a in &mut self.arbs {
            a.reset();
        }
        for l in &mut self.leaves {
            l.reset();
        }
        self.wires.revive();
        self.regs.reset();
        if let Some((policy, armed)) = self.prearm.take() {
            self.policy = policy;
            self.timers_armed = armed;
        }
        self.health.mark_untrusted();
        trace_event!(TraceMask::GLOCK, now, "glock: network repaired (untrusted)");
    }

    /// Advance the network one cycle: deliver due signals, then run every
    /// automaton. Matches Figure 4's timing: a request raised during cycle
    /// `t` is granted at cycle `t + 4` worst-case / `t + 2` best-case, and
    /// a release costs one cycle.
    pub fn tick(&mut self, now: Cycle) {
        if !self.scheduled_kills.is_empty() {
            let mut fired = false;
            let mut i = 0;
            while i < self.scheduled_kills.len() {
                let (at, kill) = self.scheduled_kills[i];
                if now >= at {
                    match kill {
                        Kill::Line => self.wires.kill(at),
                        Kill::Manager(node) => self.arbs[node].kill(),
                        Kill::Leaf(core) => self.leaves[core].kill(),
                    }
                    self.scheduled_kills.swap_remove(i);
                    fired = true;
                } else {
                    i += 1;
                }
            }
            if fired {
                self.arm_detection();
            }
        }
        if self.health.is_dead() {
            // A claimable repair installs as soon as the dead network is
            // drained (the frozen holder — if any — has written its
            // release, and every failed-over script has stopped trusting
            // the registers).
            if let Some(i) = self.scheduled_repairs.iter().position(|&at| now >= at) {
                if self.regs.hw_drained() {
                    self.scheduled_repairs.swap_remove(i);
                    self.repair(now);
                }
            }
        }
        if self.health.is_dead() {
            // Quarantined: a dead network never delivers, grants, or emits
            // anything again. Cores that accepted a grant before the
            // verdict still hold their registers; the failover layer
            // drains them on the software path.
            return;
        }
        self.deliver_buf.clear();
        self.wires.deliver_due(now, &mut self.deliver_buf);
        for i in 0..self.deliver_buf.len() {
            let s = self.deliver_buf[i];
            match s.dst {
                Endpoint::Arb(a) => {
                    trace_event!(
                        TraceMask::GLOCK,
                        now,
                        "glock: {:?} delivered to manager {a} (child {})",
                        s.sig,
                        s.child_index
                    );
                    self.arbs[a].on_signal(s.sig, s.child_index, s.epoch)
                }
                Endpoint::Leaf(c) => {
                    debug_assert_eq!(s.sig, Sig::Token, "leaves only receive TOKEN");
                    if self.leaves[c.index()].on_token(&self.regs, s.epoch) {
                        trace_event!(TraceMask::GLOCK, now, "glock: TOKEN granted to core {c}");
                        self.grants += 1;
                        if let Some(prev) = self.last_grant_at.replace(now) {
                            gstats::hist_record(self.gap_hist, now.saturating_sub(prev));
                        }
                        if self.grant_log.len() < GRANT_LOG_CAP {
                            self.grant_log.push(c);
                        } else {
                            self.grant_log_truncated = true;
                        }
                    } else {
                        trace_event!(
                            TraceMask::GLOCK,
                            now,
                            "glock: stale/duplicate TOKEN refused by core {c}"
                        );
                    }
                }
            }
        }
        let policy = self.active_policy();
        for leaf in &mut self.leaves {
            leaf.tick(now, self.latency, &policy, &self.regs, &mut self.wires);
        }
        for arb in &mut self.arbs {
            arb.tick(now, self.latency, &policy, &mut self.wires);
        }
        // Failure detection: any controller that exhausted its bounded
        // retransmission budget escalates to a network-wide death verdict.
        if policy.max_attempts > 0
            && !self.health.is_dead()
            && (self.leaves.iter().any(|l| l.gave_up()) || self.arbs.iter().any(|a| a.gave_up()))
        {
            trace_event!(TraceMask::GLOCK, now, "glock: network declared dead");
            self.health.mark_dead(now);
        }
    }

    /// Serialize the network's dynamic state. The tree shape, G-line
    /// latency, and stats-registry ids (`stats_idx`, `gap_hist`) are
    /// rebuilt by the constructor; `deliver_buf` is per-tick scratch.
    /// The retry policy IS saved: `arm_detection` mutates it at runtime
    /// when a scheduled hard fault fires.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.mark("glock-net");
        w.u64(self.policy.base_timeout);
        w.u32(self.policy.max_shift);
        w.u32(self.policy.max_attempts);
        w.bool(self.timers_armed);
        w.usize(self.arbs.len());
        for a in &self.arbs {
            a.save_state(w);
        }
        w.usize(self.leaves.len());
        for l in &self.leaves {
            l.save_state(w);
        }
        self.wires.save_state(w);
        self.regs.save_state(w);
        w.u64(self.grants);
        w.seq(&self.grant_log, |w, c| w.u16(c.0));
        w.bool(self.grant_log_truncated);
        w.opt_u64(self.last_grant_at);
        w.seq(&self.scheduled_kills, |w, &(at, kill)| {
            w.u64(at);
            match kill {
                Kill::Line => w.u8(0),
                Kill::Manager(n) => {
                    w.u8(1);
                    w.usize(n);
                }
                Kill::Leaf(c) => {
                    w.u8(2);
                    w.usize(c);
                }
            }
        });
        w.seq(&self.scheduled_repairs, |w, &at| w.u64(at));
        w.bool(self.prearm.is_some());
        if let Some((policy, armed)) = self.prearm {
            w.u64(policy.base_timeout);
            w.u32(policy.max_shift);
            w.u32(policy.max_attempts);
            w.bool(armed);
        }
        self.health.save_state(w);
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect("glock-net")?;
        self.policy.base_timeout = r.u64()?;
        self.policy.max_shift = r.u32()?;
        self.policy.max_attempts = r.u32()?;
        self.timers_armed = r.bool()?;
        if r.usize()? != self.arbs.len() {
            return Err(SnapError::Corrupt { what: "glock arbiter count" });
        }
        for a in &mut self.arbs {
            a.load_state(r)?;
        }
        if r.usize()? != self.leaves.len() {
            return Err(SnapError::Corrupt { what: "glock leaf count" });
        }
        for l in &mut self.leaves {
            l.load_state(r)?;
        }
        self.wires.load_state(r)?;
        self.regs.load_state(r)?;
        self.grants = r.u64()?;
        self.grant_log = r.seq(|r| Ok(CoreId(r.u16()?)))?;
        self.grant_log_truncated = r.bool()?;
        self.last_grant_at = r.opt_u64()?;
        self.scheduled_kills = r.seq(|r| {
            let at = r.u64()?;
            let kill = match r.u8()? {
                0 => Kill::Line,
                1 => Kill::Manager(r.usize()?),
                2 => Kill::Leaf(r.usize()?),
                tag => return Err(SnapError::BadTag { what: "glock kill", tag: u64::from(tag) }),
            };
            Ok((at, kill))
        })?;
        self.scheduled_repairs = r.seq(|r| r.u64())?;
        self.prearm = if r.bool()? {
            let policy = RetryPolicy {
                base_timeout: r.u64()?,
                max_shift: r.u32()?,
                max_attempts: r.u32()?,
            };
            Some((policy, r.bool()?))
        } else {
            None
        };
        self.health.load_state(r)?;
        Ok(())
    }

    /// The core currently holding this lock, if any.
    pub fn holder(&self) -> Option<CoreId> {
        self.leaves
            .iter()
            .find(|l| l.state() == LeafState::Holding)
            .map(|l| l.core)
    }

    /// Cores currently waiting for the token.
    pub fn n_waiting(&self) -> usize {
        self.leaves
            .iter()
            .filter(|l| l.state() == LeafState::Waiting)
            .count()
    }

    /// No signal in flight and every controller idle.
    pub fn is_idle(&self) -> bool {
        self.wires.is_idle()
            && self.leaves.iter().all(|l| l.is_quiet())
            && self.arbs.iter().all(|a| a.is_quiet())
    }

    /// The earliest cycle ≥ `now` at which ticking this network could do
    /// anything observable, or `None` if it is inert until a core writes a
    /// lock register. `Some(now)` means "hot, tick densely".
    ///
    /// This is the network's idle-skip contract: between `now` and the
    /// returned cycle every [`GlockNetwork::tick`] is a no-op — no kill
    /// fires, no signal is due, and every automaton's own `next_event`
    /// (which mirrors its tick exactly, including armed retry timers) says
    /// it would neither emit nor change state. A quarantined (dead)
    /// network only ever wakes for scheduled kills, which still purge
    /// wires when they fire.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let fold = |a: Option<Cycle>, b: Option<Cycle>| match (a, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        let kills = self.scheduled_kills.iter().map(|&(at, _)| at.max(now)).min();
        if self.health.is_dead() {
            // A dead network additionally wakes for repairs: at the repair
            // cycle itself, then densely while the claimable repair waits
            // for the drain (the drain signal is a register write the
            // network cannot predict).
            let repairs = match self.scheduled_repairs.iter().map(|&at| at.max(now)).min() {
                Some(at) if at > now => Some(at),
                Some(_) => Some(now), // claimable: stay dense until drained
                None => None,
            };
            return fold(kills, repairs);
        }
        if !self.wires.is_idle() {
            // Signal deliveries interleave with automaton responses cycle
            // by cycle — stay dense until the wires drain.
            return Some(now);
        }
        let policy = self.active_policy();
        let mut wake = kills;
        for leaf in &self.leaves {
            wake = fold(wake, leaf.next_event(now, &policy, &self.regs));
            if wake == Some(now) {
                return wake;
            }
        }
        for arb in &self.arbs {
            wake = fold(wake, arb.next_event(now, &policy));
            if wake == Some(now) {
                return wake;
            }
        }
        wake
    }

    pub fn stats(&self) -> GlockStats {
        GlockStats {
            grants: self.grants,
            signals: self.wires.signals_sent(),
            dropped: self.wires.signals_dropped(),
            retransmits: self.leaves.iter().map(|l| l.retransmits()).sum::<u64>()
                + self.arbs.iter().map(|a| a.retransmits()).sum::<u64>(),
        }
    }

    /// Publish end-of-run signal/grant totals into the stats registry as
    /// `glock.{k}.*` (no-op when stats are off). The counts are the same
    /// paper-exact [`GlockStats`] the report carries — publication reads
    /// them, it never changes how they are counted.
    pub fn publish_stats(&self) {
        if !gstats::is_enabled() {
            return;
        }
        let k = self.stats_idx;
        let s = self.stats();
        for (field, v) in [
            ("grants", s.grants),
            ("signals", s.signals),
            ("dropped", s.dropped),
            ("retransmits", s.retransmits),
        ] {
            gstats::set(gstats::counter(&format!("glock.{k}.{field}")), v);
        }
        // Registered only on a dead network, so fault-free dumps keep
        // their exact golden shape.
        if let Some(since) = self.health.dead_since() {
            gstats::set(gstats::counter(&format!("glock.{k}.dead_at")), since);
        }
    }

    /// Grant order (bounded log) for fairness analysis.
    pub fn grant_log(&self) -> &[CoreId] {
        &self.grant_log
    }

    /// True once grants stopped being recorded because the log hit its
    /// cap. Fairness checks must assert this is `false` before trusting
    /// [`Self::grant_log`].
    pub fn grant_log_truncated(&self) -> bool {
        self.grant_log_truncated
    }

    /// Whether any permanent fault has compromised this network (fired
    /// kill or a death verdict). Token-conservation invariants that assume
    /// reliable hardware are relaxed on a compromised network.
    pub fn is_compromised(&self) -> bool {
        self.health.is_dead()
            || self.wires.is_dead()
            || self.arbs.iter().any(|a| a.is_dead())
            || self.leaves.iter().any(|l| l.is_dead())
    }

    /// Non-panicking token-uniqueness check: at most one core holds the
    /// lock, and (on uncompromised hardware) the root never loses track of
    /// its token. Returns a description of the first violation, if any.
    /// Mutual exclusion is checked unconditionally — even a dying network
    /// must never end up with two holders.
    pub fn token_invariant_violation(&self) -> Option<String> {
        let holding = self
            .leaves
            .iter()
            .filter(|l| l.state() == LeafState::Holding)
            .count();
        if holding > 1 {
            return Some(format!("token duplicated: {holding} cores holding"));
        }
        if !self.is_compromised() && !self.arbs[0].has_token() {
            return Some("root lost the token".to_string());
        }
        None
    }

    /// Token-uniqueness invariants: at most one core holds the lock, at
    /// most one TOKEN is in flight, and never both.
    pub fn assert_token_invariants(&self) {
        if let Some(v) = self.token_invariant_violation() {
            panic!("{v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glocks_sim_base::Mesh2D;

    fn net(cols: u16, rows: u16) -> GlockNetwork {
        GlockNetwork::new(&Topology::flat(Mesh2D::new(cols, rows)), 1)
    }

    /// Tick until `core`'s request is granted; returns elapsed cycles.
    fn acquire(n: &mut GlockNetwork, core: usize, start: Cycle) -> Cycle {
        let regs = n.regs();
        regs.set_req(core);
        for now in start..start + 1000 {
            n.tick(now);
            n.assert_token_invariants();
            if !regs.req_pending(core) {
                return now - start;
            }
        }
        panic!("grant never arrived for core {core}");
    }

    fn release(n: &mut GlockNetwork, core: usize, start: Cycle) -> Cycle {
        let regs = n.regs();
        regs.set_rel(core);
        for now in start..start + 1000 {
            n.tick(now);
            if !regs.rel_pending(core) {
                return now - start;
            }
        }
        panic!("release never processed for core {core}");
    }

    #[test]
    fn worst_case_acquire_is_4_cycles() {
        // Uncontended acquire with the token at the primary: REQ C→S,
        // REQ S→R, TOKEN R→S, TOKEN S→C (Figure 4 a–b).
        let mut n = net(3, 3);
        let lat = acquire(&mut n, 0, 0);
        assert_eq!(lat, 4, "Table I worst-case acquire");
        assert_eq!(n.holder(), Some(CoreId(0)));
    }

    /// A quarantined network — line killed, death verdict reached, a grant
    /// frozen at one core and an unanswerable request at another — must
    /// round-trip through its snapshot into a freshly built (healthy) twin:
    /// same holder, same stats, same death cycle, byte-identical re-encode,
    /// and the quarantine semantics (a frozen request is never answered)
    /// must hold after the restore.
    #[test]
    fn quarantined_network_round_trips_through_a_snapshot() {
        let mut n = net(2, 2);
        let regs = n.regs();
        acquire(&mut n, 0, 0);
        regs.set_req(1); // waits: the token is out at core 0
        n.schedule_line_kill(50);
        let mut now = 50;
        while !n.health().is_dead() {
            n.tick(now);
            now += 1;
            assert!(now < 100_000, "death verdict never reached");
        }

        let mut w = SnapWriter::new();
        n.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut n2 = net(2, 2);
        assert!(!n2.health().is_dead());
        let mut r = SnapReader::new(&bytes);
        n2.load_state(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "decode must consume exactly what encode wrote");

        assert!(n2.health().is_dead());
        assert_eq!(n2.health().dead_since(), n.health().dead_since());
        assert_eq!(n2.holder(), Some(CoreId(0)));
        assert_eq!(n2.stats(), n.stats());
        assert_eq!(n2.grant_log(), n.grant_log());
        assert!(n2.is_compromised());

        let mut w2 = SnapWriter::new();
        n2.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "restored state must re-encode identically");

        // Quarantine survives the round trip: the restored dead network
        // never answers the frozen request.
        let regs2 = n2.regs();
        assert!(regs2.req_pending(1));
        for t in 0..1_000 {
            n2.tick(now + t);
        }
        assert!(regs2.req_pending(1), "a dead network must never grant");
        assert_eq!(n2.holder(), Some(CoreId(0)), "the frozen grant is final");
    }

    #[test]
    fn release_is_1_cycle() {
        let mut n = net(3, 3);
        acquire(&mut n, 0, 0);
        let lat = release(&mut n, 0, 100);
        assert_eq!(lat, 0, "lock_rel consumed in the release cycle");
        // The REL signal reaches the manager one cycle later; the network
        // then drains to idle.
        for now in 101..130 {
            n.tick(now);
        }
        assert!(n.is_idle());
    }

    #[test]
    fn best_case_acquire_is_2_cycles() {
        // Table I best case: a request that reaches its row manager in the
        // very cycle the manager resumes scanning needs only REQ C→S and
        // TOKEN S→C. Arrange it by releasing core 0 and raising core 1's
        // request in the same cycle: the REL and the REQ are delivered
        // together, and the manager grants immediately.
        let mut n = net(3, 3);
        let regs = n.regs();
        acquire(&mut n, 0, 0);
        let m = 50;
        for t in 10..m {
            n.tick(t);
        }
        regs.set_rel(0);
        regs.set_req(1);
        for t in m..m + 10 {
            n.tick(t);
            if !regs.req_pending(1) {
                assert_eq!(t - m, 2, "best-case acquire is 2 cycles");
                assert_eq!(n.holder(), Some(CoreId(1)));
                return;
            }
        }
        panic!("core 1 never granted");
    }

    #[test]
    fn intra_row_handoff_takes_2_cycles() {
        // Figure 4c: core 0 releases at cycle m, S designates core 1 at
        // m+1, so core 1 observes the grant two ticks after the release.
        let mut n = net(3, 3);
        let regs = n.regs();
        acquire(&mut n, 0, 0);
        regs.set_req(1);
        for t in 10..50 {
            n.tick(t);
        }
        assert!(regs.req_pending(1), "still waiting while core 0 holds");
        regs.set_rel(0);
        let m = 50;
        for t in m..m + 10 {
            n.tick(t);
            if !regs.req_pending(1) {
                assert_eq!(t - m, 2, "REL then TOKEN: two transmissions");
                return;
            }
        }
        panic!("core 1 never granted");
    }

    #[test]
    fn simultaneous_requests_grant_in_round_robin_order() {
        // The paper's Figure 4 example: all 9 cores request at once and are
        // served 0,1,...,8.
        let mut n = net(3, 3);
        let regs = n.regs();
        for c in 0..9 {
            regs.set_req(c);
        }
        let mut now = 0;
        let mut order = Vec::new();
        while order.len() < 9 {
            n.tick(now);
            n.assert_token_invariants();
            if let Some(h) = n.holder() {
                // release immediately; record each distinct grant
                if order.last() != Some(&h) {
                    order.push(h);
                }
                regs.set_rel(h.index());
            }
            now += 1;
            assert!(now < 10_000, "protocol stalled");
        }
        assert_eq!(order, (0..9).map(CoreId).collect::<Vec<_>>());
        assert!(!n.grant_log_truncated(), "fairness checked on a full log");
        assert_eq!(n.grant_log(), order.as_slice());
    }

    #[test]
    fn wraps_around_for_second_round() {
        let mut n = net(2, 2);
        let regs = n.regs();
        // Two rounds of requests from every core.
        let mut remaining = [2u32; 4];
        for c in 0..4 {
            regs.set_req(c);
        }
        let mut grants = Vec::new();
        let mut now = 0;
        while grants.len() < 8 {
            n.tick(now);
            if let Some(h) = n.holder() {
                grants.push(h);
                remaining[h.index()] -= 1;
                regs.set_rel(h.index());
                if remaining[h.index()] > 0 {
                    // re-request right away (highly-contended pattern)
                    regs.set_req(h.index());
                }
            }
            now += 1;
            assert!(now < 10_000);
        }
        // Fairness: each core granted exactly twice.
        for c in 0..4u16 {
            assert_eq!(grants.iter().filter(|&&g| g == CoreId(c)).count(), 2);
        }
    }

    #[test]
    fn hierarchical_network_grants_everyone() {
        let topo = Topology::hierarchical(Mesh2D::new(8, 8), 7);
        let mut n = GlockNetwork::new(&topo, 1);
        let regs = n.regs();
        for c in 0..64 {
            regs.set_req(c);
        }
        let mut grants = 0;
        let mut now = 0;
        while grants < 64 {
            n.tick(now);
            n.assert_token_invariants();
            if let Some(h) = n.holder() {
                grants += 1;
                regs.set_rel(h.index());
            }
            now += 1;
            assert!(now < 100_000, "hierarchical protocol stalled");
        }
        for t in now..now + 50 {
            n.tick(t);
        }
        assert!(n.is_idle());
    }

    #[test]
    fn longer_gline_latency_scales_acquire() {
        // The paper's "longer-latency G-lines" scaling path: latency 2
        // doubles the worst-case acquire to 8 cycles.
        let topo = Topology::flat(Mesh2D::new(3, 3));
        let mut n = GlockNetwork::new(&topo, 2);
        let lat = acquire(&mut n, 0, 0);
        assert_eq!(lat, 8);
    }

    #[test]
    fn idle_network_stays_idle() {
        let mut n = net(3, 3);
        for now in 0..100 {
            n.tick(now);
        }
        assert!(n.is_idle());
        assert_eq!(n.stats().signals, 0);
        assert_eq!(n.stats().grants, 0);
    }

    #[test]
    fn signal_count_for_one_acquire_release() {
        let mut n = net(3, 3);
        acquire(&mut n, 0, 0);
        release(&mut n, 0, 100);
        for t in 101..140 {
            n.tick(t);
        }
        // REQ C→S, REQ S→R, TOKEN R→S, TOKEN S→C, REL C→S, REL S→R
        assert_eq!(n.stats().signals, 6);
        assert_eq!(n.stats().grants, 1);
        assert_eq!(n.stats().retransmits, 0, "no timers fire fault-free");
    }

    #[test]
    fn fault_free_long_waits_never_retransmit() {
        // A critical section far longer than the retry timeout, with
        // another core waiting the whole time: disarmed timers must not
        // mistake the wait for a lost signal (that would inflate signal
        // counts and energy in fault-free paper runs).
        let mut n = net(3, 3);
        let regs = n.regs();
        acquire(&mut n, 0, 0);
        regs.set_req(5);
        let hold = 20 * RetryPolicy::DEFAULT.base_timeout;
        for t in 10..hold {
            n.tick(t);
        }
        assert!(regs.req_pending(5), "core 5 still waiting");
        assert_eq!(n.stats().retransmits, 0, "no spurious retransmission");
        // REQ C->S, REQ S->R (token parked at manager 0), REQ C->S, REQ S->R,
        // TOKEN R->S, TOKEN S->C: exactly one transmission chain per event.
        let before = n.stats().signals;
        regs.set_rel(0);
        let mut t = hold;
        while regs.req_pending(5) {
            n.tick(t);
            t += 1;
            assert!(t < hold + 100, "handoff stalled");
        }
        assert_eq!(n.stats().retransmits, 0);
        assert!(n.stats().signals - before <= 4, "handoff costs no extra signals");
    }

    /// Saturate the network under an injected fault schedule: everyone is
    /// still granted exactly the right number of times, mutual exclusion
    /// holds every cycle, and the network drains to idle.
    fn run_under_faults(rates: glocks_sim_base::FaultRates, seed: u64) {
        use glocks_sim_base::{FaultPlan, FaultSite};
        let mut n = net(3, 3);
        let mut plan = FaultPlan::seeded(seed);
        plan.gline = rates;
        n.set_faults(plan.injector(FaultSite::Gline, 0));
        let regs = n.regs();
        let mut remaining = [3u32; 9];
        for c in 0..9 {
            regs.set_req(c);
        }
        let mut grants = 0u64;
        let mut now = 0;
        while grants < 27 {
            n.tick(now);
            n.assert_token_invariants();
            if let Some(h) = n.holder() {
                grants += 1;
                remaining[h.index()] -= 1;
                regs.set_rel(h.index());
                if remaining[h.index()] > 0 {
                    regs.set_req(h.index());
                }
            }
            now += 1;
            assert!(now < 5_000_000, "protocol wedged under faults");
        }
        assert!(remaining.iter().all(|&r| r == 0), "fair modulo retries");
        assert_eq!(n.stats().grants, 27, "refused tokens must not count");
        for _ in 0..200_000 {
            n.tick(now);
            now += 1;
            if n.is_idle() {
                break;
            }
        }
        assert!(n.is_idle(), "network must recover to idle");
    }

    #[test]
    fn line_kill_is_detected_and_quarantined() {
        let mut n = net(3, 3);
        let health = n.health();
        // Core 0 holds; cores 1..9 wait when the G-lines die.
        acquire(&mut n, 0, 0);
        let regs = n.regs();
        for c in 1..9 {
            regs.set_req(c);
        }
        n.schedule_line_kill(100);
        let mut now = 10;
        while !health.is_dead() {
            n.tick(now);
            assert!(n.token_invariant_violation().is_none(), "invariants hold while dying");
            now += 1;
            assert!(now < 1_000_000, "death verdict never reached");
        }
        assert!(now >= 100, "no verdict before the fault fires");
        assert!(health.dead_since().unwrap() >= 100);
        assert!(n.is_compromised());
        // Quarantine: nothing is ever granted again, holders keep their
        // registers, waiters spin forever on the hardware path.
        let grants_at_death = n.stats().grants;
        for t in now..now + 5_000 {
            n.tick(t);
        }
        assert_eq!(n.stats().grants, grants_at_death);
        assert_eq!(n.holder(), Some(CoreId(0)), "pre-death holder undisturbed");
        assert!(regs.req_pending(3), "hardware path never answers again");
        // The release register write goes unanswered too — draining a dead
        // network's holder is the failover layer's job.
        regs.set_rel(0);
        for t in now + 5_000..now + 6_000 {
            n.tick(t);
        }
        assert_eq!(n.holder(), Some(CoreId(0)));
    }

    #[test]
    fn manager_kill_severs_and_is_detected() {
        // Kill the root manager mid-contention: whoever is waiting on a
        // delegation or a REQ response exhausts its budget and the network
        // is declared dead.
        let mut n = net(3, 3);
        let health = n.health();
        acquire(&mut n, 0, 0); // cycles 0..=4
        let regs = n.regs();
        // The root dies before the release/handoff chain can pass through
        // it; core 5 sits in a different row, so its REQ needs the root.
        n.schedule_manager_kill(6, 0);
        regs.set_req(5);
        regs.set_rel(0);
        let mut now = 5;
        while !health.is_dead() {
            n.tick(now);
            assert!(n.token_invariant_violation().is_none());
            now += 1;
            assert!(now < 1_000_000, "death verdict never reached");
        }
        assert!(n.is_compromised());
    }

    #[test]
    fn fresh_requests_on_a_dead_network_are_detected() {
        // The network is killed while completely idle; the first core to
        // request afterwards must still reach a death verdict (bounded
        // REQ retransmission), not spin forever undetected.
        let mut n = net(3, 3);
        let health = n.health();
        n.schedule_line_kill(10);
        for t in 0..20 {
            n.tick(t);
        }
        assert!(!health.is_dead(), "an unused dead network is latent");
        let regs = n.regs();
        regs.set_req(4);
        let mut now = 20;
        while !health.is_dead() {
            n.tick(now);
            now += 1;
            assert!(now < 1_000_000, "death verdict never reached");
        }
        assert!(regs.req_pending(4), "the request is never granted");
    }

    #[test]
    fn repaired_network_reboots_clean_and_round_trips() {
        let mut n = net(3, 3);
        let health = n.health();
        acquire(&mut n, 0, 0);
        let regs = n.regs();
        regs.set_req(1); // stranded waiter, wiped by the reboot
        n.schedule_line_kill(100);
        n.schedule_repair(150); // claimable long before the death verdict
        let mut now = 10;
        while !health.is_dead() {
            n.tick(now);
            now += 1;
            assert!(now < 1_000_000, "death verdict never reached");
        }
        // Dead but not drained: core 0's grant is frozen with its release
        // unwritten, so the claimable repair must wait.
        for _ in 0..500 {
            n.tick(now);
            now += 1;
        }
        assert!(health.is_dead(), "repair must wait for the drain");
        assert_eq!(health.repairs(), 0);
        // The failover layer drains the holder: the release write is the
        // drain signal, and the repair installs on the very next tick.
        regs.set_rel(0);
        n.tick(now);
        assert!(!health.is_dead());
        assert!(!health.is_trusted(), "fresh repairs are untrusted");
        assert_eq!(health.repairs(), 1);
        assert_eq!(n.holder(), None);
        assert!(!regs.req_pending(1), "stale requests wiped by the reboot");
        assert!(!regs.rel_pending(0), "stale releases wiped by the reboot");
        assert!(!n.is_compromised(), "rebooted hardware is whole again");

        // The untrusted state round-trips through a snapshot.
        let mut w = SnapWriter::new();
        n.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut n2 = net(3, 3);
        let mut r = SnapReader::new(&bytes);
        n2.load_state(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(!n2.health().is_trusted());
        assert_eq!(n2.health().repairs(), 1);
        let mut w2 = SnapWriter::new();
        n2.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "restored state must re-encode identically");

        // The rebooted network grants again — a fail-back probe round-trip
        // — and the restored pre-fault policy fires no new retransmissions
        // (the dying network's retransmits survive as a cumulative
        // diagnostic; the reboot must not add to them).
        let retransmits_at_repair = n.stats().retransmits;
        now += 1;
        acquire(&mut n, 2, now);
        assert_eq!(n.holder(), Some(CoreId(2)));
        release(&mut n, 2, now + 100);
        assert_eq!(n.stats().retransmits, retransmits_at_repair, "pre-fault timer setup restored");
        health.mark_trusted();
        assert!(health.is_trusted());
        assert_eq!(health.repairs(), 1);
    }

    #[test]
    fn redeath_after_repair_records_a_new_verdict() {
        // Flapping: kill, repair, kill again — the second death verdict
        // must land (mark_dead works from the untrusted state) with a
        // fresh dead_since.
        let mut n = net(2, 2);
        let health = n.health();
        let regs = n.regs();
        // Kill while idle so no grant freezes: the net is drained at death.
        n.schedule_line_kill(10);
        for t in 0..20 {
            n.tick(t);
        }
        regs.set_req(0); // first post-death request reaches the verdict
        let mut now = 20;
        while !health.is_dead() {
            n.tick(now);
            now += 1;
            assert!(now < 1_000_000);
        }
        let first_death = health.dead_since().unwrap();
        n.schedule_repair(first_death + 1);
        n.tick(now); // drained (no holder): repair installs immediately
        assert_eq!(health.repairs(), 1);
        assert!(!health.is_dead());
        n.schedule_line_kill(now + 10);
        regs.set_req(1);
        while !health.is_dead() {
            n.tick(now);
            now += 1;
            assert!(now < 2_000_000, "second death verdict never reached");
        }
        let second_death = health.dead_since().unwrap();
        assert!(second_death > first_death, "re-death records a fresh verdict cycle");
    }

    #[test]
    fn survives_dropped_signals() {
        run_under_faults(glocks_sim_base::FaultRates::drops(50_000), 11);
    }

    #[test]
    fn survives_duplicated_signals() {
        run_under_faults(glocks_sim_base::FaultRates::duplicates(100_000), 12);
    }

    #[test]
    fn survives_mixed_fault_schedules() {
        run_under_faults(
            glocks_sim_base::FaultRates {
                drop_ppm: 30_000,
                delay_ppm: 50_000,
                max_delay: 64,
                duplicate_ppm: 30_000,
            },
            13,
        );
    }
}
