//! One hardware lock's assembled G-line network.

use crate::node::{ArbiterNode, LeafCtl, LeafState};
use crate::regs::GlockRegisters;
use crate::signal::{Endpoint, InFlight, Sig, Wires};
use crate::topology::Topology;
use glocks_sim_base::trace::TraceMask;
use glocks_sim_base::{trace_event, CoreId, Cycle};
use std::rc::Rc;

/// Event counters of one GLock network (energy-model input).
#[derive(Clone, Copy, Debug, Default)]
pub struct GlockStats {
    /// Lock grants performed (tokens delivered to cores).
    pub grants: u64,
    /// 1-bit signal transmissions on G-lines.
    pub signals: u64,
}

/// The hardware of one GLock: the controller tree plus its G-lines.
///
/// ```
/// use glocks::{GlockNetwork, Topology};
/// use glocks_sim_base::Mesh2D;
///
/// // The paper's 9-core example (Figure 2): request at cycle 0,
/// // token granted at cycle 4 (Table I worst case).
/// let mut net = GlockNetwork::new(&Topology::flat(Mesh2D::new(3, 3)), 1);
/// let regs = net.regs();
/// regs.set_req(0);
/// for now in 0..=4 {
///     net.tick(now);
/// }
/// assert!(!regs.req_pending(0), "granted at cycle 4");
/// assert_eq!(net.holder().unwrap().index(), 0);
/// ```
pub struct GlockNetwork {
    latency: u64,
    arbs: Vec<ArbiterNode>,
    leaves: Vec<LeafCtl>,
    wires: Wires,
    regs: Rc<GlockRegisters>,
    deliver_buf: Vec<InFlight>,
    grants: u64,
    /// Grant order (bounded) for fairness tests.
    grant_log: Vec<CoreId>,
}

const GRANT_LOG_CAP: usize = 100_000;

impl GlockNetwork {
    /// Build the network for a topology with the given G-line latency.
    pub fn new(topo: &Topology, gline_latency: u64) -> Self {
        assert!(gline_latency >= 1);
        let arbs: Vec<ArbiterNode> = topo
            .arbiters
            .iter()
            .map(|(parent, children)| ArbiterNode::new(*parent, children.clone()))
            .collect();
        let leaves: Vec<LeafCtl> = (0..topo.n_cores)
            .map(|c| LeafCtl::new(CoreId(c as u16), topo.leaf_parent[c]))
            .collect();
        GlockNetwork {
            latency: gline_latency,
            arbs,
            leaves,
            wires: Wires::new(),
            regs: GlockRegisters::new(topo.n_cores),
            deliver_buf: Vec::new(),
            grants: 0,
            grant_log: Vec::new(),
        }
    }

    /// The register file the cores (and the lock backend's scripts) use.
    pub fn regs(&self) -> Rc<GlockRegisters> {
        Rc::clone(&self.regs)
    }

    /// Advance the network one cycle: deliver due signals, then run every
    /// automaton. Matches Figure 4's timing: a request raised during cycle
    /// `t` is granted at cycle `t + 4` worst-case / `t + 2` best-case, and
    /// a release costs one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.deliver_buf.clear();
        self.wires.deliver_due(now, &mut self.deliver_buf);
        for i in 0..self.deliver_buf.len() {
            let s = self.deliver_buf[i];
            match s.dst {
                Endpoint::Arb(a) => {
                    trace_event!(
                        TraceMask::GLOCK,
                        now,
                        "glock: {:?} delivered to manager {a} (child {})",
                        s.sig,
                        s.child_index
                    );
                    self.arbs[a].on_signal(s.sig, s.child_index)
                }
                Endpoint::Leaf(c) => {
                    debug_assert_eq!(s.sig, Sig::Token, "leaves only receive TOKEN");
                    trace_event!(TraceMask::GLOCK, now, "glock: TOKEN granted to core {c}");
                    self.leaves[c.index()].on_token(&self.regs);
                    self.grants += 1;
                    if self.grant_log.len() < GRANT_LOG_CAP {
                        self.grant_log.push(c);
                    }
                }
            }
        }
        for leaf in &mut self.leaves {
            leaf.tick(now, self.latency, &self.regs, &mut self.wires);
        }
        for arb in &mut self.arbs {
            arb.tick(now, self.latency, &mut self.wires);
        }
    }

    /// The core currently holding this lock, if any.
    pub fn holder(&self) -> Option<CoreId> {
        self.leaves
            .iter()
            .find(|l| l.state() == LeafState::Holding)
            .map(|l| l.core)
    }

    /// Cores currently waiting for the token.
    pub fn n_waiting(&self) -> usize {
        self.leaves
            .iter()
            .filter(|l| l.state() == LeafState::Waiting)
            .count()
    }

    /// No signal in flight and every controller idle.
    pub fn is_idle(&self) -> bool {
        self.wires.is_idle()
            && self.leaves.iter().all(|l| l.state() == LeafState::Idle)
            && self.arbs.iter().all(|a| a.delegated().is_none() && a.flags_raised() == 0)
    }

    pub fn stats(&self) -> GlockStats {
        GlockStats { grants: self.grants, signals: self.wires.signals_sent() }
    }

    /// Grant order (bounded log) for fairness analysis.
    pub fn grant_log(&self) -> &[CoreId] {
        &self.grant_log
    }

    /// Token-uniqueness invariants: at most one core holds the lock, at
    /// most one TOKEN is in flight, and never both.
    pub fn assert_token_invariants(&self) {
        let holding = self
            .leaves
            .iter()
            .filter(|l| l.state() == LeafState::Holding)
            .count();
        assert!(holding <= 1, "token duplicated: {holding} cores holding");
        // The root never loses its (possibly delegated) token.
        assert!(self.arbs[0].has_token(), "root lost the token");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glocks_sim_base::Mesh2D;

    fn net(cols: u16, rows: u16) -> GlockNetwork {
        GlockNetwork::new(&Topology::flat(Mesh2D::new(cols, rows)), 1)
    }

    /// Tick until `core`'s request is granted; returns elapsed cycles.
    fn acquire(n: &mut GlockNetwork, core: usize, start: Cycle) -> Cycle {
        let regs = n.regs();
        regs.set_req(core);
        for now in start..start + 1000 {
            n.tick(now);
            n.assert_token_invariants();
            if !regs.req_pending(core) {
                return now - start;
            }
        }
        panic!("grant never arrived for core {core}");
    }

    fn release(n: &mut GlockNetwork, core: usize, start: Cycle) -> Cycle {
        let regs = n.regs();
        regs.set_rel(core);
        for now in start..start + 1000 {
            n.tick(now);
            if !regs.rel_pending(core) {
                return now - start;
            }
        }
        panic!("release never processed for core {core}");
    }

    #[test]
    fn worst_case_acquire_is_4_cycles() {
        // Uncontended acquire with the token at the primary: REQ C→S,
        // REQ S→R, TOKEN R→S, TOKEN S→C (Figure 4 a–b).
        let mut n = net(3, 3);
        let lat = acquire(&mut n, 0, 0);
        assert_eq!(lat, 4, "Table I worst-case acquire");
        assert_eq!(n.holder(), Some(CoreId(0)));
    }

    #[test]
    fn release_is_1_cycle() {
        let mut n = net(3, 3);
        acquire(&mut n, 0, 0);
        let lat = release(&mut n, 0, 100);
        assert_eq!(lat, 0, "lock_rel consumed in the release cycle");
        // The REL signal reaches the manager one cycle later; the network
        // then drains to idle.
        for now in 101..130 {
            n.tick(now);
        }
        assert!(n.is_idle());
    }

    #[test]
    fn best_case_acquire_is_2_cycles() {
        // Table I best case: a request that reaches its row manager in the
        // very cycle the manager resumes scanning needs only REQ C→S and
        // TOKEN S→C. Arrange it by releasing core 0 and raising core 1's
        // request in the same cycle: the REL and the REQ are delivered
        // together, and the manager grants immediately.
        let mut n = net(3, 3);
        let regs = n.regs();
        acquire(&mut n, 0, 0);
        let m = 50;
        for t in 10..m {
            n.tick(t);
        }
        regs.set_rel(0);
        regs.set_req(1);
        for t in m..m + 10 {
            n.tick(t);
            if !regs.req_pending(1) {
                assert_eq!(t - m, 2, "best-case acquire is 2 cycles");
                assert_eq!(n.holder(), Some(CoreId(1)));
                return;
            }
        }
        panic!("core 1 never granted");
    }

    #[test]
    fn intra_row_handoff_takes_2_cycles() {
        // Figure 4c: core 0 releases at cycle m, S designates core 1 at
        // m+1, so core 1 observes the grant two ticks after the release.
        let mut n = net(3, 3);
        let regs = n.regs();
        acquire(&mut n, 0, 0);
        regs.set_req(1);
        for t in 10..50 {
            n.tick(t);
        }
        assert!(regs.req_pending(1), "still waiting while core 0 holds");
        regs.set_rel(0);
        let m = 50;
        for t in m..m + 10 {
            n.tick(t);
            if !regs.req_pending(1) {
                assert_eq!(t - m, 2, "REL then TOKEN: two transmissions");
                return;
            }
        }
        panic!("core 1 never granted");
    }

    #[test]
    fn simultaneous_requests_grant_in_round_robin_order() {
        // The paper's Figure 4 example: all 9 cores request at once and are
        // served 0,1,...,8.
        let mut n = net(3, 3);
        let regs = n.regs();
        for c in 0..9 {
            regs.set_req(c);
        }
        let mut now = 0;
        let mut order = Vec::new();
        while order.len() < 9 {
            n.tick(now);
            n.assert_token_invariants();
            if let Some(h) = n.holder() {
                // release immediately; record each distinct grant
                if order.last() != Some(&h) {
                    order.push(h);
                }
                regs.set_rel(h.index());
            }
            now += 1;
            assert!(now < 10_000, "protocol stalled");
        }
        assert_eq!(order, (0..9).map(CoreId).collect::<Vec<_>>());
        assert_eq!(n.grant_log(), order.as_slice());
    }

    #[test]
    fn wraps_around_for_second_round() {
        let mut n = net(2, 2);
        let regs = n.regs();
        // Two rounds of requests from every core.
        let mut remaining = [2u32; 4];
        for c in 0..4 {
            regs.set_req(c);
        }
        let mut grants = Vec::new();
        let mut now = 0;
        while grants.len() < 8 {
            n.tick(now);
            if let Some(h) = n.holder() {
                grants.push(h);
                remaining[h.index()] -= 1;
                regs.set_rel(h.index());
                if remaining[h.index()] > 0 {
                    // re-request right away (highly-contended pattern)
                    regs.set_req(h.index());
                }
            }
            now += 1;
            assert!(now < 10_000);
        }
        // Fairness: each core granted exactly twice.
        for c in 0..4u16 {
            assert_eq!(grants.iter().filter(|&&g| g == CoreId(c)).count(), 2);
        }
    }

    #[test]
    fn hierarchical_network_grants_everyone() {
        let topo = Topology::hierarchical(Mesh2D::new(8, 8), 7);
        let mut n = GlockNetwork::new(&topo, 1);
        let regs = n.regs();
        for c in 0..64 {
            regs.set_req(c);
        }
        let mut grants = 0;
        let mut now = 0;
        while grants < 64 {
            n.tick(now);
            n.assert_token_invariants();
            if let Some(h) = n.holder() {
                grants += 1;
                regs.set_rel(h.index());
            }
            now += 1;
            assert!(now < 100_000, "hierarchical protocol stalled");
        }
        for t in now..now + 50 {
            n.tick(t);
        }
        assert!(n.is_idle());
    }

    #[test]
    fn longer_gline_latency_scales_acquire() {
        // The paper's "longer-latency G-lines" scaling path: latency 2
        // doubles the worst-case acquire to 8 cycles.
        let topo = Topology::flat(Mesh2D::new(3, 3));
        let mut n = GlockNetwork::new(&topo, 2);
        let lat = acquire(&mut n, 0, 0);
        assert_eq!(lat, 8);
    }

    #[test]
    fn idle_network_stays_idle() {
        let mut n = net(3, 3);
        for now in 0..100 {
            n.tick(now);
        }
        assert!(n.is_idle());
        assert_eq!(n.stats().signals, 0);
        assert_eq!(n.stats().grants, 0);
    }

    #[test]
    fn signal_count_for_one_acquire_release() {
        let mut n = net(3, 3);
        acquire(&mut n, 0, 0);
        release(&mut n, 0, 100);
        for t in 101..140 {
            n.tick(t);
        }
        // REQ C→S, REQ S→R, TOKEN R→S, TOKEN S→C, REL C→S, REL S→R
        assert_eq!(n.stats().signals, 6);
        assert_eq!(n.stats().grants, 1);
    }
}
