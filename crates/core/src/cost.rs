//! Table I: the hardware/software cost of GLocks on a 2D-mesh CMP.
//!
//! The paper states the per-lock costs in terms of the core count `C`
//! (assuming a √C × √C layout): `C − 1` G-lines, one primary lock manager,
//! `√C` secondary lock managers, `C − 1` local controllers, `√C` fSx flags,
//! `C` fx flags, 2–4-cycle acquire and 1-cycle release.

use crate::topology::Topology;
use glocks_sim_base::Mesh2D;

/// Instantiated Table I for one GLock on a `C`-core CMP.
///
/// ```
/// use glocks::GlockCost;
/// let c = GlockCost::for_cores(9);
/// assert_eq!(c.glines, 8);                 // C − 1
/// assert_eq!(c.secondary_managers, 3);     // √C
/// assert_eq!(c.acquire_worst_cycles, 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlockCost {
    pub cores: usize,
    pub glines: usize,
    pub primary_managers: usize,
    pub secondary_managers: usize,
    pub local_controllers: usize,
    pub fsx_flags: usize,
    pub fx_flags: usize,
    pub acquire_worst_cycles: u64,
    pub acquire_best_cycles: u64,
    pub release_cycles: u64,
}

impl GlockCost {
    /// Table I's closed-form row for a `C`-core CMP (row count = the mesh's
    /// second dimension; √C for square layouts).
    pub fn for_cores(cores: usize) -> Self {
        let mesh = Mesh2D::near_square(cores);
        GlockCost::for_mesh(mesh)
    }

    /// Costs for an explicit mesh layout.
    pub fn for_mesh(mesh: Mesh2D) -> Self {
        let c = mesh.len();
        let rows = mesh.rows() as usize;
        GlockCost {
            cores: c,
            glines: c.saturating_sub(1),
            primary_managers: 1,
            secondary_managers: rows,
            local_controllers: c.saturating_sub(1),
            fsx_flags: rows,
            fx_flags: c,
            acquire_worst_cycles: 4,
            acquire_best_cycles: 2,
            release_cycles: 1,
        }
    }

    /// Costs measured from an instantiated topology (must agree with the
    /// closed form for flat layouts — tested below).
    pub fn for_topology(topo: &Topology, gline_latency: u64) -> Self {
        GlockCost {
            cores: topo.n_cores,
            glines: topo.gline_count(),
            primary_managers: 1,
            secondary_managers: topo.n_arbiters() - 1,
            local_controllers: topo.n_cores.saturating_sub(1),
            fsx_flags: topo.n_arbiters() - 1,
            fx_flags: topo.n_cores,
            acquire_worst_cycles: topo.worst_case_acquire(gline_latency),
            acquire_best_cycles: topo.best_case_acquire(gline_latency),
            release_cycles: gline_latency,
        }
    }

    /// Total G-lines for `n_locks` hardware locks (the network is
    /// replicated per lock).
    pub fn total_glines(&self, n_locks: usize) -> usize {
        self.glines * n_locks
    }

    /// Does a flat network satisfy the G-line fan-in constraint
    /// ("up to six transmitters and one receiver", i.e. ≤ 7×7 cores)?
    pub fn fan_in_ok(cores: usize) -> bool {
        cores <= 49
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_for_a_square_cmp() {
        // The paper's running 9-core example.
        let c = GlockCost::for_cores(9);
        assert_eq!(c.glines, 8);
        assert_eq!(c.primary_managers, 1);
        assert_eq!(c.secondary_managers, 3, "√C secondaries");
        assert_eq!(c.local_controllers, 8, "C − 1 local controllers");
        assert_eq!(c.fsx_flags, 3);
        assert_eq!(c.fx_flags, 9);
        assert_eq!(c.acquire_worst_cycles, 4);
        assert_eq!(c.acquire_best_cycles, 2);
        assert_eq!(c.release_cycles, 1);
    }

    #[test]
    fn evaluated_32_core_cmp() {
        let c = GlockCost::for_cores(32);
        assert_eq!(c.glines, 31);
        assert_eq!(c.secondary_managers, 4, "one per row of the 8×4 mesh");
        // Two GLocks are provisioned in the evaluation.
        assert_eq!(c.total_glines(2), 62);
        // far below the 168-G-line network of [21] the paper cites for the
        // negligible-area argument
        assert!(c.total_glines(2) < 168);
    }

    #[test]
    fn closed_form_matches_topology_for_flat_layouts() {
        for n in [4usize, 9, 16, 25, 36, 49] {
            let mesh = Mesh2D::near_square(n);
            let topo = Topology::flat(mesh);
            let a = GlockCost::for_mesh(mesh);
            let b = GlockCost::for_topology(&topo, 1);
            assert_eq!(a, b, "mismatch at {n} cores");
        }
    }

    #[test]
    fn fan_in_constraint() {
        assert!(GlockCost::fan_in_ok(49));
        assert!(!GlockCost::fan_in_ok(50));
    }

    #[test]
    fn hierarchical_costs_grow_gently() {
        let topo = Topology::hierarchical(Mesh2D::new(10, 10), 7);
        let c = GlockCost::for_topology(&topo, 1);
        assert_eq!(c.glines, 99, "C − 1 G-lines even hierarchically");
        assert!(c.acquire_worst_cycles >= 6, "one extra level adds 2 cycles");
    }
}
