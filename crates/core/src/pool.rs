//! Dynamic GLock sharing — Section V's future work: "a few GLocks could be
//! statically or **dynamically** shared among all of the workloads".
//!
//! A small hardware binding table maps *logical* locks onto the CMP's few
//! physical G-line networks on demand: the first acquirer of an unbound
//! logical lock claims a free physical GLock; while any acquire or hold is
//! outstanding the binding is pinned; when the last release drains, the
//! physical lock returns to the free pool. If every physical lock is busy,
//! the logical lock *spills* to its software fallback until it quiesces.
//!
//! Because a binding can only change when the logical lock has no
//! acquirers and no holder, every contender of a given critical-section
//! episode uses the same implementation — mutual exclusion is preserved
//! across regime changes.
//!
//! Binding is eager — the first episode of any lock may claim an
//! unreserved physical GLock — but a freed physical lock keeps a
//! *reservation* for its previous owner: another logical lock may take it
//! over only if it has accumulated at least as many acquires ("heat").
//! Without reservations, a rarely-used lock can grab a physical GLock in
//! the brief window where a hot lock quiesces, stranding the hot lock on
//! the software fallback through a whole saturated epoch. With them, the
//! physical locks gravitate to exactly the paper's "highly-contended
//! locks", automatically and without programmer annotation.

use crate::network::NetworkHealth;
use crate::regs::GlockRegisters;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// How a logical lock's next acquire must proceed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolDecision {
    /// Use physical GLock `k` (its register file drives the G-lines).
    Hardware(usize),
    /// All physical locks busy: use the software fallback.
    Software,
}

/// Pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Bind operations (a logical lock claimed a physical one).
    pub binds: u64,
    /// Unbind operations (a binding drained and was released).
    pub unbinds: u64,
    /// Acquires that had to spill to software.
    pub spills: u64,
    /// Acquires served by hardware.
    pub hw_acquires: u64,
    /// Acquires rerouted to software because their physical GLock died
    /// mid-episode (hard-fault failover).
    pub failovers: u64,
}

struct PoolState {
    /// Per physical lock: the logical lock currently bound to it.
    owner_of: Vec<Option<u16>>,
    /// Per physical lock: the previous owner holding a reservation.
    reserved_for: Vec<Option<u16>>,
    /// Per logical lock: its binding and outstanding-use count.
    bindings: HashMap<u16, Binding>,
    /// Lifetime acquire count per logical lock (saturating).
    heat: HashMap<u16, u32>,
    stats: PoolStats,
}

#[derive(Clone, Copy, Debug)]
struct Binding {
    hw: Option<usize>,
    /// Outstanding acquires + holders (hardware or software regime alike).
    refs: u32,
}

/// The binding table shared by all dynamic lock backends.
pub struct GlockPool {
    regs: Vec<Rc<GlockRegisters>>,
    state: RefCell<PoolState>,
    /// Liveness handles of the physical networks (empty = all healthy,
    /// the fault-free configuration).
    healths: RefCell<Vec<Rc<NetworkHealth>>>,
}

impl GlockPool {
    /// Build a pool over the register files of the CMP's physical GLocks.
    pub fn new(regs: Vec<Rc<GlockRegisters>>) -> Rc<Self> {
        let n = regs.len();
        assert!(n > 0, "pool needs at least one physical GLock");
        Rc::new(GlockPool {
            regs,
            state: RefCell::new(PoolState {
                owner_of: vec![None; n],
                reserved_for: vec![None; n],
                bindings: HashMap::new(),
                heat: HashMap::new(),
                stats: PoolStats::default(),
            }),
            healths: RefCell::new(Vec::new()),
        })
    }

    pub fn n_physical(&self) -> usize {
        self.regs.len()
    }

    /// The register file of physical lock `k`.
    pub fn regs(&self, k: usize) -> Rc<GlockRegisters> {
        Rc::clone(&self.regs[k])
    }

    /// Attach the physical networks' liveness handles (index-aligned with
    /// the register files). Without them every network is assumed healthy.
    pub fn attach_healths(&self, healths: Vec<Rc<NetworkHealth>>) {
        assert_eq!(healths.len(), self.regs.len(), "one health per physical lock");
        *self.healths.borrow_mut() = healths;
    }

    /// Whether physical lock `k`'s G-line network has been declared dead.
    pub fn is_dead(&self, k: usize) -> bool {
        self.healths.borrow().get(k).is_some_and(|h| h.is_dead())
    }

    /// Whether physical lock `k`'s network is fully trusted. A
    /// repaired-but-untrusted network is excluded from binding just like a
    /// dead one: pool bindings carry no fail-back probe machinery, so an
    /// untrusted pool network is simply never bound again (the per-lock
    /// failover backends are the ones that earn trust back).
    pub fn is_trusted(&self, k: usize) -> bool {
        self.healths.borrow().get(k).is_none_or(|h| h.is_trusted())
    }

    /// Count one mid-episode hardware→software failover.
    pub fn note_failover(&self) {
        self.state.borrow_mut().stats.failovers += 1;
    }

    /// A thread starts acquiring `logical`: pin (or establish) its binding
    /// and learn which implementation to use for this episode.
    pub fn begin_acquire(&self, logical: u16) -> PoolDecision {
        let mut st = self.state.borrow_mut();
        let heat = st.heat.entry(logical).or_insert(0);
        *heat = heat.saturating_add(1);
        let my_heat = *heat;
        let entry = st.bindings.entry(logical).or_insert(Binding { hw: None, refs: 0 });
        if entry.refs > 0 {
            // Pinned: join the existing regime.
            entry.refs += 1;
            let hw = entry.hw;
            match hw {
                Some(k) => {
                    st.stats.hw_acquires += 1;
                    PoolDecision::Hardware(k)
                }
                None => {
                    st.stats.spills += 1;
                    PoolDecision::Software
                }
            }
        } else {
            // Quiesced: (re)decide. Preference order among free physical
            // locks: one reserved for us, an unreserved one, then one
            // whose reservation we out-heat. A network that is not fully
            // trusted (dead, or repaired but not yet failed back) is never
            // bound.
            let candidate = (0..st.owner_of.len())
                .filter(|&k| st.owner_of[k].is_none() && self.is_trusted(k))
                .min_by_key(|&k| match st.reserved_for[k] {
                    Some(owner) if owner == logical => 0u32,
                    None => 1,
                    Some(owner) => {
                        let owner_heat = st.heat.get(&owner).copied().unwrap_or(0);
                        if my_heat >= owner_heat {
                            2
                        } else {
                            u32::MAX // not claimable
                        }
                    }
                })
                .filter(|&k| match st.reserved_for[k] {
                    Some(owner) if owner != logical => {
                        my_heat >= st.heat.get(&owner).copied().unwrap_or(0)
                    }
                    _ => true,
                });
            let entry = st.bindings.get_mut(&logical).expect("just inserted");
            entry.refs = 1;
            match candidate {
                Some(k) => {
                    entry.hw = Some(k);
                    st.owner_of[k] = Some(logical);
                    st.reserved_for[k] = Some(logical);
                    st.stats.binds += 1;
                    st.stats.hw_acquires += 1;
                    PoolDecision::Hardware(k)
                }
                None => {
                    entry.hw = None;
                    st.stats.spills += 1;
                    PoolDecision::Software
                }
            }
        }
    }

    /// A thread finished releasing `logical`; when the last outstanding
    /// use drains, the binding dissolves.
    pub fn end_release(&self, logical: u16) {
        let mut st = self.state.borrow_mut();
        let entry = st.bindings.get_mut(&logical).expect("release of unknown lock");
        assert!(entry.refs > 0, "unbalanced end_release for lock {logical}");
        entry.refs -= 1;
        if entry.refs == 0 {
            if let Some(k) = entry.hw.take() {
                st.owner_of[k] = None;
                st.stats.unbinds += 1;
            }
            st.bindings.remove(&logical);
        }
    }

    /// Current binding of a logical lock (tests/diagnostics).
    pub fn binding_of(&self, logical: u16) -> Option<usize> {
        self.state
            .borrow()
            .bindings
            .get(&logical)
            .and_then(|b| b.hw)
    }

    pub fn stats(&self) -> PoolStats {
        self.state.borrow().stats
    }

    /// No logical lock has outstanding uses (end-of-run check).
    pub fn is_quiescent(&self) -> bool {
        self.state.borrow().bindings.is_empty()
    }

    /// Serialize the binding table. The register files and liveness
    /// handles are shared structure saved by their owning networks; the
    /// unordered maps are written sorted by logical lock id.
    pub fn save_state(&self, w: &mut SnapWriter) {
        let st = self.state.borrow();
        w.mark("glock-pool");
        w.usize(st.owner_of.len());
        for o in &st.owner_of {
            w.opt_u64(o.map(u64::from));
        }
        for o in &st.reserved_for {
            w.opt_u64(o.map(u64::from));
        }
        let mut ids: Vec<u16> = st.bindings.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            let b = st.bindings[&id];
            w.u16(id);
            w.opt_u64(b.hw.map(|k| k as u64));
            w.u32(b.refs);
        }
        let mut ids: Vec<u16> = st.heat.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            w.u16(id);
            w.u32(st.heat[&id]);
        }
        for v in [st.stats.binds, st.stats.unbinds, st.stats.spills, st.stats.hw_acquires, st.stats.failovers] {
            w.u64(v);
        }
    }

    pub fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect("glock-pool")?;
        let mut st = self.state.borrow_mut();
        if r.usize()? != st.owner_of.len() {
            return Err(SnapError::Corrupt { what: "glock pool physical lock count" });
        }
        for o in st.owner_of.iter_mut() {
            *o = r.opt_u64()?.map(|v| v as u16);
        }
        for o in st.reserved_for.iter_mut() {
            *o = r.opt_u64()?.map(|v| v as u16);
        }
        let n = r.usize()?;
        st.bindings.clear();
        for _ in 0..n {
            let id = r.u16()?;
            let hw = r.opt_u64()?.map(|k| k as usize);
            let refs = r.u32()?;
            st.bindings.insert(id, Binding { hw, refs });
        }
        let n = r.usize()?;
        st.heat.clear();
        for _ in 0..n {
            let id = r.u16()?;
            let heat = r.u32()?;
            st.heat.insert(id, heat);
        }
        st.stats.binds = r.u64()?;
        st.stats.unbinds = r.u64()?;
        st.stats.spills = r.u64()?;
        st.stats.hw_acquires = r.u64()?;
        st.stats.failovers = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Rc<GlockPool> {
        GlockPool::new((0..n).map(|_| GlockRegisters::new(4)).collect())
    }

    #[test]
    fn reservations_protect_hot_locks_from_cold_thieves() {
        let p = pool(1);
        // Lock 9 becomes hot (5 episodes) and unbinds each time.
        for _ in 0..5 {
            assert_eq!(p.begin_acquire(9), PoolDecision::Hardware(0));
            p.end_release(9);
        }
        // Cold lock 5 (first episode, heat 1 < 5) cannot take the
        // reserved physical…
        assert_eq!(p.begin_acquire(5), PoolDecision::Software);
        p.end_release(5);
        // …but lock 9 reclaims it instantly.
        assert_eq!(p.begin_acquire(9), PoolDecision::Hardware(0));
        p.end_release(9);
    }

    #[test]
    fn equal_heat_peers_may_take_over_a_reservation() {
        let p = pool(1);
        assert_eq!(p.begin_acquire(1), PoolDecision::Hardware(0));
        p.end_release(1);
        // lock 2's heat (1) equals lock 1's heat (1): takeover allowed
        assert_eq!(p.begin_acquire(2), PoolDecision::Hardware(0));
        p.end_release(2);
    }

    #[test]
    fn first_acquirer_binds_hardware() {
        let p = pool(2);
        assert_eq!(p.begin_acquire(7), PoolDecision::Hardware(0));
        assert_eq!(p.binding_of(7), Some(0));
        // a second contender of the same lock joins the same regime
        assert_eq!(p.begin_acquire(7), PoolDecision::Hardware(0));
        // a different lock claims the other physical lock
        assert_eq!(p.begin_acquire(9), PoolDecision::Hardware(1));
        // and a third lock spills
        assert_eq!(p.begin_acquire(11), PoolDecision::Software);
        assert_eq!(p.stats().spills, 1);
        assert_eq!(p.stats().binds, 2);
    }

    #[test]
    fn binding_dissolves_at_quiescence_and_rebinds() {
        let p = pool(1);
        assert_eq!(p.begin_acquire(1), PoolDecision::Hardware(0));
        assert_eq!(p.begin_acquire(2), PoolDecision::Software);
        p.end_release(2);
        p.end_release(1);
        assert_eq!(p.stats().unbinds, 1);
        assert!(p.is_quiescent());
        // now lock 2 can claim the hardware
        assert_eq!(p.begin_acquire(2), PoolDecision::Hardware(0));
        p.end_release(2);
    }

    #[test]
    fn pinned_binding_survives_partial_release() {
        let p = pool(1);
        assert_eq!(p.begin_acquire(5), PoolDecision::Hardware(0));
        assert_eq!(p.begin_acquire(5), PoolDecision::Hardware(0));
        p.end_release(5);
        // still one outstanding: binding pinned
        assert_eq!(p.binding_of(5), Some(0));
        assert_eq!(p.begin_acquire(6), PoolDecision::Software);
        p.end_release(6);
        p.end_release(5);
        assert_eq!(p.binding_of(5), None);
    }

    #[test]
    fn dead_physical_lock_is_never_bound_again() {
        let p = pool(2);
        let healths: Vec<Rc<NetworkHealth>> =
            (0..2).map(|_| Rc::new(NetworkHealth::default())).collect();
        p.attach_healths(healths.clone());
        assert_eq!(p.begin_acquire(1), PoolDecision::Hardware(0));
        p.end_release(1);
        // Physical 0 dies; even its own reservation holder cannot rebind.
        healths[0].mark_dead(100);
        assert!(p.is_dead(0) && !p.is_dead(1));
        assert_eq!(p.begin_acquire(1), PoolDecision::Hardware(1));
        assert_eq!(p.begin_acquire(2), PoolDecision::Software, "only one live physical left");
        p.end_release(2);
        p.end_release(1);
        // Both dead: everything spills forever.
        healths[1].mark_dead(200);
        assert_eq!(p.begin_acquire(1), PoolDecision::Software);
        p.end_release(1);
    }

    #[test]
    fn failover_count_lands_in_stats() {
        let p = pool(1);
        p.note_failover();
        p.note_failover();
        assert_eq!(p.stats().failovers, 2);
    }

    #[test]
    #[should_panic(expected = "release of unknown lock")]
    fn unbalanced_release_is_detected() {
        let p = pool(1);
        assert_eq!(p.begin_acquire(3), PoolDecision::Hardware(0));
        p.end_release(3);
        p.end_release(3);
    }
}
