//! **GLocks** — the paper's contribution: a hardware lock mechanism for
//! highly-contended locks built on a dedicated G-line network.
//!
//! Each hardware lock owns a tree of controllers connected by *G-lines*
//! (1-bit wires that cross one chip dimension in a single cycle):
//!
//! * **local controllers** (`Cx`) at every core — they watch the core's
//!   `lock_req`/`lock_rel` register flags (Figure 5) and exchange signals
//!   with their row's manager;
//! * **secondary lock managers** (`Sx`), one per mesh row — they arbitrate
//!   among their row's requesters;
//! * the **primary lock manager** (`R`) — it arbitrates among secondaries.
//!
//! The protocol uses exactly three 1-bit signals — `REQ`, `TOKEN`, `REL` —
//! and grants the (unique) token in round-robin order at both levels, which
//! yields a completely fair lock. Timing matches Table I of the paper:
//! best-case acquire 2 cycles, worst-case 4, release 1.
//!
//! Module map:
//! * [`signal`] — G-line signals and their single-cycle propagation.
//! * [`node`] — the controller automata of Figure 6 (generalized to a tree
//!   so the same logic drives the paper's hierarchical-scaling extension).
//! * [`regs`] — the per-core `lock_req`/`lock_rel` register interface.
//! * [`network`] — one lock's assembled G-line network (+ statistics).
//! * [`topology`] — flat (≤ 49 cores) and hierarchical (> 49) layouts.
//! * [`cost`] — the Table I hardware/software cost model.

pub mod barrier;
pub mod cost;
pub mod network;
pub mod pool;
pub mod node;
pub mod regs;
pub mod signal;
pub mod topology;

pub use barrier::{BarrierRegs, GBarrierNetwork};
pub use cost::GlockCost;
pub use network::{GlockNetwork, GlockStats, NetworkHealth, DETECTION_ATTEMPTS};
pub use node::RetryPolicy;
pub use pool::{GlockPool, PoolDecision, PoolStats};
pub use regs::GlockRegisters;
pub use topology::Topology;
