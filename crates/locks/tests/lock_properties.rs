//! Property tests over every lock implementation: random critical-section
//! and think-time distributions on the full simulated stack must preserve
//! mutual exclusion (tracker-enforced) and lose no counter updates.

use glocks_cpu::{Action, Backends, BarrierBackend, Core, FixedScript, LockBackend, LockTracker, Script, Workload};
use glocks_locks::LockAlgorithm;
use glocks_mem::{MemOp, MemorySystem};
use glocks_sim_base::{Addr, CmpConfig, CoreId, LockId, SplitMix64, ThreadId};
use glocks::{GlockNetwork, Topology};
use proptest::prelude::*;

struct NullBarrier;

impl BarrierBackend for NullBarrier {
    fn wait(&self, _tid: ThreadId) -> Box<dyn Script> {
        Box::new(FixedScript::new(0))
    }
}

enum Phase {
    Enter,
    Load,
    Think,
    Store,
    Exit,
    Rest,
}

/// Random-duration critical sections around a non-atomic increment.
struct JitterLoop {
    counter: Addr,
    iters: u64,
    rng: SplitMix64,
    phase: Phase,
    seen: u64,
}

impl Workload for JitterLoop {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            Phase::Enter => {
                if self.iters == 0 {
                    return Action::Done;
                }
                self.phase = Phase::Load;
                Action::Acquire(LockId(0))
            }
            Phase::Load => {
                self.phase = Phase::Think;
                Action::Mem(MemOp::Load(self.counter))
            }
            Phase::Think => {
                self.seen = last;
                self.phase = Phase::Store;
                Action::Compute(self.rng.next_below(24) + 1)
            }
            Phase::Store => {
                self.phase = Phase::Exit;
                Action::Mem(MemOp::Store(self.counter, self.seen + 1))
            }
            Phase::Exit => {
                self.iters -= 1;
                self.phase = Phase::Rest;
                Action::Release(LockId(0))
            }
            Phase::Rest => {
                self.phase = Phase::Enter;
                Action::Compute(self.rng.next_below(64) + 1)
            }
        }
    }
}

fn run_property(algo: LockAlgorithm, threads: usize, iters: u64, seed: u64) -> u64 {
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let mut mem = MemorySystem::new(&cfg);
    let counter = Addr(0x90_000);
    let mesh = cfg.mesh();
    let mut glock_net = (algo == LockAlgorithm::Glock)
        .then(|| GlockNetwork::new(&Topology::flat(mesh), 1));
    let regs = glock_net.as_ref().map(|n| n.regs());
    let mp = matches!(algo, LockAlgorithm::MpLock | LockAlgorithm::SyncBuf)
        .then(|| (mem.mp_fabric(), 0u16));
    let backend = algo.make_backend(Addr(0x10_000), threads, regs, mp);
    let locks: Vec<Box<dyn LockBackend>> = vec![backend];
    let barrier = NullBarrier;
    let backends = Backends { locks: &locks, barrier: &barrier };
    let mut tracker = LockTracker::new(1, threads);
    let mut root = SplitMix64::new(seed);
    let mut cores: Vec<Core> = (0..threads)
        .map(|i| {
            Core::new(
                CoreId(i as u16),
                cfg.issue_width,
                Box::new(JitterLoop {
                    counter,
                    iters,
                    rng: root.split(),
                    phase: Phase::Enter,
                    seen: 0,
                }),
            )
        })
        .collect();
    let mut now = 0u64;
    loop {
        let mut all_done = true;
        for c in &mut cores {
            c.tick(now, &mut mem, &backends, &mut tracker);
            all_done &= c.is_finished();
        }
        mem.tick(now);
        if let Some(net) = glock_net.as_mut() {
            net.tick(now);
            net.assert_token_invariants();
        }
        tracker.sample();
        if all_done {
            break;
        }
        now += 1;
        assert!(now < 100_000_000, "{algo:?} hung");
    }
    assert!(tracker.all_quiet());
    mem.store().load(counter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn no_lost_updates_under_any_algorithm(
        seed in any::<u64>(),
        threads in 2usize..9,
        iters in 1u64..5,
    ) {
        for algo in [
            LockAlgorithm::Simple,
            LockAlgorithm::Tatas,
            LockAlgorithm::TatasBackoff,
            LockAlgorithm::Ticket,
            LockAlgorithm::Anderson,
            LockAlgorithm::Mcs,
            LockAlgorithm::Reactive,
            LockAlgorithm::Glock,
            LockAlgorithm::MpLock,
            LockAlgorithm::SyncBuf,
            LockAlgorithm::Ideal,
        ] {
            let v = run_property(algo, threads, iters, seed);
            prop_assert_eq!(
                v,
                threads as u64 * iters,
                "{:?} lost updates with {} threads x {} iters",
                algo, threads, iters
            );
        }
    }
}
