//! Property tests for the Reactive lock's protocol-switching safety.
//!
//! The adaptation rule is only sound because `decide()` refuses to change
//! protocol while any acquire is outstanding: a switch mid-episode would
//! let a TATAS acquirer and an MCS acquirer both enter the critical
//! section. These tests run the backend's scripts under a randomly
//! scheduled interleaving against an emulated word store and assert both
//! the quiescence rule and mutual exclusion itself.

use glocks_cpu::{LockBackend, Script, Step};
use glocks_locks::reactive::{Mode, ReactiveBackend};
use glocks_mem::MemOp;
use glocks_sim_base::{Addr, SplitMix64, ThreadId};
use proptest::prelude::*;
use std::collections::HashMap;

/// Minimal functional memory: enough to execute lock scripts exactly
/// (loads, stores, and atomics via [`glocks_mem::RmwKind::apply`]).
#[derive(Default)]
struct Store(HashMap<u64, u64>);

impl Store {
    /// Perform `op`, returning the value the script's next `resume` sees.
    fn exec(&mut self, op: MemOp) -> u64 {
        match op {
            MemOp::Load(a) => *self.0.get(&a.word().0).unwrap_or(&0),
            MemOp::Store(a, v) => {
                self.0.insert(a.word().0, v);
                0
            }
            MemOp::Rmw(a, kind) => {
                let old = *self.0.get(&a.word().0).unwrap_or(&0);
                let (new, ret) = kind.apply(old);
                self.0.insert(a.word().0, new);
                ret
            }
        }
    }
}

enum ThreadState {
    Idle,
    Acquiring(Box<dyn Script>),
    Holding,
    Releasing(Box<dyn Script>),
}

struct Outcome {
    switches: u64,
    /// Every protocol switch happened with no other acquire outstanding.
    switch_safe: bool,
    /// At most one thread ever held the lock.
    exclusive: bool,
    /// Critical sections completed.
    sections: u64,
}

/// Run `steps` randomly scheduled script steps over `n_threads` contenders.
/// The schedule alternates busy epochs (everyone may start an acquire) and
/// calm epochs (only thread 0 may) so the backend sees both pile-ups and
/// genuine quiescence — the regime where switches are allowed.
fn drive(seed: u64, n_threads: usize, steps: usize) -> Outcome {
    let b = ReactiveBackend::new(Addr(0x20_000), n_threads);
    let mut store = Store::default();
    let mut rng = SplitMix64::new(seed);
    let mut threads: Vec<(ThreadState, u64)> =
        (0..n_threads).map(|_| (ThreadState::Idle, 0)).collect();
    let mut outstanding = 0usize;
    let mut holders = 0usize;
    let mut out = Outcome { switches: 0, switch_safe: true, exclusive: true, sections: 0 };
    for step in 0..steps {
        let calm = (step / 512) % 2 == 1;
        let t = rng.next_below(n_threads as u64) as usize;
        let (state, last) = &mut threads[t];
        match state {
            ThreadState::Idle if calm && t != 0 => {}
            ThreadState::Idle => {
                let before = b.inner().current_mode();
                let script = b.acquire(ThreadId(t as u16));
                // `decide()` ran inside `acquire`; a mode change there is
                // only legal when this acquire found the lock quiescent.
                if b.inner().current_mode() != before && outstanding != 0 {
                    out.switch_safe = false;
                }
                outstanding += 1;
                *state = ThreadState::Acquiring(script);
                *last = 0;
            }
            ThreadState::Acquiring(script) => match script.resume(*last) {
                Step::Done => {
                    holders += 1;
                    if holders > 1 {
                        out.exclusive = false;
                    }
                    *state = ThreadState::Holding;
                }
                Step::Mem(op) => *last = store.exec(op),
                Step::Compute(_) => *last = 0,
            },
            ThreadState::Holding => {
                holders -= 1;
                out.sections += 1;
                *state = ThreadState::Releasing(b.release(ThreadId(t as u16)));
                *last = 0;
            }
            ThreadState::Releasing(script) => match script.resume(*last) {
                Step::Done => {
                    outstanding -= 1;
                    *state = ThreadState::Idle;
                }
                Step::Mem(op) => *last = store.exec(op),
                Step::Compute(_) => *last = 0,
            },
        }
    }
    out.switches = b.inner().switches();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn switches_respect_quiescence_and_exclusion(
        seed in any::<u64>(),
        n_threads in 2usize..9,
        steps in 50usize..2000,
    ) {
        let out = drive(seed, n_threads, steps);
        prop_assert!(out.switch_safe, "protocol switched while acquires were outstanding");
        prop_assert!(out.exclusive, "two threads held the lock at once");
    }
}

#[test]
fn long_random_runs_switch_and_make_progress() {
    // Across a spread of seeds the random schedule must both hit protocol
    // switches (the EWMA crosses a water mark somewhere) and keep
    // completing critical sections afterwards — switching never wedges.
    let mut total_switches = 0;
    for seed in 0..8 {
        let out = drive(seed, 8, 20_000);
        assert!(out.switch_safe && out.exclusive);
        assert!(out.sections > 100, "seed {seed}: only {} sections", out.sections);
        total_switches += out.switches;
    }
    assert!(total_switches >= 1, "no schedule ever exercised a protocol switch");
}

#[test]
fn bursty_contention_switches_both_ways() {
    // Deterministic burst/calm phases: 8 simultaneous acquirers push the
    // EWMA over the high water mark (TATAS → MCS); a long solo phase
    // decays it back under the low water mark (MCS → TATAS).
    let b = ReactiveBackend::new(Addr(0x30_000), 8);
    let mut store = Store::default();
    let mut run_to_done = |script: &mut Box<dyn Script>| {
        let mut last = 0;
        for _ in 0..10_000 {
            match script.resume(last) {
                Step::Done => return,
                Step::Mem(op) => last = store.exec(op),
                Step::Compute(_) => last = 0,
            }
        }
        panic!("script did not finish");
    };
    assert_eq!(b.inner().current_mode(), Mode::Tatas);
    for _ in 0..4 {
        // All 8 start acquiring at once (this is what drives the EWMA up),
        // then the sections run to completion one at a time.
        let mut scripts: Vec<_> = (0..8).map(|t| b.acquire(ThreadId(t))).collect();
        for (t, acq) in scripts.iter_mut().enumerate() {
            run_to_done(acq);
            run_to_done(&mut b.release(ThreadId(t as u16)));
        }
    }
    assert_eq!(b.inner().current_mode(), Mode::Mcs, "burst must escalate to MCS");
    for _ in 0..32 {
        run_to_done(&mut b.acquire(ThreadId(0)));
        run_to_done(&mut b.release(ThreadId(0)));
    }
    assert_eq!(b.inner().current_mode(), Mode::Tatas, "solo phase must relax to TATAS");
    assert!(b.inner().switches() >= 2);
}
