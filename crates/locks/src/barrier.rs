//! A sense-versioned combining-tree barrier over simulated memory.
//!
//! The paper's applications' library provides "an efficient tree barrier
//! implementation (up to two threads requesting every lock)", so barriers
//! are never highly contended and are *not* accelerated by GLocks. This
//! arity-2 combining tree reproduces that behavior: at most two threads
//! meet at any tree node, each node's arrival counter and release word live
//! in their own cache lines, and releases propagate down the winner paths.
//!
//! Instead of a boolean sense that must be reset between episodes, each
//! node's release word stores the *episode number* it was last opened for;
//! a waiter spins until `release ≥ episode`, which is wraparound-free for
//! any realistic run length.

use crate::layout::slot;
use glocks_cpu::{BarrierBackend, Script, Step};
use glocks_mem::{MemOp, RmwKind};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, ThreadId};
use std::cell::Cell;
use std::rc::Rc;

/// Geometry of the combining tree.
#[derive(Debug)]
struct TreeShape {
    n: usize,
    /// Flat node-id offset of each level.
    level_offsets: Vec<usize>,
}

impl TreeShape {
    fn new(n: usize) -> Self {
        assert!(n >= 1);
        let mut level_offsets = vec![0usize];
        let mut l = 0usize;
        while Self::nodes_at_level(n, l) > 1 {
            let off = level_offsets[l] + Self::nodes_at_level(n, l);
            level_offsets.push(off);
            l += 1;
        }
        TreeShape { n, level_offsets }
    }

    /// Number of nodes at level `l` (groups of `2^(l+1)` threads).
    fn nodes_at_level(n: usize, l: usize) -> usize {
        let group = 1usize << (l + 1);
        n.div_ceil(group)
    }

    fn levels(&self) -> usize {
        self.level_offsets.len()
    }

    fn node_id(&self, level: usize, g: usize) -> usize {
        self.level_offsets[level] + g
    }

    fn total_nodes(&self) -> usize {
        let last = self.levels() - 1;
        self.level_offsets[last] + Self::nodes_at_level(self.n, last)
    }

    /// How many arrivals node `(level, g)` expects: one per existing child
    /// subtree (1 or 2).
    fn participants(&self, level: usize, g: usize) -> u64 {
        let child_group = 1usize << level; // threads per child subtree
        let first_child = 2 * g;
        (0..2)
            .filter(|k| (first_child + k) * child_group < self.n)
            .count() as u64
    }

    fn is_root_level(&self, level: usize) -> bool {
        Self::nodes_at_level(self.n, level) == 1
    }
}

/// The tree barrier backend.
pub struct TreeBarrier {
    base: Addr,
    shape: Rc<TreeShape>,
    episodes: Vec<Cell<u64>>,
}

impl TreeBarrier {
    pub fn new(base: Addr, n_threads: usize) -> Self {
        TreeBarrier {
            base,
            shape: Rc::new(TreeShape::new(n_threads)),
            episodes: (0..n_threads).map(|_| Cell::new(0)).collect(),
        }
    }

    /// Simulated-memory footprint in bytes (for region planning).
    pub fn region_bytes(n_threads: usize) -> u64 {
        crate::layout::region_bytes(2 * TreeShape::new(n_threads).total_nodes() as u64)
    }
}

fn count_addr(base: Addr, node_id: usize) -> Addr {
    slot(base, 2 * node_id as u64)
}

fn release_addr(base: Addr, node_id: usize) -> Addr {
    slot(base, 2 * node_id as u64 + 1)
}

enum Phase {
    Start,
    /// `fetch&add` on the current node's counter issued.
    Arrived,
    /// Spinning on the current node's release word.
    Spinning(usize),
    /// Walking `owned` top-down: reset the counter...
    ReleaseCount,
    /// ...then open the release word.
    ReleaseSense,
    Finish,
}

struct TreeWait {
    shape: Rc<TreeShape>,
    base: Addr,
    tid: usize,
    episode: u64,
    level: usize,
    group: usize,
    /// Nodes this thread was the last arriver of (bottom-up order).
    owned: Vec<usize>,
    rel_pos: usize,
    phase: Phase,
}

impl Script for TreeWait {
    fn resume(&mut self, last: u64) -> Step {
        loop {
            match self.phase {
                Phase::Start => {
                    if self.shape.n == 1 {
                        self.phase = Phase::Finish;
                        return Step::Done;
                    }
                    self.level = 0;
                    self.group = self.tid / 2;
                    self.phase = Phase::Arrived;
                    let node = self.shape.node_id(0, self.group);
                    return Step::Mem(MemOp::Rmw(count_addr(self.base, node), RmwKind::FetchAdd(1)));
                }
                Phase::Arrived => {
                    let required = self.shape.participants(self.level, self.group);
                    let node = self.shape.node_id(self.level, self.group);
                    if last == required - 1 {
                        // Winner: continue climbing (or begin the release).
                        self.owned.push(node);
                        if self.shape.is_root_level(self.level) {
                            self.rel_pos = self.owned.len();
                            self.phase = Phase::ReleaseCount;
                            continue;
                        }
                        self.level += 1;
                        self.group /= 2;
                        let up = self.shape.node_id(self.level, self.group);
                        return Step::Mem(MemOp::Rmw(
                            count_addr(self.base, up),
                            RmwKind::FetchAdd(1),
                        ));
                    }
                    // Loser: wait to be released at this node.
                    self.phase = Phase::Spinning(node);
                    return Step::Mem(MemOp::Load(release_addr(self.base, node)));
                }
                Phase::Spinning(node) => {
                    if last >= self.episode {
                        self.rel_pos = self.owned.len();
                        self.phase = Phase::ReleaseCount;
                        continue;
                    }
                    return Step::Mem(MemOp::Load(release_addr(self.base, node)));
                }
                Phase::ReleaseCount => {
                    if self.rel_pos == 0 {
                        self.phase = Phase::Finish;
                        return Step::Done;
                    }
                    let node = self.owned[self.rel_pos - 1];
                    self.phase = Phase::ReleaseSense;
                    // Reset before opening so next-episode arrivals start
                    // from a clean counter.
                    return Step::Mem(MemOp::Store(count_addr(self.base, node), 0));
                }
                Phase::ReleaseSense => {
                    let node = self.owned[self.rel_pos - 1];
                    self.rel_pos -= 1;
                    self.phase = Phase::ReleaseCount;
                    return Step::Mem(MemOp::Store(release_addr(self.base, node), self.episode));
                }
                Phase::Finish => return Step::Done,
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.episode);
        w.usize(self.level);
        w.usize(self.group);
        w.usize(self.owned.len());
        for &n in &self.owned {
            w.usize(n);
        }
        w.usize(self.rel_pos);
        match self.phase {
            Phase::Start => w.u8(0),
            Phase::Arrived => w.u8(1),
            Phase::Spinning(node) => {
                w.u8(2);
                w.usize(node);
            }
            Phase::ReleaseCount => w.u8(3),
            Phase::ReleaseSense => w.u8(4),
            Phase::Finish => w.u8(5),
        }
        Ok(())
    }
}

impl BarrierBackend for TreeBarrier {
    fn wait(&self, tid: ThreadId) -> Box<dyn Script> {
        let ep = self.episodes[tid.index()].get() + 1;
        self.episodes[tid.index()].set(ep);
        Box::new(TreeWait {
            shape: Rc::clone(&self.shape),
            base: self.base,
            tid: tid.index(),
            episode: ep,
            level: 0,
            group: 0,
            owned: Vec::new(),
            rel_pos: 0,
            phase: Phase::Start,
        })
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.episodes.len());
        for e in &self.episodes {
            w.u64(e.get());
        }
        Ok(())
    }

    fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.episodes.len() {
            return Err(SnapError::Corrupt { what: "tree barrier thread count" });
        }
        for e in &self.episodes {
            e.set(r.u64()?);
        }
        Ok(())
    }

    fn load_wait_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let episode = r.u64()?;
        let level = r.usize()?;
        let group = r.usize()?;
        let n_owned = r.usize()?;
        let mut owned = Vec::with_capacity(n_owned);
        for _ in 0..n_owned {
            owned.push(r.usize()?);
        }
        let rel_pos = r.usize()?;
        let phase = match r.u8()? {
            0 => Phase::Start,
            1 => Phase::Arrived,
            2 => Phase::Spinning(r.usize()?),
            3 => Phase::ReleaseCount,
            4 => Phase::ReleaseSense,
            5 => Phase::Finish,
            tag => {
                return Err(SnapError::BadTag { what: "tree wait phase", tag: u64::from(tag) })
            }
        };
        Ok(Box::new(TreeWait {
            shape: Rc::clone(&self.shape),
            base: self.base,
            tid: tid.index(),
            episode,
            level,
            group,
            owned,
            rel_pos,
            phase,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glocks_cpu::{Action, Backends, Core, LockBackend, LockTracker, Workload};
    use glocks_mem::MemorySystem;
    use glocks_sim_base::{CmpConfig, CoreId};
    use std::cell::RefCell;

    #[test]
    fn shape_geometry() {
        let s = TreeShape::new(8);
        assert_eq!(s.levels(), 3);
        assert_eq!(TreeShape::nodes_at_level(8, 0), 4);
        assert_eq!(TreeShape::nodes_at_level(8, 1), 2);
        assert_eq!(TreeShape::nodes_at_level(8, 2), 1);
        assert_eq!(s.total_nodes(), 7);
        assert_eq!(s.participants(0, 0), 2);
        assert!(s.is_root_level(2));
        // odd sizes
        let s5 = TreeShape::new(5);
        assert_eq!(TreeShape::nodes_at_level(5, 0), 3);
        assert_eq!(s5.participants(0, 2), 1, "thread 4 arrives alone");
        assert_eq!(s5.participants(1, 1), 1, "node over thread-4 subtree alone");
    }

    /// Each thread alternates: bump its Rust-side epoch, barrier-wait,
    /// then verify every thread reached the same epoch — the defining
    /// property of a barrier.
    struct EpochChecker {
        tid: usize,
        epochs: Rc<RefCell<Vec<u64>>>,
        rounds: u64,
        state: u8, // 0 = about to enter, 1 = just passed
    }

    impl Workload for EpochChecker {
        fn next(&mut self, _last: u64) -> Action {
            match self.state {
                0 => {
                    if self.rounds == 0 {
                        return Action::Done;
                    }
                    self.epochs.borrow_mut()[self.tid] += 1;
                    self.state = 1;
                    Action::Barrier
                }
                _ => {
                    let my = self.epochs.borrow()[self.tid];
                    for (t, &e) in self.epochs.borrow().iter().enumerate() {
                        assert!(
                            e >= my,
                            "thread {t} at epoch {e} while {} passed barrier of epoch {my}",
                            self.tid
                        );
                    }
                    self.rounds -= 1;
                    self.state = 0;
                    Action::Compute(10 + (self.tid as u64 * 7) % 23)
                }
            }
        }
    }

    fn run_barrier_test(threads: usize, rounds: u64) {
        let cfg = CmpConfig::paper_baseline().with_cores(threads.max(2));
        let mut mem = MemorySystem::new(&cfg);
        let barrier = TreeBarrier::new(glocks_sim_base::Addr(0x20_000), threads);
        let locks: Vec<Box<dyn LockBackend>> = Vec::new();
        let backends = Backends { locks: &locks, barrier: &barrier };
        let mut tracker = LockTracker::new(0, threads);
        let epochs = Rc::new(RefCell::new(vec![0u64; threads]));
        let mut cores: Vec<Core> = (0..threads)
            .map(|i| {
                Core::new(
                    CoreId(i as u16),
                    cfg.issue_width,
                    Box::new(EpochChecker {
                        tid: i,
                        epochs: Rc::clone(&epochs),
                        rounds,
                        state: 0,
                    }),
                )
            })
            .collect();
        let mut now = 0u64;
        loop {
            let mut all_done = true;
            for c in &mut cores {
                c.tick(now, &mut mem, &backends, &mut tracker);
                all_done &= c.is_finished();
            }
            mem.tick(now);
            if all_done {
                break;
            }
            now += 1;
            assert!(now < 50_000_000, "barrier hung");
        }
        assert!(epochs.borrow().iter().all(|&e| e == rounds));
    }

    #[test]
    fn synchronizes_8_threads() {
        run_barrier_test(8, 5);
    }

    #[test]
    fn synchronizes_32_threads() {
        run_barrier_test(32, 3);
    }

    #[test]
    fn synchronizes_odd_thread_counts() {
        run_barrier_test(5, 4);
        run_barrier_test(3, 4);
    }

    #[test]
    fn two_threads_many_rounds() {
        run_barrier_test(2, 20);
    }

    #[test]
    fn single_thread_is_noop() {
        run_barrier_test(1, 3);
    }
}
