//! The ideal lock of Figure 1: acquire and release take a single clock
//! cycle each, never touch the memory hierarchy, and grant in FIFO order.
//!
//! Used to bound the potential benefit of any lock implementation
//! ("ideal locks do not deal with the cache coherence protocol ... lock
//! acquisition and release operations take a single clock cycle each").

use glocks_cpu::{LockBackend, Script, Step};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::ThreadId;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

#[derive(Default)]
struct IdealState {
    holder: Option<ThreadId>,
    queue: VecDeque<ThreadId>,
}

/// A magic zero-overhead FIFO lock.
pub struct IdealLock {
    state: Rc<RefCell<IdealState>>,
}

impl IdealLock {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        IdealLock { state: Rc::new(RefCell::new(IdealState::default())) }
    }
}

enum AcqPhase {
    Enqueue,
    Poll,
}

struct IdealAcquire {
    state: Rc<RefCell<IdealState>>,
    tid: ThreadId,
    phase: AcqPhase,
}

impl Script for IdealAcquire {
    fn resume(&mut self, _last: u64) -> Step {
        match self.phase {
            AcqPhase::Enqueue => {
                self.state.borrow_mut().queue.push_back(self.tid);
                self.phase = AcqPhase::Poll;
                // The single-cycle acquire instruction.
                Step::Compute(1)
            }
            AcqPhase::Poll => {
                let mut s = self.state.borrow_mut();
                if s.holder.is_none() && s.queue.front() == Some(&self.tid) {
                    s.queue.pop_front();
                    s.holder = Some(self.tid);
                    Step::Done
                } else {
                    drop(s);
                    // Zero-traffic wait: one cycle per poll.
                    Step::Compute(1)
                }
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.phase {
            AcqPhase::Enqueue => 0,
            AcqPhase::Poll => 1,
        });
        Ok(())
    }
}

struct IdealRelease {
    state: Rc<RefCell<IdealState>>,
    tid: ThreadId,
    done: bool,
}

impl Script for IdealRelease {
    fn resume(&mut self, _last: u64) -> Step {
        if self.done {
            let mut s = self.state.borrow_mut();
            debug_assert_eq!(s.holder, Some(self.tid), "ideal release by non-holder");
            s.holder = None;
            Step::Done
        } else {
            self.done = true;
            // The single-cycle release instruction.
            Step::Compute(1)
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.bool(self.done);
        Ok(())
    }
}

impl LockBackend for IdealLock {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(IdealAcquire {
            state: Rc::clone(&self.state),
            tid,
            phase: AcqPhase::Enqueue,
        })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(IdealRelease { state: Rc::clone(&self.state), tid, done: false })
    }

    fn name(&self) -> &'static str {
        "Ideal"
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        let s = self.state.borrow();
        w.opt_u64(s.holder.map(|t| u64::from(t.0)));
        w.usize(s.queue.len());
        for t in &s.queue {
            w.u16(t.0);
        }
        Ok(())
    }

    fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let mut s = self.state.borrow_mut();
        s.holder = r.opt_u64()?.map(|v| ThreadId(v as u16));
        let n = r.usize()?;
        s.queue.clear();
        for _ in 0..n {
            s.queue.push_back(ThreadId(r.u16()?));
        }
        Ok(())
    }

    fn load_acquire_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let phase = match r.u8()? {
            0 => AcqPhase::Enqueue,
            1 => AcqPhase::Poll,
            tag => {
                return Err(SnapError::BadTag { what: "ideal acquire phase", tag: u64::from(tag) })
            }
        };
        Ok(Box::new(IdealAcquire { state: Rc::clone(&self.state), tid, phase }))
    }

    fn load_release_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        Ok(Box::new(IdealRelease { state: Rc::clone(&self.state), tid, done: r.bool()? }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench;

    #[test]
    fn ideal_lock_is_correct() {
        let outcome = run_counter_bench(|_base, _n| Box::new(IdealLock::new()) as _, 8, 5);
        assert_eq!(outcome.counter_value, 40);
    }

    #[test]
    fn ideal_lock_is_fifo() {
        let outcome = run_counter_bench(|_base, _n| Box::new(IdealLock::new()) as _, 8, 3);
        let g = &outcome.grant_order;
        let first: Vec<ThreadId> = g[..8].to_vec();
        for r in 1..3 {
            assert_eq!(&g[r * 8..(r + 1) * 8], first.as_slice(), "round {r}");
        }
    }

    #[test]
    fn ideal_lock_generates_no_lock_traffic() {
        // The only traffic in the counter bench under the ideal lock is the
        // counter line itself migrating between cores.
        let ideal = run_counter_bench(|_b, _n| Box::new(IdealLock::new()) as _, 8, 4);
        let mcs = run_counter_bench(
            |base, n| Box::new(crate::mcs::McsLock::new(base, n)) as _,
            8,
            4,
        );
        assert!(
            ideal.total_bytes < mcs.total_bytes / 2,
            "ideal {} should be far below MCS {}",
            ideal.total_bytes,
            mcs.total_bytes
        );
    }

    #[test]
    fn ideal_lock_time_is_tiny() {
        let outcome = run_counter_bench(|_b, _n| Box::new(IdealLock::new()) as _, 4, 4);
        // Lock time exists (queueing) but per acquire+release the *owner's*
        // overhead is ~2 cycles; the bench must finish quickly.
        assert_eq!(outcome.counter_value, 16);
        assert!(outcome.cycles < 20_000);
    }
}
