//! Dynamically-shared GLocks (Section V future work): every workload lock
//! uses this backend; acquires consult the hardware binding table
//! ([`glocks::pool::GlockPool`]) and run either on a physical G-line
//! network or on the TATAS software fallback. Highly-contended locks end
//! up capturing the physical GLocks automatically — no programmer
//! annotation of "which locks are hot" is needed.

use crate::tatas::TatasLock;
use glocks::pool::{GlockPool, PoolDecision};
use glocks_cpu::{LockBackend, Script, Step};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, ThreadId};
use std::cell::Cell;
use std::rc::Rc;

/// Cycles to consult the binding table at the lock unit.
const POOL_CONSULT_INSTRS: u64 = 4;

/// One workload lock under dynamic hardware sharing.
pub struct DynamicGlockBackend {
    pool: Rc<GlockPool>,
    logical: u16,
    fallback: TatasLock,
    /// Which regime each thread's *current* acquire used, so its release
    /// takes the same path (shared with the in-flight acquire script).
    path: Vec<Rc<Cell<Option<PoolDecision>>>>,
}

impl DynamicGlockBackend {
    /// `base` is the software fallback's memory region.
    pub fn new(pool: Rc<GlockPool>, logical: u16, base: Addr, n_threads: usize) -> Self {
        DynamicGlockBackend {
            pool,
            logical,
            fallback: TatasLock::tatas(base),
            path: (0..n_threads).map(|_| Rc::new(Cell::new(None))).collect(),
        }
    }
}

enum AcqPhase {
    Consult,
    GlockSet(usize),
    GlockSpin(usize),
    /// The bound physical network died mid-episode: wait for its hardware
    /// path to drain before entering the software fallback.
    DrainWait(usize),
    Fallback,
}

struct DynAcquire {
    pool: Rc<GlockPool>,
    logical: u16,
    tid: ThreadId,
    phase: AcqPhase,
    /// Pre-built software-fallback acquire (used only on a spill).
    inner: Box<dyn Script>,
    path_out: Rc<Cell<Option<PoolDecision>>>,
}

impl DynAcquire {
    /// Abandon a dead physical lock: the release must take the software
    /// path, and survivors may only enter it once the dead network's
    /// pre-death grantee has left its critical section.
    fn fail_over(&mut self, k: usize) -> Step {
        self.pool.note_failover();
        self.path_out.set(Some(PoolDecision::Software));
        self.phase = AcqPhase::DrainWait(k);
        Step::Compute(1)
    }
}

impl Script for DynAcquire {
    fn resume(&mut self, last: u64) -> Step {
        match self.phase {
            AcqPhase::Consult => {
                let decision = self.pool.begin_acquire(self.logical);
                self.path_out.set(Some(decision));
                match decision {
                    PoolDecision::Hardware(k) => self.phase = AcqPhase::GlockSet(k),
                    PoolDecision::Software => self.phase = AcqPhase::Fallback,
                }
                Step::Compute(POOL_CONSULT_INSTRS)
            }
            AcqPhase::GlockSet(k) => {
                if self.pool.is_dead(k) {
                    // The binding is pinned to a network that died; every
                    // thread of this episode converges on the fallback.
                    return self.fail_over(k);
                }
                self.pool.regs(k).set_req(self.tid.index());
                self.phase = AcqPhase::GlockSpin(k);
                Step::Compute(1)
            }
            AcqPhase::GlockSpin(k) => {
                if !self.pool.regs(k).req_pending(self.tid.index()) {
                    // Granted — final even if the verdict landed this
                    // cycle (quarantine freezes register state).
                    return Step::Done;
                }
                if self.pool.is_dead(k) {
                    return self.fail_over(k);
                }
                Step::Compute(1)
            }
            AcqPhase::DrainWait(k) => {
                if self.pool.regs(k).hw_drained() {
                    self.phase = AcqPhase::Fallback;
                    self.inner.resume(last)
                } else {
                    Step::Compute(1)
                }
            }
            AcqPhase::Fallback => self.inner.resume(last),
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self.phase {
            AcqPhase::Consult => w.u8(0),
            AcqPhase::GlockSet(k) => {
                w.u8(1);
                w.usize(k);
            }
            AcqPhase::GlockSpin(k) => {
                w.u8(2);
                w.usize(k);
            }
            AcqPhase::DrainWait(k) => {
                w.u8(3);
                w.usize(k);
            }
            AcqPhase::Fallback => w.u8(4),
        }
        self.inner.save_state(w)
    }

    /// Spinning on a bound physical GLock's `lock_req` is inert while the
    /// REQ is raised and that network is alive — grant and death verdict
    /// both come from the network, whose `next_event` covers them.
    fn idle_spin(&self) -> bool {
        if let AcqPhase::GlockSpin(k) = self.phase {
            self.pool.regs(k).req_pending(self.tid.index()) && !self.pool.is_dead(k)
        } else {
            false
        }
    }
}

fn decision_tag(w: &mut SnapWriter, d: PoolDecision) {
    match d {
        PoolDecision::Hardware(k) => {
            w.u8(0);
            w.usize(k);
        }
        PoolDecision::Software => w.u8(1),
    }
}

fn decision_from(r: &mut SnapReader<'_>, what: &'static str) -> Result<PoolDecision, SnapError> {
    match r.u8()? {
        0 => Ok(PoolDecision::Hardware(r.usize()?)),
        1 => Ok(PoolDecision::Software),
        tag => Err(SnapError::BadTag { what, tag: u64::from(tag) }),
    }
}

enum RelPhase {
    Start,
    GlockDone,
    Fallback,
}

struct DynRelease {
    pool: Rc<GlockPool>,
    logical: u16,
    tid: ThreadId,
    decision: PoolDecision,
    phase: RelPhase,
    inner: Option<Box<dyn Script>>,
}

impl Script for DynRelease {
    fn resume(&mut self, last: u64) -> Step {
        match self.phase {
            RelPhase::Start => match self.decision {
                PoolDecision::Hardware(k) => {
                    self.pool.regs(k).set_rel(self.tid.index());
                    self.phase = RelPhase::GlockDone;
                    Step::Compute(1)
                }
                PoolDecision::Software => {
                    self.phase = RelPhase::Fallback;
                    self.resume(last)
                }
            },
            RelPhase::GlockDone => {
                self.pool.end_release(self.logical);
                Step::Done
            }
            RelPhase::Fallback => {
                let step = self.inner.as_mut().expect("fallback release").resume(last);
                if matches!(step, Step::Done) {
                    self.pool.end_release(self.logical);
                }
                step
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        decision_tag(w, self.decision);
        w.u8(match self.phase {
            RelPhase::Start => 0,
            RelPhase::GlockDone => 1,
            RelPhase::Fallback => 2,
        });
        w.bool(self.inner.is_some());
        if let Some(inner) = &self.inner {
            inner.save_state(w)?;
        }
        Ok(())
    }
}

impl LockBackend for DynamicGlockBackend {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(DynAcquire {
            pool: Rc::clone(&self.pool),
            logical: self.logical,
            tid,
            phase: AcqPhase::Consult,
            inner: self.fallback.acquire(tid),
            path_out: Rc::clone(&self.path[tid.index()]),
        })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        let decision = self.path[tid.index()]
            .take()
            .expect("release without a recorded acquire path");
        let inner = matches!(decision, PoolDecision::Software)
            .then(|| self.fallback.release(tid));
        Box::new(DynRelease {
            pool: Rc::clone(&self.pool),
            logical: self.logical,
            tid,
            decision,
            phase: RelPhase::Start,
            inner,
        })
    }

    fn name(&self) -> &'static str {
        "DynGLock"
    }

    // The pool's binding table is shared structure saved once at sim level.
    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.path.len());
        for cell in &self.path {
            match cell.get() {
                None => w.u8(0),
                Some(PoolDecision::Hardware(k)) => {
                    w.u8(1);
                    w.usize(k);
                }
                Some(PoolDecision::Software) => w.u8(2),
            }
        }
        Ok(())
    }

    fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.path.len() {
            return Err(SnapError::Corrupt { what: "dynamic lock thread count" });
        }
        for cell in &self.path {
            cell.set(match r.u8()? {
                0 => None,
                1 => Some(PoolDecision::Hardware(r.usize()?)),
                2 => Some(PoolDecision::Software),
                tag => {
                    return Err(SnapError::BadTag {
                        what: "dynamic path decision",
                        tag: u64::from(tag),
                    })
                }
            });
        }
        Ok(())
    }

    fn load_acquire_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let phase = match r.u8()? {
            0 => AcqPhase::Consult,
            1 => AcqPhase::GlockSet(r.usize()?),
            2 => AcqPhase::GlockSpin(r.usize()?),
            3 => AcqPhase::DrainWait(r.usize()?),
            4 => AcqPhase::Fallback,
            tag => {
                return Err(SnapError::BadTag {
                    what: "dynamic acquire phase",
                    tag: u64::from(tag),
                })
            }
        };
        let inner = self.fallback.load_acquire_script(tid, r)?;
        Ok(Box::new(DynAcquire {
            pool: Rc::clone(&self.pool),
            logical: self.logical,
            tid,
            phase,
            inner,
            path_out: Rc::clone(&self.path[tid.index()]),
        }))
    }

    fn load_release_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let decision = decision_from(r, "dynamic release decision")?;
        let phase = match r.u8()? {
            0 => RelPhase::Start,
            1 => RelPhase::GlockDone,
            2 => RelPhase::Fallback,
            tag => {
                return Err(SnapError::BadTag {
                    what: "dynamic release phase",
                    tag: u64::from(tag),
                })
            }
        };
        let inner = if r.bool()? {
            Some(self.fallback.load_release_script(tid, r)?)
        } else {
            None
        };
        Ok(Box::new(DynRelease {
            pool: Rc::clone(&self.pool),
            logical: self.logical,
            tid,
            decision,
            phase,
            inner,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench_with_nets;
    use glocks::{GlockNetwork, Topology};
    use glocks_sim_base::Mesh2D;

    #[test]
    fn dynamic_backend_is_correct_with_one_physical_lock() {
        let mesh = Mesh2D::near_square(8);
        let net = GlockNetwork::new(&Topology::flat(mesh), 1);
        let pool = GlockPool::new(vec![net.regs()]);
        let p2 = Rc::clone(&pool);
        let mut nets = [net];
        let out = run_counter_bench_with_nets(
            move |base, n| Box::new(DynamicGlockBackend::new(p2, 0, base, n)) as _,
            8,
            5,
            &mut nets,
        );
        assert_eq!(out.counter_value, 40);
        assert!(pool.is_quiescent());
        // the single hot lock must have run on hardware
        let s = pool.stats();
        assert!(s.hw_acquires > 0, "no hardware acquires: {s:?}");
        assert_eq!(s.spills, 0, "sole lock should never spill: {s:?}");
    }
}
