//! Simple Lock (`test&set`), `test-and-test&set`, and exponential back-off
//! (Section II of the paper).

use crate::layout::slot;
use glocks_cpu::{LockBackend, Script, Step};
use glocks_mem::{MemOp, RmwKind};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, ThreadId};

/// Back-off parameters (Anderson found exponential back-off the most
/// effective delay form).
const BACKOFF_BASE: u64 = 16;
const BACKOFF_CAP: u64 = 1024;

/// The `test&set` family of locks: one boolean flag in one cache line.
pub struct TatasLock {
    flag: Addr,
    /// Spin on plain loads before attempting `test&set`.
    test_first: bool,
    /// Insert exponential delays between attempts.
    backoff: bool,
}

impl TatasLock {
    /// Plain Simple Lock: `test&set` in a tight loop.
    pub fn simple(base: Addr) -> Self {
        TatasLock { flag: slot(base, 0), test_first: false, backoff: false }
    }

    /// `test-and-test&set`: loads hit the local cache while busy-waiting.
    pub fn tatas(base: Addr) -> Self {
        TatasLock { flag: slot(base, 0), test_first: true, backoff: false }
    }

    /// TATAS with capped exponential back-off.
    pub fn with_backoff(base: Addr) -> Self {
        TatasLock { flag: slot(base, 0), test_first: true, backoff: true }
    }
}

enum AcqState {
    /// About to issue the spin load (TATAS) or the `test&set` (Simple).
    Try,
    /// Waiting for the spin load's value.
    Tested,
    /// Waiting for the `test&set`'s old value.
    SetIssued,
    /// Back-off delay issued; retry next.
    BackedOff,
}

struct TatasAcquire {
    flag: Addr,
    test_first: bool,
    backoff: bool,
    delay: u64,
    state: AcqState,
}

impl Script for TatasAcquire {
    fn resume(&mut self, last: u64) -> Step {
        loop {
            match self.state {
                AcqState::Try => {
                    if self.test_first {
                        self.state = AcqState::Tested;
                        return Step::Mem(MemOp::Load(self.flag));
                    }
                    self.state = AcqState::SetIssued;
                    return Step::Mem(MemOp::Rmw(self.flag, RmwKind::TestAndSet));
                }
                AcqState::Tested => {
                    if last == 0 {
                        // Lock appears free: try to grab it.
                        self.state = AcqState::SetIssued;
                        return Step::Mem(MemOp::Rmw(self.flag, RmwKind::TestAndSet));
                    }
                    // Still held: spin on local loads (each one hits the
                    // L1 in S state until the holder's release invalidates).
                    return Step::Mem(MemOp::Load(self.flag));
                }
                AcqState::SetIssued => {
                    if last == 0 {
                        return Step::Done; // we toggled false→true
                    }
                    if self.backoff {
                        let d = self.delay;
                        self.delay = (self.delay * 2).min(BACKOFF_CAP);
                        self.state = AcqState::BackedOff;
                        return Step::Compute(d);
                    }
                    self.state = AcqState::Try;
                    // loop: immediately re-test
                }
                AcqState::BackedOff => {
                    self.state = AcqState::Try;
                }
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.state {
            AcqState::Try => 0,
            AcqState::Tested => 1,
            AcqState::SetIssued => 2,
            AcqState::BackedOff => 3,
        });
        w.u64(self.delay);
        Ok(())
    }
}

struct TatasRelease {
    flag: Addr,
    done: bool,
}

impl Script for TatasRelease {
    fn resume(&mut self, _last: u64) -> Step {
        if self.done {
            Step::Done
        } else {
            self.done = true;
            // Toggle the flag back from true to false.
            Step::Mem(MemOp::Store(self.flag, 0))
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.bool(self.done);
        Ok(())
    }
}

impl LockBackend for TatasLock {
    fn acquire(&self, _tid: ThreadId) -> Box<dyn Script> {
        Box::new(TatasAcquire {
            flag: self.flag,
            test_first: self.test_first,
            backoff: self.backoff,
            delay: BACKOFF_BASE,
            state: AcqState::Try,
        })
    }

    fn release(&self, _tid: ThreadId) -> Box<dyn Script> {
        Box::new(TatasRelease { flag: self.flag, done: false })
    }

    fn name(&self) -> &'static str {
        match (self.test_first, self.backoff) {
            (false, _) => "Simple",
            (true, false) => "TATAS",
            (true, true) => "TATAS-BO",
        }
    }

    // The lock word itself lives in simulated memory (saved with the
    // memory system); the backend carries no dynamic state of its own.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Ok(())
    }

    fn load_state(&self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }

    fn load_acquire_script(
        &self,
        _tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let state = match r.u8()? {
            0 => AcqState::Try,
            1 => AcqState::Tested,
            2 => AcqState::SetIssued,
            3 => AcqState::BackedOff,
            tag => return Err(SnapError::BadTag { what: "tatas acquire state", tag: u64::from(tag) }),
        };
        let delay = r.u64()?;
        Ok(Box::new(TatasAcquire {
            flag: self.flag,
            test_first: self.test_first,
            backoff: self.backoff,
            delay,
            state,
        }))
    }

    fn load_release_script(
        &self,
        _tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        Ok(Box::new(TatasRelease { flag: self.flag, done: r.bool()? }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench;

    #[test]
    fn tatas_provides_mutual_exclusion() {
        let outcome = run_counter_bench(|base, _n| Box::new(TatasLock::tatas(base)) as _, 8, 5);
        assert_eq!(outcome.counter_value, 8 * 5);
    }

    #[test]
    fn simple_lock_works_too() {
        let outcome = run_counter_bench(|base, _n| Box::new(TatasLock::simple(base)) as _, 4, 3);
        assert_eq!(outcome.counter_value, 12);
    }

    #[test]
    fn backoff_variant_is_correct() {
        let outcome =
            run_counter_bench(|base, _n| Box::new(TatasLock::with_backoff(base)) as _, 8, 4);
        assert_eq!(outcome.counter_value, 32);
    }

    #[test]
    fn tatas_spins_locally_vs_simple() {
        let plain = run_counter_bench(|base, _n| Box::new(TatasLock::simple(base)) as _, 8, 4);
        let tatas = run_counter_bench(|base, _n| Box::new(TatasLock::tatas(base)) as _, 8, 4);
        // Simple's blind test&set storm moves the flag line M-to-M between
        // all spinners; TATAS spins on local loads. Compare coherence+reply
        // bytes normalized by wall time (absolute byte counts also depend
        // on run length).
        let plain_rate = plain.coherence_bytes as f64 / plain.cycles as f64;
        let tatas_rate = tatas.coherence_bytes as f64 / tatas.cycles as f64;
        assert!(
            tatas_rate < plain_rate,
            "TATAS byte rate {tatas_rate:.3} !< Simple byte rate {plain_rate:.3}"
        );
    }
}
