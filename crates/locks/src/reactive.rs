//! Reactive Lock (related work \[13\]: Lim & Agarwal, "Reactive
//! Synchronization Algorithms for Multiprocessors") — "a library-based
//! adaptive approach that … switches between Simple Lock and MCS Lock for
//! the low and high contention cases, respectively."
//!
//! Mode decisions use the same safety idea as the dynamic GLock pool: the
//! backend tracks how many acquires are outstanding, and the protocol may
//! only change when the lock is *quiescent* (no acquirer, no holder), so
//! every contender of a critical-section episode uses one protocol and
//! mutual exclusion is preserved across switches. Contention is estimated
//! with an exponentially weighted average of the concurrent-acquirer count
//! sampled at each acquire.

use crate::mcs::McsLock;
use crate::tatas::TatasLock;
use glocks_cpu::{LockBackend, Script, Step};
use glocks_sim_base::{Addr, ThreadId};
use std::cell::Cell;
use std::rc::Rc;

/// Switch to MCS when the average concurrent-acquirer estimate exceeds
/// this, and back to TATAS when it falls below the low-water mark.
const HIGH_WATER: f64 = 3.0;
const LOW_WATER: f64 = 1.5;
/// EWMA smoothing factor.
const ALPHA: f64 = 0.2;

/// The protocol currently backing the lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Tatas,
    Mcs,
}

/// Reactive lock: TATAS under low contention, MCS under high.
pub struct ReactiveLock {
    tatas: TatasLock,
    mcs: McsLock,
    mode: Cell<Mode>,
    /// Acquires outstanding (acquire-start → release-end).
    refs: Cell<u32>,
    /// EWMA of the concurrent-acquirer count.
    estimate: Cell<f64>,
    /// Protocol switches performed (diagnostics).
    switches: Cell<u64>,
    /// Which mode each thread's current acquire used.
    path: Vec<Rc<Cell<Option<Mode>>>>,
}

impl ReactiveLock {
    /// `base` is this lock's private region; the TATAS flag and the MCS
    /// queue live in disjoint parts of it.
    pub fn new(base: Addr, n_threads: usize) -> Self {
        ReactiveLock {
            tatas: TatasLock::tatas(base),
            // Skip a few lines so the two protocols never share a line.
            mcs: McsLock::new(Addr(base.0 + 0x1000), n_threads),
            mode: Cell::new(Mode::Tatas),
            refs: Cell::new(0),
            estimate: Cell::new(0.0),
            switches: Cell::new(0),
            path: (0..n_threads).map(|_| Rc::new(Cell::new(None))).collect(),
        }
    }

    /// Sample contention and (when quiescent) adapt the protocol.
    fn decide(&self) -> Mode {
        let concurrent = self.refs.get() as f64 + 1.0;
        let e = self.estimate.get() * (1.0 - ALPHA) + concurrent * ALPHA;
        self.estimate.set(e);
        if self.refs.get() == 0 {
            // Quiescent: a switch is safe.
            let current = self.mode.get();
            let next = match current {
                Mode::Tatas if e > HIGH_WATER => Mode::Mcs,
                Mode::Mcs if e < LOW_WATER => Mode::Tatas,
                m => m,
            };
            if next != current {
                self.switches.set(self.switches.get() + 1);
                self.mode.set(next);
            }
        }
        self.mode.get()
    }

    pub fn current_mode(&self) -> Mode {
        self.mode.get()
    }

    pub fn switches(&self) -> u64 {
        self.switches.get()
    }
}

/// Wraps the chosen protocol's script and charges a small decision cost.
struct ReactiveScript {
    inner: Box<dyn Script>,
    decided: bool,
}

impl Script for ReactiveScript {
    fn resume(&mut self, last: u64) -> Step {
        if !self.decided {
            self.decided = true;
            // reading the mode word and branching
            return Step::Compute(3);
        }
        self.inner.resume(last)
    }
}

/// Release wrapper that drops the reference count once done.
struct ReactiveRelease {
    inner: Box<dyn Script>,
    refs: Rc<Cell<u32>>,
    done: bool,
}

impl Script for ReactiveRelease {
    fn resume(&mut self, last: u64) -> Step {
        let step = self.inner.resume(last);
        if matches!(step, Step::Done) && !self.done {
            self.done = true;
            self.refs.set(self.refs.get() - 1);
        }
        step
    }
}

/// The backend needs a sharable refcount for the release wrapper.
pub struct ReactiveBackend {
    lock: ReactiveLock,
    refs: Rc<Cell<u32>>,
}

impl ReactiveBackend {
    pub fn new(base: Addr, n_threads: usize) -> Self {
        ReactiveBackend { lock: ReactiveLock::new(base, n_threads), refs: Rc::new(Cell::new(0)) }
    }

    pub fn inner(&self) -> &ReactiveLock {
        &self.lock
    }
}

impl LockBackend for ReactiveBackend {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        // `prior` = acquires already outstanding; a switch is only safe
        // when this acquire is the lone contender (prior == 0).
        let prior = self.refs.get();
        self.refs.set(prior + 1);
        self.lock.refs.set(prior);
        let mode = self.lock.decide();
        self.lock.path[tid.index()].set(Some(mode));
        let inner = match mode {
            Mode::Tatas => self.lock.tatas.acquire(tid),
            Mode::Mcs => self.lock.mcs.acquire(tid),
        };
        Box::new(ReactiveScript { inner, decided: false })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        let mode = self.lock.path[tid.index()]
            .take()
            .expect("release without a recorded acquire mode");
        let inner = match mode {
            Mode::Tatas => self.lock.tatas.release(tid),
            Mode::Mcs => self.lock.mcs.release(tid),
        };
        Box::new(ReactiveRelease { inner, refs: Rc::clone(&self.refs), done: false })
    }

    fn name(&self) -> &'static str {
        "Reactive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench;

    #[test]
    fn reactive_lock_is_correct() {
        let out = run_counter_bench(
            |base, n| Box::new(ReactiveBackend::new(base, n)) as _,
            8,
            5,
        );
        assert_eq!(out.counter_value, 40);
    }

    #[test]
    fn reactive_lock_two_threads() {
        let out = run_counter_bench(
            |base, n| Box::new(ReactiveBackend::new(base, n)) as _,
            2,
            10,
        );
        assert_eq!(out.counter_value, 20);
    }

    #[test]
    fn contended_run_switches_to_mcs() {
        // Drive the backend directly: 8 simultaneous acquirers push the
        // EWMA over the high-water mark; once quiescent, the next acquire
        // must run in MCS mode.
        let b = ReactiveBackend::new(glocks_sim_base::Addr(0x10_000), 8);
        assert_eq!(b.inner().current_mode(), Mode::Tatas);
        for round in 0..4 {
            let _scripts: Vec<_> = (0..8).map(|t| b.acquire(ThreadId(t))).collect();
            for t in 0..8 {
                let mut r = b.release(ThreadId(t));
                // drain the release scripts' bookkeeping without a sim:
                // TATAS/MCS release scripts issue memory steps; we only
                // need the refcount drop, which happens at Done. Resume
                // until Done with fake completions.
                for _ in 0..64 {
                    if matches!(r.resume(0), Step::Done) {
                        break;
                    }
                }
            }
            let _ = round;
        }
        assert_eq!(b.inner().current_mode(), Mode::Mcs, "high contention must switch");
        assert!(b.inner().switches() >= 1);
    }
}
