//! Reactive Lock (related work \[13\]: Lim & Agarwal, "Reactive
//! Synchronization Algorithms for Multiprocessors") — "a library-based
//! adaptive approach that … switches between Simple Lock and MCS Lock for
//! the low and high contention cases, respectively."
//!
//! Mode decisions use the same safety idea as the dynamic GLock pool: the
//! backend tracks how many acquires are outstanding, and the protocol may
//! only change when the lock is *quiescent* (no acquirer, no holder), so
//! every contender of a critical-section episode uses one protocol and
//! mutual exclusion is preserved across switches. Contention is estimated
//! with an exponentially weighted average of the concurrent-acquirer count
//! sampled at each acquire.

use crate::mcs::McsLock;
use crate::tatas::TatasLock;
use glocks_cpu::{LockBackend, Script, Step};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, ThreadId};
use std::cell::Cell;
use std::rc::Rc;

/// Switch to MCS when the average concurrent-acquirer estimate exceeds
/// this, and back to TATAS when it falls below the low-water mark.
const HIGH_WATER: f64 = 3.0;
const LOW_WATER: f64 = 1.5;
/// EWMA smoothing factor.
const ALPHA: f64 = 0.2;

/// The protocol currently backing the lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Tatas,
    Mcs,
}

/// Reactive lock: TATAS under low contention, MCS under high.
pub struct ReactiveLock {
    tatas: TatasLock,
    mcs: McsLock,
    mode: Cell<Mode>,
    /// Acquires outstanding (acquire-start → release-end).
    refs: Cell<u32>,
    /// EWMA of the concurrent-acquirer count.
    estimate: Cell<f64>,
    /// Protocol switches performed (diagnostics).
    switches: Cell<u64>,
    /// Which mode each thread's current acquire used.
    path: Vec<Rc<Cell<Option<Mode>>>>,
}

impl ReactiveLock {
    /// `base` is this lock's private region; the TATAS flag and the MCS
    /// queue live in disjoint parts of it.
    pub fn new(base: Addr, n_threads: usize) -> Self {
        ReactiveLock {
            tatas: TatasLock::tatas(base),
            // Skip a few lines so the two protocols never share a line.
            mcs: McsLock::new(Addr(base.0 + 0x1000), n_threads),
            mode: Cell::new(Mode::Tatas),
            refs: Cell::new(0),
            estimate: Cell::new(0.0),
            switches: Cell::new(0),
            path: (0..n_threads).map(|_| Rc::new(Cell::new(None))).collect(),
        }
    }

    /// Sample contention and (when quiescent) adapt the protocol.
    fn decide(&self) -> Mode {
        let concurrent = self.refs.get() as f64 + 1.0;
        let e = self.estimate.get() * (1.0 - ALPHA) + concurrent * ALPHA;
        self.estimate.set(e);
        if self.refs.get() == 0 {
            // Quiescent: a switch is safe.
            let current = self.mode.get();
            let next = match current {
                Mode::Tatas if e > HIGH_WATER => Mode::Mcs,
                Mode::Mcs if e < LOW_WATER => Mode::Tatas,
                m => m,
            };
            if next != current {
                self.switches.set(self.switches.get() + 1);
                self.mode.set(next);
            }
        }
        self.mode.get()
    }

    pub fn current_mode(&self) -> Mode {
        self.mode.get()
    }

    pub fn switches(&self) -> u64 {
        self.switches.get()
    }
}

fn mode_tag(mode: Mode) -> u8 {
    match mode {
        Mode::Tatas => 0,
        Mode::Mcs => 1,
    }
}

fn mode_from_tag(tag: u8, what: &'static str) -> Result<Mode, SnapError> {
    match tag {
        0 => Ok(Mode::Tatas),
        1 => Ok(Mode::Mcs),
        t => Err(SnapError::BadTag { what, tag: u64::from(t) }),
    }
}

/// Wraps the chosen protocol's script and charges a small decision cost.
/// `mode` records which protocol `inner` belongs to so a snapshot can
/// rebuild it through the right backend.
struct ReactiveScript {
    inner: Box<dyn Script>,
    mode: Mode,
    decided: bool,
}

impl Script for ReactiveScript {
    fn resume(&mut self, last: u64) -> Step {
        if !self.decided {
            self.decided = true;
            // reading the mode word and branching
            return Step::Compute(3);
        }
        self.inner.resume(last)
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(mode_tag(self.mode));
        w.bool(self.decided);
        self.inner.save_state(w)
    }
}

/// Release wrapper that drops the reference count once done.
struct ReactiveRelease {
    inner: Box<dyn Script>,
    mode: Mode,
    refs: Rc<Cell<u32>>,
    done: bool,
}

impl Script for ReactiveRelease {
    fn resume(&mut self, last: u64) -> Step {
        let step = self.inner.resume(last);
        if matches!(step, Step::Done) && !self.done {
            self.done = true;
            self.refs.set(self.refs.get() - 1);
        }
        step
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(mode_tag(self.mode));
        w.bool(self.done);
        self.inner.save_state(w)
    }
}

/// The backend needs a sharable refcount for the release wrapper.
pub struct ReactiveBackend {
    lock: ReactiveLock,
    refs: Rc<Cell<u32>>,
}

impl ReactiveBackend {
    pub fn new(base: Addr, n_threads: usize) -> Self {
        ReactiveBackend { lock: ReactiveLock::new(base, n_threads), refs: Rc::new(Cell::new(0)) }
    }

    pub fn inner(&self) -> &ReactiveLock {
        &self.lock
    }
}

impl LockBackend for ReactiveBackend {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        // `prior` = acquires already outstanding; a switch is only safe
        // when this acquire is the lone contender (prior == 0).
        let prior = self.refs.get();
        self.refs.set(prior + 1);
        self.lock.refs.set(prior);
        let mode = self.lock.decide();
        self.lock.path[tid.index()].set(Some(mode));
        let inner = match mode {
            Mode::Tatas => self.lock.tatas.acquire(tid),
            Mode::Mcs => self.lock.mcs.acquire(tid),
        };
        Box::new(ReactiveScript { inner, mode, decided: false })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        let mode = self.lock.path[tid.index()]
            .take()
            .expect("release without a recorded acquire mode");
        let inner = match mode {
            Mode::Tatas => self.lock.tatas.release(tid),
            Mode::Mcs => self.lock.mcs.release(tid),
        };
        Box::new(ReactiveRelease { inner, mode, refs: Rc::clone(&self.refs), done: false })
    }

    fn name(&self) -> &'static str {
        "Reactive"
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(mode_tag(self.lock.mode.get()));
        w.u32(self.lock.refs.get());
        w.f64(self.lock.estimate.get());
        w.u64(self.lock.switches.get());
        w.usize(self.lock.path.len());
        for cell in &self.lock.path {
            match cell.get() {
                None => w.u8(0),
                Some(m) => w.u8(1 + mode_tag(m)),
            }
        }
        w.u32(self.refs.get());
        Ok(())
    }

    fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.lock.mode.set(mode_from_tag(r.u8()?, "reactive mode")?);
        self.lock.refs.set(r.u32()?);
        self.lock.estimate.set(r.f64()?);
        self.lock.switches.set(r.u64()?);
        if r.usize()? != self.lock.path.len() {
            return Err(SnapError::Corrupt { what: "reactive lock thread count" });
        }
        for cell in &self.lock.path {
            cell.set(match r.u8()? {
                0 => None,
                t => Some(mode_from_tag(t - 1, "reactive path mode")?),
            });
        }
        self.refs.set(r.u32()?);
        Ok(())
    }

    fn load_acquire_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let mode = mode_from_tag(r.u8()?, "reactive acquire mode")?;
        let decided = r.bool()?;
        let inner = match mode {
            Mode::Tatas => self.lock.tatas.load_acquire_script(tid, r)?,
            Mode::Mcs => self.lock.mcs.load_acquire_script(tid, r)?,
        };
        Ok(Box::new(ReactiveScript { inner, mode, decided }))
    }

    fn load_release_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let mode = mode_from_tag(r.u8()?, "reactive release mode")?;
        let done = r.bool()?;
        let inner = match mode {
            Mode::Tatas => self.lock.tatas.load_release_script(tid, r)?,
            Mode::Mcs => self.lock.mcs.load_release_script(tid, r)?,
        };
        Ok(Box::new(ReactiveRelease { inner, mode, refs: Rc::clone(&self.refs), done }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench;

    #[test]
    fn reactive_lock_is_correct() {
        let out = run_counter_bench(
            |base, n| Box::new(ReactiveBackend::new(base, n)) as _,
            8,
            5,
        );
        assert_eq!(out.counter_value, 40);
    }

    #[test]
    fn reactive_lock_two_threads() {
        let out = run_counter_bench(
            |base, n| Box::new(ReactiveBackend::new(base, n)) as _,
            2,
            10,
        );
        assert_eq!(out.counter_value, 20);
    }

    #[test]
    fn contended_run_switches_to_mcs() {
        // Drive the backend directly: 8 simultaneous acquirers push the
        // EWMA over the high-water mark; once quiescent, the next acquire
        // must run in MCS mode.
        let b = ReactiveBackend::new(glocks_sim_base::Addr(0x10_000), 8);
        assert_eq!(b.inner().current_mode(), Mode::Tatas);
        for round in 0..4 {
            let _scripts: Vec<_> = (0..8).map(|t| b.acquire(ThreadId(t))).collect();
            for t in 0..8 {
                let mut r = b.release(ThreadId(t));
                // drain the release scripts' bookkeeping without a sim:
                // TATAS/MCS release scripts issue memory steps; we only
                // need the refcount drop, which happens at Done. Resume
                // until Done with fake completions.
                for _ in 0..64 {
                    if matches!(r.resume(0), Step::Done) {
                        break;
                    }
                }
            }
            let _ = round;
        }
        assert_eq!(b.inner().current_mode(), Mode::Mcs, "high contention must switch");
        assert!(b.inner().switches() >= 1);
    }

    /// Snapshot the lock just after a protocol switch, with an acquire and
    /// a release in flight under the *new* (MCS) protocol, and restore into
    /// a fresh backend that starts in its initial TATAS mode. The restored
    /// backend must come back in MCS mode with the EWMA estimate and switch
    /// count intact, the scripts must decode through the protocol recorded
    /// in the snapshot (not the backend's construction-time mode), and
    /// everything must re-encode byte-identically.
    #[test]
    fn mid_switch_scripts_round_trip_through_a_snapshot() {
        use glocks_sim_base::snap::{SnapReader, SnapWriter};
        let base = glocks_sim_base::Addr(0x10_000);

        let b = ReactiveBackend::new(base, 8);
        // Pump contention until the protocol switches to MCS (same drive
        // as `contended_run_switches_to_mcs`).
        let mut rounds = 0;
        while b.inner().current_mode() == Mode::Tatas {
            rounds += 1;
            assert!(rounds < 16, "contention must push the EWMA over the high-water mark");
            let _scripts: Vec<_> = (0..8).map(|t| b.acquire(ThreadId(t))).collect();
            for t in 0..8 {
                let mut r = b.release(ThreadId(t));
                for _ in 0..64 {
                    if matches!(r.resume(0), Step::Done) {
                        break;
                    }
                }
            }
        }
        assert_eq!(b.inner().current_mode(), Mode::Mcs);

        // Thread 3 runs a full MCS tenure and leaves its release half-done;
        // thread 2 has an MCS acquire in flight past the decision branch.
        let mut a3 = b.acquire(ThreadId(3));
        for _ in 0..64 {
            if matches!(a3.resume(0), Step::Done) {
                break;
            }
        }
        let mut rel3 = b.release(ThreadId(3));
        assert!(!matches!(rel3.resume(0), Step::Done), "release must be mid-flight");
        let mut s2 = b.acquire(ThreadId(2));
        assert_eq!(s2.resume(0), Step::Compute(3)); // the mode-decision branch
        assert!(matches!(s2.resume(0), Step::Mem(_))); // first MCS queue op

        let mut w = SnapWriter::new();
        b.save_state(&mut w).unwrap();
        s2.save_state(&mut w).unwrap();
        rel3.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();

        // A fresh twin starts in TATAS mode; the snapshot must carry the
        // switched protocol over.
        let b2 = ReactiveBackend::new(base, 8);
        assert_eq!(b2.inner().current_mode(), Mode::Tatas);
        let mut r = SnapReader::new(&bytes);
        b2.load_state(&mut r).unwrap();
        let mut s2r = b2.load_acquire_script(ThreadId(2), &mut r).unwrap();
        let mut rel3r = b2.load_release_script(ThreadId(3), &mut r).unwrap();
        assert_eq!(r.remaining(), 0, "decode must consume exactly what encode wrote");
        assert_eq!(b2.inner().current_mode(), Mode::Mcs);
        assert_eq!(b2.inner().switches(), b.inner().switches());
        assert_eq!(b2.inner().estimate.get(), b.inner().estimate.get());
        assert_eq!(b2.lock.path[2].get(), Some(Mode::Mcs));
        assert_eq!(b2.refs.get(), b.refs.get());

        let mut w2 = SnapWriter::new();
        b2.save_state(&mut w2).unwrap();
        s2r.save_state(&mut w2).unwrap();
        rel3r.save_state(&mut w2).unwrap();
        assert_eq!(w2.into_bytes(), bytes, "restored state must re-encode identically");

        // Behavior parity, step by step with the same spoofed values.
        assert_eq!(s2r.resume(0), s2.resume(0));
        assert_eq!(rel3r.resume(0), rel3.resume(0));
    }
}
