//! Core-side driver of the G-line barrier network (reference \[22\], the
//! authors' companion mechanism): one register write to signal arrival,
//! then a busy-wait on the same register — the barrier twin of Figure 5's
//! `GL_Lock`.

use glocks::barrier::BarrierRegs;
use glocks_cpu::{BarrierBackend, Script, Step};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::ThreadId;
use std::rc::Rc;

/// Hardware barrier backend over a [`glocks::GBarrierNetwork`]'s registers.
pub struct GBarrierBackend {
    regs: Rc<BarrierRegs>,
}

impl GBarrierBackend {
    pub fn new(regs: Rc<BarrierRegs>) -> Self {
        GBarrierBackend { regs }
    }
}

enum Phase {
    Arrive,
    Spin,
}

struct GBarrierWait {
    regs: Rc<BarrierRegs>,
    core: usize,
    phase: Phase,
}

impl Script for GBarrierWait {
    fn resume(&mut self, _last: u64) -> Step {
        match self.phase {
            Phase::Arrive => {
                self.regs.set_arrive(self.core);
                self.phase = Phase::Spin;
                // mov 1, barrier_arrive
                Step::Compute(1)
            }
            Phase::Spin => {
                if self.regs.waiting(self.core) {
                    // bnz barrier_arrive, loop
                    Step::Compute(1)
                } else {
                    Step::Done
                }
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.phase {
            Phase::Arrive => 0,
            Phase::Spin => 1,
        });
        Ok(())
    }

    /// Spinning on `barrier_arrive` is inert until the barrier network
    /// (which watches the arrive registers and reports its own wakes)
    /// releases this core's episode.
    fn idle_spin(&self) -> bool {
        matches!(self.phase, Phase::Spin) && self.regs.waiting(self.core)
    }
}

impl BarrierBackend for GBarrierBackend {
    fn wait(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(GBarrierWait {
            regs: Rc::clone(&self.regs),
            core: tid.index(),
            phase: Phase::Arrive,
        })
    }

    // Registers are shared structure saved by the owning GBarrierNetwork.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Ok(())
    }

    fn load_state(&self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }

    fn load_wait_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let phase = match r.u8()? {
            0 => Phase::Arrive,
            1 => Phase::Spin,
            tag => {
                return Err(SnapError::BadTag { what: "gbarrier wait phase", tag: u64::from(tag) })
            }
        };
        Ok(Box::new(GBarrierWait { regs: Rc::clone(&self.regs), core: tid.index(), phase }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glocks::{GBarrierNetwork, Topology};
    use glocks_cpu::{Action, Backends, Core, LockBackend, LockTracker, Workload};
    use glocks_mem::MemorySystem;
    use glocks_sim_base::{CmpConfig, CoreId, Mesh2D};
    use std::cell::RefCell;

    /// Same epoch-checking workload as the software-barrier tests.
    struct EpochChecker {
        tid: usize,
        epochs: Rc<RefCell<Vec<u64>>>,
        rounds: u64,
        state: u8,
    }

    impl Workload for EpochChecker {
        fn next(&mut self, _last: u64) -> Action {
            match self.state {
                0 => {
                    if self.rounds == 0 {
                        return Action::Done;
                    }
                    self.epochs.borrow_mut()[self.tid] += 1;
                    self.state = 1;
                    Action::Barrier
                }
                _ => {
                    let my = self.epochs.borrow()[self.tid];
                    for (t, &e) in self.epochs.borrow().iter().enumerate() {
                        assert!(e >= my, "thread {t} behind after a barrier");
                    }
                    self.rounds -= 1;
                    self.state = 0;
                    Action::Compute(5 + (self.tid as u64 * 13) % 37)
                }
            }
        }
    }

    #[test]
    fn hardware_barrier_synchronizes_and_is_fast() {
        let threads = 9;
        let cfg = CmpConfig::paper_baseline().with_cores(threads);
        let mut mem = MemorySystem::new(&cfg);
        let mut net = GBarrierNetwork::new(&Topology::flat(Mesh2D::near_square(threads)), 1);
        let backend = GBarrierBackend::new(net.regs());
        let locks: Vec<Box<dyn LockBackend>> = Vec::new();
        let backends = Backends { locks: &locks, barrier: &backend };
        let mut tracker = LockTracker::new(0, threads);
        let epochs = Rc::new(RefCell::new(vec![0u64; threads]));
        let rounds = 6;
        let mut cores: Vec<Core> = (0..threads)
            .map(|i| {
                Core::new(
                    CoreId(i as u16),
                    cfg.issue_width,
                    Box::new(EpochChecker {
                        tid: i,
                        epochs: Rc::clone(&epochs),
                        rounds,
                        state: 0,
                    }),
                )
            })
            .collect();
        let mut now = 0u64;
        loop {
            let mut all_done = true;
            for c in &mut cores {
                c.tick(now, &mut mem, &backends, &mut tracker);
                all_done &= c.is_finished();
            }
            mem.tick(now);
            net.tick(now);
            if all_done {
                break;
            }
            now += 1;
            assert!(now < 100_000, "hardware barrier hung");
        }
        assert_eq!(net.episodes(), rounds);
        assert!(epochs.borrow().iter().all(|&e| e == rounds));
        // 6 episodes of a handful of cycles each plus jittered compute —
        // far faster than a memory-based barrier would allow.
        assert!(now < 500, "took {now} cycles");
    }
}
