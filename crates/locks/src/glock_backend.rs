//! The core-side driver of a hardware GLock — Figure 5 of the paper:
//!
//! ```text
//! GL_Lock()  { mov 1, lock_req ; loop: bnz lock_req, loop }
//! GL_Unlock(){ mov 1, lock_rel }
//! ```
//!
//! The scripts only touch the per-core register pair; all synchronization
//! happens in the dedicated G-line network, which the simulator ticks as a
//! hardware device. No memory operation is ever issued, so lock
//! synchronization contributes **zero** traffic to the main data network.

use glocks::GlockRegisters;
use glocks_cpu::{LockBackend, Script, Step};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::ThreadId;
use std::rc::Rc;

/// Backend bridging workload threads to one GLock's register file.
pub struct GlockBackend {
    regs: Rc<GlockRegisters>,
}

impl GlockBackend {
    pub fn new(regs: Rc<GlockRegisters>) -> Self {
        GlockBackend { regs }
    }
}

enum AcqPhase {
    SetReq,
    Spin,
}

/// `GL_Lock`: one register write, then busy-wait until the local
/// controller resets `lock_req` (the grant).
struct GlockAcquire {
    regs: Rc<GlockRegisters>,
    core: usize,
    phase: AcqPhase,
}

impl Script for GlockAcquire {
    fn resume(&mut self, _last: u64) -> Step {
        match self.phase {
            AcqPhase::SetReq => {
                self.regs.set_req(self.core);
                self.phase = AcqPhase::Spin;
                // mov 1, lock_req
                Step::Compute(1)
            }
            AcqPhase::Spin => {
                if self.regs.req_pending(self.core) {
                    // bnz lock_req, loop
                    Step::Compute(1)
                } else {
                    Step::Done
                }
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.phase {
            AcqPhase::SetReq => 0,
            AcqPhase::Spin => 1,
        });
        Ok(())
    }

    /// The busy-wait loop is inert while `lock_req` is still raised; the
    /// local GLock controller (whose network reports its own wakes) is the
    /// only agent that resets it.
    fn idle_spin(&self) -> bool {
        matches!(self.phase, AcqPhase::Spin) && self.regs.req_pending(self.core)
    }
}

/// `GL_Unlock`: a single register write; the controller propagates REL.
struct GlockRelease {
    regs: Rc<GlockRegisters>,
    core: usize,
    done: bool,
}

impl Script for GlockRelease {
    fn resume(&mut self, _last: u64) -> Step {
        if self.done {
            Step::Done
        } else {
            self.done = true;
            self.regs.set_rel(self.core);
            // mov 1, lock_rel
            Step::Compute(1)
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.bool(self.done);
        Ok(())
    }
}

impl LockBackend for GlockBackend {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(GlockAcquire {
            regs: Rc::clone(&self.regs),
            core: tid.index(),
            phase: AcqPhase::SetReq,
        })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(GlockRelease {
            regs: Rc::clone(&self.regs),
            core: tid.index(),
            done: false,
        })
    }

    fn name(&self) -> &'static str {
        "GLock"
    }

    // The register file is shared structure saved by the owning GlockNetwork.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Ok(())
    }

    fn load_state(&self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }

    fn load_acquire_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let phase = match r.u8()? {
            0 => AcqPhase::SetReq,
            1 => AcqPhase::Spin,
            tag => {
                return Err(SnapError::BadTag { what: "glock acquire phase", tag: u64::from(tag) })
            }
        };
        Ok(Box::new(GlockAcquire { regs: Rc::clone(&self.regs), core: tid.index(), phase }))
    }

    fn load_release_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        Ok(Box::new(GlockRelease {
            regs: Rc::clone(&self.regs),
            core: tid.index(),
            done: r.bool()?,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench_with_nets;
    use glocks::{GlockNetwork, Topology};
    use glocks_sim_base::Mesh2D;

    fn run(threads: usize, iters: u64) -> crate::testkit::BenchOutcome {
        let mesh = Mesh2D::near_square(threads);
        let net = GlockNetwork::new(&Topology::flat(mesh), 1);
        let regs = net.regs();
        let mut nets = [net];
        let out = run_counter_bench_with_nets(
            move |_base, _n| Box::new(GlockBackend::new(regs)) as _,
            threads,
            iters,
            &mut nets,
        );
        let [net] = nets;
        assert!(net.is_idle(), "G-line network must drain");
        assert_eq!(net.stats().grants, threads as u64 * iters);
        out
    }

    #[test]
    fn glock_is_correct_under_full_contention() {
        let out = run(32, 3);
        assert_eq!(out.counter_value, 96);
    }

    #[test]
    fn glock_is_round_robin_fair() {
        let out = run(8, 3);
        // Under saturation every round grants each core exactly once.
        for r in 0..3 {
            let mut round: Vec<u16> = out.grant_order[r * 8..(r + 1) * 8]
                .iter()
                .map(|t| t.0)
                .collect();
            round.sort_unstable();
            assert_eq!(round, (0..8).collect::<Vec<_>>(), "round {r} unfair");
        }
    }

    #[test]
    fn glock_beats_mcs_on_lock_time() {
        let glock = run(8, 4);
        let mcs = run_counter_bench_with_nets(
            |base, n| Box::new(crate::mcs::McsLock::new(base, n)) as _,
            8,
            4,
            &mut [],
        );
        assert!(
            glock.lock_cycles_total < mcs.lock_cycles_total / 2,
            "GLock lock cycles {} should be well under MCS's {}",
            glock.lock_cycles_total,
            mcs.lock_cycles_total
        );
        assert!(
            glock.cycles < mcs.cycles,
            "GLock run ({} cy) should beat MCS ({} cy)",
            glock.cycles,
            mcs.cycles
        );
    }

    #[test]
    fn glock_generates_no_lock_traffic() {
        let glock = run(8, 4);
        let mcs = run_counter_bench_with_nets(
            |base, n| Box::new(crate::mcs::McsLock::new(base, n)) as _,
            8,
            4,
            &mut [],
        );
        // Only the shared counter's migration remains on the data network.
        assert!(
            glock.total_bytes < mcs.total_bytes / 2,
            "GLock bytes {} !< half of MCS bytes {}",
            glock.total_bytes,
            mcs.total_bytes
        );
    }
}
