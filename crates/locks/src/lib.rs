//! Lock and barrier implementations for the simulated CMP.
//!
//! Software algorithms (Section II of the paper) are expressed as scripts
//! of simulated memory operations, so their cache-coherence traffic and
//! latency *emerge* from the protocol simulation rather than being modeled:
//!
//! * [`tatas`] — Simple Lock (`test&set`), the `test-and-test&set`
//!   optimization, and exponential back-off;
//! * [`ticket`] — Ticket Lock (`fetch&increment` + now-serving counter);
//! * [`anderson`] — Array-based Lock (one spin slot per core);
//! * [`mcs`] — MCS Lock, "the most efficient software algorithm for lock
//!   synchronization" and the paper's main baseline;
//! * [`ideal`] — the zero-latency, zero-traffic ideal lock of Figure 1;
//! * [`glock_backend`] — the core-side driver of the hardware GLock
//!   (Figure 5: a register write plus a busy-wait on `lock_req`);
//! * [`failover`] — the GLock driver wrapped with permanent-fault
//!   detection and failover onto TATAS (survivability, beyond the paper);
//! * [`barrier`] — a sense-versioned combining-tree barrier (the
//!   applications' library barrier: at most two threads meet at any node).
//!
//! All backends implement [`glocks_cpu::LockBackend`] /
//! [`glocks_cpu::BarrierBackend`] and are manufactured by
//! [`LockAlgorithm::make_backend`].

pub mod anderson;
pub mod barrier;
pub mod dynamic;
pub mod failover;
pub mod gbarrier_backend;
pub mod glock_backend;
pub mod ideal;
pub mod layout;
pub mod mcs;
pub mod mplock_backend;
pub mod reactive;
pub mod tatas;
pub mod ticket;

#[cfg(test)]
pub(crate) mod testkit;

use glocks::GlockRegisters;
use glocks_cpu::LockBackend;
use glocks_mem::mplock::MpFabric;
use glocks_sim_base::Addr;
use std::rc::Rc;

/// The lock algorithms available to workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockAlgorithm {
    /// `test&set` in a loop (Simple Lock).
    Simple,
    /// `test-and-test&set`: spin on local loads, `test&set` only when free.
    Tatas,
    /// TATAS with capped exponential back-off.
    TatasBackoff,
    /// Ticket lock.
    Ticket,
    /// Anderson's array-based queue lock.
    Anderson,
    /// Mellor-Crummey & Scott queue lock (the paper's baseline for
    /// highly-contended locks).
    Mcs,
    /// The ideal lock of Figure 1: 1-cycle acquire/release, no traffic.
    Ideal,
    /// The hardware GLock (requires a G-line network's register file).
    Glock,
    /// MP-Locks (related work \[14\]): message-passing lock managers over
    /// the main data network (requires the memory system's NIC fabric).
    MpLock,
    /// Synchronization-operation Buffer (related work \[16\]): the same
    /// message protocol served by dedicated queueing *hardware* at the
    /// home tile (2-cycle processing instead of a software manager).
    SyncBuf,
    /// Dynamically-shared GLocks (Section V future work): all locks share
    /// the CMP's few physical G-line networks through a runtime binding
    /// table, spilling to TATAS when none is free. Constructed by the
    /// simulation runner (needs the shared [`glocks::GlockPool`]).
    DynamicGlock,
    /// Reactive Lock (related work \[13\]): adapts between Simple Lock and
    /// MCS with the observed contention level.
    Reactive,
}

impl LockAlgorithm {
    pub fn name(self) -> &'static str {
        match self {
            LockAlgorithm::Simple => "Simple",
            LockAlgorithm::Tatas => "TATAS",
            LockAlgorithm::TatasBackoff => "TATAS-BO",
            LockAlgorithm::Ticket => "Ticket",
            LockAlgorithm::Anderson => "Anderson",
            LockAlgorithm::Mcs => "MCS",
            LockAlgorithm::Ideal => "Ideal",
            LockAlgorithm::Glock => "GLock",
            LockAlgorithm::MpLock => "MP-Lock",
            LockAlgorithm::SyncBuf => "SB",
            LockAlgorithm::DynamicGlock => "DynGLock",
            LockAlgorithm::Reactive => "Reactive",
        }
    }

    /// Every algorithm, in the order the paper's figures list them.
    pub const ALL: [LockAlgorithm; 12] = [
        LockAlgorithm::Simple,
        LockAlgorithm::Tatas,
        LockAlgorithm::TatasBackoff,
        LockAlgorithm::Ticket,
        LockAlgorithm::Anderson,
        LockAlgorithm::Mcs,
        LockAlgorithm::Ideal,
        LockAlgorithm::Glock,
        LockAlgorithm::MpLock,
        LockAlgorithm::SyncBuf,
        LockAlgorithm::DynamicGlock,
        LockAlgorithm::Reactive,
    ];

    /// Parse a [`LockAlgorithm::name`] label back into the algorithm,
    /// case-insensitively and ignoring `-`/`_` (so `glock`, `tatas-bo`,
    /// `TATAS_BO` and `mp-lock` all resolve). Returns `None` for unknown
    /// labels — CLI arms turn that into a usage error naming the valid set.
    pub fn parse(label: &str) -> Option<LockAlgorithm> {
        let canon = |s: &str| {
            s.chars()
                .filter(|c| *c != '-' && *c != '_')
                .map(|c| c.to_ascii_lowercase())
                .collect::<String>()
        };
        let want = canon(label);
        LockAlgorithm::ALL.into_iter().find(|a| canon(a.name()) == want)
    }

    /// Manufacture a backend. `base` is the start of this lock's private
    /// region of simulated memory (unused by `Ideal`/`Glock`/`MpLock`);
    /// `glock_regs` is required for [`LockAlgorithm::Glock`], and
    /// `mp` (the NIC fabric plus this lock's MP-lock id) for
    /// [`LockAlgorithm::MpLock`].
    pub fn make_backend(
        self,
        base: Addr,
        n_threads: usize,
        glock_regs: Option<Rc<GlockRegisters>>,
        mp: Option<(Rc<MpFabric>, u16)>,
    ) -> Box<dyn LockBackend> {
        match self {
            LockAlgorithm::Simple => Box::new(tatas::TatasLock::simple(base)),
            LockAlgorithm::Tatas => Box::new(tatas::TatasLock::tatas(base)),
            LockAlgorithm::TatasBackoff => Box::new(tatas::TatasLock::with_backoff(base)),
            LockAlgorithm::Ticket => Box::new(ticket::TicketLock::new(base, n_threads)),
            LockAlgorithm::Anderson => Box::new(anderson::AndersonLock::new(base, n_threads)),
            LockAlgorithm::Mcs => Box::new(mcs::McsLock::new(base, n_threads)),
            LockAlgorithm::Ideal => Box::new(ideal::IdealLock::new()),
            LockAlgorithm::Glock => Box::new(glock_backend::GlockBackend::new(
                glock_regs.expect("GLock backend needs a G-line network register file"),
            )),
            LockAlgorithm::MpLock | LockAlgorithm::SyncBuf => {
                let (fabric, id) = mp.expect("MP-Lock backend needs the NIC fabric");
                Box::new(mplock_backend::MpLockBackend::new(fabric, id))
            }
            LockAlgorithm::DynamicGlock => {
                unreachable!("DynamicGlock backends are built by the simulation runner")
            }
            LockAlgorithm::Reactive => {
                Box::new(reactive::ReactiveBackend::new(base, n_threads))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(LockAlgorithm::Mcs.name(), "MCS");
        assert_eq!(LockAlgorithm::Glock.name(), "GLock");
        assert_eq!(LockAlgorithm::Tatas.name(), "TATAS");
        assert_eq!(LockAlgorithm::MpLock.name(), "MP-Lock");
        assert_eq!(LockAlgorithm::SyncBuf.name(), "SB");
        assert_eq!(LockAlgorithm::DynamicGlock.name(), "DynGLock");
        assert_eq!(LockAlgorithm::Reactive.name(), "Reactive");
    }

    #[test]
    fn parse_round_trips_every_label() {
        for a in LockAlgorithm::ALL {
            assert_eq!(LockAlgorithm::parse(a.name()), Some(a), "{}", a.name());
        }
        assert_eq!(LockAlgorithm::parse("glock"), Some(LockAlgorithm::Glock));
        assert_eq!(LockAlgorithm::parse("tatas_bo"), Some(LockAlgorithm::TatasBackoff));
        assert_eq!(LockAlgorithm::parse("mplock"), Some(LockAlgorithm::MpLock));
        assert_eq!(LockAlgorithm::parse("no-such-lock"), None);
    }

    #[test]
    #[should_panic(expected = "register file")]
    fn glock_requires_registers() {
        let _ = LockAlgorithm::Glock.make_backend(Addr(0), 4, None, None);
    }

    #[test]
    #[should_panic(expected = "NIC fabric")]
    fn mp_lock_requires_fabric() {
        let _ = LockAlgorithm::MpLock.make_backend(Addr(0), 4, None, None);
    }
}
