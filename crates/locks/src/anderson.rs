//! Anderson's Array-based queue lock: "just replaces the now-serving
//! counter by an array of locations" (Section II). Each thread spins on its
//! own slot, in its own cache line.

use crate::layout::slot;
use glocks_cpu::{LockBackend, Script, Step};
use glocks_mem::{MemOp, RmwKind};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, ThreadId};
use std::cell::Cell;
use std::rc::Rc;

/// Array-based lock: a tail counter plus `n` spin slots.
///
/// Layout: slot 0 = tail counter; slots 1..=n = the `has_lock` array.
/// Initialization: `has_lock\[0\] = 1` (performed lazily through the
/// convention that slot values hold *generation counts*: a slot is open for
/// round `r` when its value is ≥ r+1; see below).
pub struct AndersonLock {
    base: Addr,
    n: u64,
    my_index: Vec<Rc<Cell<u64>>>,
}

impl AndersonLock {
    pub fn new(base: Addr, n_threads: usize) -> Self {
        AndersonLock {
            base,
            n: n_threads as u64,
            my_index: (0..n_threads).map(|_| Rc::new(Cell::new(0))).collect(),
        }
    }

    fn tail(&self) -> Addr {
        slot(self.base, 0)
    }

    fn slot_addr(&self, i: u64) -> Addr {
        slot(self.base, 1 + i)
    }
}

enum AcqState {
    TakeIndex,
    GotIndex,
    Spinning,
}

/// Generation trick: the classic boolean `has_lock` array needs
/// `has_lock\[0\]` pre-set and per-round resets that race under wraparound.
/// Instead each slot stores the number of times it has been *opened*;
/// ticket `t` (slot `t mod n`, round `t div n`) may enter when its slot's
/// open-count is ≥ `round + 1`, with slot 0 implicitly open for round 0
/// (count ≥ 0 ⇒ the very first ticket enters immediately).
struct AndersonAcquire {
    tail: Addr,
    n: u64,
    base: Addr,
    state: AcqState,
    my_index: Rc<Cell<u64>>,
    needed: u64,
    spin_addr: Addr,
}

impl Script for AndersonAcquire {
    fn resume(&mut self, last: u64) -> Step {
        match self.state {
            AcqState::TakeIndex => {
                self.state = AcqState::GotIndex;
                Step::Mem(MemOp::Rmw(self.tail, RmwKind::FetchAdd(1)))
            }
            AcqState::GotIndex => {
                let ticket = last;
                self.my_index.set(ticket);
                let index = ticket % self.n;
                let round = ticket / self.n;
                // Ticket 0 holds the lock without waiting.
                if ticket == 0 {
                    return Step::Done;
                }
                self.needed = if index == 0 { round } else { round + 1 };
                self.spin_addr = slot(self.base, 1 + index);
                self.state = AcqState::Spinning;
                Step::Mem(MemOp::Load(self.spin_addr))
            }
            AcqState::Spinning => {
                if last >= self.needed {
                    Step::Done
                } else {
                    Step::Mem(MemOp::Load(self.spin_addr))
                }
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.state {
            AcqState::TakeIndex => 0,
            AcqState::GotIndex => 1,
            AcqState::Spinning => 2,
        });
        w.u64(self.needed);
        w.u64(self.spin_addr.0);
        Ok(())
    }
}

enum RelState {
    Bump(Addr),
    Finished,
}

/// Release: open the successor's slot by incrementing its open-count.
struct AndersonRelease {
    state: RelState,
}

impl Script for AndersonRelease {
    fn resume(&mut self, _last: u64) -> Step {
        match std::mem::replace(&mut self.state, RelState::Finished) {
            RelState::Bump(addr) => Step::Mem(MemOp::Rmw(addr, RmwKind::FetchAdd(1))),
            RelState::Finished => Step::Done,
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self.state {
            RelState::Bump(addr) => {
                w.u8(0);
                w.u64(addr.0);
            }
            RelState::Finished => w.u8(1),
        }
        Ok(())
    }
}

impl LockBackend for AndersonLock {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(AndersonAcquire {
            tail: self.tail(),
            n: self.n,
            base: self.base,
            state: AcqState::TakeIndex,
            my_index: Rc::clone(&self.my_index[tid.index()]),
            needed: 0,
            spin_addr: Addr(0),
        })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        let ticket = self.my_index[tid.index()].get();
        let next = (ticket + 1) % self.n;
        Box::new(AndersonRelease {
            state: RelState::Bump(self.slot_addr(next)),
        })
    }

    fn name(&self) -> &'static str {
        "Anderson"
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.my_index.len());
        for t in &self.my_index {
            w.u64(t.get());
        }
        Ok(())
    }

    fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.my_index.len() {
            return Err(SnapError::Corrupt { what: "anderson lock thread count" });
        }
        for t in &self.my_index {
            t.set(r.u64()?);
        }
        Ok(())
    }

    fn load_acquire_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let state = match r.u8()? {
            0 => AcqState::TakeIndex,
            1 => AcqState::GotIndex,
            2 => AcqState::Spinning,
            tag => {
                return Err(SnapError::BadTag {
                    what: "anderson acquire state",
                    tag: u64::from(tag),
                })
            }
        };
        let needed = r.u64()?;
        let spin_addr = Addr(r.u64()?);
        Ok(Box::new(AndersonAcquire {
            tail: self.tail(),
            n: self.n,
            base: self.base,
            state,
            my_index: Rc::clone(&self.my_index[tid.index()]),
            needed,
            spin_addr,
        }))
    }

    fn load_release_script(
        &self,
        _tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let state = match r.u8()? {
            0 => RelState::Bump(Addr(r.u64()?)),
            1 => RelState::Finished,
            tag => {
                return Err(SnapError::BadTag {
                    what: "anderson release state",
                    tag: u64::from(tag),
                })
            }
        };
        Ok(Box::new(AndersonRelease { state }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench;

    #[test]
    fn anderson_is_correct() {
        let outcome = run_counter_bench(|base, n| Box::new(AndersonLock::new(base, n)) as _, 8, 5);
        assert_eq!(outcome.counter_value, 40);
    }

    #[test]
    fn anderson_is_fifo() {
        let outcome = run_counter_bench(|base, n| Box::new(AndersonLock::new(base, n)) as _, 8, 3);
        let g = &outcome.grant_order;
        let first: Vec<ThreadId> = g[..8].to_vec();
        for r in 1..3 {
            assert_eq!(&g[r * 8..(r + 1) * 8], first.as_slice(), "round {r}");
        }
    }

    #[test]
    fn wraparound_many_rounds() {
        // More rounds than slots: the generation counters must keep the
        // array consistent across wraparound.
        let outcome = run_counter_bench(|base, n| Box::new(AndersonLock::new(base, n)) as _, 4, 12);
        assert_eq!(outcome.counter_value, 48);
    }

    #[test]
    fn single_thread_fast_path() {
        let outcome = run_counter_bench(|base, n| Box::new(AndersonLock::new(base, n)) as _, 1, 5);
        assert_eq!(outcome.counter_value, 5);
    }
}
