//! GLock→software failover (survivability layer, beyond the paper).
//!
//! [`FailoverGlockBackend`] wraps the hardware GLock driver of
//! [`crate::glock_backend`] with a permanent-fault escape hatch. While the
//! G-line network is healthy its scripts are **step-identical** to
//! [`crate::glock_backend::GlockBackend`] — same register writes, same
//! one-cycle spin cadence — so fault-free timing, signal counts and energy
//! stay paper-exact. When the network's [`NetworkHealth`] flips to dead
//! (failure detection: exhausted retransmission budgets), every thread
//! converges onto a TATAS software fallback in the lock's private memory
//! region:
//!
//! 1. **Quarantine.** A dead network never delivers another signal, so the
//!    grant state frozen in the register file at the verdict cycle is
//!    final: a spinning thread whose `lock_req` is still set will *never*
//!    be granted; one whose flag was reset *was* granted and owns the
//!    critical section.
//! 2. **Drain.** Threads abandoning the hardware path wait until
//!    [`GlockRegisters::hw_drained`]: the pre-death grantee (if any) has
//!    written `lock_rel`, i.e. left its critical section. The controller
//!    of a dead network will never consume that release — the register
//!    write itself is the drain signal.
//! 3. **Replay.** Each abandoned mid-acquire is replayed on the software
//!    path *inside the same acquire script*, so the core's lock tracker
//!    observes exactly one successful acquire per critical section — no
//!    lost and no double-granted acquires.
//!
//! Mutual exclusion across the transition: the software lock starts free
//! and is only entered after `hw_drained()`, and the hardware path can no
//! longer grant anyone (quarantine), so no thread on the dead hardware
//! path can ever hold the lock concurrently with a software-path holder.
//!
//! # Fail-back (repair → probe → drain → re-arm)
//!
//! With intermittent faults the network can be *repaired*: rebooted to a
//! clean image and flagged repaired-but-untrusted. [`FailbackCtl`] — one
//! per failover backend, ticked by the runner after the networks — then
//! earns the trust back with hysteresis:
//!
//! 1. **Probing.** The controller exercises the untrusted hardware with
//!    real token round-trips (request → grant → release → consumed) on
//!    rotating cores. Each clean round-trip raises the health score by
//!    one; a slow probe (over [`PROBE_TIMEOUT`]) or a re-death resets it
//!    to zero, so [`PROBES_REQUIRED`] *consecutive* clean probes are
//!    needed — and at least [`MIN_DWELL`] cycles must have passed since
//!    the repair. Intermittent faults therefore cause at most bounded
//!    flapping: each hardware→software→hardware switch costs a full
//!    probe-plus-dwell episode.
//! 2. **Draining.** New acquires park; in-flight software tenures finish
//!    (`sw_inflight` reaches zero). No thread owns either path's lock.
//! 3. **Re-arm.** The health flips back to trusted, parked acquires (and
//!    all later ones) take the hardware fast path again, and
//!    `failbacks` is incremented. Acquire counts are conserved end to
//!    end: every tenure runs on exactly one path.

use crate::tatas::TatasLock;
use glocks::network::NetworkHealth;
use glocks::GlockRegisters;
use glocks_cpu::{LockBackend, Script, Step};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, Cycle, ThreadId};
use std::cell::Cell;
use std::rc::Rc;

/// Consecutive clean probe round-trips required before fail-back.
pub const PROBES_REQUIRED: u32 = 8;
/// Minimum cycles between the repair and trusting the hardware again.
pub const MIN_DWELL: u64 = 4096;
/// A probe slower than this is counted as lost (score reset). The probe
/// itself keeps waiting for its round-trip so no register write is ever
/// abandoned half way.
pub const PROBE_TIMEOUT: u64 = 1024;
/// Gap between consecutive probe launches.
pub const PROBE_GAP: u64 = 32;

/// Where the fail-back state machine currently routes acquires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailbackMode {
    /// Trusted hardware fast path (the initial and the healed state).
    Hardware,
    /// The network is dead (or re-died): everything runs on software.
    SoftwareWait,
    /// Repaired but untrusted: software carries the load while probe
    /// round-trips accumulate the health score.
    Probing,
    /// Hysteresis satisfied: parking new acquires until the software lock
    /// quiesces, then re-arming the hardware path.
    Draining,
}

/// Per-backend fail-back state machine (see the module docs). Shared
/// `Rc`-style with the acquire/release scripts; ticked by the runner in
/// the device phase, after the G-line networks.
pub struct FailbackCtl {
    regs: Rc<GlockRegisters>,
    health: Rc<NetworkHealth>,
    mode: Cell<FailbackMode>,
    /// Consecutive clean probes since the last loss (hysteresis score).
    score: Cell<u32>,
    /// Cycle this controller first observed the current repair.
    repair_seen_at: Cell<Cycle>,
    /// 0 = between probes, 1 = awaiting grant, 2 = awaiting release
    /// consumption.
    probe_stage: Cell<u8>,
    /// Core whose registers the current/next probe exercises (rotates).
    probe_core: Cell<usize>,
    probe_started: Cell<Cycle>,
    /// False once the current probe overran [`PROBE_TIMEOUT`] — its
    /// eventual completion no longer counts toward the score.
    probe_clean: Cell<bool>,
    next_probe_at: Cell<Cycle>,
    /// Software-path tenures in flight (acquire committed to software,
    /// release not yet completed). Draining waits for zero.
    sw_inflight: Cell<u64>,
    /// Completed software→hardware fail-backs (published as
    /// `sim.failbacks`).
    failbacks: Cell<u64>,
}

impl FailbackCtl {
    pub fn new(regs: Rc<GlockRegisters>, health: Rc<NetworkHealth>) -> Self {
        FailbackCtl {
            regs,
            health,
            mode: Cell::new(FailbackMode::Hardware),
            score: Cell::new(0),
            repair_seen_at: Cell::new(0),
            probe_stage: Cell::new(0),
            probe_core: Cell::new(0),
            probe_started: Cell::new(0),
            probe_clean: Cell::new(true),
            next_probe_at: Cell::new(0),
            sw_inflight: Cell::new(0),
            failbacks: Cell::new(0),
        }
    }

    pub fn mode(&self) -> FailbackMode {
        self.mode.get()
    }

    /// Completed fail-backs (software → hardware re-arms).
    pub fn failbacks(&self) -> u64 {
        self.failbacks.get()
    }

    /// Current hysteresis score (consecutive clean probes).
    pub fn score(&self) -> u32 {
        self.score.get()
    }

    /// Software-path tenures currently in flight.
    pub fn sw_inflight(&self) -> u64 {
        self.sw_inflight.get()
    }

    /// The core whose registers an in-flight probe currently owns, if a
    /// probe round-trip is in progress (checker: the only legitimate
    /// holder on an untrusted network).
    pub fn probing_core(&self) -> Option<usize> {
        (self.probe_stage.get() != 0).then(|| self.probe_core.get())
    }

    /// A thread committed its in-flight acquire to the software path.
    fn sw_begin(&self) {
        self.sw_inflight.set(self.sw_inflight.get() + 1);
    }

    /// A software-path release completed (tenure over).
    fn sw_end(&self) {
        let v = self.sw_inflight.get();
        debug_assert!(v > 0, "software release without a counted acquire");
        self.sw_inflight.set(v.saturating_sub(1));
    }

    /// Advance the state machine one cycle. Runs in the device phase after
    /// the networks tick, so a death verdict or a repair landing at cycle
    /// `now` is observed at `now` — one core-phase before any script can
    /// react to it.
    pub fn tick(&self, now: Cycle) {
        match self.mode.get() {
            FailbackMode::Hardware => {
                if self.health.is_dead() {
                    self.mode.set(FailbackMode::SoftwareWait);
                }
            }
            FailbackMode::SoftwareWait => {
                if !self.health.is_dead() && !self.health.is_trusted() {
                    // Repair observed: start earning trust back.
                    self.mode.set(FailbackMode::Probing);
                    self.score.set(0);
                    self.repair_seen_at.set(now);
                    self.probe_stage.set(0);
                    self.next_probe_at.set(now + PROBE_GAP);
                }
            }
            FailbackMode::Probing => self.tick_probe(now),
            FailbackMode::Draining => {
                if self.health.is_dead() {
                    // Re-death while draining: parked acquires fall back to
                    // software on their next resume.
                    self.mode.set(FailbackMode::SoftwareWait);
                    self.score.set(0);
                } else if self.sw_inflight.get() == 0 {
                    // Quiescent: no tenure on either path. Re-arm.
                    self.health.mark_trusted();
                    self.failbacks.set(self.failbacks.get() + 1);
                    self.mode.set(FailbackMode::Hardware);
                }
            }
        }
    }

    fn tick_probe(&self, now: Cycle) {
        let core = self.probe_core.get();
        if self.health.is_dead() {
            // Re-death mid-probe. If our probe's grant froze in the
            // register file, write its release ourselves: the probe owns
            // no real critical section, and the release write is the
            // drain signal a future repair waits for.
            if self.probe_stage.get() == 1
                && self.regs.hw_holder() == Some(core)
                && !self.regs.rel_pending(core)
            {
                self.regs.set_rel(core);
            }
            self.probe_stage.set(0);
            self.score.set(0);
            self.mode.set(FailbackMode::SoftwareWait);
            return;
        }
        match self.probe_stage.get() {
            0 => {
                if now >= self.next_probe_at.get() {
                    self.regs.set_req(core);
                    self.probe_started.set(now);
                    self.probe_clean.set(true);
                    self.probe_stage.set(1);
                }
            }
            1 => {
                if self.regs.hw_holder() == Some(core) && !self.regs.req_pending(core) {
                    // Granted: give the token straight back.
                    self.regs.set_rel(core);
                    self.probe_stage.set(2);
                } else if now.saturating_sub(self.probe_started.get()) > PROBE_TIMEOUT {
                    self.probe_clean.set(false);
                    self.score.set(0);
                }
            }
            _ => {
                if self.regs.hw_holder().is_none() && !self.regs.rel_pending(core) {
                    // Round trip complete.
                    if self.probe_clean.get() {
                        self.score.set(self.score.get() + 1);
                    }
                    self.probe_stage.set(0);
                    self.next_probe_at.set(now + PROBE_GAP);
                    self.probe_core.set((core + 1) % self.regs.n_cores());
                    if self.score.get() >= PROBES_REQUIRED
                        && now.saturating_sub(self.repair_seen_at.get()) >= MIN_DWELL
                    {
                        self.mode.set(FailbackMode::Draining);
                    }
                } else if now.saturating_sub(self.probe_started.get()) > PROBE_TIMEOUT {
                    self.probe_clean.set(false);
                    self.score.set(0);
                }
            }
        }
    }

    /// Idle-skip contract. `Hardware` and `SoftwareWait` are inert: their
    /// transitions are triggered by a death verdict or a repair, and the
    /// owning network's `next_event` claims those cycles. Probing and
    /// draining are hot — probe round-trips and the software quiescence
    /// check advance cycle by cycle over a bounded window.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self.mode.get() {
            FailbackMode::Hardware | FailbackMode::SoftwareWait => None,
            FailbackMode::Probing | FailbackMode::Draining => Some(now),
        }
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u8(match self.mode.get() {
            FailbackMode::Hardware => 0,
            FailbackMode::SoftwareWait => 1,
            FailbackMode::Probing => 2,
            FailbackMode::Draining => 3,
        });
        w.u32(self.score.get());
        w.u64(self.repair_seen_at.get());
        w.u8(self.probe_stage.get());
        w.usize(self.probe_core.get());
        w.u64(self.probe_started.get());
        w.bool(self.probe_clean.get());
        w.u64(self.next_probe_at.get());
        w.u64(self.sw_inflight.get());
        w.u64(self.failbacks.get());
    }

    pub fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.mode.set(match r.u8()? {
            0 => FailbackMode::Hardware,
            1 => FailbackMode::SoftwareWait,
            2 => FailbackMode::Probing,
            3 => FailbackMode::Draining,
            tag => return Err(SnapError::BadTag { what: "failback mode", tag: u64::from(tag) }),
        });
        self.score.set(r.u32()?);
        self.repair_seen_at.set(r.u64()?);
        self.probe_stage.set(r.u8()?);
        self.probe_core.set(r.usize()?);
        self.probe_started.set(r.u64()?);
        self.probe_clean.set(r.bool()?);
        self.next_probe_at.set(r.u64()?);
        self.sw_inflight.set(r.u64()?);
        self.failbacks.set(r.u64()?);
        Ok(())
    }
}

/// Which path a thread's current tenure is on (drives its release).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Path {
    Hardware,
    Software,
}

/// Hardware GLock with software failover for statically-mapped locks.
pub struct FailoverGlockBackend {
    regs: Rc<GlockRegisters>,
    health: Rc<NetworkHealth>,
    fallback: TatasLock,
    /// Which path each thread's in-flight acquire resolved to, consumed by
    /// its release (same scheme as the dynamic backend's decision cells).
    path: Vec<Rc<Cell<Option<Path>>>>,
    /// Acquires rerouted to the software path because the network died.
    failovers: Rc<Cell<u64>>,
    /// Fail-back state machine (repair → probe → drain → re-arm).
    ctl: Rc<FailbackCtl>,
}

impl FailoverGlockBackend {
    /// `base` is the lock's private memory region (unused by the hardware
    /// path; hosts the TATAS fallback word).
    pub fn new(
        regs: Rc<GlockRegisters>,
        health: Rc<NetworkHealth>,
        base: Addr,
        n_threads: usize,
    ) -> Self {
        let ctl = Rc::new(FailbackCtl::new(Rc::clone(&regs), Rc::clone(&health)));
        FailoverGlockBackend {
            regs,
            health,
            fallback: TatasLock::tatas(base),
            path: (0..n_threads).map(|_| Rc::new(Cell::new(None))).collect(),
            failovers: Rc::new(Cell::new(0)),
            ctl,
        }
    }

    /// Shared handle to the failover counter (published as `sim.failovers`).
    pub fn failover_count(&self) -> Rc<Cell<u64>> {
        Rc::clone(&self.failovers)
    }

    /// This backend's fail-back state machine, for the runner to tick in
    /// the device phase (after the networks) and the checker to inspect.
    pub fn failback_ctl(&self) -> Rc<FailbackCtl> {
        Rc::clone(&self.ctl)
    }
}

enum AcqPhase {
    /// Healthy fast path, step-identical to `GlockBackend`: write
    /// `lock_req`, then spin.
    SetReq,
    Spin,
    /// The network died: wait for the hardware path to drain.
    DrainWait,
    /// Replay on the software fallback.
    Fallback,
    /// Arrived while a fail-back drain is in progress: wait for the
    /// re-armed hardware path (or for the drain to abort on re-death).
    FailbackPark,
}

struct FoAcquire {
    regs: Rc<GlockRegisters>,
    health: Rc<NetworkHealth>,
    core: usize,
    phase: AcqPhase,
    inner: Box<dyn Script>,
    path_out: Rc<Cell<Option<Path>>>,
    failovers: Rc<Cell<u64>>,
    ctl: Rc<FailbackCtl>,
}

impl FoAcquire {
    fn fail_over(&mut self) -> Step {
        self.failovers.set(self.failovers.get() + 1);
        self.path_out.set(Some(Path::Software));
        self.ctl.sw_begin();
        self.phase = AcqPhase::DrainWait;
        // Observing the dead flag costs the same branch the spin did.
        Step::Compute(1)
    }
}

impl Script for FoAcquire {
    fn resume(&mut self, last: u64) -> Step {
        match self.phase {
            AcqPhase::SetReq => match self.ctl.mode() {
                FailbackMode::Hardware => {
                    if self.health.is_dead() {
                        return self.fail_over();
                    }
                    self.path_out.set(Some(Path::Hardware));
                    self.regs.set_req(self.core);
                    self.phase = AcqPhase::Spin;
                    // mov 1, lock_req
                    Step::Compute(1)
                }
                FailbackMode::Draining => {
                    self.phase = AcqPhase::FailbackPark;
                    Step::Compute(1)
                }
                // Dead or untrusted hardware: the software path carries
                // every acquire until fail-back completes.
                FailbackMode::SoftwareWait | FailbackMode::Probing => self.fail_over(),
            },
            AcqPhase::Spin => {
                if !self.regs.req_pending(self.core) {
                    if self.health.is_dead() || self.health.is_trusted() {
                        // Granted — also reachable when the grant landed in
                        // the same cycle as the death verdict: quarantine
                        // freezes register state, so a reset flag is always
                        // a real grant and this thread owns the lock.
                        return Step::Done;
                    }
                    // Untrusted: a repair wiped the register file while the
                    // request was pending — never a grant. (Unreachable
                    // under the runner's phase ordering — spinners observe
                    // the death verdict one core-phase before the earliest
                    // repair — but safe either way.)
                    return self.fail_over();
                }
                if self.health.is_dead() {
                    // Our REQ can never be answered: abandon and replay.
                    return self.fail_over();
                }
                // bnz lock_req, loop
                Step::Compute(1)
            }
            AcqPhase::DrainWait => {
                if self.regs.hw_drained() {
                    self.phase = AcqPhase::Fallback;
                    self.inner.resume(last)
                } else {
                    Step::Compute(1)
                }
            }
            AcqPhase::Fallback => self.inner.resume(last),
            AcqPhase::FailbackPark => match self.ctl.mode() {
                FailbackMode::Hardware => {
                    // Fail-back committed: restart on the hardware path.
                    self.phase = AcqPhase::SetReq;
                    Step::Compute(1)
                }
                FailbackMode::Draining => Step::Compute(1),
                // Drain aborted (re-death): fall back to software.
                FailbackMode::SoftwareWait | FailbackMode::Probing => self.fail_over(),
            },
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.phase {
            AcqPhase::SetReq => 0,
            AcqPhase::Spin => 1,
            AcqPhase::DrainWait => 2,
            AcqPhase::Fallback => 3,
            AcqPhase::FailbackPark => 4,
        });
        self.inner.save_state(w)
    }

    /// The hardware-path busy-wait is inert while the REQ is still raised
    /// *and* the network is alive: both the grant (register reset) and the
    /// death verdict are produced by the GLock network, whose `next_event`
    /// covers them. `DrainWait` and the software fallback stay hot — their
    /// wake conditions involve other cores' software-path progress.
    fn idle_spin(&self) -> bool {
        matches!(self.phase, AcqPhase::Spin)
            && self.regs.req_pending(self.core)
            && !self.health.is_dead()
    }
}

struct FoRelease {
    regs: Rc<GlockRegisters>,
    core: usize,
    /// `Some` only on the software path.
    inner: Option<Box<dyn Script>>,
    done: bool,
    ctl: Rc<FailbackCtl>,
    /// Whether this software tenure's completion was already reported to
    /// the fail-back controller (exactly-once across resumes/restores).
    counted: bool,
}

impl Script for FoRelease {
    fn resume(&mut self, last: u64) -> Step {
        if let Some(inner) = self.inner.as_mut() {
            let step = inner.resume(last);
            if matches!(step, Step::Done) && !self.counted {
                // Software tenure over: the drain quiescence check counts
                // completed releases, not release-script creations, so a
                // fail-back can never re-arm under a live software holder.
                self.counted = true;
                self.ctl.sw_end();
            }
            return step;
        }
        // Hardware path: identical to `GlockRelease`. On a dead network
        // the controller never consumes the flag, but the write itself is
        // the drain signal the failed-over waiters are watching.
        if self.done {
            Step::Done
        } else {
            self.done = true;
            self.regs.set_rel(self.core);
            // mov 1, lock_rel
            Step::Compute(1)
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.bool(self.inner.is_some());
        if let Some(inner) = &self.inner {
            inner.save_state(w)?;
        }
        w.bool(self.done);
        w.bool(self.counted);
        Ok(())
    }
}

impl LockBackend for FailoverGlockBackend {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(FoAcquire {
            regs: Rc::clone(&self.regs),
            health: Rc::clone(&self.health),
            core: tid.index(),
            phase: AcqPhase::SetReq,
            inner: self.fallback.acquire(tid),
            path_out: Rc::clone(&self.path[tid.index()]),
            failovers: Rc::clone(&self.failovers),
            ctl: Rc::clone(&self.ctl),
        })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        let path = self.path[tid.index()]
            .take()
            .expect("release without a recorded acquire path");
        Box::new(FoRelease {
            regs: Rc::clone(&self.regs),
            core: tid.index(),
            inner: matches!(path, Path::Software).then(|| self.fallback.release(tid)),
            done: false,
            ctl: Rc::clone(&self.ctl),
            counted: false,
        })
    }

    fn name(&self) -> &'static str {
        "GLock+FO"
    }

    // `regs` and `health` are shared structure saved by the owning network.
    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.path.len());
        for cell in &self.path {
            w.u8(match cell.get() {
                None => 0,
                Some(Path::Hardware) => 1,
                Some(Path::Software) => 2,
            });
        }
        w.u64(self.failovers.get());
        self.ctl.save_state(w);
        Ok(())
    }

    fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.path.len() {
            return Err(SnapError::Corrupt { what: "failover lock thread count" });
        }
        for cell in &self.path {
            cell.set(match r.u8()? {
                0 => None,
                1 => Some(Path::Hardware),
                2 => Some(Path::Software),
                tag => {
                    return Err(SnapError::BadTag {
                        what: "failover path",
                        tag: u64::from(tag),
                    })
                }
            });
        }
        self.failovers.set(r.u64()?);
        self.ctl.load_state(r)?;
        Ok(())
    }

    fn load_acquire_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let phase = match r.u8()? {
            0 => AcqPhase::SetReq,
            1 => AcqPhase::Spin,
            2 => AcqPhase::DrainWait,
            3 => AcqPhase::Fallback,
            4 => AcqPhase::FailbackPark,
            tag => {
                return Err(SnapError::BadTag {
                    what: "failover acquire phase",
                    tag: u64::from(tag),
                })
            }
        };
        let inner = self.fallback.load_acquire_script(tid, r)?;
        Ok(Box::new(FoAcquire {
            regs: Rc::clone(&self.regs),
            health: Rc::clone(&self.health),
            core: tid.index(),
            phase,
            inner,
            path_out: Rc::clone(&self.path[tid.index()]),
            failovers: Rc::clone(&self.failovers),
            ctl: Rc::clone(&self.ctl),
        }))
    }

    fn load_release_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let inner = if r.bool()? {
            Some(self.fallback.load_release_script(tid, r)?)
        } else {
            None
        };
        Ok(Box::new(FoRelease {
            regs: Rc::clone(&self.regs),
            core: tid.index(),
            inner,
            done: r.bool()?,
            ctl: Rc::clone(&self.ctl),
            counted: r.bool()?,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench_with_nets;
    use glocks::{GlockNetwork, Topology};
    use glocks_sim_base::{Addr, Mesh2D};

    #[test]
    fn healthy_failover_backend_is_step_identical_to_glock() {
        // Same workload on GlockBackend and FailoverGlockBackend with no
        // fault: identical cycle counts, identical signal counts.
        let mesh = Mesh2D::near_square(8);

        let net = GlockNetwork::new(&Topology::flat(mesh), 1);
        let regs = net.regs();
        let mut nets = [net];
        let plain = run_counter_bench_with_nets(
            move |_base, _n| {
                Box::new(crate::glock_backend::GlockBackend::new(Rc::clone(&regs))) as _
            },
            8,
            4,
            &mut nets,
        );
        let [net] = nets;
        let plain_signals = net.stats().signals;

        let net = GlockNetwork::new(&Topology::flat(mesh), 1);
        let regs = net.regs();
        let health = net.health();
        let mut nets = [net];
        let fo = run_counter_bench_with_nets(
            move |base, n| {
                Box::new(FailoverGlockBackend::new(
                    Rc::clone(&regs),
                    Rc::clone(&health),
                    base,
                    n,
                )) as _
            },
            8,
            4,
            &mut nets,
        );
        let [net] = nets;
        assert_eq!(fo.counter_value, plain.counter_value);
        assert_eq!(fo.cycles, plain.cycles, "healthy path must be cycle-exact");
        assert_eq!(net.stats().signals, plain_signals, "and signal-exact");
        assert_eq!(net.stats().grants, 32);
    }

    #[test]
    fn mid_run_line_kill_fails_over_with_no_lost_acquires() {
        let threads = 8;
        let iters = 6;
        let mesh = Mesh2D::near_square(threads);
        let mut net = GlockNetwork::new(&Topology::flat(mesh), 1);
        // Die early, mid-contention: some threads hold, others spin.
        net.schedule_line_kill(40);
        let regs = net.regs();
        let health = net.health();
        let h2 = Rc::clone(&health);
        let failovers: Rc<std::cell::RefCell<Rc<Cell<u64>>>> =
            Rc::new(std::cell::RefCell::new(Rc::new(Cell::new(0))));
        let f2 = Rc::clone(&failovers);
        let mut nets = [net];
        let out = run_counter_bench_with_nets(
            move |base, n| {
                let b = FailoverGlockBackend::new(Rc::clone(&regs), Rc::clone(&h2), base, n);
                *f2.borrow_mut() = b.failover_count();
                Box::new(b) as _
            },
            threads,
            iters,
            &mut nets,
        );
        // Every critical section executed exactly once despite the death.
        assert_eq!(out.counter_value, threads as u64 * iters);
        assert!(health.is_dead(), "the kill must have been detected");
        let fo_count = failovers.borrow().get();
        assert!(fo_count > 0, "some acquires must have failed over");
        let [net] = nets;
        // The dead network granted only pre-death tenures.
        assert!(net.stats().grants < threads as u64 * iters);
        assert!(net.token_invariant_violation().is_none());
    }

    #[test]
    fn kill_before_first_acquire_runs_entirely_on_software() {
        let threads = 4;
        let mesh = Mesh2D::near_square(threads);
        let mut net = GlockNetwork::new(&Topology::flat(mesh), 1);
        net.schedule_line_kill(0);
        let regs = net.regs();
        let health = net.health();
        let h2 = Rc::clone(&health);
        let mut nets = [net];
        let out = run_counter_bench_with_nets(
            move |base, n| {
                Box::new(FailoverGlockBackend::new(Rc::clone(&regs), Rc::clone(&h2), base, n))
                    as _
            },
            threads,
            3,
            &mut nets,
        );
        assert_eq!(out.counter_value, 12);
        let [net] = nets;
        assert!(net.stats().grants < 12, "hardware cannot serve all tenures");
    }

    /// Drive a real mid-failover state — one thread holding through the
    /// hardware path, another parked in `DrainWait` after the line died —
    /// and round-trip both the backend and the in-flight acquire through
    /// the snapshot codec. The restored script must re-encode to the exact
    /// same bytes and behave identically: keep draining while the pre-death
    /// holder is inside its critical section, then replay on the software
    /// path the moment the drain signal lands.
    #[test]
    fn drain_wait_acquire_round_trips_through_a_snapshot() {
        use glocks_sim_base::snap::{SnapReader, SnapWriter};

        let mesh = Mesh2D::near_square(4);
        let mut net = GlockNetwork::new(&Topology::flat(mesh), 1);
        let b = FailoverGlockBackend::new(net.regs(), net.health(), Addr(0x1000), 4);

        // Thread 0 acquires through the healthy hardware path.
        let mut s0 = b.acquire(ThreadId(0));
        let mut now = 0;
        while !matches!(s0.resume(0), Step::Done) {
            net.tick(now);
            now += 1;
            assert!(now < 1_000, "healthy grant never arrived");
        }
        // Thread 1 requests while the token is out, then the line dies;
        // failure detection must escalate to the death verdict.
        let mut s1 = b.acquire(ThreadId(1));
        assert!(matches!(s1.resume(0), Step::Compute(1))); // SetReq → Spin
        net.schedule_line_kill(now);
        while !net.health().is_dead() {
            net.tick(now);
            now += 1;
            assert!(now < 100_000, "death verdict never reached");
        }
        assert!(matches!(s1.resume(0), Step::Compute(1))); // Spin → DrainWait
        assert!(matches!(s1.resume(0), Step::Compute(1))); // still draining
        assert_eq!(b.failovers.get(), 1);

        // Snapshot the backend and the mid-drain script. The script's
        // first byte is its phase tag — it must be DrainWait (2).
        let mut w = SnapWriter::new();
        b.save_state(&mut w).unwrap();
        let backend_len = {
            let mut bw = SnapWriter::new();
            b.save_state(&mut bw).unwrap();
            bw.into_bytes().len()
        };
        s1.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes[backend_len], 2, "phase tag must be DrainWait");

        // Restore into a freshly built twin sharing the same hardware
        // (regs/health are network state, restored by the network's own
        // snapshot path in a full-machine resume).
        let b2 = FailoverGlockBackend::new(net.regs(), net.health(), Addr(0x1000), 4);
        let mut r = SnapReader::new(&bytes);
        b2.load_state(&mut r).unwrap();
        let mut s1r = b2.load_acquire_script(ThreadId(1), &mut r).unwrap();
        assert_eq!(r.remaining(), 0, "decode must consume exactly what encode wrote");
        assert_eq!(b2.failovers.get(), 1);
        assert_eq!(b2.path[1].get(), Some(Path::Software));

        // Re-encoding the restored state is byte-identical.
        let mut w2 = SnapWriter::new();
        b2.save_state(&mut w2).unwrap();
        s1r.save_state(&mut w2).unwrap();
        assert_eq!(w2.into_bytes(), bytes, "restored state must re-encode identically");

        // Behavior parity: both keep draining while thread 0 holds...
        assert_eq!(s1r.resume(0), Step::Compute(1));
        assert_eq!(s1.resume(0), Step::Compute(1));
        // ...and the register write of thread 0's release is the drain
        // signal that lets the restored script replay on TATAS.
        let mut rel = b.release(ThreadId(0));
        while !matches!(rel.resume(0), Step::Done) {}
        assert!(b.regs.hw_drained());
        let step = s1r.resume(0);
        assert_eq!(step, s1.resume(0), "restored script must step in lockstep");
        assert!(matches!(step, Step::Mem(_)), "drained: replay starts on the software path");
    }

    /// Drive the full failure → repair → probe → drain → re-arm lifecycle
    /// against a real network, twice (flapping), checking the hysteresis
    /// bookkeeping at every stage.
    #[test]
    fn failback_lifecycle_probes_drains_and_rearms_twice() {
        use crate::failover::FailbackMode;
        let mesh = Mesh2D::near_square(4);
        let mut net = GlockNetwork::new(&Topology::flat(mesh), 1);
        let b = FailoverGlockBackend::new(net.regs(), net.health(), Addr(0x1000), 4);
        let ctl = b.failback_ctl();
        let health = net.health();
        let regs = net.regs();

        let mut now: u64 = 0;
        let episode = |net: &mut GlockNetwork, now: &mut u64, req_core: usize| {
            // Kill while idle; a raw register request drives detection.
            net.schedule_line_kill(*now + 10);
            for _ in 0..20 {
                net.tick(*now);
                ctl.tick(*now);
                *now += 1;
            }
            regs.set_req(req_core);
            while !health.is_dead() {
                net.tick(*now);
                ctl.tick(*now);
                *now += 1;
                assert!(*now < 2_000_000, "death verdict never reached");
            }
            assert_eq!(ctl.mode(), FailbackMode::SoftwareWait);
            net.schedule_repair(*now + 5);
            let deadline = *now + 1_000_000;
            while !(ctl.mode() == FailbackMode::Hardware && health.is_trusted()) {
                net.tick(*now);
                ctl.tick(*now);
                *now += 1;
                assert!(*now < deadline, "fail-back never completed ({:?})", ctl.mode());
            }
        };

        episode(&mut net, &mut now, 0);
        assert_eq!(ctl.failbacks(), 1);
        assert_eq!(health.repairs(), 1);
        // The re-armed hardware path grants again.
        let mut s = b.acquire(ThreadId(2));
        let mut steps = 0;
        loop {
            match s.resume(0) {
                Step::Done => break,
                _ => {
                    net.tick(now);
                    ctl.tick(now);
                    now += 1;
                }
            }
            steps += 1;
            assert!(steps < 1_000, "post-failback hardware acquire stalled");
        }
        let mut r = b.release(ThreadId(2));
        while !matches!(r.resume(0), Step::Done) {}
        for _ in 0..50 {
            net.tick(now);
            ctl.tick(now);
            now += 1;
        }

        // Flap: the same network dies and heals a second time.
        episode(&mut net, &mut now, 1);
        assert_eq!(ctl.failbacks(), 2);
        assert_eq!(health.repairs(), 2);
    }

    /// A probe that overruns [`PROBE_TIMEOUT`] resets the hysteresis score
    /// — consecutive clean probes are required, not cumulative ones — and
    /// the machine still fails back once the hardware answers again.
    #[test]
    fn slow_probe_resets_the_hysteresis_score() {
        use crate::failover::{FailbackMode, PROBE_GAP, PROBE_TIMEOUT};
        let mesh = Mesh2D::near_square(4);
        let mut net = GlockNetwork::new(&Topology::flat(mesh), 1);
        let b = FailoverGlockBackend::new(net.regs(), net.health(), Addr(0x1000), 4);
        let ctl = b.failback_ctl();
        let health = net.health();
        let regs = net.regs();

        net.schedule_line_kill(10);
        let mut now = 0;
        for _ in 0..20 {
            net.tick(now);
            ctl.tick(now);
            now += 1;
        }
        regs.set_req(0);
        while !health.is_dead() {
            net.tick(now);
            ctl.tick(now);
            now += 1;
            assert!(now < 1_000_000);
        }
        net.schedule_repair(now + 1);
        while ctl.score() < 2 {
            net.tick(now);
            ctl.tick(now);
            now += 1;
            assert!(now < 1_000_000, "probing never accumulated a score");
        }
        assert_eq!(ctl.mode(), FailbackMode::Probing);

        // Stall the hardware (tick only the controller): the next probe's
        // round-trip overruns the timeout and the score collapses.
        for _ in 0..(PROBE_GAP + PROBE_TIMEOUT + 16) {
            ctl.tick(now);
            now += 1;
        }
        assert_eq!(ctl.score(), 0, "a slow probe must reset the score");
        assert_eq!(ctl.mode(), FailbackMode::Probing);

        // Hardware answers again: the stalled probe completes (uncounted)
        // and a fresh consecutive run earns the fail-back.
        let deadline = now + 1_000_000;
        while !health.is_trusted() {
            net.tick(now);
            ctl.tick(now);
            now += 1;
            assert!(now < deadline, "fail-back never completed");
        }
        assert_eq!(ctl.failbacks(), 1);
    }

    #[test]
    fn release_without_acquire_panics() {
        let net = GlockNetwork::new(&Topology::flat(Mesh2D::new(2, 2)), 1);
        let b = FailoverGlockBackend::new(net.regs(), net.health(), Addr(0x1000), 4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.release(ThreadId(0))
        }));
        assert!(r.is_err());
    }
}
