//! GLock→software failover (survivability layer, beyond the paper).
//!
//! [`FailoverGlockBackend`] wraps the hardware GLock driver of
//! [`crate::glock_backend`] with a permanent-fault escape hatch. While the
//! G-line network is healthy its scripts are **step-identical** to
//! [`crate::glock_backend::GlockBackend`] — same register writes, same
//! one-cycle spin cadence — so fault-free timing, signal counts and energy
//! stay paper-exact. When the network's [`NetworkHealth`] flips to dead
//! (failure detection: exhausted retransmission budgets), every thread
//! converges onto a TATAS software fallback in the lock's private memory
//! region:
//!
//! 1. **Quarantine.** A dead network never delivers another signal, so the
//!    grant state frozen in the register file at the verdict cycle is
//!    final: a spinning thread whose `lock_req` is still set will *never*
//!    be granted; one whose flag was reset *was* granted and owns the
//!    critical section.
//! 2. **Drain.** Threads abandoning the hardware path wait until
//!    [`GlockRegisters::hw_drained`]: the pre-death grantee (if any) has
//!    written `lock_rel`, i.e. left its critical section. The controller
//!    of a dead network will never consume that release — the register
//!    write itself is the drain signal.
//! 3. **Replay.** Each abandoned mid-acquire is replayed on the software
//!    path *inside the same acquire script*, so the core's lock tracker
//!    observes exactly one successful acquire per critical section — no
//!    lost and no double-granted acquires.
//!
//! Mutual exclusion across the transition: the software lock starts free
//! and is only entered after `hw_drained()`, and the hardware path can no
//! longer grant anyone (quarantine), so no thread on the dead hardware
//! path can ever hold the lock concurrently with a software-path holder.

use crate::tatas::TatasLock;
use glocks::network::NetworkHealth;
use glocks::GlockRegisters;
use glocks_cpu::{LockBackend, Script, Step};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, ThreadId};
use std::cell::Cell;
use std::rc::Rc;

/// Which path a thread's current tenure is on (drives its release).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Path {
    Hardware,
    Software,
}

/// Hardware GLock with software failover for statically-mapped locks.
pub struct FailoverGlockBackend {
    regs: Rc<GlockRegisters>,
    health: Rc<NetworkHealth>,
    fallback: TatasLock,
    /// Which path each thread's in-flight acquire resolved to, consumed by
    /// its release (same scheme as the dynamic backend's decision cells).
    path: Vec<Rc<Cell<Option<Path>>>>,
    /// Acquires rerouted to the software path because the network died.
    failovers: Rc<Cell<u64>>,
}

impl FailoverGlockBackend {
    /// `base` is the lock's private memory region (unused by the hardware
    /// path; hosts the TATAS fallback word).
    pub fn new(
        regs: Rc<GlockRegisters>,
        health: Rc<NetworkHealth>,
        base: Addr,
        n_threads: usize,
    ) -> Self {
        FailoverGlockBackend {
            regs,
            health,
            fallback: TatasLock::tatas(base),
            path: (0..n_threads).map(|_| Rc::new(Cell::new(None))).collect(),
            failovers: Rc::new(Cell::new(0)),
        }
    }

    /// Shared handle to the failover counter (published as `sim.failovers`).
    pub fn failover_count(&self) -> Rc<Cell<u64>> {
        Rc::clone(&self.failovers)
    }
}

enum AcqPhase {
    /// Healthy fast path, step-identical to `GlockBackend`: write
    /// `lock_req`, then spin.
    SetReq,
    Spin,
    /// The network died: wait for the hardware path to drain.
    DrainWait,
    /// Replay on the software fallback.
    Fallback,
}

struct FoAcquire {
    regs: Rc<GlockRegisters>,
    health: Rc<NetworkHealth>,
    core: usize,
    phase: AcqPhase,
    inner: Box<dyn Script>,
    path_out: Rc<Cell<Option<Path>>>,
    failovers: Rc<Cell<u64>>,
}

impl FoAcquire {
    fn fail_over(&mut self) -> Step {
        self.failovers.set(self.failovers.get() + 1);
        self.path_out.set(Some(Path::Software));
        self.phase = AcqPhase::DrainWait;
        // Observing the dead flag costs the same branch the spin did.
        Step::Compute(1)
    }
}

impl Script for FoAcquire {
    fn resume(&mut self, last: u64) -> Step {
        match self.phase {
            AcqPhase::SetReq => {
                if self.health.is_dead() {
                    return self.fail_over();
                }
                self.path_out.set(Some(Path::Hardware));
                self.regs.set_req(self.core);
                self.phase = AcqPhase::Spin;
                // mov 1, lock_req
                Step::Compute(1)
            }
            AcqPhase::Spin => {
                if !self.regs.req_pending(self.core) {
                    // Granted — also reachable when the grant landed in
                    // the same cycle as the death verdict: quarantine
                    // freezes register state, so a reset flag is always a
                    // real grant and this thread owns the lock.
                    return Step::Done;
                }
                if self.health.is_dead() {
                    // Our REQ can never be answered: abandon and replay.
                    return self.fail_over();
                }
                // bnz lock_req, loop
                Step::Compute(1)
            }
            AcqPhase::DrainWait => {
                if self.regs.hw_drained() {
                    self.phase = AcqPhase::Fallback;
                    self.inner.resume(last)
                } else {
                    Step::Compute(1)
                }
            }
            AcqPhase::Fallback => self.inner.resume(last),
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.phase {
            AcqPhase::SetReq => 0,
            AcqPhase::Spin => 1,
            AcqPhase::DrainWait => 2,
            AcqPhase::Fallback => 3,
        });
        self.inner.save_state(w)
    }

    /// The hardware-path busy-wait is inert while the REQ is still raised
    /// *and* the network is alive: both the grant (register reset) and the
    /// death verdict are produced by the GLock network, whose `next_event`
    /// covers them. `DrainWait` and the software fallback stay hot — their
    /// wake conditions involve other cores' software-path progress.
    fn idle_spin(&self) -> bool {
        matches!(self.phase, AcqPhase::Spin)
            && self.regs.req_pending(self.core)
            && !self.health.is_dead()
    }
}

struct FoRelease {
    regs: Rc<GlockRegisters>,
    core: usize,
    /// `Some` only on the software path.
    inner: Option<Box<dyn Script>>,
    done: bool,
}

impl Script for FoRelease {
    fn resume(&mut self, last: u64) -> Step {
        if let Some(inner) = self.inner.as_mut() {
            return inner.resume(last);
        }
        // Hardware path: identical to `GlockRelease`. On a dead network
        // the controller never consumes the flag, but the write itself is
        // the drain signal the failed-over waiters are watching.
        if self.done {
            Step::Done
        } else {
            self.done = true;
            self.regs.set_rel(self.core);
            // mov 1, lock_rel
            Step::Compute(1)
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.bool(self.inner.is_some());
        if let Some(inner) = &self.inner {
            inner.save_state(w)?;
        }
        w.bool(self.done);
        Ok(())
    }
}

impl LockBackend for FailoverGlockBackend {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(FoAcquire {
            regs: Rc::clone(&self.regs),
            health: Rc::clone(&self.health),
            core: tid.index(),
            phase: AcqPhase::SetReq,
            inner: self.fallback.acquire(tid),
            path_out: Rc::clone(&self.path[tid.index()]),
            failovers: Rc::clone(&self.failovers),
        })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        let path = self.path[tid.index()]
            .take()
            .expect("release without a recorded acquire path");
        Box::new(FoRelease {
            regs: Rc::clone(&self.regs),
            core: tid.index(),
            inner: matches!(path, Path::Software).then(|| self.fallback.release(tid)),
            done: false,
        })
    }

    fn name(&self) -> &'static str {
        "GLock+FO"
    }

    // `regs` and `health` are shared structure saved by the owning network.
    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.path.len());
        for cell in &self.path {
            w.u8(match cell.get() {
                None => 0,
                Some(Path::Hardware) => 1,
                Some(Path::Software) => 2,
            });
        }
        w.u64(self.failovers.get());
        Ok(())
    }

    fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.path.len() {
            return Err(SnapError::Corrupt { what: "failover lock thread count" });
        }
        for cell in &self.path {
            cell.set(match r.u8()? {
                0 => None,
                1 => Some(Path::Hardware),
                2 => Some(Path::Software),
                tag => {
                    return Err(SnapError::BadTag {
                        what: "failover path",
                        tag: u64::from(tag),
                    })
                }
            });
        }
        self.failovers.set(r.u64()?);
        Ok(())
    }

    fn load_acquire_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let phase = match r.u8()? {
            0 => AcqPhase::SetReq,
            1 => AcqPhase::Spin,
            2 => AcqPhase::DrainWait,
            3 => AcqPhase::Fallback,
            tag => {
                return Err(SnapError::BadTag {
                    what: "failover acquire phase",
                    tag: u64::from(tag),
                })
            }
        };
        let inner = self.fallback.load_acquire_script(tid, r)?;
        Ok(Box::new(FoAcquire {
            regs: Rc::clone(&self.regs),
            health: Rc::clone(&self.health),
            core: tid.index(),
            phase,
            inner,
            path_out: Rc::clone(&self.path[tid.index()]),
            failovers: Rc::clone(&self.failovers),
        }))
    }

    fn load_release_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let inner = if r.bool()? {
            Some(self.fallback.load_release_script(tid, r)?)
        } else {
            None
        };
        Ok(Box::new(FoRelease {
            regs: Rc::clone(&self.regs),
            core: tid.index(),
            inner,
            done: r.bool()?,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench_with_nets;
    use glocks::{GlockNetwork, Topology};
    use glocks_sim_base::{Addr, Mesh2D};

    #[test]
    fn healthy_failover_backend_is_step_identical_to_glock() {
        // Same workload on GlockBackend and FailoverGlockBackend with no
        // fault: identical cycle counts, identical signal counts.
        let mesh = Mesh2D::near_square(8);

        let net = GlockNetwork::new(&Topology::flat(mesh), 1);
        let regs = net.regs();
        let mut nets = [net];
        let plain = run_counter_bench_with_nets(
            move |_base, _n| {
                Box::new(crate::glock_backend::GlockBackend::new(Rc::clone(&regs))) as _
            },
            8,
            4,
            &mut nets,
        );
        let [net] = nets;
        let plain_signals = net.stats().signals;

        let net = GlockNetwork::new(&Topology::flat(mesh), 1);
        let regs = net.regs();
        let health = net.health();
        let mut nets = [net];
        let fo = run_counter_bench_with_nets(
            move |base, n| {
                Box::new(FailoverGlockBackend::new(
                    Rc::clone(&regs),
                    Rc::clone(&health),
                    base,
                    n,
                )) as _
            },
            8,
            4,
            &mut nets,
        );
        let [net] = nets;
        assert_eq!(fo.counter_value, plain.counter_value);
        assert_eq!(fo.cycles, plain.cycles, "healthy path must be cycle-exact");
        assert_eq!(net.stats().signals, plain_signals, "and signal-exact");
        assert_eq!(net.stats().grants, 32);
    }

    #[test]
    fn mid_run_line_kill_fails_over_with_no_lost_acquires() {
        let threads = 8;
        let iters = 6;
        let mesh = Mesh2D::near_square(threads);
        let mut net = GlockNetwork::new(&Topology::flat(mesh), 1);
        // Die early, mid-contention: some threads hold, others spin.
        net.schedule_line_kill(40);
        let regs = net.regs();
        let health = net.health();
        let h2 = Rc::clone(&health);
        let failovers: Rc<std::cell::RefCell<Rc<Cell<u64>>>> =
            Rc::new(std::cell::RefCell::new(Rc::new(Cell::new(0))));
        let f2 = Rc::clone(&failovers);
        let mut nets = [net];
        let out = run_counter_bench_with_nets(
            move |base, n| {
                let b = FailoverGlockBackend::new(Rc::clone(&regs), Rc::clone(&h2), base, n);
                *f2.borrow_mut() = b.failover_count();
                Box::new(b) as _
            },
            threads,
            iters,
            &mut nets,
        );
        // Every critical section executed exactly once despite the death.
        assert_eq!(out.counter_value, threads as u64 * iters);
        assert!(health.is_dead(), "the kill must have been detected");
        let fo_count = failovers.borrow().get();
        assert!(fo_count > 0, "some acquires must have failed over");
        let [net] = nets;
        // The dead network granted only pre-death tenures.
        assert!(net.stats().grants < threads as u64 * iters);
        assert!(net.token_invariant_violation().is_none());
    }

    #[test]
    fn kill_before_first_acquire_runs_entirely_on_software() {
        let threads = 4;
        let mesh = Mesh2D::near_square(threads);
        let mut net = GlockNetwork::new(&Topology::flat(mesh), 1);
        net.schedule_line_kill(0);
        let regs = net.regs();
        let health = net.health();
        let h2 = Rc::clone(&health);
        let mut nets = [net];
        let out = run_counter_bench_with_nets(
            move |base, n| {
                Box::new(FailoverGlockBackend::new(Rc::clone(&regs), Rc::clone(&h2), base, n))
                    as _
            },
            threads,
            3,
            &mut nets,
        );
        assert_eq!(out.counter_value, 12);
        let [net] = nets;
        assert!(net.stats().grants < 12, "hardware cannot serve all tenures");
    }

    /// Drive a real mid-failover state — one thread holding through the
    /// hardware path, another parked in `DrainWait` after the line died —
    /// and round-trip both the backend and the in-flight acquire through
    /// the snapshot codec. The restored script must re-encode to the exact
    /// same bytes and behave identically: keep draining while the pre-death
    /// holder is inside its critical section, then replay on the software
    /// path the moment the drain signal lands.
    #[test]
    fn drain_wait_acquire_round_trips_through_a_snapshot() {
        use glocks_sim_base::snap::{SnapReader, SnapWriter};

        let mesh = Mesh2D::near_square(4);
        let mut net = GlockNetwork::new(&Topology::flat(mesh), 1);
        let b = FailoverGlockBackend::new(net.regs(), net.health(), Addr(0x1000), 4);

        // Thread 0 acquires through the healthy hardware path.
        let mut s0 = b.acquire(ThreadId(0));
        let mut now = 0;
        while !matches!(s0.resume(0), Step::Done) {
            net.tick(now);
            now += 1;
            assert!(now < 1_000, "healthy grant never arrived");
        }
        // Thread 1 requests while the token is out, then the line dies;
        // failure detection must escalate to the death verdict.
        let mut s1 = b.acquire(ThreadId(1));
        assert!(matches!(s1.resume(0), Step::Compute(1))); // SetReq → Spin
        net.schedule_line_kill(now);
        while !net.health().is_dead() {
            net.tick(now);
            now += 1;
            assert!(now < 100_000, "death verdict never reached");
        }
        assert!(matches!(s1.resume(0), Step::Compute(1))); // Spin → DrainWait
        assert!(matches!(s1.resume(0), Step::Compute(1))); // still draining
        assert_eq!(b.failovers.get(), 1);

        // Snapshot the backend and the mid-drain script. The script's
        // first byte is its phase tag — it must be DrainWait (2).
        let mut w = SnapWriter::new();
        b.save_state(&mut w).unwrap();
        let backend_len = {
            let mut bw = SnapWriter::new();
            b.save_state(&mut bw).unwrap();
            bw.into_bytes().len()
        };
        s1.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes[backend_len], 2, "phase tag must be DrainWait");

        // Restore into a freshly built twin sharing the same hardware
        // (regs/health are network state, restored by the network's own
        // snapshot path in a full-machine resume).
        let b2 = FailoverGlockBackend::new(net.regs(), net.health(), Addr(0x1000), 4);
        let mut r = SnapReader::new(&bytes);
        b2.load_state(&mut r).unwrap();
        let mut s1r = b2.load_acquire_script(ThreadId(1), &mut r).unwrap();
        assert_eq!(r.remaining(), 0, "decode must consume exactly what encode wrote");
        assert_eq!(b2.failovers.get(), 1);
        assert_eq!(b2.path[1].get(), Some(Path::Software));

        // Re-encoding the restored state is byte-identical.
        let mut w2 = SnapWriter::new();
        b2.save_state(&mut w2).unwrap();
        s1r.save_state(&mut w2).unwrap();
        assert_eq!(w2.into_bytes(), bytes, "restored state must re-encode identically");

        // Behavior parity: both keep draining while thread 0 holds...
        assert_eq!(s1r.resume(0), Step::Compute(1));
        assert_eq!(s1.resume(0), Step::Compute(1));
        // ...and the register write of thread 0's release is the drain
        // signal that lets the restored script replay on TATAS.
        let mut rel = b.release(ThreadId(0));
        while !matches!(rel.resume(0), Step::Done) {}
        assert!(b.regs.hw_drained());
        let step = s1r.resume(0);
        assert_eq!(step, s1.resume(0), "restored script must step in lockstep");
        assert!(matches!(step, Step::Mem(_)), "drained: replay starts on the software path");
    }

    #[test]
    fn release_without_acquire_panics() {
        let net = GlockNetwork::new(&Topology::flat(Mesh2D::new(2, 2)), 1);
        let b = FailoverGlockBackend::new(net.regs(), net.health(), Addr(0x1000), 4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.release(ThreadId(0))
        }));
        assert!(r.is_err());
    }
}
