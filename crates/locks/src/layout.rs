//! Memory-layout helpers for lock data structures.
//!
//! Every spin variable gets its own cache line (the line size of Table II
//! is 64 bytes) so that algorithms exhibit their textbook coherence
//! behavior — e.g. each MCS qnode or Anderson slot lives in a private line,
//! while TATAS contenders all hammer one line.

use glocks_sim_base::Addr;

/// Cache-line stride used to separate spin variables.
pub const LINE: u64 = 64;

/// The `i`-th line-aligned word of a region.
#[inline]
pub fn slot(base: Addr, i: u64) -> Addr {
    Addr(base.0 + i * LINE)
}

/// Size of a lock's private region given its slot count (for spacing lock
/// regions apart).
pub fn region_bytes(slots: u64) -> u64 {
    slots * LINE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_fall_in_distinct_lines() {
        let base = Addr(0x1_0000);
        let a = slot(base, 0);
        let b = slot(base, 1);
        assert_eq!(a.line(LINE).0 + 1, b.line(LINE).0);
        assert_eq!(region_bytes(33), 33 * 64);
    }
}
