//! The MCS queue lock (Mellor-Crummey & Scott) — the paper's baseline for
//! highly-contended locks: a distributed queue of waiting threads, each
//! busy-waiting on a unique, locally-cached flag.

use crate::layout::slot;
use glocks_cpu::{LockBackend, Script, Step};
use glocks_mem::{MemOp, RmwKind};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, ThreadId};

/// MCS lock memory layout:
/// * slot 0 — the tail pointer (0 = null, otherwise a qnode base address);
/// * per thread `t`, two dedicated cache lines:
///   `qnode_t.next` (slot `1 + 2t`) and `qnode_t.locked` (slot `2 + 2t`).
pub struct McsLock {
    base: Addr,
}

impl McsLock {
    pub fn new(base: Addr, _n_threads: usize) -> Self {
        McsLock { base }
    }

    fn tail(&self) -> Addr {
        slot(self.base, 0)
    }

    fn qnode_next(&self, tid: ThreadId) -> Addr {
        slot(self.base, 1 + 2 * tid.index() as u64)
    }

    fn qnode_locked(&self, tid: ThreadId) -> Addr {
        slot(self.base, 2 + 2 * tid.index() as u64)
    }
}

enum AcqState {
    /// `my.next := null`
    ClearNext,
    /// `pred := swap(tail, my_node)`
    Swap,
    /// Examine `pred`.
    GotPred,
    /// `my.locked := true` done; now `pred.next := my_node`.
    SetLocked { pred_next: Addr },
    /// Link stored; start spinning on `my.locked`.
    Linked,
    /// Spin until `my.locked == 0`.
    Spinning,
}

struct McsAcquire {
    tail: Addr,
    my_node: u64,
    my_next: Addr,
    my_locked: Addr,
    state: AcqState,
}

impl Script for McsAcquire {
    fn resume(&mut self, last: u64) -> Step {
        match self.state {
            AcqState::ClearNext => {
                self.state = AcqState::Swap;
                Step::Mem(MemOp::Store(self.my_next, 0))
            }
            AcqState::Swap => {
                self.state = AcqState::GotPred;
                Step::Mem(MemOp::Rmw(self.tail, RmwKind::Swap(self.my_node)))
            }
            AcqState::GotPred => {
                let pred = last;
                if pred == 0 {
                    return Step::Done; // queue was empty: we own the lock
                }
                // pred.next lives at pred + LINE (qnode base = next field).
                self.state = AcqState::SetLocked { pred_next: Addr(pred) };
                Step::Mem(MemOp::Store(self.my_locked, 1))
            }
            AcqState::SetLocked { pred_next } => {
                self.state = AcqState::Linked;
                Step::Mem(MemOp::Store(pred_next, self.my_node))
            }
            AcqState::Linked => {
                self.state = AcqState::Spinning;
                Step::Mem(MemOp::Load(self.my_locked))
            }
            AcqState::Spinning => {
                if last == 0 {
                    Step::Done
                } else {
                    Step::Mem(MemOp::Load(self.my_locked))
                }
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self.state {
            AcqState::ClearNext => w.u8(0),
            AcqState::Swap => w.u8(1),
            AcqState::GotPred => w.u8(2),
            AcqState::SetLocked { pred_next } => {
                w.u8(3);
                w.u64(pred_next.0);
            }
            AcqState::Linked => w.u8(4),
            AcqState::Spinning => w.u8(5),
        }
        Ok(())
    }
}

enum RelState {
    /// `next := my.next`
    ReadNext,
    /// Decide: successor present or CAS the tail.
    GotNext,
    /// `compare&swap(tail, my_node, 0)` issued.
    CasIssued,
    /// CAS failed: a successor is linking; spin on `my.next`.
    WaitLink,
    /// `successor.locked := 0`
    Unlock { locked_addr: Addr },
    Finished,
}

struct McsRelease {
    tail: Addr,
    my_node: u64,
    my_next: Addr,
    state: RelState,
}

impl McsRelease {
    /// The `locked` field of the successor qnode whose *base* (= the `next`
    /// field's address) is `node`.
    fn locked_of(node: u64) -> Addr {
        Addr(node + crate::layout::LINE)
    }
}

impl Script for McsRelease {
    fn resume(&mut self, last: u64) -> Step {
        loop {
            match self.state {
                RelState::ReadNext => {
                    self.state = RelState::GotNext;
                    return Step::Mem(MemOp::Load(self.my_next));
                }
                RelState::GotNext => {
                    if last == 0 {
                        // No visible successor: try to swing tail to null.
                        self.state = RelState::CasIssued;
                        return Step::Mem(MemOp::Rmw(
                            self.tail,
                            RmwKind::CompareAndSwap { expected: self.my_node, new: 0 },
                        ));
                    }
                    self.state = RelState::Unlock { locked_addr: Self::locked_of(last) };
                    // fall through next loop iteration
                }
                RelState::CasIssued => {
                    if last == self.my_node {
                        // CAS succeeded: the queue is empty.
                        self.state = RelState::Finished;
                        return Step::Done;
                    }
                    // A successor is mid-link: wait for pred.next to appear.
                    self.state = RelState::WaitLink;
                    return Step::Mem(MemOp::Load(self.my_next));
                }
                RelState::WaitLink => {
                    if last == 0 {
                        return Step::Mem(MemOp::Load(self.my_next));
                    }
                    self.state = RelState::Unlock { locked_addr: Self::locked_of(last) };
                }
                RelState::Unlock { locked_addr } => {
                    self.state = RelState::Finished;
                    return Step::Mem(MemOp::Store(locked_addr, 0));
                }
                RelState::Finished => return Step::Done,
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self.state {
            RelState::ReadNext => w.u8(0),
            RelState::GotNext => w.u8(1),
            RelState::CasIssued => w.u8(2),
            RelState::WaitLink => w.u8(3),
            RelState::Unlock { locked_addr } => {
                w.u8(4);
                w.u64(locked_addr.0);
            }
            RelState::Finished => w.u8(5),
        }
        Ok(())
    }
}

impl LockBackend for McsLock {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(McsAcquire {
            tail: self.tail(),
            my_node: self.qnode_next(tid).0,
            my_next: self.qnode_next(tid),
            my_locked: self.qnode_locked(tid),
            state: AcqState::ClearNext,
        })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(McsRelease {
            tail: self.tail(),
            my_node: self.qnode_next(tid).0,
            my_next: self.qnode_next(tid),
            state: RelState::ReadNext,
        })
    }

    fn name(&self) -> &'static str {
        "MCS"
    }

    // The queue (tail pointer, qnodes) lives entirely in simulated memory.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Ok(())
    }

    fn load_state(&self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }

    fn load_acquire_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let state = match r.u8()? {
            0 => AcqState::ClearNext,
            1 => AcqState::Swap,
            2 => AcqState::GotPred,
            3 => AcqState::SetLocked { pred_next: Addr(r.u64()?) },
            4 => AcqState::Linked,
            5 => AcqState::Spinning,
            tag => return Err(SnapError::BadTag { what: "mcs acquire state", tag: u64::from(tag) }),
        };
        Ok(Box::new(McsAcquire {
            tail: self.tail(),
            my_node: self.qnode_next(tid).0,
            my_next: self.qnode_next(tid),
            my_locked: self.qnode_locked(tid),
            state,
        }))
    }

    fn load_release_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let state = match r.u8()? {
            0 => RelState::ReadNext,
            1 => RelState::GotNext,
            2 => RelState::CasIssued,
            3 => RelState::WaitLink,
            4 => RelState::Unlock { locked_addr: Addr(r.u64()?) },
            5 => RelState::Finished,
            tag => return Err(SnapError::BadTag { what: "mcs release state", tag: u64::from(tag) }),
        };
        Ok(Box::new(McsRelease {
            tail: self.tail(),
            my_node: self.qnode_next(tid).0,
            my_next: self.qnode_next(tid),
            state,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench;

    #[test]
    fn mcs_is_correct_under_contention() {
        let outcome = run_counter_bench(|base, n| Box::new(McsLock::new(base, n)) as _, 8, 5);
        assert_eq!(outcome.counter_value, 40);
    }

    #[test]
    fn mcs_32_cores() {
        let outcome = run_counter_bench(|base, n| Box::new(McsLock::new(base, n)) as _, 32, 2);
        assert_eq!(outcome.counter_value, 64);
    }

    #[test]
    fn mcs_single_thread_uncontended() {
        let outcome = run_counter_bench(|base, n| Box::new(McsLock::new(base, n)) as _, 1, 6);
        assert_eq!(outcome.counter_value, 6);
    }

    #[test]
    fn mcs_is_fifo_under_pileup() {
        let outcome = run_counter_bench(|base, n| Box::new(McsLock::new(base, n)) as _, 8, 3);
        let g = &outcome.grant_order;
        // swap() order defines the queue; each subsequent round must follow
        // the same cyclic order because every thread re-enqueues promptly.
        let first: Vec<ThreadId> = g[..8].to_vec();
        for r in 1..3 {
            assert_eq!(&g[r * 8..(r + 1) * 8], first.as_slice(), "round {r}");
        }
    }

    #[test]
    fn mcs_spins_locally() {
        // MCS's signature property: while waiting, each thread loads its
        // own locked flag, which stays cached — byte *rate* on the network
        // must be far below Simple lock's.
        let mcs = run_counter_bench(|base, n| Box::new(McsLock::new(base, n)) as _, 8, 4);
        let simple = run_counter_bench(
            |base, _n| Box::new(crate::tatas::TatasLock::simple(base)) as _,
            8,
            4,
        );
        let mcs_rate = mcs.total_bytes as f64 / mcs.cycles as f64;
        let simple_rate = simple.total_bytes as f64 / simple.cycles as f64;
        assert!(
            mcs_rate < simple_rate,
            "MCS rate {mcs_rate:.3} !< Simple rate {simple_rate:.3}"
        );
    }
}
