//! Core-side driver for MP-Locks (related work \[14\]): acquire sends a
//! `Req` message to the kernel lock manager over the main data network and
//! busy-waits on the NIC's grant flag; release sends `Rel` and returns
//! immediately. Like GLocks this avoids coherence storms on a lock
//! variable — but the messages share the data NoC and pay a software
//! manager latency, which is exactly the gap the paper's dedicated G-line
//! network closes.

use glocks_cpu::{LockBackend, Script, Step};
use glocks_mem::mplock::MpFabric;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{CoreId, ThreadId};
use std::rc::Rc;

/// One workload lock backed by a message-passing lock manager.
pub struct MpLockBackend {
    fabric: Rc<MpFabric>,
    /// The MP-lock id this backend drives (its manager lives at tile
    /// `lock_id % tiles`).
    lock_id: u16,
}

impl MpLockBackend {
    pub fn new(fabric: Rc<MpFabric>, lock_id: u16) -> Self {
        MpLockBackend { fabric, lock_id }
    }
}

enum AcqPhase {
    Send,
    Spin,
}

struct MpAcquire {
    fabric: Rc<MpFabric>,
    lock_id: u16,
    core: CoreId,
    phase: AcqPhase,
}

impl Script for MpAcquire {
    fn resume(&mut self, _last: u64) -> Step {
        match self.phase {
            AcqPhase::Send => {
                self.fabric.request(self.core, self.lock_id);
                self.phase = AcqPhase::Spin;
                // the send instruction
                Step::Compute(2)
            }
            AcqPhase::Spin => {
                if self.fabric.take_grant(self.core, self.lock_id) {
                    Step::Done
                } else {
                    // poll the NIC grant flag
                    Step::Compute(1)
                }
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.phase {
            AcqPhase::Send => 0,
            AcqPhase::Spin => 1,
        });
        Ok(())
    }
}

struct MpRelease {
    fabric: Rc<MpFabric>,
    lock_id: u16,
    core: CoreId,
    done: bool,
}

impl Script for MpRelease {
    fn resume(&mut self, _last: u64) -> Step {
        if self.done {
            Step::Done
        } else {
            self.done = true;
            self.fabric.release(self.core, self.lock_id);
            Step::Compute(2)
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.bool(self.done);
        Ok(())
    }
}

impl LockBackend for MpLockBackend {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(MpAcquire {
            fabric: Rc::clone(&self.fabric),
            lock_id: self.lock_id,
            core: CoreId(tid.0),
            phase: AcqPhase::Send,
        })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(MpRelease {
            fabric: Rc::clone(&self.fabric),
            lock_id: self.lock_id,
            core: CoreId(tid.0),
            done: false,
        })
    }

    fn name(&self) -> &'static str {
        "MP-Lock"
    }

    // The fabric (outbox, grant flags) is saved with the memory system.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Ok(())
    }

    fn load_state(&self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }

    fn load_acquire_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let phase = match r.u8()? {
            0 => AcqPhase::Send,
            1 => AcqPhase::Spin,
            tag => {
                return Err(SnapError::BadTag { what: "mp-lock acquire phase", tag: u64::from(tag) })
            }
        };
        Ok(Box::new(MpAcquire {
            fabric: Rc::clone(&self.fabric),
            lock_id: self.lock_id,
            core: CoreId(tid.0),
            phase,
        }))
    }

    fn load_release_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        Ok(Box::new(MpRelease {
            fabric: Rc::clone(&self.fabric),
            lock_id: self.lock_id,
            core: CoreId(tid.0),
            done: r.bool()?,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench_with_mem;

    #[test]
    fn mp_lock_is_correct_under_contention() {
        let out = run_counter_bench_with_mem(
            |mem, _base, _n| Box::new(MpLockBackend::new(mem.mp_fabric(), 0)) as _,
            8,
            5,
        );
        assert_eq!(out.counter_value, 40);
    }

    #[test]
    fn mp_lock_is_fifo() {
        let out = run_counter_bench_with_mem(
            |mem, _base, _n| Box::new(MpLockBackend::new(mem.mp_fabric(), 0)) as _,
            8,
            3,
        );
        let g = &out.grant_order;
        let first: Vec<_> = g[..8].to_vec();
        for r in 1..3 {
            assert_eq!(&g[r * 8..(r + 1) * 8], first.as_slice(), "round {r}");
        }
    }

    #[test]
    fn mp_lock_beats_simple_lock_traffic_rate() {
        let mp = run_counter_bench_with_mem(
            |mem, _base, _n| Box::new(MpLockBackend::new(mem.mp_fabric(), 0)) as _,
            8,
            4,
        );
        let simple = run_counter_bench_with_mem(
            |_mem, base, _n| Box::new(crate::tatas::TatasLock::simple(base)) as _,
            8,
            4,
        );
        let mp_rate = mp.total_bytes as f64 / mp.cycles as f64;
        let simple_rate = simple.total_bytes as f64 / simple.cycles as f64;
        assert!(
            mp_rate < simple_rate,
            "MP-Lock byte rate {mp_rate:.3} !< Simple {simple_rate:.3}"
        );
    }
}
