//! Ticket Lock: a `fetch&increment` ticket counter plus a now-serving
//! counter (Section II).

use crate::layout::slot;
use glocks_cpu::{LockBackend, Script, Step};
use glocks_mem::{MemOp, RmwKind};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, ThreadId};
use std::cell::Cell;
use std::rc::Rc;

/// FIFO ticket lock. The two counters live in distinct cache lines.
pub struct TicketLock {
    ticket: Addr,
    serving: Addr,
    /// Each thread's current ticket, carried from acquire to release
    /// (shared with the in-flight acquire script).
    my_ticket: Vec<Rc<Cell<u64>>>,
}

impl TicketLock {
    pub fn new(base: Addr, n_threads: usize) -> Self {
        TicketLock {
            ticket: slot(base, 0),
            serving: slot(base, 1),
            my_ticket: (0..n_threads).map(|_| Rc::new(Cell::new(0))).collect(),
        }
    }
}

enum AcqState {
    TakeTicket,
    GotTicket,
    Spinning,
}

struct TicketAcquire {
    ticket: Addr,
    serving: Addr,
    state: AcqState,
    mine: Rc<Cell<u64>>,
}

impl Script for TicketAcquire {
    fn resume(&mut self, last: u64) -> Step {
        match self.state {
            AcqState::TakeTicket => {
                // my_ticket := fetch&increment(next_ticket)
                self.state = AcqState::GotTicket;
                Step::Mem(MemOp::Rmw(self.ticket, RmwKind::FetchAdd(1)))
            }
            AcqState::GotTicket => {
                self.mine.set(last);
                self.state = AcqState::Spinning;
                Step::Mem(MemOp::Load(self.serving))
            }
            AcqState::Spinning => {
                // busy-wait until now_serving == my_ticket
                if last == self.mine.get() {
                    Step::Done
                } else {
                    Step::Mem(MemOp::Load(self.serving))
                }
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.state {
            AcqState::TakeTicket => 0,
            AcqState::GotTicket => 1,
            AcqState::Spinning => 2,
        });
        Ok(())
    }
}

struct TicketRelease {
    serving: Addr,
    next: u64,
    done: bool,
}

impl Script for TicketRelease {
    fn resume(&mut self, _last: u64) -> Step {
        if self.done {
            Step::Done
        } else {
            self.done = true;
            // now_serving := my_ticket + 1
            Step::Mem(MemOp::Store(self.serving, self.next))
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.next);
        w.bool(self.done);
        Ok(())
    }
}

impl LockBackend for TicketLock {
    fn acquire(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(TicketAcquire {
            ticket: self.ticket,
            serving: self.serving,
            state: AcqState::TakeTicket,
            mine: Rc::clone(&self.my_ticket[tid.index()]),
        })
    }

    fn release(&self, tid: ThreadId) -> Box<dyn Script> {
        Box::new(TicketRelease {
            serving: self.serving,
            next: self.my_ticket[tid.index()].get() + 1,
            done: false,
        })
    }

    fn name(&self) -> &'static str {
        "Ticket"
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.my_ticket.len());
        for t in &self.my_ticket {
            w.u64(t.get());
        }
        Ok(())
    }

    fn load_state(&self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.usize()? != self.my_ticket.len() {
            return Err(SnapError::Corrupt { what: "ticket lock thread count" });
        }
        for t in &self.my_ticket {
            t.set(r.u64()?);
        }
        Ok(())
    }

    fn load_acquire_script(
        &self,
        tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        let state = match r.u8()? {
            0 => AcqState::TakeTicket,
            1 => AcqState::GotTicket,
            2 => AcqState::Spinning,
            tag => {
                return Err(SnapError::BadTag { what: "ticket acquire state", tag: u64::from(tag) })
            }
        };
        Ok(Box::new(TicketAcquire {
            ticket: self.ticket,
            serving: self.serving,
            state,
            mine: Rc::clone(&self.my_ticket[tid.index()]),
        }))
    }

    fn load_release_script(
        &self,
        _tid: ThreadId,
        r: &mut SnapReader<'_>,
    ) -> Result<Box<dyn Script>, SnapError> {
        Ok(Box::new(TicketRelease { serving: self.serving, next: r.u64()?, done: r.bool()? }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::run_counter_bench;

    #[test]
    fn ticket_lock_is_correct() {
        let outcome = run_counter_bench(|base, n| Box::new(TicketLock::new(base, n)) as _, 8, 5);
        assert_eq!(outcome.counter_value, 40);
    }

    #[test]
    fn ticket_lock_is_fifo() {
        // All 8 threads pile up; after the first round the grant order must
        // repeat in exactly the same sequence (FIFO tickets).
        let outcome = run_counter_bench(|base, n| Box::new(TicketLock::new(base, n)) as _, 8, 3);
        let g = &outcome.grant_order;
        assert_eq!(g.len(), 24);
        let first_round: Vec<ThreadId> = g[..8].to_vec();
        for r in 1..3 {
            assert_eq!(&g[r * 8..(r + 1) * 8], first_round.as_slice(), "round {r}");
        }
    }

    #[test]
    fn two_thread_handoff() {
        let outcome = run_counter_bench(|base, n| Box::new(TicketLock::new(base, n)) as _, 2, 10);
        assert_eq!(outcome.counter_value, 20);
    }
}
