//! Shared test harness for lock implementations: a non-atomic
//! counter-increment critical section over the full simulator stack.
//!
//! The critical section is deliberately a load / compute / store sequence
//! (not an atomic RMW), so any mutual-exclusion failure shows up as a lost
//! update in the final counter value — in addition to the tracker's panic.

use glocks::GlockNetwork;
use glocks_cpu::{Action, Backends, BarrierBackend, Core, FixedScript, LockBackend, LockTracker, Script, Workload};
use glocks_mem::{MemOp, MemorySystem};
use glocks_noc::TrafficClass;
use glocks_sim_base::{Addr, CmpConfig, CoreId, LockId, ThreadId};

/// Outcome of a counter bench run.
pub struct BenchOutcome {
    pub counter_value: u64,
    pub cycles: u64,
    pub coherence_bytes: u64,
    pub total_bytes: u64,
    pub grant_order: Vec<ThreadId>,
    pub lock_cycles_total: u64,
}

struct NullBarrier;

impl BarrierBackend for NullBarrier {
    fn wait(&self, _tid: ThreadId) -> Box<dyn Script> {
        Box::new(FixedScript::new(0))
    }
}

enum Phase {
    Acquire,
    LoadCounter,
    Think,
    StoreCounter,
    Release,
    Rest,
}

/// `iters` × { acquire; counter++ (non-atomically); release; rest }.
struct CounterLoop {
    counter: Addr,
    iters_left: u64,
    phase: Phase,
    seen: u64,
}

impl Workload for CounterLoop {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            Phase::Acquire => {
                if self.iters_left == 0 {
                    return Action::Done;
                }
                self.phase = Phase::LoadCounter;
                Action::Acquire(LockId(0))
            }
            Phase::LoadCounter => {
                self.phase = Phase::Think;
                Action::Mem(MemOp::Load(self.counter))
            }
            Phase::Think => {
                self.seen = last;
                self.phase = Phase::StoreCounter;
                Action::Compute(4)
            }
            Phase::StoreCounter => {
                self.phase = Phase::Release;
                Action::Mem(MemOp::Store(self.counter, self.seen + 1))
            }
            Phase::Release => {
                self.iters_left -= 1;
                self.phase = Phase::Rest;
                Action::Release(LockId(0))
            }
            Phase::Rest => {
                self.phase = Phase::Acquire;
                Action::Compute(8)
            }
        }
    }
}

/// Run the counter bench over the backend produced by `make` (which may
/// inspect the memory system, e.g. for the MP-Locks NIC), optionally
/// ticking hardware lock networks each cycle.
pub fn run_counter_bench_full(
    make: impl FnOnce(&MemorySystem, Addr, usize) -> Box<dyn LockBackend>,
    threads: usize,
    iters: u64,
    nets: &mut [GlockNetwork],
) -> BenchOutcome {
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let mut mem = MemorySystem::new(&cfg);
    // The lock region and the counter live apart.
    let lock_base = Addr(0x10_000);
    let counter = Addr(0x80_000);
    let backend = make(&mem, lock_base, threads);
    let locks: Vec<Box<dyn LockBackend>> = vec![backend];
    let barrier = NullBarrier;
    let backends = Backends { locks: &locks, barrier: &barrier };
    let mut tracker = LockTracker::new(1, threads);
    let mut cores: Vec<Core> = (0..threads)
        .map(|i| {
            Core::new(
                CoreId(i as u16),
                cfg.issue_width,
                Box::new(CounterLoop {
                    counter,
                    iters_left: iters,
                    phase: Phase::Acquire,
                    seen: 0,
                }),
            )
        })
        .collect();
    let mut now = 0u64;
    loop {
        let mut all_done = true;
        for core in &mut cores {
            core.tick(now, &mut mem, &backends, &mut tracker);
            all_done &= core.is_finished();
        }
        mem.tick(now);
        for net in nets.iter_mut() {
            net.tick(now);
            net.assert_token_invariants();
        }
        tracker.sample();
        if all_done {
            break;
        }
        now += 1;
        assert!(now < 200_000_000, "lock bench hung at cycle {now}");
    }
    assert!(tracker.all_quiet(), "locks still held at the end");
    let lock_cycles_total = cores.iter().map(|c| c.breakdown().lock).sum();
    BenchOutcome {
        counter_value: mem.store().load(counter),
        cycles: now,
        coherence_bytes: mem.traffic().bytes(TrafficClass::Coherence)
            + mem.traffic().bytes(TrafficClass::Reply),
        total_bytes: mem.traffic().total_bytes(),
        grant_order: tracker.grant_log(LockId(0)).to_vec(),
        lock_cycles_total,
    }
}

/// Variant with hardware GLock networks.
pub fn run_counter_bench_with_nets(
    make: impl FnOnce(Addr, usize) -> Box<dyn LockBackend>,
    threads: usize,
    iters: u64,
    nets: &mut [GlockNetwork],
) -> BenchOutcome {
    run_counter_bench_full(|_mem, base, n| make(base, n), threads, iters, nets)
}

/// Variant whose factory inspects the memory system (MP-Locks NIC).
pub fn run_counter_bench_with_mem(
    make: impl FnOnce(&MemorySystem, Addr, usize) -> Box<dyn LockBackend>,
    threads: usize,
    iters: u64,
) -> BenchOutcome {
    run_counter_bench_full(make, threads, iters, &mut [])
}

/// Software-lock variant (no hardware networks).
pub fn run_counter_bench(
    make: impl FnOnce(Addr, usize) -> Box<dyn LockBackend>,
    threads: usize,
    iters: u64,
) -> BenchOutcome {
    run_counter_bench_full(|_mem, base, n| make(base, n), threads, iters, &mut [])
}
