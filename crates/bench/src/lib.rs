//! Shared helpers for the Criterion benches.
//!
//! Each bench target regenerates one of the paper's tables/figures at a
//! reduced scale (so `cargo bench` stays tractable) while measuring the
//! simulator's own throughput. The *full-scale* numbers in EXPERIMENTS.md
//! come from the `glocks-experiments` binary in `glocks-harness`.

use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, SimReport, Simulation, SimulationOptions};
use glocks_sim_base::CmpConfig;
use glocks_workloads::{BenchConfig, BenchKind};

/// Thread count used by the benches (small enough for quick iterations).
pub const BENCH_THREADS: usize = 8;

/// Run one benchmark at bench scale and return its report (verified).
pub fn run_case(kind: BenchKind, algo: LockAlgorithm, threads: usize) -> SimReport {
    let bench = BenchConfig::smoke(kind, threads);
    let mapping = LockMapping::hybrid(&bench.hc_locks(), algo, bench.n_locks());
    run_mapped(&bench, &mapping)
}

/// Run with an explicit mapping.
pub fn run_mapped(bench: &BenchConfig, mapping: &LockMapping) -> SimReport {
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(bench.threads);
    let sim = Simulation::new(
        &cfg,
        mapping,
        inst.workloads,
        &inst.init,
        SimulationOptions::default(),
    );
    let (report, mem) = sim.run().expect("simulation wedged");
    (inst.verify)(mem.store()).expect("bench case must verify");
    report
}
