//! Benches for the beyond-the-paper mechanisms: dynamic GLock sharing,
//! the reactive lock, and the G-line barrier network.

use criterion::{criterion_group, criterion_main, Criterion};
use glocks::barrier::GBarrierNetwork;
use glocks::{GlockPool, GlockRegisters, PoolDecision, Topology};
use glocks_bench::run_mapped;
use glocks_locks::LockAlgorithm;
use glocks_sim::LockMapping;
use glocks_sim_base::Mesh2D;
use glocks_workloads::{BenchConfig, BenchKind};

fn extensions(c: &mut Criterion) {
    // One-shot metric prints.
    {
        let bench = BenchConfig::smoke(BenchKind::Raytr, 8);
        let stat = run_mapped(
            &bench,
            &LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks()),
        );
        let dynq = run_mapped(
            &bench,
            &LockMapping::uniform(LockAlgorithm::DynamicGlock, bench.n_locks()),
        );
        println!(
            "extensions raytr-8: static {} vs dynamic {} cycles (pool {:?})",
            stat.cycles,
            dynq.cycles,
            dynq.pool
        );
    }
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("dynamic_glock_raytr8", |b| {
        let bench = BenchConfig::smoke(BenchKind::Raytr, 8);
        let mapping = LockMapping::uniform(LockAlgorithm::DynamicGlock, bench.n_locks());
        b.iter(|| run_mapped(&bench, &mapping).cycles)
    });
    g.bench_function("reactive_sctr8", |b| {
        let bench = BenchConfig::smoke(BenchKind::Sctr, 8);
        let mapping = LockMapping::uniform(LockAlgorithm::Reactive, bench.n_locks());
        b.iter(|| run_mapped(&bench, &mapping).cycles)
    });
    g.bench_function("pool_bind_unbind", |b| {
        let pool = GlockPool::new(vec![GlockRegisters::new(8), GlockRegisters::new(8)]);
        b.iter(|| {
            let d = pool.begin_acquire(3);
            pool.end_release(3);
            matches!(d, PoolDecision::Hardware(_))
        })
    });
    g.bench_function("gline_barrier_1000_episodes", |b| {
        let topo = Topology::flat(Mesh2D::near_square(32));
        b.iter(|| {
            let mut net = GBarrierNetwork::new(&topo, 1);
            let regs = net.regs();
            let mut now = 0u64;
            while net.episodes() < 1000 {
                for c in 0..32 {
                    regs.set_arrive(c);
                }
                while (0..32).any(|c| regs.waiting(c)) {
                    net.tick(now);
                    now += 1;
                }
            }
            now
        })
    });
    g.finish();
}

criterion_group!(benches, extensions);
criterion_main!(benches);
