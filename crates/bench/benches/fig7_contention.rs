//! Figure 7: the grAC contention-rate analysis under TATAS.

use criterion::{criterion_group, criterion_main, Criterion};
use glocks_bench::{run_mapped, BENCH_THREADS};
use glocks_locks::LockAlgorithm;
use glocks_sim::LockMapping;
use glocks_workloads::{contention::summarize, BenchConfig, BenchKind};

fn fig7(c: &mut Criterion) {
    // Print the LCR decomposition once.
    for kind in [BenchKind::Sctr, BenchKind::Actr, BenchKind::Qsort] {
        let bench = BenchConfig::smoke(kind, BENCH_THREADS);
        let mapping = LockMapping::uniform(LockAlgorithm::Tatas, bench.n_locks());
        let r = run_mapped(&bench, &mapping);
        for (i, s) in summarize(&r.lcr).iter().enumerate() {
            println!(
                "fig7 {}-L{}: weight {:.2} buckets {:?}",
                kind.name(),
                i + 1,
                s.weight,
                s.buckets
            );
        }
    }
    let mut g = c.benchmark_group("fig7_contention");
    g.sample_size(10);
    for kind in [BenchKind::Sctr, BenchKind::Prco] {
        g.bench_function(kind.name(), |b| {
            let bench = BenchConfig::smoke(kind, BENCH_THREADS);
            let mapping = LockMapping::uniform(LockAlgorithm::Tatas, bench.n_locks());
            b.iter(|| run_mapped(&bench, &mapping).lcr.len())
        });
    }
    g.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
