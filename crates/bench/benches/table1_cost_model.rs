//! Table I: the GLock cost model (pure computation, so this bench also
//! guards the topology builder's performance).

use criterion::{criterion_group, criterion_main, Criterion};
use glocks::{GlockCost, Topology};
use glocks_sim_base::Mesh2D;

fn table1(c: &mut Criterion) {
    for n in [9usize, 32, 49] {
        let cost = GlockCost::for_cores(n);
        println!(
            "table1 {n} cores: {} G-lines, {} secondaries, acq {}..{} cycles",
            cost.glines, cost.secondary_managers, cost.acquire_best_cycles, cost.acquire_worst_cycles
        );
    }
    let mut g = c.benchmark_group("table1_cost_model");
    g.bench_function("flat_topology_32", |b| {
        b.iter(|| Topology::flat(Mesh2D::near_square(32)).gline_count())
    });
    g.bench_function("hierarchical_topology_100", |b| {
        b.iter(|| Topology::hierarchical(Mesh2D::near_square(100), 7).gline_count())
    });
    g.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
