//! Figure 1: Raytrace under TATAS / TATAS-1 / TATAS-2 / IDEAL.
//! Regenerates the figure's rows (printed once) and benches each config.

use criterion::{criterion_group, criterion_main, Criterion};
use glocks_bench::{run_mapped, BENCH_THREADS};
use glocks_locks::LockAlgorithm;
use glocks_sim::LockMapping;
use glocks_workloads::{BenchConfig, BenchKind};

fn fig1(c: &mut Criterion) {
    let bench = BenchConfig::smoke(BenchKind::Raytr, BENCH_THREADS);
    let hc = bench.hc_locks();
    let n = bench.n_locks();
    let configs: Vec<(&str, LockMapping)> = vec![
        ("tatas", LockMapping::tatas_x(&hc, 0, n)),
        ("tatas_1", LockMapping::tatas_x(&hc, 1, n)),
        ("tatas_2", LockMapping::tatas_x(&hc, 2, n)),
        ("ideal", LockMapping::uniform(LockAlgorithm::Ideal, n)),
    ];
    // Print the figure's series once.
    let base = run_mapped(&bench, &configs[0].1).cycles as f64;
    for (name, m) in &configs {
        let r = run_mapped(&bench, m);
        println!("fig1 {name}: {} cycles (normalized {:.2})", r.cycles, r.cycles as f64 / base);
    }
    let mut g = c.benchmark_group("fig1_raytrace_ideal");
    g.sample_size(10);
    for (name, m) in configs {
        let b = bench;
        g.bench_function(name, |bch| bch.iter(|| run_mapped(&b, &m).cycles));
    }
    g.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
