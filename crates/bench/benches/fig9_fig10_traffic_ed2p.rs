//! Figures 9 and 10: network traffic and ED2P, GLocks vs MCS (the same
//! simulations produce both metrics).

use criterion::{criterion_group, criterion_main, Criterion};
use glocks_bench::{run_case, BENCH_THREADS};
use glocks_locks::LockAlgorithm;
use glocks_workloads::BenchKind;

fn fig9_fig10(c: &mut Criterion) {
    for kind in BenchKind::ALL {
        let mcs = run_case(kind, LockAlgorithm::Mcs, BENCH_THREADS);
        let gl = run_case(kind, LockAlgorithm::Glock, BENCH_THREADS);
        println!(
            "fig9 {}: traffic GL/MCS {:.2} | fig10 ED2P GL/MCS {:.2}",
            kind.name(),
            gl.traffic.total_bytes() as f64 / mcs.traffic.total_bytes() as f64,
            gl.ed2p / mcs.ed2p,
        );
    }
    let mut g = c.benchmark_group("fig9_fig10");
    g.sample_size(10);
    g.bench_function("sctr_traffic_and_ed2p", |b| {
        b.iter(|| {
            let r = run_case(BenchKind::Sctr, LockAlgorithm::Glock, BENCH_THREADS);
            (r.traffic.total_bytes(), r.ed2p as u64)
        })
    });
    g.finish();
}

criterion_group!(benches, fig9_fig10);
criterion_main!(benches);
