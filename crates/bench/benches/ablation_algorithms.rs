//! Ablation: the full lock-algorithm sweep on SCTR (low vs high
//! contention crossover).

use criterion::{criterion_group, criterion_main, Criterion};
use glocks_bench::run_mapped;
use glocks_locks::LockAlgorithm;
use glocks_sim::LockMapping;
use glocks_workloads::{BenchConfig, BenchKind};

fn ablation(c: &mut Criterion) {
    let algos = [
        LockAlgorithm::Simple,
        LockAlgorithm::Tatas,
        LockAlgorithm::TatasBackoff,
        LockAlgorithm::Ticket,
        LockAlgorithm::Anderson,
        LockAlgorithm::Mcs,
        LockAlgorithm::Glock,
        LockAlgorithm::Ideal,
    ];
    for algo in algos {
        let bench = BenchConfig::smoke(BenchKind::Sctr, 8);
        let r = run_mapped(&bench, &LockMapping::uniform(algo, 1));
        println!("ablation sctr-8 {}: {} cycles", algo.name(), r.cycles);
    }
    let mut g = c.benchmark_group("ablation_algorithms");
    g.sample_size(10);
    for algo in [LockAlgorithm::Tatas, LockAlgorithm::Mcs, LockAlgorithm::Glock] {
        g.bench_function(algo.name(), |b| {
            let bench = BenchConfig::smoke(BenchKind::Sctr, 8);
            let mapping = LockMapping::uniform(algo, 1);
            b.iter(|| run_mapped(&bench, &mapping).cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
