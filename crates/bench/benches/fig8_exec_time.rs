//! Figure 8: normalized execution time, GLocks vs MCS, every benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use glocks_bench::{run_case, BENCH_THREADS};
use glocks_locks::LockAlgorithm;
use glocks_workloads::BenchKind;

fn fig8(c: &mut Criterion) {
    for kind in BenchKind::ALL {
        let mcs = run_case(kind, LockAlgorithm::Mcs, BENCH_THREADS);
        let gl = run_case(kind, LockAlgorithm::Glock, BENCH_THREADS);
        println!(
            "fig8 {}: MCS {} GL {} (normalized {:.2})",
            kind.name(),
            mcs.cycles,
            gl.cycles,
            gl.cycles as f64 / mcs.cycles as f64
        );
    }
    let mut g = c.benchmark_group("fig8_exec_time");
    g.sample_size(10);
    for kind in [BenchKind::Sctr, BenchKind::Dbll, BenchKind::Raytr] {
        g.bench_function(format!("{}_mcs", kind.name()), |b| {
            b.iter(|| run_case(kind, LockAlgorithm::Mcs, BENCH_THREADS).cycles)
        });
        g.bench_function(format!("{}_glock", kind.name()), |b| {
            b.iter(|| run_case(kind, LockAlgorithm::Glock, BENCH_THREADS).cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
