//! Microbenchmarks of the GLock hardware model itself: raw grant
//! throughput of one G-line network under full contention, flat vs
//! hierarchical, and across G-line latencies.

use criterion::{criterion_group, criterion_main, Criterion};
use glocks::{GlockNetwork, Topology};
use glocks_sim_base::Mesh2D;

/// Saturate a network: every core requests, holder releases immediately;
/// returns simulated cycles for `grants` grants.
fn saturate(topo: &Topology, latency: u64, grants: u64) -> u64 {
    let mut net = GlockNetwork::new(topo, latency);
    let regs = net.regs();
    for c in 0..topo.n_cores {
        regs.set_req(c);
    }
    let mut done = 0;
    let mut now = 0;
    while done < grants {
        net.tick(now);
        if let Some(h) = net.holder() {
            done += 1;
            regs.set_rel(h.index());
            regs.set_req(h.index());
        }
        now += 1;
        assert!(now < grants * 100, "network stalled");
    }
    now
}

fn glock_network(c: &mut Criterion) {
    let flat32 = Topology::flat(Mesh2D::near_square(32));
    let hier64 = Topology::hierarchical(Mesh2D::near_square(64), 7);
    println!(
        "glock saturated handoff: flat32 {:.2} cycles/grant, hier64 {:.2} cycles/grant",
        saturate(&flat32, 1, 1000) as f64 / 1000.0,
        saturate(&hier64, 1, 1000) as f64 / 1000.0
    );
    let mut g = c.benchmark_group("glock_network");
    g.bench_function("flat32_1000_grants", |b| b.iter(|| saturate(&flat32, 1, 1000)));
    g.bench_function("hier64_1000_grants", |b| b.iter(|| saturate(&hier64, 1, 1000)));
    g.bench_function("flat32_latency4", |b| b.iter(|| saturate(&flat32, 4, 1000)));
    g.finish();
}

criterion_group!(benches, glock_network);
criterion_main!(benches);
