//! Table IV: application speedups across core counts, MCS vs GLocks.

use criterion::{criterion_group, criterion_main, Criterion};
use glocks_bench::run_case;
use glocks_locks::LockAlgorithm;
use glocks_workloads::BenchKind;

fn table4(c: &mut Criterion) {
    for kind in BenchKind::APPS {
        let serial = run_case(kind, LockAlgorithm::Mcs, 1).cycles as f64;
        for cores in [4usize, 8] {
            let mcs = run_case(kind, LockAlgorithm::Mcs, cores).cycles as f64;
            let gl = run_case(kind, LockAlgorithm::Glock, cores).cycles as f64;
            println!(
                "table4 {} @{cores}: speedup MCS {:.2} GL {:.2}",
                kind.name(),
                serial / mcs,
                serial / gl
            );
        }
    }
    let mut g = c.benchmark_group("table4_speedup");
    g.sample_size(10);
    g.bench_function("raytr_8core_glock", |b| {
        b.iter(|| run_case(BenchKind::Raytr, LockAlgorithm::Glock, 8).cycles)
    });
    g.finish();
}

criterion_group!(benches, table4);
criterion_main!(benches);
