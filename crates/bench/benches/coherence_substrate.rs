//! Microbenchmarks of the memory-hierarchy substrate: hit/miss/RMW
//! latencies and simulator throughput under coherence storms.

use criterion::{criterion_group, criterion_main, Criterion};
use glocks_mem::{MemOp, MemorySystem, RmwKind};
use glocks_sim_base::{Addr, CmpConfig, CoreId};

fn run_op(sys: &mut MemorySystem, core: CoreId, op: MemOp, start: u64) -> u64 {
    sys.submit(core, op, start);
    let mut now = start;
    loop {
        sys.tick(now);
        if sys.take_result(core).is_some() {
            return now - start;
        }
        now += 1;
    }
}

fn coherence(c: &mut Criterion) {
    let cfg = CmpConfig::paper_baseline().with_cores(16);
    {
        let mut sys = MemorySystem::new(&cfg);
        let cold = run_op(&mut sys, CoreId(0), MemOp::Load(Addr(0x9000)), 0);
        let hit = run_op(&mut sys, CoreId(0), MemOp::Load(Addr(0x9000)), 10_000);
        let remote = run_op(&mut sys, CoreId(9), MemOp::Load(Addr(0x9000)), 20_000);
        println!("coherence latencies: cold {cold}, L1 hit {hit}, cache-to-cache {remote} cycles");
    }
    let mut g = c.benchmark_group("coherence_substrate");
    g.bench_function("rmw_storm_16cores", |b| {
        b.iter(|| {
            let mut sys = MemorySystem::new(&cfg);
            let a = Addr(0xA000);
            for i in 0..16u16 {
                sys.submit(CoreId(i), MemOp::Rmw(a, RmwKind::FetchAdd(1)), 0);
            }
            let mut done = 0;
            let mut now = 0;
            while done < 16 {
                sys.tick(now);
                for i in 0..16u16 {
                    if sys.take_result(CoreId(i)).is_some() {
                        done += 1;
                    }
                }
                now += 1;
            }
            now
        })
    });
    g.bench_function("private_streaming_1core", |b| {
        b.iter(|| {
            let mut sys = MemorySystem::new(&cfg);
            let mut now = 0;
            for i in 0..64u64 {
                now += run_op(&mut sys, CoreId(0), MemOp::Store(Addr(0x10_000 + i * 8), i), now);
            }
            now
        })
    });
    g.finish();
}

criterion_group!(benches, coherence);
criterion_main!(benches);
