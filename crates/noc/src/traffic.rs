//! Per-class traffic accounting (Figure 9's decomposition).

use crate::packet::TrafficClass;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::stats::Summary;

/// Bytes and messages moved through the network, split by
/// Request / Reply / Coherence, plus packet-latency summaries.
///
/// Bytes are counted per link traversal ("the total number of bytes
/// transmitted by all the switches of the interconnect"), so a packet that
/// crosses `h` links contributes `h × bytes`.
#[derive(Clone, Debug, Default)]
pub struct TrafficStats {
    bytes: [u64; 3],
    /// Messages injected, by class (each message counted once).
    messages: [u64; 3],
    /// Link traversals (packet-hops), by class.
    hops: [u64; 3],
    /// End-to-end packet latency (inject → deliver) in cycles.
    pub latency: Summary,
}

impl TrafficStats {
    pub fn on_inject(&mut self, class: TrafficClass) {
        self.messages[class.index()] += 1;
    }

    pub fn on_link_traversal(&mut self, class: TrafficClass, bytes: u32) {
        self.bytes[class.index()] += bytes as u64;
        self.hops[class.index()] += 1;
    }

    pub fn on_deliver(&mut self, latency_cycles: u64) {
        self.latency.record(latency_cycles as f64);
    }

    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    pub fn messages(&self, class: TrafficClass) -> u64 {
        self.messages[class.index()]
    }

    pub fn hops(&self, class: TrafficClass) -> u64 {
        self.hops[class.index()]
    }

    /// Total bytes across all classes — Figure 9's bar height.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    pub fn total_hops(&self) -> u64 {
        self.hops.iter().sum()
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64_slice(&self.bytes);
        w.u64_slice(&self.messages);
        w.u64_slice(&self.hops);
        self.latency.save_state(w);
    }

    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for arr in [&mut self.bytes, &mut self.messages, &mut self.hops] {
            let v = r.u64_vec()?;
            if v.len() != 3 {
                return Err(SnapError::Corrupt { what: "traffic class array" });
            }
            arr.copy_from_slice(&v);
        }
        self.latency.load_state(r)
    }

    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..3 {
            self.bytes[i] += other.bytes[i];
            self.messages[i] += other.messages[i];
            self.hops[i] += other.hops[i];
        }
        // Summaries merge by re-deriving count/sum/min/max.
        if other.latency.count > 0 {
            if self.latency.count == 0 {
                self.latency = other.latency;
            } else {
                self.latency.count += other.latency.count;
                self.latency.sum += other.latency.sum;
                self.latency.min = self.latency.min.min(other.latency.min);
                self.latency.max = self.latency.max.max(other.latency.max);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates_per_class() {
        let mut t = TrafficStats::default();
        t.on_inject(TrafficClass::Request);
        t.on_link_traversal(TrafficClass::Request, 8);
        t.on_link_traversal(TrafficClass::Request, 8);
        t.on_link_traversal(TrafficClass::Reply, 72);
        assert_eq!(t.bytes(TrafficClass::Request), 16);
        assert_eq!(t.hops(TrafficClass::Request), 2);
        assert_eq!(t.bytes(TrafficClass::Reply), 72);
        assert_eq!(t.total_bytes(), 88);
        assert_eq!(t.messages(TrafficClass::Request), 1);
        assert_eq!(t.total_messages(), 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = TrafficStats::default();
        let mut b = TrafficStats::default();
        a.on_link_traversal(TrafficClass::Coherence, 8);
        a.on_deliver(10);
        b.on_link_traversal(TrafficClass::Coherence, 8);
        b.on_deliver(30);
        a.merge(&b);
        assert_eq!(a.bytes(TrafficClass::Coherence), 16);
        assert_eq!(a.latency.count, 2);
        assert_eq!(a.latency.max, 30.0);
        assert_eq!(a.latency.min, 10.0);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = TrafficStats::default();
        let mut b = TrafficStats::default();
        b.on_deliver(5.0 as u64);
        a.merge(&b);
        assert_eq!(a.latency.count, 1);
        assert_eq!(a.latency.min, 5.0);
    }
}
