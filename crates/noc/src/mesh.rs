//! The assembled mesh fabric: routers wired by the floor plan, a cycle
//! `tick`, packet injection and per-tile delivery.

use crate::packet::{Packet, TrafficClass};
use crate::router::{Queued, Router, N_PORTS, P_EAST, P_LOCAL, P_NORTH, P_SOUTH, P_WEST};
use crate::traffic::TrafficStats;
use glocks_sim_base::fault::{FaultDecision, FaultInjector};
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{config::NocConfig, Cycle, Mesh2D, TileId};
use glocks_stats as gstats;
use std::collections::VecDeque;

/// The 2D-mesh data network.
pub struct MeshNoc<T> {
    mesh: Mesh2D,
    cfg: NocConfig,
    routers: Vec<Router<T>>,
    /// Packets ejected at each tile, eligible once `ready_at` is reached.
    delivered: Vec<VecDeque<(Cycle, Packet<T>)>>,
    stats: TrafficStats,
    in_flight: usize,
    faults: Option<FaultInjector>,
    dropped: u64,
    /// Permanent router faults: cycle at which each router died, if ever.
    /// A dead router drops everything — its queued packets are purged at
    /// the kill, injections at its tile vanish, and neighbors trying to
    /// forward through it lose the packet (counted in `dropped`).
    dead_at: Vec<Option<Cycle>>,
    /// Router kills not yet applied, as `(cycle, tile index)`.
    scheduled_kills: Vec<(Cycle, usize)>,
    /// Per-class end-to-end latency histograms (`noc.lat.{class}`). All
    /// free `NONE` ids when stats are off.
    lat_hists: [gstats::HistId; TrafficClass::ALL.len()],
    /// Per-router input-queue occupancy gauges
    /// (`noc.router.{x}_{y}.queue_depth`), sampled every stats period.
    queue_series: Vec<gstats::SeriesId>,
}

fn class_name(c: TrafficClass) -> &'static str {
    match c {
        TrafficClass::Request => "request",
        TrafficClass::Reply => "reply",
        TrafficClass::Coherence => "coherence",
    }
}

impl<T> MeshNoc<T> {
    pub fn new(mesh: Mesh2D, cfg: NocConfig) -> Self {
        let lat_hists = TrafficClass::ALL
            .map(|c| gstats::hist(&format!("noc.lat.{}", class_name(c))));
        let queue_series = (0..mesh.len())
            .map(|t| {
                let c = mesh.coord(TileId::from(t));
                gstats::series(&format!("noc.router.{}_{}.queue_depth", c.x, c.y))
            })
            .collect();
        MeshNoc {
            mesh,
            cfg,
            routers: (0..mesh.len()).map(|_| Router::new()).collect(),
            delivered: (0..mesh.len()).map(|_| VecDeque::new()).collect(),
            stats: TrafficStats::default(),
            in_flight: 0,
            faults: None,
            dropped: 0,
            dead_at: vec![None; mesh.len()],
            scheduled_kills: Vec::new(),
            lat_hists,
            queue_series,
        }
    }

    /// Subject fabric-crossing packets to a deterministic drop/delay
    /// schedule. The coherence protocol has no retransmission layer, so a
    /// dropped packet usually wedges its transaction — the runner's
    /// watchdog turns that into a diagnosable `SimError`. Duplication is
    /// not meaningful for coherence messages and must not be requested.
    pub fn set_faults(&mut self, faults: FaultInjector) {
        assert_eq!(
            faults.rates().duplicate_ppm,
            0,
            "NoC fault plans cannot duplicate packets"
        );
        self.faults = Some(faults);
    }

    /// Packets lost to the fault schedule (transient drops, router deaths).
    pub fn packets_dropped(&self) -> u64 {
        self.dropped
    }

    /// Soft-fault totals from the injector, if one is attached.
    pub fn fault_stats(&self) -> Option<glocks_sim_base::fault::FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// Schedule a permanent router fault: from cycle `at` the router at
    /// `tile` drops every packet it would have carried.
    pub fn schedule_router_kill(&mut self, tile: TileId, at: Cycle) {
        self.scheduled_kills.push((at, tile.index()));
    }

    /// Cycle at which the router at `tile` died, if a kill has fired.
    pub fn router_dead_at(&self, tile: TileId) -> Option<Cycle> {
        self.dead_at[tile.index()]
    }

    fn router_is_dead(&self, tile: usize) -> bool {
        self.dead_at[tile].is_some()
    }

    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Number of packets currently inside the fabric (not yet drained).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Serialization time of a packet on one link.
    fn ser_cycles(&self, bytes: u32) -> u64 {
        bytes.div_ceil(self.cfg.link_bytes) as u64
    }

    /// Inject a packet at its source tile at cycle `now`.
    ///
    /// A packet whose destination equals its source bypasses the fabric (a
    /// local L2-slice access does not use the network) and is delivered
    /// after the router-pipeline latency with no byte accounting.
    pub fn inject(&mut self, pkt: Packet<T>, now: Cycle) {
        // Local bypasses never touch the wires, so only fabric-crossing
        // packets are subject to the fault schedule.
        if self.router_is_dead(pkt.src.index()) {
            // The tile's network interface is gone: even local bypasses
            // ride the router pipeline, so everything vanishes.
            self.dropped += 1;
            return;
        }
        let mut extra = 0;
        if pkt.src != pkt.dst {
            if let Some(f) = self.faults.as_mut() {
                match f.decide() {
                    FaultDecision::Deliver => {}
                    FaultDecision::Drop => {
                        self.dropped += 1;
                        return;
                    }
                    FaultDecision::Delay(d) => extra = d,
                    FaultDecision::Duplicate => {
                        unreachable!("duplication is rejected for NoC fault plans")
                    }
                }
            }
        }
        self.in_flight += 1;
        self.stats.on_inject(pkt.class);
        if pkt.src == pkt.dst {
            let at = now + self.cfg.router_latency;
            self.delivered[pkt.dst.index()].push_back((at, pkt));
            return;
        }
        let ready = now + self.cfg.router_latency + extra;
        self.routers[pkt.src.index()].in_q[P_LOCAL].push_back(Queued { pkt, ready_at: ready });
    }

    /// Output port at router `at` for a packet heading to `dst`.
    fn out_port(&self, at: TileId, dst: TileId) -> usize {
        match self.mesh.xy_next_hop(at, dst) {
            None => P_LOCAL,
            Some(next) => {
                let a = self.mesh.coord(at);
                let n = self.mesh.coord(next);
                if n.x > a.x {
                    P_EAST
                } else if n.x < a.x {
                    P_WEST
                } else if n.y > a.y {
                    P_SOUTH
                } else {
                    P_NORTH
                }
            }
        }
    }

    /// Input port at the neighboring router reached through `out` —
    /// a packet leaving east arrives on the neighbor's west port.
    fn opposite(out: usize) -> usize {
        match out {
            P_EAST => P_WEST,
            P_WEST => P_EAST,
            P_NORTH => P_SOUTH,
            P_SOUTH => P_NORTH,
            _ => unreachable!("local port has no opposite"),
        }
    }

    /// Advance the whole fabric by one cycle.
    #[allow(clippy::needless_range_loop)]
    pub fn tick(&mut self, now: Cycle) {
        // Apply any router kills that are due: the router dies in place and
        // its queued packets are lost.
        if !self.scheduled_kills.is_empty() {
            let mut i = 0;
            while i < self.scheduled_kills.len() {
                let (at, r) = self.scheduled_kills[i];
                if at <= now {
                    self.scheduled_kills.swap_remove(i);
                    self.dead_at[r].get_or_insert(at);
                    for p in 0..N_PORTS {
                        let purged = self.routers[r].in_q[p].len();
                        self.routers[r].in_q[p].clear();
                        self.dropped += purged as u64;
                        self.in_flight -= purged;
                    }
                } else {
                    i += 1;
                }
            }
        }
        // Congestion gauges (one thread-local flag read when stats are off).
        if gstats::should_sample(now) {
            for (r, &sid) in self.queue_series.iter().enumerate() {
                gstats::push(sid, self.routers[r].occupancy() as f64);
            }
        }
        // Per router: arbitrate each output port among ready head packets.
        for r in 0..self.routers.len() {
            if self.router_is_dead(r) {
                continue;
            }
            let tile = TileId::from(r);
            // What does each input-queue head want?
            let mut wants: [Option<usize>; N_PORTS] = [None; N_PORTS];
            for p in 0..N_PORTS {
                if let Some(q) = self.routers[r].in_q[p].front() {
                    if q.ready_at <= now {
                        wants[p] = Some(self.out_port(tile, q.pkt.dst));
                    }
                }
            }
            for out in 0..N_PORTS {
                if self.routers[r].out_free_at[out] > now {
                    continue;
                }
                let Some(winner) = self.routers[r].arbitrate(out, &wants) else {
                    continue;
                };
                wants[winner] = None; // an input port sends one packet/cycle
                let q = self.routers[r].in_q[winner].pop_front().expect("head exists");
                let ser = self.ser_cycles(q.pkt.bytes);
                self.routers[r].out_free_at[out] = now + ser;
                if out == P_LOCAL {
                    // Ejection to the tile: available after serialization.
                    self.delivered[r].push_back((now + ser, q.pkt));
                } else {
                    self.stats.on_link_traversal(q.pkt.class, q.pkt.bytes);
                    let next = self
                        .mesh
                        .xy_next_hop(tile, q.pkt.dst)
                        .expect("non-local output implies a next hop");
                    if self.router_is_dead(next.index()) {
                        // Forwarded into a dead router: the packet is lost
                        // on the link (XY routing has no detour).
                        self.dropped += 1;
                        self.in_flight -= 1;
                        continue;
                    }
                    let arrive =
                        now + ser + self.cfg.link_latency + self.cfg.router_latency;
                    self.routers[next.index()].in_q[Self::opposite(out)]
                        .push_back(Queued { pkt: q.pkt, ready_at: arrive });
                }
            }
        }
    }

    /// Pop all packets delivered at `tile` that are ready at `now`.
    pub fn drain(&mut self, tile: TileId, now: Cycle, out: &mut Vec<Packet<T>>) {
        let q = &mut self.delivered[tile.index()];
        let mut i = 0;
        while i < q.len() {
            if q[i].0 <= now {
                let (_, pkt) = q.remove(i).expect("index in range");
                self.in_flight -= 1;
                let lat = now.saturating_sub(pkt.injected_at);
                self.stats.on_deliver(lat);
                gstats::hist_record(self.lat_hists[pkt.class.index()], lat);
                out.push(pkt);
            } else {
                i += 1;
            }
        }
    }

    /// Publish end-of-run traffic totals into the stats registry (no-op
    /// when stats are off; latency histograms record live in [`Self::drain`]).
    pub fn publish_stats(&self) {
        if !gstats::is_enabled() {
            return;
        }
        for c in TrafficClass::ALL {
            let n = class_name(c);
            gstats::set(gstats::counter(&format!("noc.{n}.bytes")), self.stats.bytes(c));
            gstats::set(
                gstats::counter(&format!("noc.{n}.messages")),
                self.stats.messages(c),
            );
            gstats::set(gstats::counter(&format!("noc.{n}.hops")), self.stats.hops(c));
        }
        gstats::set(gstats::counter("noc.packets_dropped"), self.dropped);
    }

    /// Serialize the fabric's dynamic state: router queues, delivery
    /// buffers, traffic accounting, the fault injector's stream position
    /// and the permanent-fault schedule. Structure (mesh shape, config,
    /// stats registrations) is rebuilt by the constructor.
    pub fn save_state(&self, w: &mut SnapWriter, save_payload: &mut dyn FnMut(&mut SnapWriter, &T)) {
        w.mark("noc");
        w.usize(self.routers.len());
        for router in &self.routers {
            router.save_state(w, save_payload);
        }
        for q in &self.delivered {
            w.usize(q.len());
            for (at, pkt) in q {
                w.u64(*at);
                pkt.save_state(w, save_payload);
            }
        }
        self.stats.save_state(w);
        w.usize(self.in_flight);
        w.bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.save_state(w);
        }
        w.u64(self.dropped);
        w.seq(&self.dead_at, |w, &d| w.opt_u64(d));
        w.seq(&self.scheduled_kills, |w, &(at, r)| {
            w.u64(at);
            w.usize(r);
        });
    }

    pub fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        load_payload: &mut dyn FnMut(&mut SnapReader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        r.expect("noc")?;
        if r.usize()? != self.routers.len() {
            return Err(SnapError::Corrupt { what: "noc router count" });
        }
        for router in &mut self.routers {
            router.load_state(r, load_payload)?;
        }
        for q in &mut self.delivered {
            let n = r.usize()?;
            q.clear();
            for _ in 0..n {
                let at = r.u64()?;
                let pkt = Packet::load_state(r, load_payload)?;
                q.push_back((at, pkt));
            }
        }
        self.stats.load_state(r)?;
        self.in_flight = r.usize()?;
        if r.bool()? {
            match self.faults.as_mut() {
                Some(f) => f.load_state(r)?,
                None => return Err(SnapError::Corrupt { what: "noc fault injector presence" }),
            }
        } else if self.faults.is_some() {
            return Err(SnapError::Corrupt { what: "noc fault injector presence" });
        }
        self.dropped = r.u64()?;
        let dead_at = r.seq(|r| r.opt_u64())?;
        if dead_at.len() != self.dead_at.len() {
            return Err(SnapError::Corrupt { what: "noc dead-router map" });
        }
        self.dead_at = dead_at;
        self.scheduled_kills = r.seq(|r| {
            let at = r.u64()?;
            let tile = r.usize()?;
            Ok((at, tile))
        })?;
        Ok(())
    }

    /// True when no packet is anywhere in the fabric or delivery buffers.
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0
    }

    /// The earliest cycle ≥ `now` at which a scheduled router kill fires,
    /// if any are pending. An otherwise-idle fabric still mutates state on
    /// that cycle (the router dies in place), so the idle-skip scheduler
    /// must land on it densely.
    pub fn next_scheduled_kill(&self, now: Cycle) -> Option<Cycle> {
        self.scheduled_kills.iter().map(|&(at, _)| at.max(now)).min()
    }

    /// Total number of packets sitting in router input queues (congestion
    /// diagnostics; excludes delivery buffers).
    pub fn queued_packets(&self) -> usize {
        self.routers.iter().map(|r| r.occupancy()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TrafficClass;
    use glocks_sim_base::CmpConfig;

    fn noc() -> MeshNoc<u32> {
        let cfg = CmpConfig::paper_baseline();
        MeshNoc::new(Mesh2D::new(4, 4), cfg.noc)
    }

    fn pkt(src: u16, dst: u16, bytes: u32, tag: u32) -> Packet<u32> {
        Packet {
            src: TileId(src),
            dst: TileId(dst),
            bytes,
            class: TrafficClass::Request,
            injected_at: 0,
            payload: tag,
        }
    }

    /// Run the fabric until `tile` delivers `n` packets; returns (cycle, packets).
    fn run_until(noc: &mut MeshNoc<u32>, tile: TileId, n: usize) -> (Cycle, Vec<Packet<u32>>) {
        let mut got = Vec::new();
        for now in 0..100_000 {
            noc.tick(now);
            noc.drain(tile, now, &mut got);
            if got.len() >= n {
                return (now, got);
            }
        }
        panic!("packets never arrived (got {} of {n})", got.len());
    }

    #[test]
    fn delivers_across_the_mesh() {
        let mut n = noc();
        n.inject(pkt(0, 15, 8, 7), 0);
        let (at, got) = run_until(&mut n, TileId(15), 1);
        assert_eq!(got[0].payload, 7);
        // 6 hops: per hop 1 ser + 1 link + 3 router, plus initial pipeline
        // and final ejection serialization — latency is deterministic.
        assert_eq!(at, 3 + 6 * (1 + 1 + 3) + 1);
        assert!(n.is_idle());
    }

    #[test]
    fn local_delivery_bypasses_fabric() {
        let mut n = noc();
        n.inject(pkt(5, 5, 72, 1), 10);
        let mut got = Vec::new();
        n.drain(TileId(5), 10 + 3, &mut got);
        assert_eq!(got.len(), 1);
        assert_eq!(n.stats().total_bytes(), 0, "no link traversal for local");
        assert!(n.is_idle());
    }

    #[test]
    fn bytes_counted_per_hop() {
        let mut n = noc();
        n.inject(pkt(0, 3, 8, 0), 0); // 3 hops east
        run_until(&mut n, TileId(3), 1);
        assert_eq!(n.stats().bytes(TrafficClass::Request), 3 * 8);
        assert_eq!(n.stats().hops(TrafficClass::Request), 3);
        assert_eq!(n.stats().messages(TrafficClass::Request), 1);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        // Two packets from tile 0 to tile 1 inject the same cycle; the
        // second must wait for the first's link slot.
        let mut n = noc();
        n.inject(pkt(0, 1, 75, 1), 0); // exactly one link-cycle
        n.inject(pkt(0, 1, 75, 2), 0);
        let (_, got) = run_until(&mut n, TileId(1), 2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, 1, "FIFO order preserved");
        assert_eq!(got[1].payload, 2);
    }

    #[test]
    fn big_packets_serialize_longer() {
        // 150-byte packet on 75-byte links: 2 cycles per link.
        let mut n = noc();
        n.inject(pkt(0, 1, 150, 1), 0);
        n.inject(pkt(0, 1, 8, 2), 1);
        let (_, got) = run_until(&mut n, TileId(1), 2);
        // first packet leaves first; the small one is behind it in the
        // same FIFO input queue.
        assert_eq!(got[0].payload, 1);
    }

    #[test]
    fn cross_traffic_all_arrives() {
        let mut n = noc();
        // all-to-one hotspot: 15 tiles send to tile 0
        for s in 1..16u16 {
            n.inject(pkt(s, 0, 72, s as u32), 0);
        }
        let (_, got) = run_until(&mut n, TileId(0), 15);
        let mut tags: Vec<u32> = got.iter().map(|p| p.payload).collect();
        tags.sort_unstable();
        assert_eq!(tags, (1..16).collect::<Vec<_>>());
        assert!(n.is_idle());
    }

    #[test]
    fn dropped_packets_vanish_and_are_counted() {
        use glocks_sim_base::{FaultPlan, FaultRates, FaultSite};
        let mut n = noc();
        let mut plan = FaultPlan::seeded(5);
        plan.noc = FaultRates::drops(1_000_000);
        n.set_faults(plan.injector(FaultSite::Noc, 0));
        n.inject(pkt(0, 15, 8, 1), 0);
        assert_eq!(n.in_flight(), 0, "dropped at injection");
        assert_eq!(n.packets_dropped(), 1);
        assert!(n.is_idle());
        // Local bypasses are immune: they never cross a link.
        n.inject(pkt(5, 5, 8, 2), 0);
        assert_eq!(n.in_flight(), 1);
    }

    #[test]
    fn delayed_packets_arrive_late_but_intact() {
        use glocks_sim_base::{FaultPlan, FaultRates, FaultSite};
        let mut fast = noc();
        let mut slow = noc();
        let mut plan = FaultPlan::seeded(6);
        plan.noc = FaultRates::delays(1_000_000, 40);
        slow.set_faults(plan.injector(FaultSite::Noc, 0));
        fast.inject(pkt(0, 15, 8, 7), 0);
        slow.inject(pkt(0, 15, 8, 7), 0);
        let (at_fast, _) = run_until(&mut fast, TileId(15), 1);
        let (at_slow, got) = run_until(&mut slow, TileId(15), 1);
        assert_eq!(got[0].payload, 7);
        assert!(at_slow > at_fast, "delay fault must add latency");
        assert!(at_slow <= at_fast + 40);
    }

    #[test]
    fn dead_router_swallows_traffic() {
        let mut n = noc();
        // Kill tile 1's router (on the XY path 0→3) before any traffic.
        n.schedule_router_kill(TileId(1), 0);
        n.tick(0);
        assert_eq!(n.router_dead_at(TileId(1)), Some(0));
        // Injection at the dead tile vanishes immediately.
        n.inject(pkt(1, 2, 8, 9), 1);
        assert_eq!(n.in_flight(), 0);
        assert_eq!(n.packets_dropped(), 1);
        // A packet routed through the dead router is lost on the link and
        // the fabric drains back to idle.
        n.inject(pkt(0, 3, 8, 5), 1);
        for now in 1..10_000 {
            n.tick(now);
        }
        assert!(n.is_idle(), "lost packet must not linger in flight");
        assert_eq!(n.packets_dropped(), 2);
    }

    #[test]
    fn router_kill_purges_queued_packets() {
        let mut n = noc();
        n.inject(pkt(0, 3, 8, 1), 0);
        assert_eq!(n.in_flight(), 1);
        // Kill the source router while the packet still sits in its queue.
        n.schedule_router_kill(TileId(0), 1);
        n.tick(1);
        assert!(n.is_idle(), "queued packet purged with the router");
        assert_eq!(n.packets_dropped(), 1);
    }

    #[test]
    fn in_flight_tracks_population() {
        let mut n = noc();
        assert!(n.is_idle());
        n.inject(pkt(0, 2, 8, 0), 0);
        assert_eq!(n.in_flight(), 1);
        run_until(&mut n, TileId(2), 1);
        assert_eq!(n.in_flight(), 0);
    }
}
