//! A single input-queued mesh router.
//!
//! Five ports (four mesh directions + local inject/eject), FIFO input
//! queues, round-robin arbitration per output port, and output links that
//! stay busy for a packet's serialization time. Queues are unbounded — the
//! memory system's blocking directory bounds the number of packets in
//! flight, so backpressure never builds up in practice, and the arbitration
//! still serializes contending packets, which is where mesh contention
//! latency comes from.

use crate::packet::Packet;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::Cycle;
use std::collections::VecDeque;

/// Router port indices.
pub const P_EAST: usize = 0;
pub const P_WEST: usize = 1;
pub const P_NORTH: usize = 2;
pub const P_SOUTH: usize = 3;
pub const P_LOCAL: usize = 4;
pub const N_PORTS: usize = 5;

/// A packet waiting in an input queue, eligible once the router pipeline
/// delay has elapsed.
#[derive(Debug)]
pub(crate) struct Queued<T> {
    pub pkt: Packet<T>,
    pub ready_at: Cycle,
}

/// One mesh router.
pub(crate) struct Router<T> {
    pub in_q: [VecDeque<Queued<T>>; N_PORTS],
    /// First cycle at which each output link is free again.
    pub out_free_at: [Cycle; N_PORTS],
    /// Round-robin pointer per output port (next input port to consider).
    rr: [usize; N_PORTS],
}

impl<T> Router<T> {
    pub fn new() -> Self {
        Router {
            in_q: Default::default(),
            out_free_at: [0; N_PORTS],
            rr: [0; N_PORTS],
        }
    }

    pub fn occupancy(&self) -> usize {
        self.in_q.iter().map(VecDeque::len).sum()
    }

    pub fn save_state(&self, w: &mut SnapWriter, save_payload: &mut dyn FnMut(&mut SnapWriter, &T)) {
        for q in &self.in_q {
            w.usize(q.len());
            for item in q {
                item.pkt.save_state(w, save_payload);
                w.u64(item.ready_at);
            }
        }
        for &c in &self.out_free_at {
            w.u64(c);
        }
        for &p in &self.rr {
            w.usize(p);
        }
    }

    pub fn load_state(
        &mut self,
        r: &mut SnapReader<'_>,
        load_payload: &mut dyn FnMut(&mut SnapReader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        for q in &mut self.in_q {
            let n = r.usize()?;
            q.clear();
            for _ in 0..n {
                let pkt = Packet::load_state(r, load_payload)?;
                let ready_at = r.u64()?;
                q.push_back(Queued { pkt, ready_at });
            }
        }
        for c in &mut self.out_free_at {
            *c = r.u64()?;
        }
        for p in &mut self.rr {
            *p = r.usize()?;
            if *p >= N_PORTS {
                return Err(SnapError::Corrupt { what: "router round-robin pointer" });
            }
        }
        Ok(())
    }

    /// For output port `out`, pick the winning input port this cycle under
    /// round-robin arbitration, given a per-input-port view of where each
    /// ready head packet wants to go. Returns the winning input port.
    #[allow(clippy::needless_range_loop)]
    pub fn arbitrate(&mut self, out: usize, wants: &[Option<usize>; N_PORTS]) -> Option<usize> {
        for k in 0..N_PORTS {
            let p = (self.rr[out] + k) % N_PORTS;
            if wants[p] == Some(out) {
                self.rr[out] = (p + 1) % N_PORTS;
                return Some(p);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_between_contenders() {
        let mut r: Router<()> = Router::new();
        // ports 0 and 2 both want output 4
        let wants = [Some(4), None, Some(4), None, None];
        let w1 = r.arbitrate(4, &wants).unwrap();
        let w2 = r.arbitrate(4, &wants).unwrap();
        let w3 = r.arbitrate(4, &wants).unwrap();
        assert_eq!(w1, 0);
        assert_eq!(w2, 2);
        assert_eq!(w3, 0, "round-robin must wrap");
    }

    #[test]
    fn no_contender_no_winner() {
        let mut r: Router<()> = Router::new();
        let wants = [None; N_PORTS];
        assert_eq!(r.arbitrate(0, &wants), None);
    }

    #[test]
    fn arbitration_skips_other_outputs() {
        let mut r: Router<()> = Router::new();
        let wants = [Some(1), Some(0), None, None, None];
        assert_eq!(r.arbitrate(0, &wants), Some(1));
        assert_eq!(r.arbitrate(1, &wants), Some(0));
    }
}
