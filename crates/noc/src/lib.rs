//! The main data interconnection network: a 2D mesh of wormhole-style
//! routers with XY dimension-order routing.
//!
//! Table II of the paper configures "an aggressive 2D-mesh network" with
//! 75-byte links at 3 GHz (75 GB/s). This crate models the network at packet
//! granularity: each hop costs a router-pipeline delay, the output link is
//! occupied for the packet's serialization time (`ceil(bytes / link_bytes)`
//! cycles), and contending packets arbitrate round-robin per output port.
//!
//! Figure 9 of the paper breaks network traffic into *Coherence* /
//! *Request* / *Reply* bytes; [`traffic::TrafficStats`] mirrors that
//! decomposition, counting bytes per switch traversal exactly as the paper
//! does ("the total number of bytes transmitted by all the switches").

pub mod mesh;
pub mod packet;
pub mod router;
pub mod traffic;

pub use mesh::MeshNoc;
pub use packet::{Packet, TrafficClass};
pub use traffic::TrafficStats;
