//! Property tests of the mesh NoC: conservation (everything injected is
//! delivered exactly once), byte accounting matches hop distances, and
//! latency is bounded below by the uncontended path time.

use glocks_noc::{MeshNoc, Packet, TrafficClass};
use glocks_sim_base::{CmpConfig, Mesh2D, TileId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct PktSpec {
    src: u16,
    dst: u16,
    big: bool,
    when: u16,
}

fn pkt_strategy(tiles: u16) -> impl Strategy<Value = PktSpec> {
    (0..tiles, 0..tiles, any::<bool>(), 0u16..64).prop_map(|(src, dst, big, when)| PktSpec {
        src,
        dst,
        big,
        when,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_packets_delivered_exactly_once(
        specs in proptest::collection::vec(pkt_strategy(16), 1..120),
        cols in 1u16..5,
    ) {
        let rows = 16_u16.div_ceil(cols);
        let mesh = Mesh2D::new(cols, (16u16).div_ceil(cols).max(1));
        let _ = rows;
        let tiles = mesh.len() as u16;
        let cfg = CmpConfig::paper_baseline();
        let mut noc: MeshNoc<usize> = MeshNoc::new(mesh, cfg.noc);
        let mut expected_hop_bytes = 0u64;
        let mut sorted: Vec<(u64, usize, &PktSpec)> =
            specs.iter().enumerate().map(|(i, s)| (s.when as u64, i, s)).collect();
        sorted.sort_by_key(|(w, i, _)| (*w, *i));
        let mut cursor = 0usize;
        let mut delivered: Vec<bool> = vec![false; specs.len()];
        let mut buf = Vec::new();
        for now in 0..200_000u64 {
            while cursor < sorted.len() && sorted[cursor].0 <= now {
                let (_, id, s) = sorted[cursor];
                let src = TileId(s.src % tiles);
                let dst = TileId(s.dst % tiles);
                let bytes = if s.big { 72 } else { 8 };
                expected_hop_bytes += mesh.hops(src, dst) as u64 * bytes as u64;
                noc.inject(
                    Packet { src, dst, bytes, class: TrafficClass::Request, injected_at: now, payload: id },
                    now,
                );
                cursor += 1;
            }
            noc.tick(now);
            for t in 0..tiles {
                buf.clear();
                noc.drain(TileId(t), now, &mut buf);
                for p in &buf {
                    prop_assert_eq!(p.dst, TileId(t), "misrouted packet");
                    prop_assert!(!delivered[p.payload], "duplicate delivery");
                    delivered[p.payload] = true;
                }
            }
            if cursor == sorted.len() && noc.is_idle() {
                break;
            }
        }
        prop_assert!(delivered.iter().all(|&d| d), "packet lost");
        prop_assert!(noc.is_idle());
        prop_assert_eq!(noc.stats().total_bytes(), expected_hop_bytes);
        prop_assert_eq!(noc.stats().total_messages(), specs.len() as u64);
    }

    #[test]
    fn latency_never_beats_the_uncontended_path(
        src in 0u16..32,
        dst in 0u16..32,
    ) {
        let mesh = Mesh2D::near_square(32);
        let cfg = CmpConfig::paper_baseline();
        let mut noc: MeshNoc<()> = MeshNoc::new(mesh, cfg.noc);
        let (s, d) = (TileId(src), TileId(dst));
        noc.inject(
            Packet { src: s, dst: d, bytes: 8, class: TrafficClass::Reply, injected_at: 0, payload: () },
            0,
        );
        let mut buf = Vec::new();
        for now in 0..10_000u64 {
            noc.tick(now);
            noc.drain(d, now, &mut buf);
            if !buf.is_empty() {
                let hops = mesh.hops(s, d) as u64;
                // per hop: serialization + link + next-router pipeline;
                // plus initial pipeline and ejection
                let floor = if hops == 0 {
                    cfg.noc.router_latency
                } else {
                    cfg.noc.router_latency
                        + hops * (1 + cfg.noc.link_latency + cfg.noc.router_latency)
                        + 1
                };
                prop_assert!(now >= floor, "{s:?}->{d:?}: {now} < floor {floor}");
                return Ok(());
            }
        }
        prop_assert!(false, "packet never arrived");
    }
}
