//! Arbitration fairness at the fabric level: two flows contending for one
//! link must share it roughly equally under round-robin arbitration.

use glocks_noc::{MeshNoc, Packet, TrafficClass};
use glocks_sim_base::{CmpConfig, Mesh2D, TileId};

/// Two sources inject continuous streams that converge on the same column
/// and destination; count per-flow deliveries over a window.
#[test]
fn converging_flows_share_a_link_fairly() {
    let mesh = Mesh2D::new(4, 4);
    let cfg = CmpConfig::paper_baseline();
    let mut noc: MeshNoc<u8> = MeshNoc::new(mesh, cfg.noc);
    // Flow A: tile 1 → 13; flow B: tile 2 → 13. Both route through the
    // column of tile 13 after their X hop... choose flows that share the
    // final link into tile 13: sources 5 and 9 → wait, XY: 5(1,1)→13(1,3)
    // goes south through (1,2),(1,3); 9(1,2)→13 goes south too: they share
    // the (1,2)→(1,3) link.
    let mut delivered = [0u32; 2];
    let mut injected = [0u32; 2];
    let mut buf = Vec::new();
    for now in 0..4000u64 {
        // keep both sources saturated
        for (i, src) in [TileId(5), TileId(9)].into_iter().enumerate() {
            if injected[i] as u64 <= now / 2 {
                noc.inject(
                    Packet {
                        src,
                        dst: TileId(13),
                        bytes: 72,
                        class: TrafficClass::Reply,
                        injected_at: now,
                        payload: i as u8,
                    },
                    now,
                );
                injected[i] += 1;
            }
        }
        noc.tick(now);
        buf.clear();
        noc.drain(TileId(13), now, &mut buf);
        for p in &buf {
            delivered[p.payload as usize] += 1;
        }
    }
    assert!(delivered[0] > 100 && delivered[1] > 100, "{delivered:?}");
    let ratio = delivered[0] as f64 / delivered[1] as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "unfair link sharing: {delivered:?} (ratio {ratio:.2})"
    );
}

/// A background flow must not starve a crossing flow (XY routing gives
/// them one shared router).
#[test]
fn crossing_flow_is_not_starved() {
    let mesh = Mesh2D::new(4, 4);
    let cfg = CmpConfig::paper_baseline();
    let mut noc: MeshNoc<u8> = MeshNoc::new(mesh, cfg.noc);
    let mut crossing_delivered = 0u32;
    let mut buf = Vec::new();
    let mut bg = 0u64;
    for now in 0..6000u64 {
        // heavy west→east background across row 1 (tiles 4..7)
        if bg <= now {
            noc.inject(
                Packet {
                    src: TileId(4),
                    dst: TileId(7),
                    bytes: 72,
                    class: TrafficClass::Reply,
                    injected_at: now,
                    payload: 0,
                },
                now,
            );
            bg = now + 2;
        }
        // periodic north→south crossing through tile 5
        if now % 50 == 0 {
            noc.inject(
                Packet {
                    src: TileId(1),
                    dst: TileId(13),
                    bytes: 8,
                    class: TrafficClass::Request,
                    injected_at: now,
                    payload: 1,
                },
                now,
            );
        }
        noc.tick(now);
        buf.clear();
        noc.drain(TileId(13), now, &mut buf);
        crossing_delivered += buf.iter().filter(|p| p.payload == 1).count() as u32;
        buf.clear();
        noc.drain(TileId(7), now, &mut buf);
    }
    assert!(
        crossing_delivered >= 100,
        "crossing flow starved: only {crossing_delivered} of ~120 delivered"
    );
}
