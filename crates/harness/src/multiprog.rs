//! Multiprogramming study (Section V future work): two benchmarks share
//! one CMP on disjoint core halves, and the two hardware GLocks are
//! statically split — one per program. Compared against all-MCS for the
//! highly-contended locks.

use crate::exp::ExpOptions;
use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, SimReport, Simulation, SimulationOptions};
use glocks_sim_base::table::{norm, TextTable};
use glocks_sim_base::CmpConfig;
use glocks_workloads::multiprog::MultiprogConfig;
use glocks_workloads::{BenchConfig, BenchKind};

fn run(mp: &MultiprogConfig, hc_algo: LockAlgorithm) -> SimReport {
    let inst = mp.build();
    let cfg = CmpConfig::paper_baseline().with_cores(mp.total_threads());
    // Static sharing: one GLock per program's hottest lock (or MCS).
    let hc = if hc_algo == LockAlgorithm::Glock {
        mp.statically_shared_hc()
    } else {
        mp.hc_locks()
    };
    let mapping = LockMapping::hybrid(&hc, hc_algo, mp.n_locks());
    let mut opts = SimulationOptions {
        barrier_partitions: Some(mp.barrier_partitions()),
        ..Default::default()
    };
    let cfg = crate::exp::apply_machine_overrides(mp.total_threads(), cfg, &mut opts);
    let session = crate::exp::open_stats_session(
        &format!(
            "{}+{}_{}_{}t",
            mp.a.kind.name(),
            mp.b.kind.name(),
            hc_algo.name(),
            mp.total_threads()
        ),
        &[("lock", hc_algo.name())],
    );
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, opts);
    let (report, mem) = sim.run().expect("multiprogramming run wedged");
    if let Err(e) = (inst.verify)(mem.store()) {
        panic!("multiprog under {}: {e}", hc_algo.name());
    }
    if let Some(s) = session {
        s.finish(&report);
    }
    report
}

/// Completion time of one program = the last finish among its cores.
fn program_time(report: &SimReport, range: std::ops::Range<usize>) -> u64 {
    report.finished_at[range].iter().copied().max().unwrap_or(0)
}

pub fn run_study(opts: &ExpOptions) -> TextTable {
    let half = opts.threads / 2;
    let pairs = [
        (BenchKind::Sctr, BenchKind::Prco),
        (BenchKind::Mctr, BenchKind::Dbll),
        (BenchKind::Sctr, BenchKind::Qsort),
    ];
    let mut t = TextTable::new(
        "Multiprogramming — two programs per CMP, 2 GLocks statically split (vs MCS)",
    )
    .header([
        "pair",
        "A time MCS",
        "A time GL",
        "A GL/MCS",
        "B time MCS",
        "B time GL",
        "B GL/MCS",
    ]);
    for (ka, kb) in pairs {
        let mp = MultiprogConfig {
            a: if opts.quick { BenchConfig::smoke(ka, half) } else { BenchConfig::paper(ka, half) },
            b: if opts.quick { BenchConfig::smoke(kb, half) } else { BenchConfig::paper(kb, half) },
        };
        let mcs = run(&mp, LockAlgorithm::Mcs);
        let gl = run(&mp, LockAlgorithm::Glock);
        let (a_mcs, b_mcs) = (
            program_time(&mcs, 0..half),
            program_time(&mcs, half..2 * half),
        );
        let (a_gl, b_gl) = (program_time(&gl, 0..half), program_time(&gl, half..2 * half));
        t.row([
            format!("{}+{}", ka.name(), kb.name()),
            a_mcs.to_string(),
            a_gl.to_string(),
            norm(a_gl as f64 / a_mcs as f64),
            b_mcs.to_string(),
            b_gl.to_string(),
            norm(b_gl as f64 / b_mcs as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_programs_verify_and_benefit() {
        let half = 4;
        let mp = MultiprogConfig {
            a: BenchConfig::smoke(BenchKind::Sctr, half),
            b: BenchConfig::smoke(BenchKind::Prco, half),
        };
        let mcs = run(&mp, LockAlgorithm::Mcs);
        let gl = run(&mp, LockAlgorithm::Glock);
        let a_gain = program_time(&gl, 0..half) as f64 / program_time(&mcs, 0..half) as f64;
        let b_gain =
            program_time(&gl, half..2 * half) as f64 / program_time(&mcs, half..2 * half) as f64;
        assert!(a_gain < 1.05, "program A got slower: {a_gain}");
        assert!(b_gain < 1.05, "program B got slower: {b_gain}");
        // the statically shared GLocks serve both programs
        assert_eq!(gl.glocks.len(), 2);
        assert!(gl.glocks.iter().all(|g| g.grants > 0));
    }

    #[test]
    fn study_renders() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let t = run_study(&opts);
        assert_eq!(t.n_rows(), 3);
    }
}
