//! Table I: HW/SW cost of GLocks for 2D-mesh CMP layouts, instantiated for
//! a range of core counts, plus the hierarchical >49-core extension.

use glocks::{GlockCost, Topology};
use glocks_sim_base::table::TextTable;
use glocks_sim_base::Mesh2D;

pub fn run() -> TextTable {
    let mut t = TextTable::new("Table I — HW/SW cost of GLocks per lock").header([
        "cores",
        "layout",
        "G-lines",
        "primary",
        "secondary",
        "local ctl",
        "fSx flags",
        "fx flags",
        "acq worst",
        "acq best",
        "release",
    ]);
    for n in [4usize, 9, 16, 25, 32, 36, 49] {
        let mesh = Mesh2D::near_square(n);
        let c = GlockCost::for_mesh(mesh);
        t.row([
            n.to_string(),
            format!("{}x{} flat", mesh.cols(), mesh.rows()),
            c.glines.to_string(),
            c.primary_managers.to_string(),
            c.secondary_managers.to_string(),
            c.local_controllers.to_string(),
            c.fsx_flags.to_string(),
            c.fx_flags.to_string(),
            format!("{} cycles", c.acquire_worst_cycles),
            format!("{} cycles", c.acquire_best_cycles),
            format!("{} cycle", c.release_cycles),
        ]);
    }
    for n in [64usize, 100] {
        let mesh = Mesh2D::near_square(n);
        let topo = Topology::hierarchical(mesh, 7);
        let c = GlockCost::for_topology(&topo, 1);
        t.row([
            n.to_string(),
            format!("{}x{} hier", mesh.cols(), mesh.rows()),
            c.glines.to_string(),
            c.primary_managers.to_string(),
            c.secondary_managers.to_string(),
            c.local_controllers.to_string(),
            c.fsx_flags.to_string(),
            c.fx_flags.to_string(),
            format!("{} cycles", c.acquire_worst_cycles),
            format!("{} cycles", c.acquire_best_cycles),
            format!("{} cycle", c.release_cycles),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_every_row() {
        let t = super::run();
        assert_eq!(t.n_rows(), 9);
        let s = t.render();
        assert!(s.contains("3x3 flat"));
        assert!(s.contains("8x4 flat"));
        assert!(s.contains("hier"));
    }
}
