//! Many-core scale sweep: GLocks versus software locks at 64, 256 and
//! 1024 cores.
//!
//! The paper's evaluation stops at 32 cores; its scaling argument (Section
//! III.D) is that the hierarchical GLock organization extends the G-line
//! fabric to arbitrarily large meshes while software locks pay ever more
//! coherence traffic per handoff. This sweep drives that argument to the
//! 32×32 (1024-core) end point: the SCTR microbenchmark — every core
//! hammering one highly-contended lock — on square meshes of 8×8, 16×16
//! and 32×32 tiles, under GLocks and the strongest software contenders.
//! Every mesh above 7×7 exceeds the G-line transmitter budget, so all
//! three sizes exercise `Topology::hierarchical`.
//!
//! The event-driven simulator core is what makes the 1024-core rows
//! affordable: cores sleeping in exponential backoff and long lock
//! hand-off lulls are skipped over rather than ticked.

use crate::exp::{set_mesh_override, try_run_bench, ExpOptions, RunResult};
use glocks_locks::LockAlgorithm;
use glocks_sim::LockMapping;
use glocks_sim_base::table::TextTable;
use glocks_sim_base::Mesh2D;
use glocks_workloads::BenchKind;

/// The sweep's mesh shapes (all square, all hierarchical-GLock territory).
pub const MESHES: [(u16, u16); 3] = [(8, 8), (16, 16), (32, 32)];

/// Lock algorithms compared at each size: the paper's hardware proposal
/// against the two strongest software baselines of its evaluation.
pub const ALGOS: [LockAlgorithm; 3] =
    [LockAlgorithm::Glock, LockAlgorithm::Mcs, LockAlgorithm::TatasBackoff];

pub struct ScaleRow {
    pub cores: usize,
    pub mesh: (u16, u16),
    pub algo: LockAlgorithm,
    pub cycles: u64,
    /// Mean acquire-to-grant wait on the contended lock.
    pub mean_wait: f64,
    /// Execution time relative to GLocks at the same size (GLock row = 1).
    pub vs_glock: f64,
}

fn run_at(opts: &ExpOptions, mesh: Mesh2D, algo: LockAlgorithm) -> Option<RunResult> {
    let bench = opts.bench_on(BenchKind::Sctr, mesh.len());
    let mapping = LockMapping::hybrid(&bench.hc_locks(), algo, bench.n_locks());
    set_mesh_override(Some(mesh));
    let r = try_run_bench(&bench, &mapping);
    set_mesh_override(None);
    r
}

pub fn run(opts: &ExpOptions) -> (TextTable, Vec<ScaleRow>) {
    let mut rows = Vec::new();
    for (w, h) in MESHES {
        let mesh = Mesh2D::new(w, h);
        let glock_cycles = match run_at(opts, mesh, LockAlgorithm::Glock) {
            Some(r) => {
                let cycles = r.report.cycles;
                rows.push(ScaleRow {
                    cores: mesh.len(),
                    mesh: (w, h),
                    algo: LockAlgorithm::Glock,
                    cycles,
                    mean_wait: r.report.mean_wait[0],
                    vs_glock: 1.0,
                });
                cycles as f64
            }
            None => f64::NAN,
        };
        for algo in [LockAlgorithm::Mcs, LockAlgorithm::TatasBackoff] {
            if let Some(r) = run_at(opts, mesh, algo) {
                rows.push(ScaleRow {
                    cores: mesh.len(),
                    mesh: (w, h),
                    algo,
                    cycles: r.report.cycles,
                    mean_wait: r.report.mean_wait[0],
                    vs_glock: r.report.cycles as f64 / glock_cycles,
                });
            }
        }
    }
    let mut t = TextTable::new("Scale sweep — SCTR, one contended lock, hierarchical meshes")
        .header(["cores", "mesh", "lock", "cycles", "mean wait", "time vs GLock"]);
    for r in &rows {
        t.row([
            r.cores.to_string(),
            format!("{}x{}", r.mesh.0, r.mesh.1),
            r.algo.name().to_string(),
            r.cycles.to_string(),
            format!("{:.0}", r.mean_wait),
            format!("{:.2}x", r.vs_glock),
        ]);
    }
    (t, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 1024-core smoke of the issue: all cores contend one GLock on a
    /// 32×32 hierarchical mesh; the run must complete with exact acquire
    /// counts inside a hard wall-clock budget.
    #[test]
    fn glock_completes_on_1024_core_mesh() {
        let opts = ExpOptions { quick: true, threads: 1024 };
        let bench = opts.bench_on(BenchKind::Sctr, 1024);
        let mapping = LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, 1);
        set_mesh_override(Some(Mesh2D::new(32, 32)));
        let started = std::time::Instant::now();
        let r = crate::exp::run_bench(&bench, &mapping).expect("1024-core GLock run completes");
        set_mesh_override(None);
        // Every SCTR iteration is exactly one acquire of lock 0; shares sum
        // to the configured total, so the count is exact, not approximate.
        assert_eq!(r.report.acquires[0], bench.scale);
        assert_eq!(r.threads, 1024);
        assert!(r.report.cycles > 0);
        // CI smoke budget: the event-driven core must keep a thousand-core
        // machine interactive. Generous to absorb slow shared runners.
        assert!(
            started.elapsed() < std::time::Duration::from_secs(120),
            "1024-core smoke took {:?}",
            started.elapsed()
        );
    }

    /// GLocks must not scale worse than MCS as the mesh grows — the
    /// paper's scaling argument, pushed past its own 32-core evaluation.
    #[test]
    fn glock_beats_mcs_at_256_cores() {
        let opts = ExpOptions { quick: true, threads: 256 };
        let mesh = Mesh2D::new(16, 16);
        let gl = run_at(&opts, mesh, LockAlgorithm::Glock).expect("GLock run");
        let mcs = run_at(&opts, mesh, LockAlgorithm::Mcs).expect("MCS run");
        assert!(
            gl.report.cycles as f64 <= mcs.report.cycles as f64 * 1.03,
            "GLock {} vs MCS {} cycles at 256 cores",
            gl.report.cycles,
            mcs.report.cycles
        );
    }
}
