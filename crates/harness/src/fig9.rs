//! Figure 9: normalized network traffic (Coherence / Request / Reply
//! bytes through all switches), GLocks vs MCS.

use crate::exp::{glock_mapping, mcs_mapping, try_run_bench, ExpOptions};
use glocks_sim::TrafficSnapshot;
use glocks_sim_base::table::{bar, norm, pct, TextTable};
use glocks_workloads::BenchKind;

pub struct Fig9Row {
    pub bench: BenchKind,
    pub mcs: TrafficSnapshot,
    pub gl: TrafficSnapshot,
    /// GL total bytes / MCS total bytes.
    pub normalized: f64,
}

impl Fig9Row {
    pub fn reduction(&self) -> f64 {
        1.0 - self.normalized
    }
}

/// Bar chart of normalized traffic (MCS = full width).
pub fn chart(rows: &[Fig9Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in rows {
        let _ = writeln!(
            out,
            "{:>5} |{:<40}| {}",
            r.bench.name(),
            bar(r.normalized, 1.0, 40),
            pct(1.0 - r.normalized)
        );
    }
    out
}

pub fn run(opts: &ExpOptions) -> (TextTable, Vec<Fig9Row>) {
    let mut rows = Vec::new();
    for kind in BenchKind::ALL {
        let bench = opts.bench(kind);
        let Some(mcs) = try_run_bench(&bench, &mcs_mapping(&bench)) else { continue };
        let Some(gl) = try_run_bench(&bench, &glock_mapping(&bench)) else { continue };
        let (mcs, gl) = (mcs.report.traffic, gl.report.traffic);
        rows.push(Fig9Row {
            bench: kind,
            mcs,
            gl,
            normalized: gl.total_bytes() as f64 / mcs.total_bytes() as f64,
        });
    }
    let mut t = TextTable::new("Figure 9 — normalized network traffic (GL vs MCS)").header([
        "bench",
        "MCS bytes (coh/req/rep)",
        "GL bytes (coh/req/rep)",
        "GL/MCS",
        "reduction",
    ]);
    let fmt = |s: &TrafficSnapshot| {
        format!(
            "{} ({}/{}/{})",
            s.total_bytes(),
            s.coherence_bytes,
            s.request_bytes,
            s.reply_bytes
        )
    };
    for r in &rows {
        t.row([
            r.bench.name().to_string(),
            fmt(&r.mcs),
            fmt(&r.gl),
            norm(r.normalized),
            pct(r.reduction()),
        ]);
    }
    let avg = |app: bool| {
        let xs: Vec<f64> = rows
            .iter()
            .filter(|r| r.bench.is_app() == app)
            .map(|r| r.normalized)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    t.row([
        "AvgM".to_string(),
        String::new(),
        String::new(),
        norm(avg(false)),
        pct(1.0 - avg(false)),
    ]);
    t.row([
        "AvgA".to_string(),
        String::new(),
        String::new(),
        norm(avg(true)),
        pct(1.0 - avg(true)),
    ]);
    (t, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glocks_cut_traffic() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let (_t, rows) = run(&opts);
        for r in &rows {
            assert!(
                r.normalized < 1.02,
                "{:?}: GLocks must not add traffic ({})",
                r.bench,
                r.normalized
            );
        }
        // Micros lose most of their traffic (paper: 76 % average).
        let micro_avg: f64 = rows
            .iter()
            .filter(|r| !r.bench.is_app())
            .map(|r| r.reduction())
            .sum::<f64>()
            / 5.0;
        assert!(micro_avg > 0.3, "micro traffic reduction only {micro_avg:.2}");
    }
}
