//! Append-only JSONL run journal for crash-safe resumable sweeps.
//!
//! Every state transition of every run in a sweep is one JSON object on
//! one line: `pending` → `running` → (`done` | `failed` | `wedged`), plus
//! `skipped` rows appended on `--resume` so the journal itself records
//! that a completed row was *not* recomputed. The file is only ever
//! appended to and flushed line-by-line, so a SIGKILL can at worst tear
//! the final line — [`Journal::replay`] tolerates a torn tail and the
//! interrupted run simply shows its last durable state (`running`), which
//! a resumed sweep treats as not-done and re-executes.
//!
//! The journal is the source of truth for `--resume`: a run whose latest
//! row is `done` (or `skipped`, which only ever follows `done`) is never
//! re-executed; every other state re-runs.

use glocks_stats::json::{self, Json};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Lifecycle states of one journaled run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Claimed by the sweep, not yet started (reserved for schedulers that
    /// enqueue ahead of execution).
    Pending,
    /// Execution started (attempt number in the row).
    Running,
    /// Finished and verified; artifacts recorded.
    Done,
    /// Deterministic failure: a panic or a reproducible `SimError`.
    /// Retrying would fail identically, so it is recorded once.
    Failed,
    /// Transient (host-dependent) failure that survived every retry —
    /// typically a wall-clock timeout on an overloaded machine.
    Wedged,
    /// `--resume` found the run already `done` and did not re-execute it.
    Skipped,
}

impl RunStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Pending => "pending",
            RunStatus::Running => "running",
            RunStatus::Done => "done",
            RunStatus::Failed => "failed",
            RunStatus::Wedged => "wedged",
            RunStatus::Skipped => "skipped",
        }
    }

    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "pending" => RunStatus::Pending,
            "running" => RunStatus::Running,
            "done" => RunStatus::Done,
            "failed" => RunStatus::Failed,
            "wedged" => RunStatus::Wedged,
            "skipped" => RunStatus::Skipped,
            _ => return None,
        })
    }

    /// True if a resumed sweep should not re-execute this run.
    pub fn is_complete(self) -> bool {
        matches!(self, RunStatus::Done | RunStatus::Skipped)
    }
}

/// One structured failure attached to a journal row: a [`glocks_sim::SimError`]
/// (kind + full diagnostic rendering) or a caught panic (`kind: "panic"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunError {
    /// Machine-friendly tag (`SimError::kind()` or `"panic"`).
    pub kind: String,
    /// Host-dependent failures can succeed on retry; deterministic ones
    /// recur exactly.
    pub transient: bool,
    /// Human-readable detail (the error's `Display`, diagnostics included).
    pub detail: String,
}

impl RunError {
    pub fn from_sim_error(e: &glocks_sim::SimError) -> Self {
        RunError { kind: e.kind().to_string(), transient: e.is_transient(), detail: e.to_string() }
    }

    pub fn panic(detail: &str) -> Self {
        RunError { kind: "panic".to_string(), transient: false, detail: detail.to_string() }
    }
}

/// One journal line.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRow {
    pub id: String,
    pub status: RunStatus,
    /// 1-based attempt this row belongs to (retries bump it).
    pub attempt: u32,
    /// `done` was only reached after at least one transient failure.
    pub flaky: bool,
    /// Wall-clock time of the attempt (terminal rows only).
    pub wall_ms: u64,
    /// Output files this run produced (stats dumps, checkpoints, ...).
    pub artifacts: Vec<String>,
    pub errors: Vec<RunError>,
}

impl JournalRow {
    pub fn new(id: &str, status: RunStatus) -> Self {
        JournalRow {
            id: id.to_string(),
            status,
            attempt: 1,
            flaky: false,
            wall_ms: 0,
            artifacts: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Deterministic single-line JSON encoding.
    pub fn to_json_line(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("id".to_string(), Json::Str(self.id.clone()));
        m.insert("status".to_string(), Json::Str(self.status.as_str().to_string()));
        m.insert("attempt".to_string(), Json::UInt(u64::from(self.attempt)));
        m.insert("flaky".to_string(), Json::Bool(self.flaky));
        m.insert("wall_ms".to_string(), Json::UInt(self.wall_ms));
        m.insert(
            "artifacts".to_string(),
            Json::Arr(self.artifacts.iter().map(|a| Json::Str(a.clone())).collect()),
        );
        m.insert(
            "errors".to_string(),
            Json::Arr(
                self.errors
                    .iter()
                    .map(|e| {
                        let mut em = BTreeMap::new();
                        em.insert("kind".to_string(), Json::Str(e.kind.clone()));
                        em.insert("transient".to_string(), Json::Bool(e.transient));
                        em.insert("detail".to_string(), Json::Str(e.detail.clone()));
                        Json::Obj(em)
                    })
                    .collect(),
            ),
        );
        Json::Obj(m).encode()
    }

    pub fn from_json_line(line: &str) -> Option<Self> {
        let v = json::parse(line).ok()?;
        let status = RunStatus::from_name(v.get("status")?.as_str()?)?;
        let errors = v
            .get("errors")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(|e| {
                        Some(RunError {
                            kind: e.get("kind")?.as_str()?.to_string(),
                            transient: matches!(e.get("transient"), Some(Json::Bool(true))),
                            detail: e.get("detail")?.as_str()?.to_string(),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        Some(JournalRow {
            id: v.get("id")?.as_str()?.to_string(),
            status,
            attempt: v.get("attempt").and_then(Json::as_u64).unwrap_or(1) as u32,
            flaky: matches!(v.get("flaky"), Some(Json::Bool(true))),
            wall_ms: v.get("wall_ms").and_then(Json::as_u64).unwrap_or(0),
            artifacts: v
                .get("artifacts")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(|x| Some(x.as_str()?.to_string())).collect())
                .unwrap_or_default(),
            errors,
        })
    }
}

/// An open append-only journal.
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Open (creating if absent) for appending. Existing rows are kept —
    /// that is the point.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal { path: path.to_path_buf(), file })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one row and flush it to disk so a crash right after loses
    /// nothing. Whole-line writes mean only the final line can ever tear.
    pub fn append(&mut self, row: &JournalRow) -> std::io::Result<()> {
        let mut line = row.to_json_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// Latest durable row per run id. Unparseable lines (a torn tail after
    /// SIGKILL) are skipped; every complete line before them counts.
    pub fn replay(path: &Path) -> std::io::Result<BTreeMap<String, JournalRow>> {
        let mut latest = BTreeMap::new();
        if !path.exists() {
            return Ok(latest);
        }
        let reader = BufReader::new(File::open(path)?);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if let Some(row) = JournalRow::from_json_line(&line) {
                latest.insert(row.id.clone(), row);
            }
        }
        Ok(latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("glocks_journal_{}_{name}", std::process::id()))
    }

    #[test]
    fn rows_round_trip_and_latest_wins() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(&JournalRow::new("a", RunStatus::Running)).unwrap();
            let mut done = JournalRow::new("a", RunStatus::Done);
            done.wall_ms = 12;
            done.artifacts.push("out/a.json".to_string());
            j.append(&done).unwrap();
            let mut failed = JournalRow::new("b", RunStatus::Failed);
            failed.errors.push(RunError::panic("boom"));
            j.append(&failed).unwrap();
        }
        let latest = Journal::replay(&path).unwrap();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest["a"].status, RunStatus::Done);
        assert!(latest["a"].status.is_complete());
        assert_eq!(latest["a"].artifacts, vec!["out/a.json".to_string()]);
        assert_eq!(latest["b"].status, RunStatus::Failed);
        assert_eq!(latest["b"].errors[0].kind, "panic");
        assert!(!latest["b"].errors[0].transient);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp("torn.jsonl");
        let mut body = JournalRow::new("a", RunStatus::Done).to_json_line();
        body.push('\n');
        body.push_str("{\"id\":\"b\",\"status\":\"run"); // SIGKILL mid-write
        std::fs::write(&path, body).unwrap();
        let latest = Journal::replay(&path).unwrap();
        assert_eq!(latest.len(), 1, "torn line ignored, durable line kept");
        assert_eq!(latest["a"].status, RunStatus::Done);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_empty() {
        let latest = Journal::replay(Path::new("/nonexistent/journal.jsonl")).unwrap();
        assert!(latest.is_empty());
    }

    #[test]
    fn wedged_and_running_rows_are_not_complete() {
        for status in [RunStatus::Pending, RunStatus::Running, RunStatus::Failed, RunStatus::Wedged]
        {
            assert!(!status.is_complete(), "{status:?} must re-run on resume");
            assert_eq!(RunStatus::from_name(status.as_str()), Some(status));
        }
        assert!(RunStatus::Skipped.is_complete());
        assert_eq!(RunStatus::from_name("nonsense"), None);
    }
}
