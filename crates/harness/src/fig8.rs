//! Figure 8: normalized execution time, GLocks vs MCS, with the
//! Busy / Memory / Lock / Barrier breakdown and the AvgM / AvgA summary
//! bars.

use crate::exp::{glock_mapping, mcs_mapping, try_run_bench, ExpOptions, RunResult};
use glocks_sim_base::table::{norm, pct, stacked_bar, TextTable};
use glocks_workloads::BenchKind;

pub struct Fig8Row {
    pub bench: BenchKind,
    pub mcs_cycles: u64,
    pub gl_cycles: u64,
    /// GL cycles / MCS cycles.
    pub normalized: f64,
    pub mcs_fracs: [f64; 4],
    pub gl_fracs: [f64; 4],
}

impl Fig8Row {
    pub fn reduction(&self) -> f64 {
        1.0 - self.normalized
    }
}

fn fracs(r: &RunResult) -> [f64; 4] {
    r.report.avg_fractions()
}

pub fn run(opts: &ExpOptions) -> (TextTable, Vec<Fig8Row>) {
    let mut rows = Vec::new();
    for kind in BenchKind::ALL {
        let bench = opts.bench(kind);
        let Some(mcs) = try_run_bench(&bench, &mcs_mapping(&bench)) else { continue };
        let Some(gl) = try_run_bench(&bench, &glock_mapping(&bench)) else { continue };
        rows.push(Fig8Row {
            bench: kind,
            mcs_cycles: mcs.report.cycles,
            gl_cycles: gl.report.cycles,
            normalized: gl.report.cycles as f64 / mcs.report.cycles as f64,
            mcs_fracs: fracs(&mcs),
            gl_fracs: fracs(&gl),
        });
    }
    let mut t = TextTable::new(
        "Figure 8 — normalized execution time (GL vs MCS) with breakdown",
    )
    .header([
        "bench", "MCS cycles", "GL cycles", "GL/MCS", "reduction", "MCS busy/mem/lock/barrier",
        "GL busy/mem/lock/barrier",
    ]);
    let fmt4 = |f: &[f64; 4]| {
        format!(
            "{} {} {} {}",
            pct(f[0]),
            pct(f[1]),
            pct(f[2]),
            pct(f[3])
        )
    };
    for r in &rows {
        t.row([
            r.bench.name().to_string(),
            r.mcs_cycles.to_string(),
            r.gl_cycles.to_string(),
            norm(r.normalized),
            pct(r.reduction()),
            fmt4(&r.mcs_fracs),
            fmt4(&r.gl_fracs),
        ]);
    }
    let avg = |sel: &dyn Fn(&Fig8Row) -> bool| {
        let xs: Vec<f64> = rows.iter().filter(|r| sel(r)).map(|r| r.normalized).collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let avg_m = avg(&|r: &Fig8Row| !r.bench.is_app());
    let avg_a = avg(&|r: &Fig8Row| r.bench.is_app());
    t.row([
        "AvgM".to_string(),
        String::new(),
        String::new(),
        norm(avg_m),
        pct(1.0 - avg_m),
        String::new(),
        String::new(),
    ]);
    t.row([
        "AvgA".to_string(),
        String::new(),
        String::new(),
        norm(avg_a),
        pct(1.0 - avg_a),
        String::new(),
        String::new(),
    ]);
    (t, rows)
}

/// A textual rendering of the paper's stacked-bar figure: per benchmark,
/// the MCS bar at full scale and the GL bar scaled by its normalized
/// execution time, both decomposed into Busy/Memory/Lock/Barrier
/// (`B`/`M`/`L`/`R` glyphs).
pub fn chart(rows: &[Fig8Row]) -> String {
    use std::fmt::Write as _;
    const W: usize = 56;
    const G: [char; 4] = ['B', 'M', 'L', 'R'];
    let mut out = String::new();
    let _ = writeln!(out, "B=busy M=memory L=lock R=barrier (width ∝ execution time)");
    for r in rows {
        let mcs = stacked_bar(&r.mcs_fracs, &G, W);
        let glw = (r.normalized * W as f64).round().max(1.0) as usize;
        let gl = stacked_bar(&r.gl_fracs, &G, glw);
        let _ = writeln!(out, "{:>5} MCS |{mcs}", r.bench.name());
        let _ = writeln!(out, "{:>5}  GL |{gl}", "");
    }
    out
}

/// The microbenchmark / application average reductions the abstract quotes
/// (42 % / 14 %).
pub fn average_reductions(rows: &[Fig8Row]) -> (f64, f64) {
    let avg = |app: bool| {
        let xs: Vec<f64> = rows
            .iter()
            .filter(|r| r.bench.is_app() == app)
            .map(|r| r.reduction())
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    (avg(false), avg(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glocks_win_everywhere_micros_win_more() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let (_t, rows) = run(&opts);
        for r in &rows {
            // QSORT's task DAG makes small-scale runs scheduling-noisy;
            // the full-scale win is validated by the paper_scale test.
            let cap = if r.bench == BenchKind::Qsort { 1.25 } else { 1.05 };
            assert!(
                r.normalized < cap,
                "{:?}: GLocks must not lose to MCS (got {})",
                r.bench,
                r.normalized
            );
        }
        let (micro, app) = average_reductions(&rows);
        assert!(
            micro > app,
            "microbenchmarks ({micro:.2}) should benefit more than apps ({app:.2})"
        );
        assert!(micro > 0.15, "micro reduction {micro:.2} too small");
    }
}
