//! Permanent-fault (chaos) sweep — survivability study beyond the paper.
//!
//! Where [`crate::faults`] injects *transient* signal loss that the
//! hardened protocol retries through, this sweep kills components
//! *permanently* mid-run and demands graceful degradation:
//!
//! * **kill-glock-nets** — every G-line lock network dies at a
//!   seed-deterministic cycle inside the kill window. Failure detection
//!   (exhausted retransmission budgets) must quarantine the dead hardware,
//!   drain the pre-death grantee, and replay every stranded acquire on the
//!   TATAS software fallback: the run completes with the *exact* fault-free
//!   acquire count and final memory image.
//! * **tile-death** — a core (and its router) dies outright. That work is
//!   unrecoverable by design, so the correct outcome is a fast, structured
//!   [`glocks_sim::SimError`] naming the frozen core — not a silent hang.
//! * **kill-repair-failback** — the network death is *intermittent*: a
//!   repair crew replaces the dead hardware mid-run. The fail-back state
//!   machine probes the rebooted network, accumulates its hysteresis
//!   score, drains the software fallback at quiescence, and re-arms the
//!   hardware path — again with the exact fault-free acquire count, plus
//!   nonzero `sim.repairs` and `sim.failbacks` in the stats dump.
//!
//! Every completed row is validated against the *stats dump's* numeric
//! counters (`sim.failovers`, `sim.failbacks`), not just its exit code.
//!
//! The runtime protocol invariant checker rides along on every row:
//! mutual exclusion, token uniqueness, bounded waiting, fail-back safety,
//! and MESI compatibility are validated throughout the dying run. A
//! violation would surface as an `invariant-violation` row.

use crate::exp::{effective_watchdog, ExpOptions};
use glocks_locks::LockAlgorithm;
use glocks_sim::{CheckerConfig, LockMapping, Simulation, SimulationOptions};
use glocks_sim_base::fault::{FaultPlan, HardFault, HardFaultTarget};
use glocks_sim_base::table::TextTable;
use glocks_sim_base::CmpConfig;
use glocks_workloads::BenchKind;

/// Seed for the published sweep — reproduce any row with
/// `FaultPlan::seeded(CHAOS_SEED)` and the row's kill schedule.
pub const CHAOS_SEED: u64 = 0xC4A0;

/// The kill window, in cycles: every GLock network dies at a
/// seed-deterministic cycle in `[EARLIEST_KILL, LATEST_KILL]`, early enough
/// that plenty of critical sections still lie ahead of the failover.
pub const EARLIEST_KILL: u64 = 1_000;
pub const LATEST_KILL: u64 = 5_000;

/// Repair delay for the intermittent scenario: the replacement hardware
/// becomes available this many cycles after the kill — shortly after the
/// ~31k-cycle detection verdict, so the failover has visibly taken over
/// before the repair lands.
pub const REPAIR_DELAY: u64 = 40_000;

/// Numeric counters pulled from a completed row's stats dump.
struct RowOutcome {
    acquires: u64,
    failovers: Option<u64>,
    repairs: Option<u64>,
    failbacks: Option<u64>,
}

pub fn run(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new(
        "Chaos — SCTR under GLocks with permanent hardware deaths",
    )
    .header(["scenario", "outcome", "cycles", "acquires", "failovers", "failbacks", "checks"]);

    // Fault-free reference: the acquire count every survivable scenario
    // must reproduce exactly.
    let clean = row(&mut t, opts, "fault-free", None);

    // Kill every G-line lock network mid-run.
    let mut plan = FaultPlan::seeded(CHAOS_SEED);
    plan.kill_all_glock_networks(1, EARLIEST_KILL, LATEST_KILL);
    let survived = row(&mut t, opts, "kill-glock-nets", Some(plan));
    if let (Some(clean), Some(after)) = (&clean, &survived) {
        assert_eq!(
            clean.acquires, after.acquires,
            "failover lost or double-granted acquires"
        );
        // Dump-backed counters only exist under `--stats-json`; when they
        // do, they must prove the software path actually served acquires.
        if let Some(failovers) = after.failovers {
            assert!(failovers > 0, "the dump must record the reroute onto the software path");
        }
    }

    // A whole tile dies: structured wedge, not a hang.
    let mut plan = FaultPlan::seeded(CHAOS_SEED);
    plan.hard.push(HardFault::permanent(
        EARLIEST_KILL,
        HardFaultTarget::Tile { core: 1 },
    ));
    row(&mut t, opts, "tile-death", Some(plan));

    // Intermittent death: kill, repair, and fail back onto the rebooted
    // hardware — end to end within one run.
    let mut plan = FaultPlan::seeded(CHAOS_SEED);
    plan.blink_all_glock_networks(1, EARLIEST_KILL, LATEST_KILL, REPAIR_DELAY);
    let healed = row(&mut t, opts, "kill-repair-failback", Some(plan));
    if let (Some(clean), Some(healed)) = (&clean, &healed) {
        assert_eq!(
            clean.acquires, healed.acquires,
            "the repair round trip lost or double-granted acquires"
        );
        if let Some(repairs) = healed.repairs {
            assert!(repairs > 0, "the dump must record the repair installing");
        }
        if let Some(failbacks) = healed.failbacks {
            assert!(failbacks > 0, "the dump must record the hardware path re-arming");
        }
    }
    t
}

/// Run one scenario and append its row; returns the dump-backed outcome
/// when the run completed.
fn row(
    t: &mut TextTable,
    opts: &ExpOptions,
    scenario: &str,
    plan: Option<FaultPlan>,
) -> Option<RowOutcome> {
    let bench = opts.bench(BenchKind::Sctr);
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(bench.threads);
    let mapping = LockMapping::uniform(LockAlgorithm::Glock, 1);
    let survivable = plan.as_ref().is_none_or(|p| {
        !p.hard
            .iter()
            .any(|h| matches!(h.target, HardFaultTarget::Tile { .. }))
    });
    let mut sim_opts = SimulationOptions {
        fault_plan: plan,
        checker: Some(CheckerConfig::default()),
        ..Default::default()
    };
    // Survivable scenarios keep the full window (failure detection alone
    // takes ~50k cycles of retransmission backoff); a dead tile should be
    // diagnosed fast.
    if !survivable {
        sim_opts.watchdog_cycles = 100_000;
    }
    sim_opts.watchdog_cycles = effective_watchdog(&sim_opts);
    let cfg = crate::exp::apply_machine_overrides(bench.threads, cfg, &mut sim_opts);
    // Before `Simulation::new`: components register their histograms in
    // their constructors, so the session must already be open.
    let session = crate::exp::open_stats_session(
        &format!("SCTR_GLock_{scenario}_{}t", bench.threads),
        &[
            ("bench", "SCTR"),
            ("lock", "GLock"),
            ("scenario", scenario),
        ],
    );
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, sim_opts);
    match sim.run() {
        Ok((report, mem)) => {
            (inst.verify)(mem.store()).expect("surviving a chaos schedule means *correctly*");
            let num = |k: &str| report.stats.as_ref().and_then(|d| d.counters.get(k).copied());
            let show = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
            let failovers = num("sim.failovers");
            let failbacks = num("sim.failbacks");
            let checks = num("checker.checks_run");
            if let Some(s) = session {
                s.finish(&report);
            }
            let acquires = report.acquires[0];
            t.row([
                scenario.to_string(),
                "completed".to_string(),
                report.cycles.to_string(),
                acquires.to_string(),
                show(failovers),
                show(failbacks),
                show(checks),
            ]);
            Some(RowOutcome {
                acquires,
                failovers,
                repairs: num("sim.repairs"),
                failbacks,
            })
        }
        Err(e) => {
            if let Some(s) = session {
                s.abort();
            }
            assert!(
                !survivable,
                "a survivable chaos scenario must complete, got: {e}"
            );
            t.row([
                scenario.to_string(),
                e.kind().to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_sweep_survives_network_death_and_diagnoses_tile_death() {
        // Route stats to a temp dir so every row publishes its dump-backed
        // counters — the failover / repair / fail-back asserts inside
        // `run` must be exercised, not vacuously skipped.
        let dir = std::env::temp_dir().join(format!("glocks_chaos_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        crate::exp::set_stats_dir(dir.to_str());
        crate::exp::set_stats_context("chaos");
        let opts = ExpOptions { quick: true, threads: 8 };
        let t = run(&opts);
        crate::exp::set_stats_dir(None);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(t.n_rows(), 4);
        let csv = t.to_csv();
        let rows: Vec<Vec<&str>> = csv.lines().skip(1).map(|l| l.split(',').collect()).collect();
        assert_eq!(rows[0][1], "completed");
        assert_eq!(rows[1][1], "completed", "network death must be survived");
        assert_eq!(
            rows[0][3], rows[1][3],
            "failover must preserve the exact acquire count"
        );
        assert_eq!(rows[2][1], "no-forward-progress", "tile death is a diagnosed wedge");
        assert_eq!(rows[3][1], "completed", "the repair round trip must complete");
        assert_eq!(
            rows[0][3], rows[3][3],
            "fail-back must preserve the exact acquire count"
        );
        assert_ne!(rows[3][5], "-", "the fail-back counter must be published");
        assert_ne!(rows[3][5], "0", "at least one fail-back must have fired");
    }
}
