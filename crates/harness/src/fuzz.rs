//! Seeded fault-plan fuzzer with a delta-debugging shrinker.
//!
//! The chaos and fault sweeps exercise hand-picked schedules; the fuzzer
//! explores the *survivable envelope* at random. Each seeded case pairs a
//! small SCTR configuration with a generated [`FaultPlan`] combining
//! transient G-line drops/delays/duplicates, NoC and directory stalls, and
//! up to two GLock-layer hard faults (line or leaf deaths), optionally
//! intermittent with a repair window — the full kill → failover → repair →
//! fail-back lifecycle — while the protocol invariant checker rides along
//! at a dense cadence.
//!
//! The generator deliberately stays inside what the architecture promises
//! to survive: NoC and directory faults are delay-only (packet drops wedge
//! by design — there is no packet-level retransmission), hard faults hit
//! only repairable GLock-layer components (router/tile deaths are
//! *diagnosed* wedges, not survivable), and per-site rates stay below the
//! retransmission budget's saturation point. Inside that envelope, every
//! run must complete with the exact expected acquire count and final
//! memory image, so **any** failure — a structured [`SimError`], an
//! invariant violation, or a wrong final counter — is a real bug.
//!
//! A failing case is then *shrunk* by greedy delta debugging: candidate
//! reductions (drop a hard fault, strip a repair window, zero or halve a
//! rate site, step the workload and machine down) are re-run and kept
//! whenever the same failure kind still reproduces, to a fixpoint. The
//! minimal case is written out as a replayable JSON repro that
//! `glocks-experiments fuzz --replay FILE` re-executes verbatim.
//!
//! [`SimError`]: glocks_sim::SimError

use glocks_locks::LockAlgorithm;
use glocks_sim::{CheckerConfig, LockMapping, Simulation, SimulationOptions};
use glocks_sim_base::fault::{FaultPlan, FaultRates, HardFault, HardFaultTarget};
use glocks_sim_base::rng::SplitMix64;
use glocks_sim_base::table::TextTable;
use glocks_sim_base::CmpConfig;
use glocks_stats::json::{self, Json};
use glocks_workloads::{BenchConfig, BenchKind};
use std::collections::BTreeMap;

/// Schema tag stamped into every repro file; the replay parser refuses
/// anything else rather than guessing at a different layout.
pub const REPRO_SCHEMA: &str = "glocks-fuzz-repro-v1";

/// Workload sizes (total SCTR iterations) the generator draws from and the
/// shrinker steps down through. The floor keeps at least one critical
/// section per core on the largest machine.
pub const SCALE_LADDER: [u64; 4] = [8, 32, 64, 96];

/// Checker cadence for fuzz runs: much denser than the default 1024 so a
/// violation window of a few hundred cycles cannot slip between scans.
const CHECK_EVERY: u64 = 256;

/// Upper bound on shrink re-runs per failing case — a backstop far above
/// what the greedy pass needs (observed: tens), never a silent truncation
/// in practice.
const MAX_SHRINK_EVALS: usize = 128;

/// One fuzz campaign's knobs.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed: the whole campaign (plans *and* their fault schedules)
    /// is a pure function of it.
    pub seed: u64,
    /// Number of generated cases to run.
    pub plans: usize,
    /// Where minimized repro files are written (`None` = not written;
    /// callers get the encoded JSON either way).
    pub out_dir: Option<String>,
    /// Self-test hook: classify every repair-bearing plan as a
    /// `synthetic-bug` failure *before* running it, so the shrinker can be
    /// exercised (and CI can verify the repro pipeline) without a real
    /// protocol bug to find.
    pub synthetic_bug: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { seed: 0xFA57, plans: 16, out_dir: None, synthetic_bug: false }
    }
}

/// One generated (or replayed) fuzz case: a machine size, a workload size,
/// and a fault schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzCase {
    /// Cores in the simulated CMP.
    pub cores: usize,
    /// Total SCTR iterations (== the expected acquire count).
    pub scale: u64,
    pub plan: FaultPlan,
}

/// How one case failed.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    /// Machine-friendly kind (`SimError::kind()`, `verification-mismatch`,
    /// or `synthetic-bug`); shrinking preserves it.
    pub kind: String,
    pub detail: String,
}

/// One failing case after shrinking, plus its replayable repro.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    pub case_index: usize,
    pub kind: String,
    pub detail: String,
    pub minimized: FuzzCase,
    /// Encoded repro JSON (always present).
    pub repro: String,
    /// Where the repro was written, when `out_dir` was set.
    pub path: Option<String>,
}

/// A finished campaign: the per-case table and every (shrunk) failure.
pub struct FuzzReport {
    pub table: TextTable,
    pub failures: Vec<FuzzFailure>,
}

/// Generate case `index` of the campaign seeded with `seed`. Pure: the
/// same `(seed, index)` always yields the same case.
pub fn gen_case(seed: u64, index: usize) -> FuzzCase {
    let mut rng = SplitMix64::new(
        seed ^ 0x4655_5A5A ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let cores = if rng.next_below(2) == 0 { 4 } else { 8 };
    let scale = SCALE_LADDER[1..][rng.next_below(3) as usize];
    let mut plan = FaultPlan::seeded(rng.next_u64());
    // Transient rates, each site flipped on independently. G-lines take
    // all three fault kinds (the epoch-tagged protocol retransmits through
    // them); NoC and directory faults are delay-only — a dropped packet or
    // directory transaction has no retransmission to ride and wedges by
    // design, which is outside the envelope the fuzzer polices.
    if rng.next_below(2) == 0 {
        plan.gline.drop_ppm = rng.next_range(1_000, 40_000) as u32;
    }
    if rng.next_below(2) == 0 {
        plan.gline.delay_ppm = rng.next_range(1_000, 40_000) as u32;
        plan.gline.max_delay = rng.next_range(1, 48);
    }
    if rng.next_below(2) == 0 {
        plan.gline.duplicate_ppm = rng.next_range(1_000, 40_000) as u32;
    }
    if rng.next_below(2) == 0 {
        plan.noc.delay_ppm = rng.next_range(1_000, 40_000) as u32;
        plan.noc.max_delay = rng.next_range(1, 24);
    }
    if rng.next_below(2) == 0 {
        plan.dir.delay_ppm = rng.next_range(1_000, 40_000) as u32;
        plan.dir.max_delay = rng.next_range(1, 24);
    }
    // Up to two hard faults on repairable GLock-layer targets, spaced into
    // sequential episodes: a repair lands only after the ~47k-cycle death
    // verdict, and the next kill leaves room for the probe + dwell
    // hysteresis to (possibly) fail back in between.
    let n_hard = rng.next_below(3) as usize;
    let mut at = 0u64;
    for _ in 0..n_hard {
        at += rng.next_range(1_000, 5_000);
        let target = if rng.next_below(2) == 0 {
            HardFaultTarget::GlockLine { net: 0 }
        } else {
            HardFaultTarget::GlockLeaf { net: 0, core: rng.next_below(cores as u64) as usize }
        };
        if rng.next_below(2) == 0 {
            let repair_at = at + rng.next_range(35_000, 60_000);
            plan.hard.push(HardFault::intermittent(at, repair_at, target));
            at = repair_at + 60_000;
        } else {
            plan.hard.push(HardFault::permanent(at, target));
            at += 60_000;
        }
    }
    debug_assert!(plan.validate().is_ok(), "generator produced an invalid plan");
    FuzzCase { cores, scale, plan }
}

/// Run one case to completion under the invariant checker and the
/// correctness oracle. `None` = the case survived correctly.
pub fn run_case(case: &FuzzCase, synthetic_bug: bool) -> Option<CaseFailure> {
    if synthetic_bug && case.plan.has_repairs() {
        return Some(CaseFailure {
            kind: "synthetic-bug".to_string(),
            detail: "self-test hook: repair-bearing plan classified as failing".to_string(),
        });
    }
    let bench = BenchConfig {
        kind: BenchKind::Sctr,
        threads: case.cores,
        scale: case.scale,
        seed: 0xB10C_5EED,
    };
    let inst = bench.build();
    let mapping = LockMapping::uniform(LockAlgorithm::Glock, 1);
    let mut opts = SimulationOptions {
        fault_plan: Some(case.plan.clone()),
        checker: Some(CheckerConfig { every: CHECK_EVERY, ..Default::default() }),
        ..Default::default()
    };
    opts.watchdog_cycles = crate::exp::effective_watchdog(&opts);
    let cfg = crate::exp::apply_machine_overrides(
        case.cores,
        CmpConfig::paper_baseline().with_cores(case.cores),
        &mut opts,
    );
    let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, opts);
    match sim.run() {
        Ok((report, mem)) => {
            if let Err(e) = (inst.verify)(mem.store()) {
                return Some(CaseFailure {
                    kind: "verification-mismatch".to_string(),
                    detail: e,
                });
            }
            if report.acquires[0] != case.scale {
                return Some(CaseFailure {
                    kind: "verification-mismatch".to_string(),
                    detail: format!(
                        "{} acquires recorded, expected {}",
                        report.acquires[0], case.scale
                    ),
                });
            }
            None
        }
        Err(e) => Some(CaseFailure { kind: e.kind().to_string(), detail: e.to_string() }),
    }
}

fn site(p: &FaultPlan, i: usize) -> FaultRates {
    match i {
        0 => p.gline,
        1 => p.noc,
        _ => p.dir,
    }
}

fn site_mut(p: &mut FaultPlan, i: usize) -> &mut FaultRates {
    match i {
        0 => &mut p.gline,
        1 => &mut p.noc,
        _ => &mut p.dir,
    }
}

/// One round of candidate reductions, most aggressive first. Every
/// candidate is strictly smaller than `c` along some axis and structurally
/// valid, so the shrink loop terminates.
fn candidates(c: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    // Drop a whole hard fault.
    for i in 0..c.plan.hard.len() {
        let mut n = c.clone();
        n.plan.hard.remove(i);
        out.push(n);
    }
    // Silence a whole rate site.
    for i in 0..3 {
        if site(&c.plan, i).is_active() {
            let mut n = c.clone();
            *site_mut(&mut n.plan, i) = FaultRates::NONE;
            out.push(n);
        }
    }
    // Turn an intermittent fault permanent (drop the repair round trip).
    for i in 0..c.plan.hard.len() {
        if c.plan.hard[i].repair_at.is_some() {
            let mut n = c.clone();
            n.plan.hard[i].repair_at = None;
            out.push(n);
        }
    }
    // Halve individual rate fields.
    for i in 0..3 {
        let r = site(&c.plan, i);
        if r.drop_ppm > 0 {
            let mut n = c.clone();
            site_mut(&mut n.plan, i).drop_ppm /= 2;
            out.push(n);
        }
        if r.duplicate_ppm > 0 {
            let mut n = c.clone();
            site_mut(&mut n.plan, i).duplicate_ppm /= 2;
            out.push(n);
        }
        if r.delay_ppm > 0 {
            let mut n = c.clone();
            let s = site_mut(&mut n.plan, i);
            s.delay_ppm /= 2;
            if s.delay_ppm == 0 {
                s.max_delay = 0;
            }
            out.push(n);
        }
        if r.delay_ppm > 0 && r.max_delay > 1 {
            let mut n = c.clone();
            site_mut(&mut n.plan, i).max_delay = (r.max_delay / 2).max(1);
            out.push(n);
        }
    }
    // Step the workload down the ladder.
    if let Some(&s) = SCALE_LADDER.iter().rev().find(|&&s| s < c.scale) {
        let mut n = c.clone();
        n.scale = s;
        out.push(n);
    }
    // Step the machine down, clamping leaf targets onto the smaller CMP.
    if c.cores > 4 {
        let mut n = c.clone();
        n.cores = 4;
        for hf in &mut n.plan.hard {
            if let HardFaultTarget::GlockLeaf { net, core } = hf.target {
                hf.target = HardFaultTarget::GlockLeaf { net, core: core.min(n.cores - 1) };
            }
        }
        out.push(n);
    }
    out
}

/// Greedy delta debugging: repeatedly take the first candidate reduction
/// that still reproduces failure `kind`, to a fixpoint. Returns the
/// minimal case (possibly `case` itself).
pub fn shrink(case: &FuzzCase, kind: &str, synthetic_bug: bool) -> FuzzCase {
    let mut best = case.clone();
    let mut evals = 0usize;
    'outer: loop {
        for cand in candidates(&best) {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            evals += 1;
            debug_assert!(cand.plan.validate().is_ok(), "shrinker produced an invalid plan");
            if run_case(&cand, synthetic_bug).is_some_and(|f| f.kind == kind) {
                best = cand;
                continue 'outer;
            }
        }
        break;
    }
    best
}

fn rates_to_json(r: &FaultRates) -> Json {
    let mut m = BTreeMap::new();
    m.insert("drop_ppm".to_string(), Json::UInt(u64::from(r.drop_ppm)));
    m.insert("delay_ppm".to_string(), Json::UInt(u64::from(r.delay_ppm)));
    m.insert("max_delay".to_string(), Json::UInt(r.max_delay));
    m.insert("duplicate_ppm".to_string(), Json::UInt(u64::from(r.duplicate_ppm)));
    Json::Obj(m)
}

fn target_to_json(t: HardFaultTarget) -> Json {
    let mut m = BTreeMap::new();
    let kind = match t {
        HardFaultTarget::GlockLine { net } => {
            m.insert("net".to_string(), Json::UInt(net as u64));
            "glock-line"
        }
        HardFaultTarget::GlockManager { net, node } => {
            m.insert("net".to_string(), Json::UInt(net as u64));
            m.insert("node".to_string(), Json::UInt(node as u64));
            "glock-manager"
        }
        HardFaultTarget::GlockLeaf { net, core } => {
            m.insert("net".to_string(), Json::UInt(net as u64));
            m.insert("core".to_string(), Json::UInt(core as u64));
            "glock-leaf"
        }
        HardFaultTarget::NocRouter { tile } => {
            m.insert("tile".to_string(), Json::UInt(tile as u64));
            "noc-router"
        }
        HardFaultTarget::Tile { core } => {
            m.insert("core".to_string(), Json::UInt(core as u64));
            "tile"
        }
    };
    m.insert("kind".to_string(), Json::Str(kind.to_string()));
    Json::Obj(m)
}

/// Encode a (minimized) case as a self-contained repro file. Deterministic
/// (sorted keys), so a repro can be golden-tested byte for byte.
pub fn case_to_json(case: &FuzzCase, failure: &str, fuzz_seed: u64, case_index: usize) -> String {
    let mut m = BTreeMap::new();
    m.insert("schema".to_string(), Json::Str(REPRO_SCHEMA.to_string()));
    m.insert("failure".to_string(), Json::Str(failure.to_string()));
    m.insert("fuzz_seed".to_string(), Json::UInt(fuzz_seed));
    m.insert("case_index".to_string(), Json::UInt(case_index as u64));
    m.insert("cores".to_string(), Json::UInt(case.cores as u64));
    m.insert("scale".to_string(), Json::UInt(case.scale));
    m.insert("plan_seed".to_string(), Json::UInt(case.plan.seed));
    m.insert("gline".to_string(), rates_to_json(&case.plan.gline));
    m.insert("noc".to_string(), rates_to_json(&case.plan.noc));
    m.insert("dir".to_string(), rates_to_json(&case.plan.dir));
    let hard = case
        .plan
        .hard
        .iter()
        .map(|hf| {
            let mut h = BTreeMap::new();
            h.insert("at_cycle".to_string(), Json::UInt(hf.at_cycle));
            h.insert("target".to_string(), target_to_json(hf.target));
            h.insert(
                "repair_at".to_string(),
                hf.repair_at.map_or(Json::Null, Json::UInt),
            );
            Json::Obj(h)
        })
        .collect();
    m.insert("hard".to_string(), Json::Arr(hard));
    Json::Obj(m).encode()
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn get_u32(j: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(get_u64(j, key)?).map_err(|_| format!("field '{key}' overflows u32"))
}

fn rates_from_json(j: &Json, key: &str) -> Result<FaultRates, String> {
    let r = j.get(key).ok_or_else(|| format!("missing rate site '{key}'"))?;
    Ok(FaultRates {
        drop_ppm: get_u32(r, "drop_ppm")?,
        delay_ppm: get_u32(r, "delay_ppm")?,
        max_delay: get_u64(r, "max_delay")?,
        duplicate_ppm: get_u32(r, "duplicate_ppm")?,
    })
}

fn target_from_json(j: &Json) -> Result<HardFaultTarget, String> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "hard fault target has no 'kind'".to_string())?;
    let idx = |key: &str| get_u64(j, key).map(|v| v as usize);
    match kind {
        "glock-line" => Ok(HardFaultTarget::GlockLine { net: idx("net")? }),
        "glock-manager" => {
            Ok(HardFaultTarget::GlockManager { net: idx("net")?, node: idx("node")? })
        }
        "glock-leaf" => Ok(HardFaultTarget::GlockLeaf { net: idx("net")?, core: idx("core")? }),
        "noc-router" => Ok(HardFaultTarget::NocRouter { tile: idx("tile")? }),
        "tile" => Ok(HardFaultTarget::Tile { core: idx("core")? }),
        other => Err(format!("unknown hard fault target kind '{other}'")),
    }
}

/// Parse a repro file back into a runnable case. Validates the schema tag
/// and the plan structure, so a stale or hand-mangled repro fails loudly.
pub fn case_from_json(text: &str) -> Result<FuzzCase, String> {
    let j = json::parse(text)?;
    let schema = j.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != REPRO_SCHEMA {
        return Err(format!("repro schema '{schema}' is not '{REPRO_SCHEMA}'"));
    }
    let mut plan = FaultPlan::seeded(get_u64(&j, "plan_seed")?);
    plan.gline = rates_from_json(&j, "gline")?;
    plan.noc = rates_from_json(&j, "noc")?;
    plan.dir = rates_from_json(&j, "dir")?;
    for h in j.get("hard").and_then(Json::as_arr).unwrap_or(&[]) {
        let repair_at = match h.get("repair_at") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("non-integer 'repair_at'")?),
        };
        plan.hard.push(HardFault {
            at_cycle: get_u64(h, "at_cycle")?,
            target: target_from_json(
                h.get("target").ok_or("hard fault has no 'target'")?,
            )?,
            repair_at,
        });
    }
    plan.validate().map_err(|e| e.to_string())?;
    let case = FuzzCase {
        cores: get_u64(&j, "cores")? as usize,
        scale: get_u64(&j, "scale")?,
        plan,
    };
    if case.cores == 0 || case.scale == 0 {
        return Err("repro needs at least one core and one iteration".to_string());
    }
    Ok(case)
}

/// Load and re-run a repro file. `Ok(None)` = the case now passes;
/// `Ok(Some(f))` = it still fails (with the live failure kind).
pub fn replay_file(path: &str, synthetic_bug: bool) -> Result<Option<CaseFailure>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let case = case_from_json(&text)?;
    Ok(run_case(&case, synthetic_bug))
}

fn rates_cell(r: &FaultRates) -> String {
    if !r.is_active() {
        return "-".to_string();
    }
    format!("{}/{}:{}/{}", r.drop_ppm, r.delay_ppm, r.max_delay, r.duplicate_ppm)
}

/// Run a whole campaign: generate, run, shrink failures, and (optionally)
/// write their repro files into `out_dir`.
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    let mut t = TextTable::new(format!(
        "Fault-plan fuzzer — {} seeded cases in the survivable envelope (seed {:#x})",
        cfg.plans, cfg.seed
    ))
    .header([
        "case",
        "cores",
        "iters",
        "gline d/y:max/u (ppm)",
        "noc",
        "dir",
        "hard(repairs)",
        "outcome",
    ]);
    let mut failures = Vec::new();
    for i in 0..cfg.plans {
        let case = gen_case(cfg.seed, i);
        let repairs = case.plan.hard.iter().filter(|h| h.repair_at.is_some()).count();
        let outcome = match run_case(&case, cfg.synthetic_bug) {
            None => "ok".to_string(),
            Some(f) => {
                let minimized = shrink(&case, &f.kind, cfg.synthetic_bug);
                let repro = case_to_json(&minimized, &f.kind, cfg.seed, i);
                let path = cfg.out_dir.as_ref().map(|dir| {
                    let _ = std::fs::create_dir_all(dir);
                    let path = format!("{dir}/repro_case{i}_{}.json", f.kind);
                    if let Err(e) = std::fs::write(&path, &repro) {
                        eprintln!("[fuzz] failed to write repro {path}: {e}");
                    }
                    path
                });
                let kind = f.kind.clone();
                failures.push(FuzzFailure {
                    case_index: i,
                    kind: f.kind,
                    detail: f.detail,
                    minimized,
                    repro,
                    path,
                });
                kind
            }
        };
        t.row([
            i.to_string(),
            case.cores.to_string(),
            case.scale.to_string(),
            rates_cell(&case.plan.gline),
            rates_cell(&case.plan.noc),
            rates_cell(&case.plan.dir),
            format!("{}({repairs})", case.plan.hard.len()),
            outcome,
        ]);
    }
    FuzzReport { table: t, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_stays_in_the_envelope() {
        for i in 0..32 {
            let a = gen_case(0xF00D, i);
            let b = gen_case(0xF00D, i);
            assert_eq!(a, b, "case generation must be a pure function of (seed, index)");
            a.plan.validate().expect("generated plans are structurally valid");
            assert_eq!(a.plan.noc.drop_ppm, 0, "NoC drops wedge by design");
            assert_eq!(a.plan.noc.duplicate_ppm, 0);
            assert_eq!(a.plan.dir.drop_ppm, 0);
            assert_eq!(a.plan.dir.duplicate_ppm, 0);
            assert!(a.plan.hard.len() <= 2);
            for hf in &a.plan.hard {
                assert!(
                    matches!(
                        hf.target,
                        HardFaultTarget::GlockLine { .. } | HardFaultTarget::GlockLeaf { .. }
                    ),
                    "only repairable GLock-layer targets are generated"
                );
            }
        }
    }

    #[test]
    fn small_campaign_survives_the_envelope() {
        let cfg = FuzzConfig { seed: 0xF1E1D, plans: 4, ..Default::default() };
        let rep = run(&cfg);
        assert_eq!(rep.table.n_rows(), 4);
        assert!(
            rep.failures.is_empty(),
            "the survivable envelope must be clean, got: {:?}",
            rep.failures.iter().map(|f| (&f.kind, &f.detail)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn synthetic_bug_shrinks_to_a_minimal_replayable_repro() {
        let seed = 0xCAFE;
        let idx = (0..64)
            .find(|&i| gen_case(seed, i).plan.has_repairs())
            .expect("some generated case carries a repair window");
        let case = gen_case(seed, idx);
        let f = run_case(&case, true).expect("the hook classifies repair plans as failing");
        assert_eq!(f.kind, "synthetic-bug");

        let min = shrink(&case, &f.kind, true);
        assert_eq!(min.cores, 4, "the machine shrinks to the smallest CMP");
        assert_eq!(min.scale, SCALE_LADDER[0], "the workload shrinks to the ladder floor");
        assert_eq!(min.plan.hard.len(), 1, "a single hard fault suffices");
        assert!(min.plan.hard[0].repair_at.is_some(), "the repair window is the trigger");
        assert!(
            !min.plan.gline.is_active()
                && !min.plan.noc.is_active()
                && !min.plan.dir.is_active(),
            "transient rates are irrelevant to the failure and must be gone"
        );

        let text = case_to_json(&min, &f.kind, seed, idx);
        let back = case_from_json(&text).expect("repro parses back");
        assert_eq!(back, min, "the repro round-trips the exact minimized case");
        let again = run_case(&back, true).expect("the parsed repro still reproduces");
        assert_eq!(again.kind, "synthetic-bug");
    }

    #[test]
    fn repro_parser_rejects_garbage() {
        assert!(case_from_json("{}").is_err(), "missing schema tag");
        assert!(case_from_json("not json").is_err());
        let min = FuzzCase {
            cores: 4,
            scale: 8,
            plan: FaultPlan::seeded(1),
        };
        let good = case_to_json(&min, "x", 0, 0);
        let bad = good.replace(REPRO_SCHEMA, "glocks-fuzz-repro-v0");
        assert!(case_from_json(&bad).is_err(), "wrong schema version is refused");
    }
}
