//! Table III: benchmark configuration and lock-related characteristics,
//! with the lock and highly-contended-lock counts *measured* from a run of
//! each benchmark (the table is asserted, not just printed).

use crate::exp::{try_run_bench, ExpOptions};
use glocks_locks::LockAlgorithm;
use glocks_sim::LockMapping;
use glocks_sim_base::table::TextTable;
use glocks_workloads::contention::classify_hc;
use glocks_workloads::BenchKind;

pub fn run(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new("Table III — benchmarks and lock characteristics").header([
        "benchmark",
        "input size",
        "locks",
        "H-C locks",
        "measured H-C",
        "access pattern",
    ]);
    for kind in BenchKind::ALL {
        let bench = opts.bench(kind);
        // The paper's post-mortem runs every lock as Simple Lock with the
        // test-and-test&set optimization.
        let mapping = LockMapping::uniform(LockAlgorithm::Tatas, bench.n_locks());
        let Some(r) = try_run_bench(&bench, &mapping) else { continue };
        // Footnote-3 criterion: substantial cycle weight and most mass at
        // grACs comparable to the core count.
        let hc_measured = classify_hc(&r.report.lcr, bench.threads / 4, 0.35, 0.02);
        t.row([
            kind.name().to_string(),
            kind.input_size_label().to_string(),
            bench.n_locks().to_string(),
            bench.hc_locks().len().to_string(),
            hc_measured.len().to_string(),
            kind.access_pattern().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_benchmarks() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let t = run(&opts);
        assert_eq!(t.n_rows(), 8);
        let s = t.render();
        assert!(s.contains("RAYTR"));
        assert!(s.contains("16384 elements"));
    }
}
