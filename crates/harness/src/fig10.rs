//! Figure 10: normalized energy-delay² product (ED²P) for the full CMP,
//! GLocks vs MCS, with the per-component energy split.

use crate::exp::{glock_mapping, mcs_mapping, try_run_bench, ExpOptions};
use glocks_energy::EnergyReport;
use glocks_sim_base::table::{bar, norm, pct, TextTable};
use glocks_workloads::BenchKind;

pub struct Fig10Row {
    pub bench: BenchKind,
    pub mcs_ed2p: f64,
    pub gl_ed2p: f64,
    pub normalized: f64,
    pub gl_energy: EnergyReport,
    pub mcs_energy: EnergyReport,
}

impl Fig10Row {
    pub fn reduction(&self) -> f64 {
        1.0 - self.normalized
    }
}

/// Bar chart of normalized ED2P (MCS = full width).
pub fn chart(rows: &[Fig10Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in rows {
        let _ = writeln!(
            out,
            "{:>5} |{:<40}| {}",
            r.bench.name(),
            bar(r.normalized, 1.0, 40),
            pct(1.0 - r.normalized)
        );
    }
    out
}

pub fn run(opts: &ExpOptions) -> (TextTable, Vec<Fig10Row>) {
    let mut rows = Vec::new();
    for kind in BenchKind::ALL {
        let bench = opts.bench(kind);
        let Some(mcs) = try_run_bench(&bench, &mcs_mapping(&bench)) else { continue };
        let Some(gl) = try_run_bench(&bench, &glock_mapping(&bench)) else { continue };
        let (mcs, gl) = (mcs.report, gl.report);
        rows.push(Fig10Row {
            bench: kind,
            mcs_ed2p: mcs.ed2p,
            gl_ed2p: gl.ed2p,
            normalized: gl.ed2p / mcs.ed2p,
            gl_energy: gl.energy,
            mcs_energy: mcs.energy,
        });
    }
    let mut t = TextTable::new("Figure 10 — normalized ED2P for the full CMP (GL vs MCS)")
        .header(["bench", "GL/MCS ED2P", "reduction", "GL energy/MCS energy", "GLock HW share"]);
    for r in &rows {
        t.row([
            r.bench.name().to_string(),
            norm(r.normalized),
            pct(r.reduction()),
            norm(r.gl_energy.total_pj() / r.mcs_energy.total_pj()),
            pct(r.gl_energy.glock_pj / r.gl_energy.total_pj()),
        ]);
    }
    let avg = |app: bool| {
        let xs: Vec<f64> = rows
            .iter()
            .filter(|r| r.bench.is_app() == app)
            .map(|r| r.normalized)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    t.row([
        "AvgM".to_string(),
        norm(avg(false)),
        pct(1.0 - avg(false)),
        String::new(),
        String::new(),
    ]);
    t.row([
        "AvgA".to_string(),
        norm(avg(true)),
        pct(1.0 - avg(true)),
        String::new(),
        String::new(),
    ]);
    (t, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ed2p_improves_and_glock_hw_is_negligible() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let (_t, rows) = run(&opts);
        for r in &rows {
            let cap = if r.bench == BenchKind::Qsort { 1.6 } else { 1.0 };
            assert!(
                r.normalized < cap,
                "{:?}: ED2P must improve ({})",
                r.bench,
                r.normalized
            );
            // The paper's area/energy claim: the dedicated G-line network's
            // consumption is marginal.
            let share = r.gl_energy.glock_pj / r.gl_energy.total_pj();
            assert!(share < 0.02, "{:?}: GLock HW share {share:.3}", r.bench);
        }
        // micros gain more than apps, as in the paper (78 % vs 28 %)
        let avg = |app: bool| {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| r.bench.is_app() == app)
                .map(|r| r.reduction())
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(avg(false) > avg(true));
    }
}
