//! Figure 7: locks' contention rate (LCR, Eqs. 1–3).
//!
//! Each benchmark runs with the Simple-Lock-with-TATAS configuration the
//! paper uses for its post-mortem contention analysis; the cycle-by-cycle
//! grAC histograms are decomposed per lock (RAYTR's 32 low-contention
//! locks are aggregated as `RAYTR-LR`, as in the paper).

use crate::exp::{try_run_bench, ExpOptions};
use glocks_locks::LockAlgorithm;
use glocks_sim::LockMapping;
use glocks_sim_base::table::{pct, TextTable};
use glocks_workloads::contention::{summarize, BUCKETS};
use glocks_workloads::BenchKind;

pub struct Fig7Row {
    pub label: String,
    pub weight: f64,
    pub buckets: [f64; 4],
}

/// Full-resolution LCR matrix (one column per grAC value) — enough to
/// replot the paper's 3D Figure 7 exactly.
pub fn full_matrix(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new("Figure 7 (full resolution) — LCR per grAC").header(
        std::iter::once("lock".to_string())
            .chain((1..=opts.threads).map(|g| format!("g{g}")))
            .collect::<Vec<_>>(),
    );
    for kind in BenchKind::ALL {
        let bench = opts.bench(kind);
        let mapping = LockMapping::uniform(LockAlgorithm::Tatas, bench.n_locks());
        let Some(r) = try_run_bench(&bench, &mapping) else { continue };
        for (i, per_grac) in r.report.lcr.iter().enumerate() {
            // omit all-zero rows (silent low-contention locks)
            if per_grac.iter().sum::<f64>() < 1e-9 {
                continue;
            }
            let mut row = vec![format!("{}-L{}", kind.name(), i + 1)];
            for g in 1..=opts.threads {
                row.push(format!("{:.4}", per_grac.get(g).copied().unwrap_or(0.0)));
            }
            t.row(row);
        }
    }
    t
}

pub fn run(opts: &ExpOptions) -> (TextTable, Vec<Fig7Row>) {
    let mut rows: Vec<Fig7Row> = Vec::new();
    for kind in BenchKind::ALL {
        let bench = opts.bench(kind);
        let mapping = LockMapping::uniform(LockAlgorithm::Tatas, bench.n_locks());
        let Some(r) = try_run_bench(&bench, &mapping) else { continue };
        let summaries = summarize(&r.report.lcr);
        if kind == BenchKind::Raytr {
            // The paper shows the two most contended locks and aggregates
            // the rest as RAYTR-LR.
            for (i, s) in summaries.iter().enumerate().take(2) {
                rows.push(Fig7Row {
                    label: format!("{}-L{}", kind.name(), i + 1),
                    weight: s.weight,
                    buckets: s.buckets,
                });
            }
            let mut rest = Fig7Row {
                label: format!("{}-LR", kind.name()),
                weight: 0.0,
                buckets: [0.0; 4],
            };
            for s in summaries.iter().skip(2) {
                rest.weight += s.weight;
                for b in 0..4 {
                    rest.buckets[b] += s.buckets[b];
                }
            }
            rows.push(rest);
        } else {
            for (i, s) in summaries.iter().enumerate() {
                let label = if summaries.len() == 1 {
                    kind.name().to_string()
                } else {
                    format!("{}-L{}", kind.name(), i + 1)
                };
                rows.push(Fig7Row { label, weight: s.weight, buckets: s.buckets });
            }
        }
    }
    let mut t = TextTable::new("Figure 7 — locks' contention rate by grAC bucket").header([
        "lock".to_string(),
        "weight".to_string(),
        format!("grAC {}-{}", BUCKETS[0].0, BUCKETS[0].1),
        format!("grAC {}-{}", BUCKETS[1].0, BUCKETS[1].1),
        format!("grAC {}-{}", BUCKETS[2].0, BUCKETS[2].1),
        format!("grAC >{}", BUCKETS[3].0 - 1),
    ]);
    for r in &rows {
        t.row([
            r.label.clone(),
            pct(r.weight),
            pct(r.buckets[0]),
            pct(r.buckets[1]),
            pct(r.buckets[2]),
            pct(r.buckets[3]),
        ]);
    }
    (t, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_contention_shape() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let (_t, rows) = run(&opts);
        // SCTR: all mass on one lock, concentrated at high grAC.
        let sctr = rows.iter().find(|r| r.label == "SCTR").unwrap();
        assert!((sctr.weight - 1.0).abs() < 1e-9);
        assert!(
            sctr.buckets[1] + sctr.buckets[2] + sctr.buckets[3] > 0.5,
            "SCTR should be dominated by grACs near the core count: {:?}",
            sctr.buckets
        );
        // RAYTR rows present, including the aggregated remainder.
        assert!(rows.iter().any(|r| r.label == "RAYTR-L1"));
        assert!(rows.iter().any(|r| r.label == "RAYTR-LR"));
        // each benchmark's weights sum to ~1
        let raytr_total: f64 = rows
            .iter()
            .filter(|r| r.label.starts_with("RAYTR"))
            .map(|r| r.weight)
            .sum();
        assert!((raytr_total - 1.0).abs() < 1e-9);
    }
}
