//! Run one benchmark configuration with periodic checkpoints and
//! crash-safe resume.
//!
//! ```text
//! glocks-run --bench SCTR --lock GLock [--threads N] [--mesh WxH]
//!            [--quick] [--out DIR] [--checkpoint-every N] [--snapshot FILE]
//!            [--resume] [--watchdog-cycles N] [--timeout-secs N]
//!            [--die-after-checkpoints N]
//!
//! --bench NAME           SCTR|MCTR|DBLL|PRCO|ACTR|RAYTR|OCEAN|QSORT
//! --lock NAME            Simple|TATAS|TATAS-BO|Ticket|Anderson|MCS|Ideal
//!                        |GLock|MP-Lock|SB|DynGLock|Reactive
//! --threads N            core count (default 32)
//! --mesh WxH             explicit mesh floor plan (e.g. 32x32); W*H must
//!                        equal the core count (default: near-square)
//! --quick                reduced input size (CI scale)
//! --out DIR              artifact directory (default runs/)
//! --checkpoint-every N   auto-checkpoint every N cycles (0 = off);
//!                        each image goes to the snapshot file via an
//!                        atomic tmp+rename, so a crash mid-write leaves
//!                        the previous checkpoint intact
//! --snapshot FILE        checkpoint path (default DIR/<id>.ckpt)
//! --resume               if the snapshot file exists, resume from it
//!                        instead of starting at cycle 0
//! --watchdog-cycles N    no-forward-progress window override
//! --timeout-secs N       wall-clock budget (SimError::WallClockExceeded)
//! --dense                tick every cycle instead of the event-driven
//!                        idle-skip scheduler (byte-identical results)
//! --die-after-checkpoints N   self-test hook: exit(42) right after the
//!                        Nth checkpoint hits disk, simulating a crash
//!
//! The stats dump lands at DIR/<id>.json and is byte-identical whether
//! the run went straight through or was interrupted and resumed — that is
//! the whole point. Run states append to DIR/journal.jsonl. Exit code:
//! 0 = done (snapshot file removed), 1 = deterministic failure,
//! 2 = transient wedge (checkpoint kept for resume), 42 = injected crash.
//! ```

use glocks_harness::exp::parse_mesh;
use glocks_harness::journal::{Journal, JournalRow, RunError, RunStatus};
use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, SimError, Simulation, SimulationOptions, Snapshot};
use glocks_sim_base::{CmpConfig, Mesh2D};
use glocks_workloads::{BenchConfig, BenchKind};
use std::path::PathBuf;
use std::time::Instant;

fn parse_bench(name: &str) -> Option<BenchKind> {
    BenchKind::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(name))
}

fn parse_lock(name: &str) -> Option<LockAlgorithm> {
    const ALL: [LockAlgorithm; 12] = [
        LockAlgorithm::Simple,
        LockAlgorithm::Tatas,
        LockAlgorithm::TatasBackoff,
        LockAlgorithm::Ticket,
        LockAlgorithm::Anderson,
        LockAlgorithm::Mcs,
        LockAlgorithm::Ideal,
        LockAlgorithm::Glock,
        LockAlgorithm::MpLock,
        LockAlgorithm::SyncBuf,
        LockAlgorithm::DynamicGlock,
        LockAlgorithm::Reactive,
    ];
    ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(name))
}

struct Cli {
    bench: BenchKind,
    lock: LockAlgorithm,
    threads: usize,
    mesh: Option<Mesh2D>,
    quick: bool,
    out: PathBuf,
    checkpoint_every: u64,
    snapshot: Option<PathBuf>,
    resume: bool,
    watchdog: Option<u64>,
    timeout_secs: Option<u64>,
    die_after: Option<u64>,
    dense: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: glocks-run --bench NAME --lock NAME [--threads N] [--mesh WxH] [--quick] \
         [--out DIR] [--checkpoint-every N] [--snapshot FILE] [--resume] [--watchdog-cycles N] \
         [--timeout-secs N] [--die-after-checkpoints N] [--dense]"
    );
    std::process::exit(2)
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = None;
    let mut lock = None;
    let mut cli = Cli {
        bench: BenchKind::Sctr,
        lock: LockAlgorithm::Glock,
        threads: 32,
        mesh: None,
        quick: false,
        out: PathBuf::from("runs"),
        checkpoint_every: 0,
        snapshot: None,
        resume: false,
        watchdog: None,
        timeout_secs: None,
        die_after: None,
        dense: false,
    };
    let mut i = 0;
    let need = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).unwrap_or_else(|| { eprintln!("{flag} needs a value"); usage() }).clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                i += 1;
                let v = need(&args, i, "--bench");
                bench = Some(parse_bench(&v).unwrap_or_else(|| {
                    eprintln!("unknown benchmark: {v}");
                    usage()
                }));
            }
            "--lock" => {
                i += 1;
                let v = need(&args, i, "--lock");
                lock = Some(parse_lock(&v).unwrap_or_else(|| {
                    eprintln!("unknown lock algorithm: {v}");
                    usage()
                }));
            }
            "--threads" => {
                i += 1;
                cli.threads = need(&args, i, "--threads").parse().unwrap_or_else(|_| usage());
            }
            "--mesh" => {
                i += 1;
                let v = need(&args, i, "--mesh");
                cli.mesh = Some(parse_mesh(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                }));
            }
            "--quick" => cli.quick = true,
            "--out" => {
                i += 1;
                cli.out = PathBuf::from(need(&args, i, "--out"));
            }
            "--checkpoint-every" => {
                i += 1;
                cli.checkpoint_every =
                    need(&args, i, "--checkpoint-every").parse().unwrap_or_else(|_| usage());
            }
            "--snapshot" => {
                i += 1;
                cli.snapshot = Some(PathBuf::from(need(&args, i, "--snapshot")));
            }
            "--resume" => cli.resume = true,
            "--dense" => cli.dense = true,
            "--watchdog-cycles" => {
                i += 1;
                cli.watchdog =
                    Some(need(&args, i, "--watchdog-cycles").parse().unwrap_or_else(|_| usage()));
            }
            "--timeout-secs" => {
                i += 1;
                cli.timeout_secs =
                    Some(need(&args, i, "--timeout-secs").parse().unwrap_or_else(|_| usage()));
            }
            "--die-after-checkpoints" => {
                i += 1;
                cli.die_after = Some(
                    need(&args, i, "--die-after-checkpoints").parse().unwrap_or_else(|_| usage()),
                );
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }
    cli.bench = bench.unwrap_or_else(|| {
        eprintln!("--bench is required");
        usage()
    });
    cli.lock = lock.unwrap_or_else(|| {
        eprintln!("--lock is required");
        usage()
    });
    cli
}

/// Write `bytes` to `path` atomically: full write to a sibling tmp file,
/// fsync, then rename. A crash at any point leaves either the previous
/// checkpoint or the new one — never a torn file.
fn write_atomic(path: &PathBuf, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

fn journal_append(journal: &mut Option<Journal>, row: &JournalRow) {
    if let Some(j) = journal {
        if let Err(e) = j.append(row) {
            eprintln!("[glocks-run] journal append failed: {e}");
        }
    }
}

fn main() {
    let cli = parse_cli();
    let id = format!("{}_{}_{}t", cli.bench.name(), cli.lock.name(), cli.threads);
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("[glocks-run] cannot create {}: {e}", cli.out.display());
        std::process::exit(2);
    }
    let ckpt_path = cli.snapshot.clone().unwrap_or_else(|| cli.out.join(format!("{id}.ckpt")));
    let dump_path = cli.out.join(format!("{id}.json"));
    let mut journal = match Journal::open(&cli.out.join("journal.jsonl")) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("[glocks-run] cannot open journal: {e}");
            None
        }
    };

    // Stats must be live before construction: components register their
    // counters and histograms in their constructors.
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    glocks_stats::set_meta("experiment", "glocks-run");
    glocks_stats::set_meta("bench", cli.bench.name());
    glocks_stats::set_meta("lock", cli.lock.name());
    glocks_stats::set_meta("threads", &cli.threads.to_string());

    let bench = if cli.quick {
        BenchConfig::smoke(cli.bench, cli.threads)
    } else {
        BenchConfig::paper(cli.bench, cli.threads)
    };
    let mapping = LockMapping::hybrid(&bench.hc_locks(), cli.lock, bench.n_locks());
    let mut cfg = CmpConfig::paper_baseline().with_cores(cli.threads);
    if let Some(m) = cli.mesh {
        if m.len() != cli.threads {
            eprintln!(
                "--mesh {}x{} holds {} tiles but --threads is {}",
                m.cols(),
                m.rows(),
                m.len(),
                cli.threads
            );
            usage();
        }
        cfg = cfg.with_mesh(m);
    }
    let mut options = SimulationOptions::default();
    if let Some(w) = cli.watchdog {
        options.watchdog_cycles = w;
    }
    options.wall_clock_limit_ms = cli.timeout_secs.map(|s| s.saturating_mul(1000));
    options.idle_skip = !cli.dense;
    let inst = bench.build();

    let resumed_from = if cli.resume && ckpt_path.exists() {
        match std::fs::read(&ckpt_path).map_err(|e| e.to_string()).and_then(|b| {
            Snapshot::from_bytes(b).map_err(|e| e.to_string())
        }) {
            Ok(snap) => Some(snap),
            Err(e) => {
                eprintln!("[glocks-run] cannot load {}: {e}", ckpt_path.display());
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    let sim = match &resumed_from {
        Some(snap) => {
            match Simulation::resume(&cfg, &mapping, inst.workloads, &inst.init, options, snap) {
                Ok(sim) => {
                    eprintln!(
                        "[glocks-run] {id}: resumed from {} at cycle {}",
                        ckpt_path.display(),
                        snap.cycle()
                    );
                    sim
                }
                Err(e) => {
                    eprintln!("[glocks-run] {id}: snapshot refused: {e}");
                    let mut row = JournalRow::new(&id, RunStatus::Failed);
                    row.errors.push(RunError {
                        kind: "snapshot-refused".to_string(),
                        transient: false,
                        detail: e.to_string(),
                    });
                    journal_append(&mut journal, &row);
                    std::process::exit(1);
                }
            }
        }
        None => Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, options),
    };

    journal_append(&mut journal, &JournalRow::new(&id, RunStatus::Running));
    let t0 = Instant::now();
    let mut checkpoints_written = 0u64;
    let mut sink = |snap: Snapshot| {
        if let Err(e) = write_atomic(&ckpt_path, snap.as_bytes()) {
            eprintln!("[glocks-run] checkpoint write failed: {e}");
            return;
        }
        checkpoints_written += 1;
        eprintln!(
            "[glocks-run] {id}: checkpoint #{checkpoints_written} at cycle {} ({} bytes)",
            snap.cycle(),
            snap.len()
        );
        if cli.die_after == Some(checkpoints_written) {
            eprintln!("[glocks-run] {id}: injected crash after checkpoint #{checkpoints_written}");
            std::process::exit(42);
        }
    };
    let result = if cli.checkpoint_every > 0 {
        sim.run_with_checkpoints(cli.checkpoint_every, &mut sink)
    } else {
        sim.run()
    };

    match result {
        Ok((report, mem)) => {
            if let Err(e) = (inst.verify)(mem.store()) {
                eprintln!("[glocks-run] {id}: verification FAILED: {e}");
                let mut row = JournalRow::new(&id, RunStatus::Failed);
                row.wall_ms = t0.elapsed().as_millis() as u64;
                row.errors.push(RunError {
                    kind: "verification-failed".to_string(),
                    transient: false,
                    detail: e.to_string(),
                });
                journal_append(&mut journal, &row);
                std::process::exit(1);
            }
            let dump = report.stats.as_ref().expect("stats session was enabled");
            if let Err(e) = std::fs::write(&dump_path, dump.to_json()) {
                eprintln!("[glocks-run] cannot write {}: {e}", dump_path.display());
                std::process::exit(1);
            }
            glocks_stats::disable();
            // A finished run's checkpoint is stale by definition.
            let _ = std::fs::remove_file(&ckpt_path);
            let mut row = JournalRow::new(&id, RunStatus::Done);
            row.wall_ms = t0.elapsed().as_millis() as u64;
            row.artifacts.push(dump_path.display().to_string());
            journal_append(&mut journal, &row);
            eprintln!(
                "[glocks-run] {id}: done in {} cycles, {:.1}s wall{}",
                report.cycles,
                t0.elapsed().as_secs_f64(),
                if resumed_from.is_some() { " (resumed)" } else { "" }
            );
        }
        Err(e) => {
            glocks_stats::disable();
            let status = if e.is_transient() { RunStatus::Wedged } else { RunStatus::Failed };
            eprintln!("[glocks-run] {id}: {} ({})\n{e}", status.as_str(), e.kind());
            let mut row = JournalRow::new(&id, status);
            row.wall_ms = t0.elapsed().as_millis() as u64;
            row.errors.push(RunError::from_sim_error(&e));
            if ckpt_path.exists() {
                row.artifacts.push(ckpt_path.display().to_string());
            }
            journal_append(&mut journal, &row);
            std::process::exit(match e {
                SimError::WallClockExceeded { .. } => 2,
                _ => 1,
            });
        }
    }
}
