//! Regenerate the paper's tables and figures.
//!
//! ```text
//! glocks-experiments [EXPERIMENT ...] [--quick] [--threads N] [--csv DIR]
//!                    [--stats-json DIR] [--chrome-trace FILE] [--jobs N]
//!                    [--journal FILE] [--resume] [--timeout-secs N]
//!                    [--retries N] [--backoff-ms N]
//!
//! EXPERIMENT: all | fig1 | fig7 | fig8 | fig9 | fig10
//!           | table1 | table2 | table3 | table4 | ablations | multiprog
//!           | faults | chaos | service | scale | fuzz
//! --quick            reduced input sizes (seconds instead of minutes)
//! --threads N        CMP size for the main experiments (default 32)
//! --mesh WxH         explicit mesh floor plan for every run (W*H must
//!                    equal each run's core count; default: near-square)
//! --dense            disable the event-driven idle-skip scheduler and
//!                    tick every cycle (A/B self-profiling; results are
//!                    byte-identical either way)
//! --watchdog-cycles N  override the no-forward-progress window for every
//!                    run (cycles; 0 disables the watchdog)
//! --csv DIR          additionally write each table as DIR/<experiment>.csv
//! --stats-json DIR   record typed stats for every run and dump them as
//!                    schema-versioned JSON into DIR, plus one
//!                    BENCH_<experiment>.json self-profile per experiment
//! --chrome-trace F   drain the event-trace ring of every run into one
//!                    chrome://tracing / Perfetto JSON file
//! --jobs N           run selected experiments on N worker threads
//!                    (stats and traces are thread-local, so runs never mix)
//! --journal FILE     append every run-state transition to a JSONL journal
//! --resume           skip experiments whose journal row is already done
//! --timeout-secs N   per-run wall-clock budget; an overstaying run comes
//!                    back as a transient wedge and is retried
//! --retries N        retries for transient wedges (default 2)
//! --backoff-ms N     base backoff between retries, doubling per attempt
//!
//! Each experiment runs under catch_unwind: a panicking configuration is
//! recorded as a `failed` journal row and the rest of the sweep proceeds.
//! Failed runs print their structured errors after the sweep, in selection
//! order. Exit code: 0 = all done, 1 = any deterministic failure,
//! 2 = transient wedges only.
//!
//! `--inject-panic NAME` / `--inject-wedge NAME` are self-test hooks (used
//! by the CI kill-and-resume smoke) that make experiment NAME panic or
//! exhaust a zero wall-clock budget.
//!
//! The `fuzz` experiment (never part of `all`) runs the seeded fault-plan
//! fuzzer and takes its own flags:
//!
//! --seed N           campaign seed (default 0xFA57)
//! --plans K          number of generated cases (default 16)
//! --fuzz-out DIR     write minimized repro JSON files into DIR
//! --replay FILE      re-run one repro file instead of a campaign
//! --synthetic-bug    self-test hook: classify repair-bearing plans as
//!                    failing so the shrink + repro pipeline is exercised
//! ```

use glocks_harness::{
    ablation, chaos,
    exp::{self, ExpOptions},
    faults, fig1, fig10, fig7, fig8, fig9, fuzz, multiprog, scale, service,
    sweep::{self, RunOutput, SweepConfig},
    table1, table2, table3, table4,
};
use glocks_sim_base::trace::{self, TraceMask, TraceRecord};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Per-experiment trace-ring capacity when `--chrome-trace` is active.
const TRACE_CAP: usize = 1 << 16;

struct Cli {
    opts: ExpOptions,
    csv_dir: Option<String>,
    stats_dir: Option<String>,
    chrome_trace: Option<String>,
    jobs: usize,
    watchdog: Option<u64>,
    mesh: Option<glocks_sim_base::Mesh2D>,
    dense: bool,
    journal: Option<PathBuf>,
    resume: bool,
    timeout_secs: Option<u64>,
    retries: u32,
    backoff_ms: u64,
    inject_panic: Option<String>,
    inject_wedge: Option<String>,
    fuzz_seed: u64,
    fuzz_plans: usize,
    fuzz_out: Option<String>,
    fuzz_replay: Option<String>,
    synthetic_bug: bool,
}

fn write_csv(dir: &Option<String>, name: &str, table: &glocks_sim_base::table::TextTable) {
    if let Some(d) = dir {
        let _ = std::fs::create_dir_all(d);
        let path = format!("{d}/{name}.csv");
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("failed to write {path}: {e}");
        }
    }
}

/// Run one experiment, returning everything it would have printed to stdout.
/// Output is captured (rather than streamed) so `--jobs` workers never
/// interleave lines; the caller prints results in selection order.
fn run_one(name: &str, cli: &Cli, traces: &Mutex<Vec<TraceRecord>>) -> String {
    let opts = &cli.opts;
    let csv_dir = &cli.csv_dir;
    if let Some(dir) = &cli.stats_dir {
        exp::set_stats_dir(Some(dir));
        exp::set_stats_context(name);
    }
    // Thread-local, so these must be applied here (inside the worker
    // thread under `--jobs`), not once in main.
    exp::set_watchdog_cycles(cli.watchdog);
    exp::set_mesh_override(cli.mesh);
    exp::set_idle_skip(if cli.dense { Some(false) } else { None });
    if cli.chrome_trace.is_some() {
        trace::enable(TraceMask::ALL, TRACE_CAP);
    }
    let mut out = String::new();
    match name {
        "table1" => {
            let t = table1::run();
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "table1", &t);
        }
        "table2" => {
            let t = table2::run();
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "table2", &t);
        }
        "table3" => {
            let t = table3::run(opts);
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "table3", &t);
        }
        "fig1" => {
            let t = fig1::run(opts).0;
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "fig1", &t);
        }
        "fig7" => {
            let t = fig7::run(opts).0;
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "fig7", &t);
            if csv_dir.is_some() {
                // full per-grAC matrix for replotting the 3D figure
                write_csv(csv_dir, "fig7_full", &fig7::full_matrix(opts));
            }
        }
        "fig8" => {
            let (t, rows) = fig8::run(opts);
            writeln!(out, "{}", t.render()).unwrap();
            writeln!(out, "{}", fig8::chart(&rows)).unwrap();
            write_csv(csv_dir, "fig8", &t);
            let (m, a) = fig8::average_reductions(&rows);
            writeln!(
                out,
                "average execution-time reduction: micro {:.0}%, apps {:.0}% (paper: 42% / 14%)\n",
                m * 100.0,
                a * 100.0
            )
            .unwrap();
        }
        "table4" => {
            let t = table4::run(opts).0;
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "table4", &t);
        }
        "fig9" => {
            let (t, rows) = fig9::run(opts);
            writeln!(out, "{}", t.render()).unwrap();
            writeln!(out, "{}", fig9::chart(&rows)).unwrap();
            write_csv(csv_dir, "fig9", &t);
        }
        "fig10" => {
            let (t, rows) = fig10::run(opts);
            writeln!(out, "{}", t.render()).unwrap();
            writeln!(out, "{}", fig10::chart(&rows)).unwrap();
            write_csv(csv_dir, "fig10", &t);
        }
        "stats" => {
            use glocks_harness::exp::{glock_mapping, try_run_bench};
            use glocks_workloads::BenchKind;
            for kind in BenchKind::ALL {
                let bench = opts.bench(kind);
                let Some(r) = try_run_bench(&bench, &glock_mapping(&bench)) else {
                    continue;
                };
                writeln!(out, "--- {} under GLocks ---", kind.name()).unwrap();
                writeln!(out, "{}", glocks_sim::summary::render(&r.report)).unwrap();
            }
        }
        "faults" => {
            let t = faults::run(opts);
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "faults", &t);
        }
        "chaos" => {
            let t = chaos::run(opts);
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "chaos", &t);
        }
        "service" => {
            let t = service::run(opts);
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "service", &t);
            let s = service::run_studies(opts);
            writeln!(out, "{}", s.render()).unwrap();
            write_csv(csv_dir, "service_studies", &s);
        }
        "multiprog" => {
            let t = multiprog::run_study(opts);
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "multiprog", &t);
        }
        "scale" => {
            let (t, _rows) = scale::run(opts);
            writeln!(out, "{}", t.render()).unwrap();
            write_csv(csv_dir, "scale", &t);
        }
        "ablations" => {
            writeln!(out, "{}", ablation::algorithm_sweep(opts).render()).unwrap();
            writeln!(out, "{}", ablation::gline_latency_sweep(opts).render()).unwrap();
            writeln!(out, "{}", ablation::hierarchy_study(opts).render()).unwrap();
            writeln!(out, "{}", ablation::fairness_study(opts).render()).unwrap();
            writeln!(out, "{}", ablation::dynamic_sharing_study(opts).render()).unwrap();
            writeln!(out, "{}", ablation::barrier_study(opts).render()).unwrap();
            writeln!(out, "{}", ablation::energy_sensitivity(opts).render()).unwrap();
        }
        "fuzz" => {
            if let Some(path) = &cli.fuzz_replay {
                match fuzz::replay_file(path, cli.synthetic_bug) {
                    Ok(None) => writeln!(out, "replay {path}: ok (no longer reproduces)").unwrap(),
                    Ok(Some(f)) => {
                        writeln!(out, "replay {path}: reproduced {} — {}", f.kind, f.detail)
                            .unwrap();
                        exp::record_run_error(&f.kind, &f.detail);
                    }
                    Err(e) => {
                        writeln!(out, "replay {path}: {e}").unwrap();
                        exp::record_run_error("replay-error", &e);
                    }
                }
            } else {
                let rep = fuzz::run(&fuzz::FuzzConfig {
                    seed: cli.fuzz_seed,
                    plans: cli.fuzz_plans,
                    out_dir: cli.fuzz_out.clone(),
                    synthetic_bug: cli.synthetic_bug,
                });
                writeln!(out, "{}", rep.table.render()).unwrap();
                write_csv(csv_dir, "fuzz", &rep.table);
                for f in &rep.failures {
                    writeln!(
                        out,
                        "case {} failed ({}): {}\n  minimized repro: {}",
                        f.case_index,
                        f.kind,
                        f.detail,
                        f.path.as_deref().unwrap_or("(pass --fuzz-out DIR to write it)")
                    )
                    .unwrap();
                    exp::record_run_error(&f.kind, &f.detail);
                }
            }
        }
        other => eprintln!("unknown experiment: {other}"),
    }
    if let Some(dir) = &cli.stats_dir {
        let records = glocks_stats::selfprof::drain();
        if !records.is_empty() {
            let path = format!("{dir}/BENCH_{name}.json");
            if let Err(e) = std::fs::write(&path, glocks_stats::selfprof::bench_json(&records)) {
                eprintln!("failed to write {path}: {e}");
            }
        }
        exp::set_stats_dir(None);
    }
    if cli.chrome_trace.is_some() {
        traces.lock().unwrap().extend(trace::drain());
        trace::disable();
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        opts: ExpOptions::default(),
        csv_dir: None,
        stats_dir: None,
        chrome_trace: None,
        jobs: 1,
        watchdog: None,
        mesh: None,
        dense: false,
        journal: None,
        resume: false,
        timeout_secs: None,
        retries: 2,
        backoff_ms: 250,
        inject_panic: None,
        inject_wedge: None,
        fuzz_seed: 0xFA57,
        fuzz_plans: 16,
        fuzz_out: None,
        fuzz_replay: None,
        synthetic_bug: false,
    };
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cli.opts.quick = true,
            "--threads" => {
                i += 1;
                cli.opts.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads needs a number");
            }
            "--csv" => {
                i += 1;
                cli.csv_dir = Some(args.get(i).expect("--csv needs a directory").clone());
            }
            "--stats-json" => {
                i += 1;
                cli.stats_dir =
                    Some(args.get(i).expect("--stats-json needs a directory").clone());
            }
            "--chrome-trace" => {
                i += 1;
                cli.chrome_trace =
                    Some(args.get(i).expect("--chrome-trace needs a file").clone());
            }
            "--jobs" => {
                i += 1;
                cli.jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n >= 1)
                    .expect("--jobs needs a number >= 1");
            }
            "--watchdog-cycles" => {
                i += 1;
                cli.watchdog = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--watchdog-cycles needs a number of cycles"),
                );
            }
            "--mesh" => {
                i += 1;
                let v = args.get(i).expect("--mesh needs a WxH shape");
                cli.mesh = Some(exp::parse_mesh(v).unwrap_or_else(|e| panic!("{e}")));
            }
            "--dense" => cli.dense = true,
            "--journal" => {
                i += 1;
                cli.journal = Some(PathBuf::from(args.get(i).expect("--journal needs a file")));
            }
            "--resume" => cli.resume = true,
            "--timeout-secs" => {
                i += 1;
                cli.timeout_secs = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout-secs needs a number of seconds"),
                );
            }
            "--retries" => {
                i += 1;
                cli.retries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--retries needs a number");
            }
            "--backoff-ms" => {
                i += 1;
                cli.backoff_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--backoff-ms needs a number of milliseconds");
            }
            "--seed" => {
                i += 1;
                cli.fuzz_seed = args
                    .get(i)
                    .and_then(|s| {
                        let s = s.trim();
                        s.strip_prefix("0x")
                            .or_else(|| s.strip_prefix("0X"))
                            .map_or_else(|| s.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
                    })
                    .expect("--seed needs a number (decimal or 0x hex)");
            }
            "--plans" => {
                i += 1;
                cli.fuzz_plans = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n >= 1)
                    .expect("--plans needs a number >= 1");
            }
            "--fuzz-out" => {
                i += 1;
                cli.fuzz_out =
                    Some(args.get(i).expect("--fuzz-out needs a directory").clone());
            }
            "--replay" => {
                i += 1;
                cli.fuzz_replay = Some(args.get(i).expect("--replay needs a file").clone());
            }
            "--synthetic-bug" => cli.synthetic_bug = true,
            "--inject-panic" => {
                i += 1;
                cli.inject_panic =
                    Some(args.get(i).expect("--inject-panic needs an experiment name").clone());
            }
            "--inject-wedge" => {
                i += 1;
                cli.inject_wedge =
                    Some(args.get(i).expect("--inject-wedge needs an experiment name").clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: glocks-experiments [all|fig1|fig7|fig8|fig9|fig10|table1|table2|table3|table4|ablations|multiprog|faults|chaos|service|scale|stats|fuzz]... [--quick] [--threads N] [--mesh WxH] [--dense] [--watchdog-cycles N] [--csv DIR] [--stats-json DIR] [--chrome-trace FILE] [--jobs N] [--journal FILE] [--resume] [--timeout-secs N] [--retries N] [--backoff-ms N] [--seed N] [--plans K] [--fuzz-out DIR] [--replay FILE] [--synthetic-bug]"
                );
                return;
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = [
            "table1", "table2", "table3", "fig1", "fig7", "fig8", "table4", "fig9", "fig10",
            "ablations", "multiprog", "faults", "chaos", "service",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    if let Some(dir) = &cli.stats_dir {
        let _ = std::fs::create_dir_all(dir);
    }

    if cli.resume && cli.journal.is_none() {
        eprintln!("--resume needs --journal FILE to know what is already done");
        std::process::exit(2);
    }

    let sweep_start = Instant::now();
    let traces: Mutex<Vec<TraceRecord>> = Mutex::new(Vec::new());
    let n = selected.len();
    let jobs = cli.jobs.min(n).max(1);

    let sweep_cfg = SweepConfig {
        jobs,
        resume: cli.resume,
        journal: cli.journal.as_deref(),
        retry: sweep::RetryPolicy { retries: cli.retries, backoff_ms: cli.backoff_ms },
    };
    let work = |name: &str, attempt: u32| {
        // A previous panicked run on this worker thread may have leaked an
        // open stats session; start clean.
        glocks_stats::disable();
        exp::drain_sim_errors();
        let wedge = cli.inject_wedge.as_deref() == Some(name);
        exp::set_wall_clock_limit_ms(if wedge {
            Some(0) // self-test hook: every simulation exceeds instantly
        } else {
            cli.timeout_secs.map(|s| s.saturating_mul(1000))
        });
        if cli.inject_panic.as_deref() == Some(name) {
            panic!("injected panic in {name} (harness self-test hook)");
        }
        let t0 = Instant::now();
        let out = run_one(name, &cli, &traces);
        eprintln!("[{name} done in {:.1}s (attempt {attempt})]", t0.elapsed().as_secs_f64());
        let mut artifacts = Vec::new();
        if let Some(dir) = &cli.stats_dir {
            let bench = format!("{dir}/BENCH_{name}.json");
            if std::path::Path::new(&bench).exists() {
                artifacts.push(bench);
            }
        }
        let errors = exp::drain_sim_errors();
        // Fault sweeps tolerate individual dead configurations (their
        // errors are informational rows); the fuzzer's whole contract is
        // that the envelope is clean, so any deterministic error it
        // records fails the run.
        let failed = name == "fuzz" && errors.iter().any(|e| !e.transient);
        RunOutput { output: out, artifacts, errors, failed }
    };
    let mut walls: Vec<(String, f64)> = Vec::with_capacity(n);
    let rows = sweep::run_sweep(&selected, &sweep_cfg, work, |row| {
        if row.skipped {
            eprintln!("[sweep] {}: already done in journal, skipped", row.id);
        } else {
            print!("{}", row.output);
            walls.push((row.id.clone(), row.wall_secs));
        }
    });

    if n > 1 {
        eprintln!("[sweep] per-experiment wall time ({jobs} job{}):", if jobs == 1 { "" } else { "s" });
        for (name, secs) in &walls {
            eprintln!("[sweep]   {name:<10} {secs:>7.1}s");
        }
        eprintln!(
            "[sweep]   {:<10} {:>7.1}s wall",
            "total",
            sweep_start.elapsed().as_secs_f64()
        );
    }
    if let Some(path) = &cli.chrome_trace {
        let mut records = traces.into_inner().unwrap();
        records.sort_by_key(|r| r.cycle);
        match std::fs::write(path, glocks_stats::chrome::chrome_trace_json(&records)) {
            Ok(()) => eprintln!("[trace] wrote {} events to {path}", records.len()),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }

    // Failed and wedged runs report their structured errors last, in
    // selection order — never interleaved with other runs' summaries.
    for row in &rows {
        match row.status {
            glocks_harness::journal::RunStatus::Failed
            | glocks_harness::journal::RunStatus::Wedged => {
                eprintln!(
                    "[sweep] {} {} after {} attempt{}:",
                    row.id,
                    row.status.as_str(),
                    row.attempts,
                    if row.attempts == 1 { "" } else { "s" }
                );
                for e in &row.errors {
                    eprintln!(
                        "[sweep]   {}{}: {}",
                        e.kind,
                        if e.transient { " (transient)" } else { "" },
                        e.detail
                    );
                }
            }
            _ => {
                if row.flaky {
                    eprintln!(
                        "[sweep] {} was flaky: done on attempt {} after transient wedges",
                        row.id, row.attempts
                    );
                }
            }
        }
    }
    std::process::exit(sweep::exit_code(&rows));
}
