//! Regenerate the paper's tables and figures.
//!
//! ```text
//! glocks-experiments [EXPERIMENT ...] [--quick] [--threads N] [--csv DIR]
//!
//! EXPERIMENT: all | fig1 | fig7 | fig8 | fig9 | fig10
//!           | table1 | table2 | table3 | table4 | ablations | multiprog | faults
//! --quick     reduced input sizes (seconds instead of minutes)
//! --threads N CMP size for the main experiments (default 32)
//! --csv DIR   additionally write each table as DIR/<experiment>.csv
//! ```

use glocks_harness::{ablation, exp::ExpOptions, faults, fig1, fig10, fig7, fig8, fig9, multiprog, table1, table2, table3, table4};
use std::time::Instant;

fn write_csv(dir: &Option<String>, name: &str, table: &glocks_sim_base::table::TextTable) {
    if let Some(d) = dir {
        let _ = std::fs::create_dir_all(d);
        let path = format!("{d}/{name}.csv");
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("failed to write {path}: {e}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExpOptions::default();
    let mut selected: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                i += 1;
                opts.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads needs a number");
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).expect("--csv needs a directory").clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: glocks-experiments [all|fig1|fig7|fig8|fig9|fig10|table1|table2|table3|table4|ablations|multiprog|faults|stats]... [--quick] [--threads N] [--csv DIR]"
                );
                return;
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = [
            "table1", "table2", "table3", "fig1", "fig7", "fig8", "table4", "fig9", "fig10",
            "ablations", "multiprog", "faults",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    for name in &selected {
        let t0 = Instant::now();
        match name.as_str() {
            "table1" => {
                let t = table1::run();
                println!("{}", t.render());
                write_csv(&csv_dir, "table1", &t);
            }
            "table2" => {
                let t = table2::run();
                println!("{}", t.render());
                write_csv(&csv_dir, "table2", &t);
            }
            "table3" => {
                let t = table3::run(&opts);
                println!("{}", t.render());
                write_csv(&csv_dir, "table3", &t);
            }
            "fig1" => {
                let t = fig1::run(&opts).0;
                println!("{}", t.render());
                write_csv(&csv_dir, "fig1", &t);
            }
            "fig7" => {
                let t = fig7::run(&opts).0;
                println!("{}", t.render());
                write_csv(&csv_dir, "fig7", &t);
                if csv_dir.is_some() {
                    // full per-grAC matrix for replotting the 3D figure
                    write_csv(&csv_dir, "fig7_full", &fig7::full_matrix(&opts));
                }
            }
            "fig8" => {
                let (t, rows) = fig8::run(&opts);
                println!("{}", t.render());
                println!("{}", fig8::chart(&rows));
                write_csv(&csv_dir, "fig8", &t);
                let (m, a) = fig8::average_reductions(&rows);
                println!(
                    "average execution-time reduction: micro {:.0}%, apps {:.0}% (paper: 42% / 14%)\n",
                    m * 100.0,
                    a * 100.0
                );
            }
            "table4" => {
                let t = table4::run(&opts).0;
                println!("{}", t.render());
                write_csv(&csv_dir, "table4", &t);
            }
            "fig9" => {
                let (t, rows) = fig9::run(&opts);
                println!("{}", t.render());
                println!("{}", fig9::chart(&rows));
                write_csv(&csv_dir, "fig9", &t);
            }
            "fig10" => {
                let (t, rows) = fig10::run(&opts);
                println!("{}", t.render());
                println!("{}", fig10::chart(&rows));
                write_csv(&csv_dir, "fig10", &t);
            }
            "stats" => {
                use glocks_harness::exp::{glock_mapping, try_run_bench};
                use glocks_workloads::BenchKind;
                for kind in BenchKind::ALL {
                    let bench = opts.bench(kind);
                    let Some(r) = try_run_bench(&bench, &glock_mapping(&bench)) else { continue };
                    println!("--- {} under GLocks ---", kind.name());
                    println!("{}", glocks_sim::summary::render(&r.report));
                }
            }
            "faults" => {
                let t = faults::run(&opts);
                println!("{}", t.render());
                write_csv(&csv_dir, "faults", &t);
            }
            "multiprog" => {
                let t = multiprog::run_study(&opts);
                println!("{}", t.render());
                write_csv(&csv_dir, "multiprog", &t);
            }
            "ablations" => {
                println!("{}", ablation::algorithm_sweep(&opts).render());
                println!("{}", ablation::gline_latency_sweep(&opts).render());
                println!("{}", ablation::hierarchy_study(&opts).render());
                println!("{}", ablation::fairness_study(&opts).render());
                println!("{}", ablation::dynamic_sharing_study(&opts).render());
                println!("{}", ablation::barrier_study(&opts).render());
                println!("{}", ablation::energy_sensitivity(&opts).render());
            }
            other => eprintln!("unknown experiment: {other}"),
        }
        eprintln!("[{name} done in {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
