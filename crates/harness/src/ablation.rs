//! Ablation studies beyond the paper's evaluation, probing the design
//! choices DESIGN.md calls out:
//!
//! * the full lock-algorithm sweep across contention levels (the paper's
//!   Section II narrative: simple locks win uncontended, queue locks win
//!   contended, GLocks win everywhere);
//! * G-line latency sensitivity (the paper's "longer-latency G-lines"
//!   scaling path, Section III-F);
//! * hierarchical vs flat GLock networks, including CMPs beyond the
//!   49-core flat limit.

use crate::exp::ExpOptions;
use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, Simulation, SimulationOptions};
use glocks_sim_base::table::TextTable;
use glocks_sim_base::CmpConfig;
use glocks_workloads::{BenchConfig, BenchKind};

/// One ablation cell. A wedged run is logged and comes back as `None`, so
/// the rest of the sweep still renders.
fn run_once(cfg: &CmpConfig, bench: &BenchConfig, mapping: &LockMapping, mut opts: SimulationOptions) -> Option<u64> {
    let inst = bench.build();
    let cfg = crate::exp::apply_machine_overrides(bench.threads, *cfg, &mut opts);
    let session = crate::exp::open_stats_session(
        &format!("{}_{}_{}t", bench.kind.name(), mapping.label(), bench.threads),
        &[("bench", bench.kind.name()), ("lock", mapping.label())],
    );
    let sim = Simulation::new(&cfg, mapping, inst.workloads, &inst.init, opts);
    match sim.run() {
        Ok((report, mem)) => {
            (inst.verify)(mem.store()).expect("ablation run must verify");
            if let Some(s) = session {
                s.finish(&report);
            }
            Some(report.cycles)
        }
        Err(e) => {
            if let Some(s) = session {
                s.abort();
            }
            eprintln!("[ablation] {:?} with {} wedged ({}); skipping\n{e}", bench.kind, mapping.label(), e.kind());
            None
        }
    }
}

/// Render an ablation cell, keeping wedged configurations visible.
fn cell(cycles: Option<u64>) -> String {
    cycles.map_or_else(|| "wedged".to_string(), |c| c.to_string())
}

/// Every lock algorithm on SCTR across thread counts: execution time in
/// cycles (lower is better). Shows the low/high-contention crossover that
/// motivates the paper's hybrid scheme.
pub fn algorithm_sweep(opts: &ExpOptions) -> TextTable {
    let algos = [
        LockAlgorithm::Simple,
        LockAlgorithm::Tatas,
        LockAlgorithm::TatasBackoff,
        LockAlgorithm::Ticket,
        LockAlgorithm::Anderson,
        LockAlgorithm::Mcs,
        LockAlgorithm::Reactive,
        LockAlgorithm::MpLock,
        LockAlgorithm::SyncBuf,
        LockAlgorithm::Glock,
        LockAlgorithm::Ideal,
    ];
    let threads = if opts.quick { vec![2usize, 4, 8] } else { vec![2usize, 4, 8, 16, 32] };
    let mut t = TextTable::new("Ablation — lock algorithms on SCTR (cycles)").header(
        std::iter::once("algorithm".to_string())
            .chain(threads.iter().map(|n| format!("{n} cores")))
            .collect::<Vec<_>>(),
    );
    for algo in algos {
        let mut row = vec![algo.name().to_string()];
        for &n in &threads {
            let bench = opts.bench_on(BenchKind::Sctr, n);
            let cfg = CmpConfig::paper_baseline().with_cores(n);
            let mapping = LockMapping::uniform(algo, 1);
            let cycles = run_once(&cfg, &bench, &mapping, SimulationOptions::default());
            row.push(cell(cycles));
        }
        t.row(row);
    }
    t
}

/// SCTR under GLocks with longer G-line latencies.
pub fn gline_latency_sweep(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new("Ablation — G-line latency sensitivity (SCTR, GLocks)")
        .header(["G-line latency", "cycles", "vs 1-cycle"]);
    let mut base = 0u64;
    for lat in [1u64, 2, 4, 8] {
        let mut cfg = CmpConfig::paper_baseline().with_cores(opts.threads);
        cfg.glocks.gline_latency = lat;
        let bench = opts.bench(BenchKind::Sctr);
        let mapping = LockMapping::uniform(LockAlgorithm::Glock, 1);
        let Some(cycles) = run_once(&cfg, &bench, &mapping, SimulationOptions::default()) else {
            continue;
        };
        if lat == 1 {
            base = cycles;
        }
        t.row([
            format!("{lat} cycle(s)"),
            cycles.to_string(),
            format!("{:.2}x", cycles as f64 / base as f64),
        ]);
    }
    t
}

/// Flat vs hierarchical GLock topology at the baseline size, and
/// hierarchical-only scaling to 64 cores (beyond the flat limit).
pub fn hierarchy_study(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new("Ablation — GLock topology (SCTR, GLocks)")
        .header(["configuration", "cores", "cycles"]);
    let bench = opts.bench(BenchKind::Sctr);
    let cfg = CmpConfig::paper_baseline().with_cores(opts.threads);
    let mapping = LockMapping::uniform(LockAlgorithm::Glock, 1);
    let flat = run_once(&cfg, &bench, &mapping, SimulationOptions::default());
    t.row(["flat".to_string(), opts.threads.to_string(), cell(flat)]);
    let o = SimulationOptions { force_hierarchical_glocks: true, ..Default::default() };
    let hier = run_once(&cfg, &bench, &mapping, o);
    t.row(["hierarchical".to_string(), opts.threads.to_string(), cell(hier)]);
    // Beyond the flat limit: 64 cores (only reachable hierarchically).
    let big = 64;
    let bench64 = opts.bench_on(BenchKind::Sctr, big);
    let cfg64 = CmpConfig::paper_baseline().with_cores(big);
    let c64 = run_once(&cfg64, &bench64, &mapping, SimulationOptions::default());
    t.row(["hierarchical".to_string(), big.to_string(), cell(c64)]);
    t
}

/// Grant-fairness comparison: coefficient of variation of per-thread grant
/// counts on a saturated lock, per algorithm.
pub fn fairness_study(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new("Ablation — fairness on saturated SCTR")
        .header(["algorithm", "grants min/max per thread", "max wait (cycles)"]);
    for algo in [
        LockAlgorithm::Tatas,
        LockAlgorithm::Mcs,
        LockAlgorithm::Glock,
    ] {
        let bench = opts.bench(BenchKind::Sctr);
        let cfg = CmpConfig::paper_baseline().with_cores(opts.threads);
        let mapping = LockMapping::uniform(algo, 1);
        let inst = bench.build();
        let session = crate::exp::open_stats_session(
            &format!("fairness_{}_{}t", algo.name(), bench.threads),
            &[("bench", bench.kind.name()), ("lock", algo.name())],
        );
        let mut fair_opts = SimulationOptions::default();
        let cfg = crate::exp::apply_machine_overrides(bench.threads, cfg, &mut fair_opts);
        let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, fair_opts);
        let (report, mem) = match sim.run() {
            Ok(ok) => ok,
            Err(e) => {
                if let Some(s) = session {
                    s.abort();
                }
                eprintln!("[ablation] fairness run under {} wedged ({}); skipping\n{e}", algo.name(), e.kind());
                continue;
            }
        };
        (inst.verify)(mem.store()).expect("fairness run must verify");
        if let Some(s) = session {
            s.finish(&report);
        }
        // Per-thread acquisition counts are fixed by the workload (each
        // thread performs its share), so fairness shows in the wait time.
        t.row([
            algo.name().to_string(),
            format!("{}", report.acquires[0]),
            format!("{:.0}", report.mean_wait[0]),
        ]);
    }
    t
}

/// Dynamic GLock sharing (Section V future work) on RAYTR: all 34 locks
/// share the 2 physical GLocks through the binding table — no programmer
/// annotation — versus the paper's static hybrid and the MCS baseline.
pub fn dynamic_sharing_study(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new(
        "Ablation — dynamic GLock sharing on RAYTR (34 locks, 2 physical GLocks)",
    )
    .header(["configuration", "cycles", "hw acquires", "spills", "binds"]);
    let bench = opts.bench(BenchKind::Raytr);
    let cfg = CmpConfig::paper_baseline().with_cores(opts.threads);
    let run = |tag: &str, mapping: &LockMapping| {
        let inst = bench.build();
        let session = crate::exp::open_stats_session(
            &format!("sharing_{tag}_{}t", bench.threads),
            &[("bench", bench.kind.name()), ("lock", mapping.label())],
        );
        let mut share_opts = SimulationOptions::default();
        let cfg = crate::exp::apply_machine_overrides(bench.threads, cfg, &mut share_opts);
        let sim = Simulation::new(&cfg, mapping, inst.workloads, &inst.init, share_opts);
        let (r, mem) = sim.run().expect("dynamic-sharing ablation wedged");
        (inst.verify)(mem.store()).expect("verify");
        if let Some(s) = session {
            s.finish(&r);
        }
        r
    };
    // MCS hybrid baseline.
    let mapping = LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Mcs, bench.n_locks());
    let r = run("mcs-hybrid", &mapping);
    t.row(["MCS hybrid".to_string(), r.cycles.to_string(), "-".into(), "-".into(), "-".into()]);
    // Static GLocks (the paper's configuration: programmer names the HC locks).
    let mapping = LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks());
    let r = run("static-glocks", &mapping);
    t.row(["static GLocks".to_string(), r.cycles.to_string(), "-".into(), "-".into(), "-".into()]);
    // Dynamic sharing: every lock uses the pool.
    let mapping = LockMapping::uniform(LockAlgorithm::DynamicGlock, bench.n_locks());
    let r = run("dynamic-glocks", &mapping);
    let p = r.pool.expect("pool stats");
    t.row([
        "dynamic GLocks".to_string(),
        r.cycles.to_string(),
        p.hw_acquires.to_string(),
        p.spills.to_string(),
        p.binds.to_string(),
    ]);
    t
}

/// Barrier mechanisms (the companion G-line barrier of reference \[22\])
/// on the barrier-heavy benchmarks: the software combining tree vs the
/// hardware arrive/release network, both with GLocks for the locks.
pub fn barrier_study(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new(
        "Ablation — barrier mechanism (GLocks for locks): software tree vs G-line barrier",
    )
    .header(["benchmark", "tree barrier", "G-line barrier", "reduction"]);
    for kind in [BenchKind::Actr, BenchKind::Ocean] {
        let bench = opts.bench(kind);
        let cfg = CmpConfig::paper_baseline().with_cores(opts.threads);
        let mapping = LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks());
        let sw = run_once(&cfg, &bench, &mapping, SimulationOptions::default());
        let hw_opts = SimulationOptions { hardware_barrier: true, ..Default::default() };
        let hw = run_once(&cfg, &bench, &mapping, hw_opts);
        let reduction = match (sw, hw) {
            (Some(s), Some(h)) => format!("{:.1}%", (1.0 - h as f64 / s as f64) * 100.0),
            _ => "-".to_string(),
        };
        t.row([kind.name().to_string(), cell(sw), cell(hw), reduction]);
    }
    t
}

/// Robustness of Figure 10's conclusion to the energy constants: scale
/// each component family ×4 and recompute SCTR's normalized ED²P. The
/// GL/MCS ratio must stay clearly below 1 regardless — the reduction comes
/// from event-count and delay ratios, not from the absolute constants.
pub fn energy_sensitivity(opts: &ExpOptions) -> TextTable {
    use glocks_energy::EnergyModel;
    let mut t = TextTable::new("Ablation — ED2P sensitivity to energy constants (SCTR)")
        .header(["scaled component (x4)", "GL/MCS ED2P"]);
    let bench = opts.bench(BenchKind::Sctr);
    let cfg = CmpConfig::paper_baseline().with_cores(opts.threads);
    let variants: Vec<(&str, EnergyModel)> = {
        let b = EnergyModel::paper_baseline();
        vec![
            ("baseline", b),
            ("core", EnergyModel { instr_pj: b.instr_pj * 4.0, core_cycle_pj: b.core_cycle_pj * 4.0, ..b }),
            ("caches", EnergyModel { l1_access_pj: b.l1_access_pj * 4.0, l2_access_pj: b.l2_access_pj * 4.0, dir_txn_pj: b.dir_txn_pj * 4.0, ..b }),
            ("memory", EnergyModel { mem_access_pj: b.mem_access_pj * 4.0, ..b }),
            ("network", EnergyModel { router_hop_pj: b.router_hop_pj * 4.0, link_byte_pj: b.link_byte_pj * 4.0, ..b }),
            ("G-lines", EnergyModel { gline_signal_pj: b.gline_signal_pj * 4.0, glock_ctrl_cycle_pj: b.glock_ctrl_cycle_pj * 4.0, ..b }),
            ("leakage", EnergyModel { tile_leak_pj: b.tile_leak_pj * 4.0, ..b }),
        ]
    };
    for (name, model) in variants {
        let run = |algo: LockAlgorithm| {
            let inst = bench.build();
            let mut opts_sim = SimulationOptions { energy_model: model, ..Default::default() };
            let cfg = crate::exp::apply_machine_overrides(bench.threads, cfg, &mut opts_sim);
            let mapping = LockMapping::uniform(algo, bench.n_locks());
            let session = crate::exp::open_stats_session(
                &format!("energy_{name}_{}_{}t", algo.name(), bench.threads),
                &[("bench", bench.kind.name()), ("lock", algo.name())],
            );
            let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, opts_sim);
            let (r, mem) = sim.run().expect("energy-sensitivity ablation wedged");
            (inst.verify)(mem.store()).expect("verify");
            if let Some(s) = session {
                s.finish(&r);
            }
            r.ed2p
        };
        let ratio = run(LockAlgorithm::Glock) / run(LockAlgorithm::Mcs);
        t.row([name.to_string(), format!("{ratio:.3}")]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOptions {
        ExpOptions { quick: true, threads: 8 }
    }

    #[test]
    fn sweep_runs_all_algorithms() {
        let t = algorithm_sweep(&quick());
        assert_eq!(t.n_rows(), 11);
    }

    #[test]
    fn gline_latency_monotone() {
        let t = gline_latency_sweep(&quick());
        assert_eq!(t.n_rows(), 4);
    }

    #[test]
    fn hierarchy_matches_flat_closely() {
        let t = hierarchy_study(&quick());
        assert_eq!(t.n_rows(), 3);
    }

    #[test]
    fn dynamic_sharing_works_unannotated() {
        let t = dynamic_sharing_study(&quick());
        assert_eq!(t.n_rows(), 3);
    }

    #[test]
    fn hardware_barrier_helps_barrier_heavy_benchmarks() {
        let t = barrier_study(&quick());
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn ed2p_conclusion_is_constant_robust() {
        let t = energy_sensitivity(&quick());
        assert_eq!(t.n_rows(), 7);
        // every row's ratio stays below 1
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let ratio: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(ratio < 1.0, "ED2P conclusion flipped: {line}");
        }
    }
}
