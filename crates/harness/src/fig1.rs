//! Figure 1: potential benefits for Raytrace when using ideal locks.
//!
//! Four configurations of RAYTR at 32 cores, all normalized to TATAS:
//! * `TATAS`   — every lock is `test-and-test&set`;
//! * `TATAS-1` — the most contended lock becomes an ideal lock;
//! * `TATAS-2` — both highly-contended locks become ideal locks;
//! * `IDEAL`   — every lock is ideal.
//!
//! The paper's observation to reproduce: TATAS-2 recovers nearly all of
//! IDEAL's gain, because only 2 of the 34 locks are highly contended.

use crate::exp::{try_run_bench, ExpOptions};
use glocks_locks::LockAlgorithm;
use glocks_sim::LockMapping;
use glocks_sim_base::table::{norm, pct, TextTable};
use glocks_workloads::BenchKind;

pub struct Fig1Row {
    pub config: &'static str,
    pub cycles: u64,
    pub normalized: f64,
    pub lock_fraction: f64,
}

pub fn run(opts: &ExpOptions) -> (TextTable, Vec<Fig1Row>) {
    let bench = opts.bench(BenchKind::Raytr);
    let hc = bench.hc_locks();
    let n = bench.n_locks();
    let configs: Vec<(&'static str, LockMapping)> = vec![
        ("TATAS", LockMapping::tatas_x(&hc, 0, n)),
        ("TATAS-1", LockMapping::tatas_x(&hc, 1, n)),
        ("TATAS-2", LockMapping::tatas_x(&hc, 2, n)),
        ("IDEAL", LockMapping::uniform(LockAlgorithm::Ideal, n)),
    ];
    let mut rows = Vec::new();
    let mut base = 0u64;
    for (name, mapping) in &configs {
        let Some(r) = try_run_bench(&bench, mapping) else { continue };
        if *name == "TATAS" {
            base = r.report.cycles;
        }
        rows.push(Fig1Row {
            config: name,
            cycles: r.report.cycles,
            normalized: r.report.cycles as f64 / base as f64,
            lock_fraction: r.report.lock_fraction(),
        });
    }
    let mut t = TextTable::new(
        "Figure 1 — Raytrace with ideal locks (normalized to TATAS)",
    )
    .header(["config", "cycles", "normalized", "lock time"]);
    for r in &rows {
        t.row([
            r.config.to_string(),
            r.cycles.to_string(),
            norm(r.normalized),
            pct(r.lock_fraction),
        ]);
    }
    (t, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let (_t, rows) = run(&opts);
        assert_eq!(rows.len(), 4);
        let by: std::collections::HashMap<_, _> =
            rows.iter().map(|r| (r.config, r.normalized)).collect();
        // Ideal locks never lose to TATAS (at quick scale the gap can be
        // small; the full-scale gap is validated in EXPERIMENTS.md).
        assert!(by["IDEAL"] < 1.02);
        // …idealizing both highly-contended locks recovers most of it…
        assert!(
            by["TATAS-2"] <= by["TATAS-1"] + 0.02,
            "TATAS-2 ({}) should not lose to TATAS-1 ({})",
            by["TATAS-2"],
            by["TATAS-1"]
        );
        // …and TATAS-2 lands close to IDEAL (the paper's key claim).
        assert!(
            (by["TATAS-2"] - by["IDEAL"]).abs() < 0.15,
            "TATAS-2 {} vs IDEAL {}",
            by["TATAS-2"],
            by["IDEAL"]
        );
    }
}
