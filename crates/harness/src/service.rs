//! Open-loop service sweep — offered load vs latency tails (beyond the
//! paper's closed-loop evaluation).
//!
//! Closed-loop benchmarks can never push a lock past its service capacity:
//! each core waits for its own critical section before issuing the next.
//! This sweep drives each backend as a *service* instead: seeded Poisson
//! arrivals enqueue requests at a configured rate whether or not the lock
//! keeps up, and the row reports the latency distribution a client would
//! see. Walking the per-core inter-arrival gap down produces the classic
//! hockey stick: throughput grows linearly with offered load until the
//! lock saturates, past which p99/p999 grow superlinearly and the backlog
//! (then the drop counter) takes the overload.
//!
//! Two extra studies ride along:
//!
//! * **multi-tenant mix** — a calm Poisson tenant shares the machine with
//!   a bursty MMPP neighbor on a *different* lock; per-tenant p99/p999
//!   show how much tail the calm tenant inherits from shared resources.
//! * **SLO under chaos** — the GLock service absorbs a permanent G-line
//!   network death mid-run ([`crate::chaos`]'s kill schedule) and the row
//!   reports the p999 a client saw *through* the GLock→TATAS failover.

use crate::exp::{effective_watchdog, ExpOptions};
use glocks_arrivals::tenant::{mix_init, mix_workloads};
use glocks_arrivals::{ArrivalProcess, TenantSpec};
use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, Simulation, SimulationOptions};
use glocks_sim_base::fault::FaultPlan;
use glocks_sim_base::table::TextTable;
use glocks_sim_base::{Addr, CmpConfig, LockId};
use glocks_stats::StatsDump;

/// Seed for the published sweep: arrivals derive from it through the
/// `ARRIVAL_DOMAIN` stream split, so rows reproduce bit-exactly.
pub const SERVICE_SEED: u64 = 0x5E0C;

/// The offered-load ladder: per-core mean inter-arrival gaps, heaviest
/// last. The sparse rungs sit well below the lock's capacity — the
/// hockey stick's flat region, where the machine is mostly idle between
/// arrivals (and the event-driven scheduler skips the lulls) — while the
/// dense rungs sit well past every software backend's capacity, so both
/// the flat region and the knee are visible.
pub const GAPS: [u64; 8] = [32768, 8192, 4096, 2048, 1024, 512, 256, 128];

/// Backends the hockey-stick compares: the paper's hardware lock vs its
/// strongest software baseline.
pub const BACKENDS: [LockAlgorithm; 2] = [LockAlgorithm::Glock, LockAlgorithm::Mcs];

fn requests_per_core(opts: &ExpOptions) -> u64 {
    if opts.quick {
        60
    } else {
        300
    }
}

fn single_tenant(gap: u64, opts: &ExpOptions) -> TenantSpec {
    TenantSpec {
        process: ArrivalProcess::Poisson { mean_gap: gap },
        lock: LockId(0),
        data: Addr(0x0200_0000),
        requests_per_core: requests_per_core(opts),
        cs_instructions: 16,
        queue_cap: 64,
    }
}

/// Run one service configuration to completion and return the stats dump
/// (which carries the `slo.*` report) plus total cycles. Returns `None`
/// for a wedged run. Stats are enabled even without `--stats-json`: the
/// quantiles in the table *are* the result, not a side channel.
fn service_run(
    opts: &ExpOptions,
    algo: LockAlgorithm,
    tenants: &[TenantSpec],
    tag: &str,
    scenario: &str,
    plan: Option<FaultPlan>,
) -> Option<(StatsDump, u64)> {
    let threads = opts.threads;
    let cfg = CmpConfig::paper_baseline().with_cores(threads);
    let n_locks = tenants.iter().map(|t| usize::from(t.lock.0) + 1).max().unwrap();
    let mapping = LockMapping::uniform(algo, n_locks);
    let mut sim_opts = SimulationOptions { fault_plan: plan, ..Default::default() };
    sim_opts.watchdog_cycles = effective_watchdog(&sim_opts);
    let cfg = crate::exp::apply_machine_overrides(threads, cfg, &mut sim_opts);
    // Before any `ServiceWorkload::new`: the workloads register their
    // histograms in their constructors, so the session must be open first.
    let session = crate::exp::open_stats_session(
        &format!("{}_{scenario}_{threads}t", algo.name()),
        &[("lock", algo.name()), ("scenario", scenario), ("offered", tag)],
    );
    if session.is_none() {
        glocks_stats::enable(glocks_stats::StatsConfig::default());
    }
    let workloads = mix_workloads(SERVICE_SEED, tenants, threads);
    let init = mix_init(tenants);
    let sim = Simulation::new(&cfg, &mapping, workloads, &init, sim_opts);
    match sim.run() {
        Ok((report, mem)) => {
            let dump = report.stats.clone().expect("stats were enabled");
            // Every experiment doubles as a correctness test: each
            // tenant's shared word counts exactly its completed requests.
            for (k, t) in tenants.iter().enumerate() {
                let done = dump.counters.get(&format!("service.t{k}.completed")).copied();
                assert_eq!(
                    Some(mem.store().load(t.data)),
                    done,
                    "mutual exclusion violated for tenant {k} under {}",
                    algo.name()
                );
            }
            match session {
                Some(s) => s.finish(&report),
                None => glocks_stats::disable(),
            }
            Some((dump, report.cycles))
        }
        Err(e) => {
            match session {
                Some(s) => s.abort(),
                None => glocks_stats::disable(),
            }
            crate::exp::record_sim_error(&e);
            eprintln!("[service] {} at {tag} wedged ({}); skipping", algo.name(), e.kind());
            None
        }
    }
}

fn slo(dump: &StatsDump, key: &str) -> String {
    dump.counters.get(key).map_or_else(|| "-".to_string(), |v| v.to_string())
}

/// Requests served per 1000 cycles across the whole machine.
fn throughput_per_kcycle(dump: &StatsDump, cycles: u64) -> String {
    let completed = dump.counters.get("service.completed").copied().unwrap_or(0);
    format!("{:.2}", completed as f64 * 1000.0 / cycles.max(1) as f64)
}

/// The saturation sweep: every backend × every rung of [`GAPS`].
pub fn run(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new(
        "Service — open-loop saturation sweep (per-core Poisson arrivals, one lock)",
    )
    .header([
        "lock", "gap", "completed", "dropped", "thr/kcyc", "p50", "p99", "p999", "saturated",
    ]);
    for algo in BACKENDS {
        for gap in GAPS {
            let tenant = single_tenant(gap, opts);
            let Some((dump, cycles)) =
                service_run(opts, algo, &[tenant], &format!("gap{gap}"), &format!("{gap}g"), None)
            else {
                t.row([
                    algo.name().to_string(),
                    gap.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
                continue;
            };
            t.row([
                algo.name().to_string(),
                gap.to_string(),
                slo(&dump, "service.completed"),
                slo(&dump, "slo.dropped"),
                throughput_per_kcycle(&dump, cycles),
                slo(&dump, "slo.p50"),
                slo(&dump, "slo.p99"),
                slo(&dump, "slo.p999"),
                slo(&dump, "slo.saturated"),
            ]);
        }
    }
    t
}

/// The companion studies: multi-tenant interference and SLO under chaos.
pub fn run_studies(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new("Service — multi-tenant mix and SLO under chaos (GLock)")
        .header(["scenario", "completed", "dropped", "failovers", "p99", "p999", "t0.p999", "t1.p999"]);

    // A calm tenant next to a bursty MMPP neighbor, disjoint locks/words.
    let calm = TenantSpec {
        process: ArrivalProcess::Poisson { mean_gap: 2048 },
        lock: LockId(0),
        data: Addr(0x0200_0000),
        requests_per_core: requests_per_core(opts),
        cs_instructions: 16,
        queue_cap: 64,
    };
    let bursty = TenantSpec {
        process: ArrivalProcess::Mmpp {
            calm_gap: 4096,
            burst_gap: 64,
            calm_dwell: 30_000,
            burst_dwell: 10_000,
        },
        lock: LockId(1),
        data: Addr(0x1200_0000),
        ..calm
    };
    if let Some((dump, _)) =
        service_run(opts, LockAlgorithm::Glock, &[calm, bursty], "mix", "mix2", None)
    {
        t.row([
            "calm+bursty".to_string(),
            slo(&dump, "service.completed"),
            slo(&dump, "slo.dropped"),
            "-".to_string(),
            slo(&dump, "slo.p99"),
            slo(&dump, "slo.p999"),
            slo(&dump, "slo.t0.p999"),
            slo(&dump, "slo.t1.p999"),
        ]);
    }

    // SLO under chaos: every G-line network dies inside the kill window
    // while requests keep arriving; the row's tails include the failover.
    let mut plan = FaultPlan::seeded(crate::chaos::CHAOS_SEED);
    plan.kill_all_glock_networks(1, crate::chaos::EARLIEST_KILL, crate::chaos::LATEST_KILL);
    let loaded = single_tenant(512, opts);
    if let Some((dump, _)) =
        service_run(opts, LockAlgorithm::Glock, &[loaded], "chaos", "chaos", Some(plan))
    {
        t.row([
            "kill-glock-nets".to_string(),
            slo(&dump, "service.completed"),
            slo(&dump, "slo.dropped"),
            slo(&dump, "sim.failovers"),
            slo(&dump, "slo.p99"),
            slo(&dump, "slo.p999"),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(rows: &[Vec<String>], r: usize, c: usize) -> &str {
        &rows[r][c]
    }

    #[test]
    fn sweep_axis_is_monotone_and_shows_the_knee() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let t = run(&opts);
        assert_eq!(t.n_rows(), BACKENDS.len() * GAPS.len());
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        for (b, algo) in BACKENDS.iter().enumerate() {
            let base = b * GAPS.len();
            // The offered-load axis is monotone: gaps strictly decrease.
            for (i, gap) in GAPS.iter().enumerate() {
                assert_eq!(cell(&rows, base + i, 0), algo.name());
                assert_eq!(cell(&rows, base + i, 1), &gap.to_string());
            }
            // Visible knee: the lightest rung is healthy, the heaviest is
            // saturated, and p99 grows past the knee.
            assert_eq!(cell(&rows, base, 8), "0", "{}: lightest rung saturated", algo.name());
            assert_eq!(
                cell(&rows, base + GAPS.len() - 1, 8),
                "1",
                "{}: heaviest rung must saturate",
                algo.name()
            );
            let p99_light: u64 = cell(&rows, base, 6).parse().unwrap();
            let p99_heavy: u64 = cell(&rows, base + GAPS.len() - 1, 6).parse().unwrap();
            assert!(
                p99_heavy > 2 * p99_light,
                "{}: p99 must grow superlinearly past the knee ({p99_light} -> {p99_heavy})",
                algo.name()
            );
        }
    }

    #[test]
    fn chaos_row_reports_tails_through_the_failover() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let t = run_studies(&opts);
        assert_eq!(t.n_rows(), 2);
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        // Multi-tenant row: both tenants report tails.
        assert_eq!(cell(&rows, 0, 0), "calm+bursty");
        assert!(cell(&rows, 0, 6).parse::<u64>().is_ok(), "t0.p999 present");
        assert!(cell(&rows, 0, 7).parse::<u64>().is_ok(), "t1.p999 present");
        // Chaos row: the failover happened and p999 is still reported.
        assert_eq!(cell(&rows, 1, 0), "kill-glock-nets");
        let failovers: u64 = cell(&rows, 1, 3).parse().unwrap();
        assert!(failovers > 0, "G-line death must trigger GLock->TATAS failover");
        assert!(cell(&rows, 1, 5).parse::<u64>().unwrap() > 0, "p999 reported through chaos");
    }
}
