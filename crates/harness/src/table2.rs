//! Table II: the CMP baseline configuration (echoed from `CmpConfig` so a
//! report always states exactly what was simulated).

use glocks_sim_base::table::TextTable;
use glocks_sim_base::CmpConfig;

pub fn run() -> TextTable {
    let c = CmpConfig::paper_baseline();
    let mut t = TextTable::new("Table II — CMP baseline configuration").header(["parameter", "value"]);
    t.row(["Number of cores".to_string(), c.num_cores.to_string()]);
    t.row([
        "Core".to_string(),
        format!(
            "{} GHz, in-order {}-way model",
            c.clock_hz / 1_000_000_000,
            c.issue_width
        ),
    ]);
    t.row(["Cache line size".to_string(), format!("{} Bytes", c.line_bytes)]);
    t.row([
        "L1 I/D-Cache".to_string(),
        format!(
            "{}KB, {}-way, {} cycles",
            c.l1.size_bytes / 1024,
            c.l1.ways,
            c.l1.total_latency()
        ),
    ]);
    t.row([
        "L2 Cache (per core)".to_string(),
        format!(
            "{}KB, {}-way, {}+{} cycles",
            c.l2.size_bytes / 1024,
            c.l2.ways,
            c.l2.latency,
            c.l2.extra_data_latency
        ),
    ]);
    t.row([
        "Memory access time".to_string(),
        format!("{} cycles", c.mem_latency),
    ]);
    t.row([
        "Network configuration".to_string(),
        format!("2D-mesh ({}x{})", c.mesh().cols(), c.mesh().rows()),
    ]);
    t.row([
        "Network bandwidth".to_string(),
        format!(
            "{} B/cycle @ {} GHz (the paper quotes 75 GB/s)",
            c.noc.link_bytes,
            c.clock_hz / 1_000_000_000
        ),
    ]);
    t.row(["Link width".to_string(), format!("{} bytes", c.noc.link_bytes)]);
    t.row([
        "Hardware GLocks".to_string(),
        format!(
            "{} (G-line latency {} cycle)",
            c.glocks.num_hw_locks, c.glocks.gline_latency
        ),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn echoes_table_ii_values() {
        let s = super::run().render();
        assert!(s.contains("32"));
        assert!(s.contains("3 GHz, in-order 2-way model"));
        assert!(s.contains("32KB, 4-way, 2 cycles"));
        assert!(s.contains("256KB, 4-way, 12+4 cycles"));
        assert!(s.contains("400 cycles"));
        assert!(s.contains("75 B/cycle @ 3 GHz"));
        assert!(s.contains("75 bytes"));
    }
}
