//! Crash-safe sweep engine: journaled runs with per-run panic isolation
//! and bounded retry/backoff for transient failures.
//!
//! Each run executes under `catch_unwind`, so one bad configuration no
//! longer kills the sweep — the panic becomes a structured `failed` row
//! and every other run proceeds. Failures the run *reports* (rather than
//! panics with) are classified by [`RunError::transient`]: transient
//! failures (wall-clock timeouts — host load, not simulated behavior) are
//! retried with exponential backoff and flagged `flaky` if a retry
//! succeeds; deterministic failures are recorded once, because rerunning a
//! deterministic simulator reproduces them exactly.
//!
//! With a journal attached, every transition is durable (see
//! [`crate::journal`]) and `resume: true` skips runs whose latest row is
//! complete — the acceptance path for finishing an interrupted `--jobs N`
//! sweep without recomputing done rows.

use crate::journal::{Journal, JournalRow, RunError, RunStatus};
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Bounded retry for transient failures: up to `retries` re-executions
/// (so `retries + 1` attempts), sleeping `backoff_ms << (attempt - 1)`
/// between them.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    pub retries: u32,
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { retries: 2, backoff_ms: 250 }
    }
}

/// What one run reports back to the engine.
#[derive(Debug, Default)]
pub struct RunOutput {
    /// Captured stdout of the run (printed by the caller in input order,
    /// never interleaved).
    pub output: String,
    /// Files the run produced (recorded in the journal row).
    pub artifacts: Vec<String>,
    /// Structured errors observed during the run. Any transient one makes
    /// the attempt retryable; deterministic ones are recorded as rows but
    /// only fail the run when `failed` says so (a fault-injection sweep
    /// *expects* some dead configurations).
    pub errors: Vec<RunError>,
    /// The run's primary result is a deterministic failure.
    pub failed: bool,
}

/// Sweep-level configuration.
pub struct SweepConfig<'a> {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Skip runs whose journal row is already complete.
    pub resume: bool,
    /// JSONL journal path (`None` = no journal, no resume).
    pub journal: Option<&'a Path>,
    pub retry: RetryPolicy,
}

/// Final state of one run after the sweep.
#[derive(Debug)]
pub struct RowResult {
    pub id: String,
    pub status: RunStatus,
    pub attempts: u32,
    pub flaky: bool,
    pub skipped: bool,
    pub wall_secs: f64,
    pub output: String,
    pub errors: Vec<RunError>,
}

/// Exit code for a finished sweep: deterministic failure dominates.
pub const EXIT_OK: i32 = 0;
pub const EXIT_FAILED: i32 = 1;
pub const EXIT_WEDGED: i32 = 2;

pub fn exit_code(rows: &[RowResult]) -> i32 {
    if rows.iter().any(|r| r.status == RunStatus::Failed) {
        EXIT_FAILED
    } else if rows.iter().any(|r| r.status == RunStatus::Wedged) {
        EXIT_WEDGED
    } else {
        EXIT_OK
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Run `ids` through `work` on `jobs` worker threads. `work(id, attempt)`
/// is called with 1-based attempt numbers; it may panic (isolated) or
/// report failures via [`RunOutput`]. After the sweep, `on_row` is invoked
/// once per run in **input order** — captured output and failures are
/// presented deterministically, never interleaved across workers. Returns
/// all results in input order.
pub fn run_sweep<F, G>(ids: &[String], cfg: &SweepConfig, work: F, mut on_row: G) -> Vec<RowResult>
where
    F: Fn(&str, u32) -> RunOutput + Sync,
    G: FnMut(&RowResult),
{
    let prior = match cfg.journal {
        Some(path) if cfg.resume => Journal::replay(path).unwrap_or_else(|e| {
            eprintln!("[sweep] cannot replay journal {}: {e}", path.display());
            Default::default()
        }),
        _ => Default::default(),
    };
    let journal: Option<Mutex<Journal>> = cfg.journal.map(|path| {
        Mutex::new(Journal::open(path).unwrap_or_else(|e| {
            panic!("cannot open journal {}: {e}", path.display());
        }))
    });
    let log = |row: &JournalRow| {
        if let Some(j) = &journal {
            if let Err(e) = j.lock().unwrap().append(row) {
                eprintln!("[sweep] journal write failed: {e}");
            }
        }
    };

    let n = ids.len();
    let jobs = cfg.jobs.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<RowResult>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let id = ids[i].as_str();
                let result = if prior.get(id).is_some_and(|row| row.status.is_complete()) {
                    let mut row = JournalRow::new(id, RunStatus::Skipped);
                    row.attempt = 0;
                    log(&row);
                    RowResult {
                        id: id.to_string(),
                        status: RunStatus::Skipped,
                        attempts: 0,
                        flaky: false,
                        skipped: true,
                        wall_secs: 0.0,
                        output: String::new(),
                        errors: Vec::new(),
                    }
                } else {
                    execute_one(id, cfg.retry, &work, &log)
                };
                slots.lock().unwrap()[i] = Some(result);
            });
        }
    });

    let mut rows: Vec<RowResult> =
        slots.into_inner().unwrap().into_iter().map(|r| r.expect("worker filled slot")).collect();
    for row in &mut rows {
        on_row(row);
    }
    rows
}

fn execute_one<F>(id: &str, retry: RetryPolicy, work: &F, log: &dyn Fn(&JournalRow)) -> RowResult
where
    F: Fn(&str, u32) -> RunOutput + Sync,
{
    let mut attempt = 1u32;
    let mut saw_transient = false;
    let mut all_errors: Vec<RunError> = Vec::new();
    let mut total_wall = Duration::ZERO;
    loop {
        let mut running = JournalRow::new(id, RunStatus::Running);
        running.attempt = attempt;
        log(&running);

        let t0 = Instant::now();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| work(id, attempt)));
        let wall = t0.elapsed();
        total_wall += wall;

        let (candidate, output, errors, artifacts) = match outcome {
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                (RunStatus::Failed, String::new(), vec![RunError::panic(&msg)], Vec::new())
            }
            Ok(out) => {
                let transient = out.errors.iter().any(|e| e.transient);
                let status = if out.failed {
                    RunStatus::Failed
                } else if transient {
                    RunStatus::Wedged
                } else {
                    RunStatus::Done
                };
                (status, out.output, out.errors, out.artifacts)
            }
        };
        all_errors.extend(errors);

        if candidate == RunStatus::Wedged && attempt <= retry.retries {
            // Transient: back off and retry; the next `running` row's
            // attempt number records the history.
            saw_transient = true;
            std::thread::sleep(Duration::from_millis(
                retry.backoff_ms << u64::from((attempt - 1).min(6)),
            ));
            attempt += 1;
            continue;
        }

        let flaky = saw_transient && candidate == RunStatus::Done;
        let mut row = JournalRow::new(id, candidate);
        row.attempt = attempt;
        row.flaky = flaky;
        row.wall_ms = total_wall.as_millis() as u64;
        row.artifacts.clone_from(&artifacts);
        row.errors.clone_from(&all_errors);
        log(&row);
        return RowResult {
            id: id.to_string(),
            status: candidate,
            attempts: attempt,
            flaky,
            skipped: false,
            wall_secs: total_wall.as_secs_f64(),
            output,
            errors: all_errors,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn ids(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn cfg(journal: Option<&Path>, resume: bool) -> SweepConfig<'_> {
        SweepConfig {
            jobs: 2,
            resume,
            journal,
            retry: RetryPolicy { retries: 1, backoff_ms: 1 },
        }
    }

    #[test]
    fn panic_is_isolated_and_healthy_rows_complete() {
        let rows = run_sweep(
            &ids(&["good", "bad", "also-good"]),
            &cfg(None, false),
            |id, _| {
                if id == "bad" {
                    panic!("injected failure");
                }
                RunOutput { output: format!("{id} ok\n"), ..Default::default() }
            },
            |_| {},
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].status, RunStatus::Done);
        assert_eq!(rows[1].status, RunStatus::Failed);
        assert_eq!(rows[1].errors[0].kind, "panic");
        assert!(rows[1].errors[0].detail.contains("injected failure"));
        assert_eq!(rows[2].status, RunStatus::Done);
        assert_eq!(exit_code(&rows), EXIT_FAILED);
    }

    #[test]
    fn transient_failure_retries_then_flags_flaky() {
        let calls = AtomicU32::new(0);
        let rows = run_sweep(
            &ids(&["flaky"]),
            &cfg(None, false),
            |_, attempt| {
                calls.fetch_add(1, Ordering::SeqCst);
                if attempt == 1 {
                    RunOutput {
                        errors: vec![RunError {
                            kind: "wall-clock-exceeded".into(),
                            transient: true,
                            detail: "slow host".into(),
                        }],
                        ..Default::default()
                    }
                } else {
                    RunOutput { output: "ok\n".into(), ..Default::default() }
                }
            },
            |_| {},
        );
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(rows[0].status, RunStatus::Done);
        assert!(rows[0].flaky, "a retry that succeeded must be flagged");
        assert_eq!(rows[0].attempts, 2);
        assert_eq!(exit_code(&rows), EXIT_OK);
    }

    #[test]
    fn exhausted_retries_become_wedged_not_failed() {
        let rows = run_sweep(
            &ids(&["stuck"]),
            &cfg(None, false),
            |_, _| RunOutput {
                errors: vec![RunError {
                    kind: "wall-clock-exceeded".into(),
                    transient: true,
                    detail: "never finishes in budget".into(),
                }],
                ..Default::default()
            },
            |_| {},
        );
        assert_eq!(rows[0].status, RunStatus::Wedged);
        assert_eq!(rows[0].attempts, 2, "one retry was attempted");
        assert_eq!(rows[0].errors.len(), 2, "every attempt's error is recorded");
        assert_eq!(exit_code(&rows), EXIT_WEDGED);
    }

    #[test]
    fn deterministic_sim_error_rows_fail_without_retry() {
        let calls = AtomicU32::new(0);
        let rows = run_sweep(
            &ids(&["dead-config"]),
            &cfg(None, false),
            |_, _| {
                calls.fetch_add(1, Ordering::SeqCst);
                RunOutput {
                    failed: true,
                    errors: vec![RunError {
                        kind: "no-forward-progress".into(),
                        transient: false,
                        detail: "wedged at cycle 100".into(),
                    }],
                    ..Default::default()
                }
            },
            |_| {},
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1, "deterministic failures never retry");
        assert_eq!(rows[0].status, RunStatus::Failed);
        assert_eq!(exit_code(&rows), EXIT_FAILED);
    }

    #[test]
    fn resume_skips_done_rows_and_journals_the_skip() {
        let dir = std::env::temp_dir()
            .join(format!("glocks_sweep_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("journal.jsonl");

        // First sweep: one run succeeds, one panics.
        let rows = run_sweep(
            &ids(&["a", "b"]),
            &cfg(Some(&journal), false),
            |id, _| {
                if id == "b" {
                    panic!("first pass failure");
                }
                RunOutput { output: "a done\n".into(), ..Default::default() }
            },
            |_| {},
        );
        assert_eq!(exit_code(&rows), EXIT_FAILED);

        // Resumed sweep: `a` must not be recomputed, `b` runs and succeeds.
        let reran = Mutex::new(Vec::new());
        let rows = run_sweep(
            &ids(&["a", "b"]),
            &cfg(Some(&journal), true),
            |id, _| {
                reran.lock().unwrap().push(id.to_string());
                RunOutput::default()
            },
            |_| {},
        );
        assert_eq!(reran.into_inner().unwrap(), vec!["b".to_string()]);
        assert!(rows[0].skipped);
        assert_eq!(rows[0].status, RunStatus::Skipped);
        assert_eq!(rows[1].status, RunStatus::Done);
        assert_eq!(exit_code(&rows), EXIT_OK);

        // The journal's final word: a skipped, b done.
        let latest = Journal::replay(&journal).unwrap();
        assert_eq!(latest["a"].status, RunStatus::Skipped);
        assert_eq!(latest["b"].status, RunStatus::Done);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn results_and_callback_are_in_input_order() {
        let names = ids(&["r0", "r1", "r2", "r3", "r4"]);
        let seen = Mutex::new(Vec::new());
        let rows = run_sweep(
            &names,
            &cfg(None, false),
            |id, _| RunOutput { output: id.to_string(), ..Default::default() },
            |row| seen.lock().unwrap().push(row.id.clone()),
        );
        let order: Vec<String> = rows.iter().map(|r| r.id.clone()).collect();
        assert_eq!(order, names);
        assert_eq!(seen.into_inner().unwrap(), names);
    }
}
