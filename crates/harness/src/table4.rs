//! Table IV: speedups for the real applications at 4/8/16/32 cores, under
//! MCS and GLocks, relative to a single-core run.

use crate::exp::{glock_mapping, mcs_mapping, try_run_bench, ExpOptions};
use glocks_sim_base::table::TextTable;
use glocks_workloads::BenchKind;

pub const CORE_COUNTS: [usize; 4] = [4, 8, 16, 32];

pub struct Table4Row {
    pub bench: BenchKind,
    pub version: &'static str,
    pub speedups: Vec<f64>,
}

pub fn run(opts: &ExpOptions) -> (TextTable, Vec<Table4Row>) {
    let mut rows = Vec::new();
    for kind in BenchKind::APPS {
        // Serial reference: one core (lock implementation is irrelevant
        // without contention; use the MCS configuration).
        let serial_bench = opts.bench_on(kind, 1);
        let Some(serial) = try_run_bench(&serial_bench, &mcs_mapping(&serial_bench)) else { continue };
        let t1 = serial.report.cycles as f64;
        for (version, use_gl) in [("MCS", false), ("GL", true)] {
            let mut speedups = Vec::new();
            for &cores in &CORE_COUNTS {
                let bench = opts.bench_on(kind, cores);
                let mapping = if use_gl { glock_mapping(&bench) } else { mcs_mapping(&bench) };
                match try_run_bench(&bench, &mapping) {
                    Some(r) => speedups.push(t1 / r.report.cycles as f64),
                    None => speedups.push(f64::NAN),
                }
            }
            rows.push(Table4Row { bench: kind, version, speedups });
        }
    }
    let mut t = TextTable::new("Table IV — speedups for the real applications")
        .header(["benchmark", "lock version", "4", "8", "16", "32"]);
    for r in &rows {
        t.row([
            r.bench.name().to_string(),
            r.version.to_string(),
            format!("{:.2}", r.speedups[0]),
            format!("{:.2}", r.speedups[1]),
            format!("{:.2}", r.speedups[2]),
            format!("{:.2}", r.speedups[3]),
        ]);
    }
    (t, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_shape_matches_the_paper() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let (_t, rows) = run(&opts);
        assert_eq!(rows.len(), 6);
        for pair in rows.chunks(2) {
            let (mcs, gl) = (&pair[0], &pair[1]);
            assert_eq!(mcs.bench, gl.bench);
            // GLocks at 32 cores must not scale worse than MCS.
            let last = CORE_COUNTS.len() - 1;
            assert!(
                gl.speedups[last] >= mcs.speedups[last] * 0.97,
                "{:?}: GL {} vs MCS {}",
                gl.bench,
                gl.speedups[last],
                mcs.speedups[last]
            );
            // RAYTR must scale even at quick sizes; OCEAN/QSORT saturate
            // when the quick input is small (full-scale behavior is
            // validated in EXPERIMENTS.md).
            if mcs.bench == BenchKind::Raytr {
                assert!(
                    mcs.speedups[last] > mcs.speedups[0] * 0.9,
                    "{:?} fails to scale under MCS: {:?}",
                    mcs.bench,
                    mcs.speedups
                );
            }
        }
    }
}
