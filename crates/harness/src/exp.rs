//! Shared experiment plumbing: configure → run → verify → report.

use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, SimError, SimReport, Simulation, SimulationOptions};
use glocks_sim_base::CmpConfig;
use glocks_workloads::{BenchConfig, BenchKind};

/// Global experiment options.
#[derive(Clone, Copy, Debug)]
pub struct ExpOptions {
    /// Use reduced input sizes (fast CI runs) instead of Table III sizes.
    pub quick: bool,
    /// Cores for the main experiments (the paper's baseline is 32).
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions { quick: false, threads: 32 }
    }
}

impl ExpOptions {
    pub fn bench(&self, kind: BenchKind) -> BenchConfig {
        self.bench_on(kind, self.threads)
    }

    pub fn bench_on(&self, kind: BenchKind, threads: usize) -> BenchConfig {
        if self.quick {
            BenchConfig::smoke(kind, threads)
        } else {
            BenchConfig::paper(kind, threads)
        }
    }
}

/// One verified simulation run.
pub struct RunResult {
    pub kind: BenchKind,
    pub label: &'static str,
    pub threads: usize,
    pub report: SimReport,
}

/// Run `kind` with the given lock mapping. A wedged run comes back as
/// `Err(SimError)` so a sweep can log it and keep going; a *verification*
/// failure still panics — every experiment doubles as a correctness test,
/// and a wrong answer (unlike a wedge under faults) is always a bug.
pub fn run_bench(bench: &BenchConfig, mapping: &LockMapping) -> Result<RunResult, SimError> {
    run_bench_with(bench, mapping, SimulationOptions::default())
}

/// [`run_bench`] with explicit simulation options (fault plans, watchdog
/// windows, ...).
pub fn run_bench_with(
    bench: &BenchConfig,
    mapping: &LockMapping,
    options: SimulationOptions,
) -> Result<RunResult, SimError> {
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(bench.threads);
    let sim = Simulation::new(&cfg, mapping, inst.workloads, &inst.init, options);
    let (report, mem) = sim.run()?;
    if let Err(e) = (inst.verify)(mem.store()) {
        panic!(
            "{:?} with {} failed verification: {e}",
            bench.kind,
            mapping.label()
        );
    }
    Ok(RunResult {
        kind: bench.kind,
        label: mapping.label(),
        threads: bench.threads,
        report,
    })
}

/// Sweep-friendly wrapper: log a wedged configuration to stderr and return
/// `None` so the caller's remaining experiments still run.
pub fn try_run_bench(bench: &BenchConfig, mapping: &LockMapping) -> Option<RunResult> {
    match run_bench(bench, mapping) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!(
                "[harness] {:?} x{} with {} wedged ({}); skipping\n{e}",
                bench.kind,
                bench.threads,
                mapping.label(),
                e.kind()
            );
            None
        }
    }
}

/// The paper's two principal configurations for a benchmark.
pub fn mcs_mapping(bench: &BenchConfig) -> LockMapping {
    LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Mcs, bench.n_locks())
}

pub fn glock_mapping(bench: &BenchConfig) -> LockMapping {
    LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_report() {
        let opts = ExpOptions { quick: true, threads: 4 };
        let bench = opts.bench(BenchKind::Sctr);
        let r = run_bench(&bench, &mcs_mapping(&bench)).expect("fault-free run");
        assert!(r.report.cycles > 0);
        assert_eq!(r.label, "MCS");
    }
}
