//! Shared experiment plumbing: configure → run → verify → report.

use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, SimReport, Simulation, SimulationOptions};
use glocks_sim_base::CmpConfig;
use glocks_workloads::{BenchConfig, BenchKind};

/// Global experiment options.
#[derive(Clone, Copy, Debug)]
pub struct ExpOptions {
    /// Use reduced input sizes (fast CI runs) instead of Table III sizes.
    pub quick: bool,
    /// Cores for the main experiments (the paper's baseline is 32).
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions { quick: false, threads: 32 }
    }
}

impl ExpOptions {
    pub fn bench(&self, kind: BenchKind) -> BenchConfig {
        self.bench_on(kind, self.threads)
    }

    pub fn bench_on(&self, kind: BenchKind, threads: usize) -> BenchConfig {
        if self.quick {
            BenchConfig::smoke(kind, threads)
        } else {
            BenchConfig::paper(kind, threads)
        }
    }
}

/// One verified simulation run.
pub struct RunResult {
    pub kind: BenchKind,
    pub label: &'static str,
    pub threads: usize,
    pub report: SimReport,
}

/// Run `kind` with the given lock mapping; panics if the benchmark's
/// verifier rejects the final memory (every experiment doubles as a
/// correctness test).
pub fn run_bench(bench: &BenchConfig, mapping: &LockMapping) -> RunResult {
    let inst = bench.build();
    let cfg = CmpConfig::paper_baseline().with_cores(bench.threads);
    let sim = Simulation::new(
        &cfg,
        mapping,
        inst.workloads,
        &inst.init,
        SimulationOptions::default(),
    );
    let (report, mem) = sim.run();
    if let Err(e) = (inst.verify)(mem.store()) {
        panic!(
            "{:?} with {} failed verification: {e}",
            bench.kind,
            mapping.label()
        );
    }
    RunResult {
        kind: bench.kind,
        label: mapping.label(),
        threads: bench.threads,
        report,
    }
}

/// The paper's two principal configurations for a benchmark.
pub fn mcs_mapping(bench: &BenchConfig) -> LockMapping {
    LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Mcs, bench.n_locks())
}

pub fn glock_mapping(bench: &BenchConfig) -> LockMapping {
    LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_report() {
        let opts = ExpOptions { quick: true, threads: 4 };
        let bench = opts.bench(BenchKind::Sctr);
        let r = run_bench(&bench, &mcs_mapping(&bench));
        assert!(r.report.cycles > 0);
        assert_eq!(r.label, "MCS");
    }
}
