//! Shared experiment plumbing: configure → run → verify → report.

use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, SimError, SimReport, Simulation, SimulationOptions};
use glocks_sim_base::{CmpConfig, Mesh2D};
use glocks_workloads::{BenchConfig, BenchKind};
use std::cell::{Cell, RefCell};

thread_local! {
    /// Where this thread's runs dump their stats JSON (`None` = stats off).
    static STATS_DIR: RefCell<Option<String>> = const { RefCell::new(None) };
    /// Experiment name the subsequent runs belong to (dump-file prefix).
    static STATS_CTX: RefCell<String> = const { RefCell::new(String::new()) };
    /// Per-context sequence number so repeated configs get distinct files.
    static STATS_SEQ: Cell<u64> = const { Cell::new(0) };
    /// Watchdog-window override for subsequent runs on this thread
    /// (`None` = each driver's own choice stands).
    static WATCHDOG: Cell<Option<u64>> = const { Cell::new(None) };
    /// Per-run wall-clock budget (milliseconds) applied to every
    /// simulation started on this thread (`None` = unlimited).
    static WALL_LIMIT: Cell<Option<u64>> = const { Cell::new(None) };
    /// Explicit mesh floor plan for subsequent runs on this thread — the
    /// `--mesh WxH` harness flag (`None` = near-square factorization).
    static MESH: Cell<Option<Mesh2D>> = const { Cell::new(None) };
    /// Idle-skip override for subsequent runs on this thread — the
    /// `--dense` harness flag sets `Some(false)` (`None` = each driver's
    /// options stand, i.e. the event-driven scheduler is on by default).
    static IDLE_SKIP: Cell<Option<bool>> = const { Cell::new(None) };
    /// Structured `SimError`s observed by runs on this thread since the
    /// last [`drain_sim_errors`] — the sweep engine's failure channel,
    /// reaching past drivers that tolerate individual dead configurations.
    static RUN_ERRORS: RefCell<Vec<crate::journal::RunError>> = const { RefCell::new(Vec::new()) };
}

/// Direct every subsequent [`run_bench`] on *this thread* to record typed
/// stats and dump them as JSON into `dir`. `None` turns dumping back off.
/// Thread-local on purpose: parallel sweeps give each worker its own state.
pub fn set_stats_dir(dir: Option<&str>) {
    STATS_DIR.with(|d| *d.borrow_mut() = dir.map(|s| s.to_string()));
}

/// Name the experiment the subsequent runs belong to; used as the dump-file
/// prefix and stored in the dump's `meta.experiment`. Resets the sequence
/// counter so files within one experiment number from 0.
pub fn set_stats_context(ctx: &str) {
    STATS_CTX.with(|c| *c.borrow_mut() = ctx.to_string());
    STATS_SEQ.with(|s| s.set(0));
}

/// Override the wedge watchdog window (in cycles, 0 = off) for every
/// subsequent run on *this* thread — the `--watchdog-cycles` harness flag.
/// `None` restores each driver's own choice (the simulator default is
/// [`SimulationOptions::default`]'s 2M cycles). Thread-local like
/// [`set_stats_dir`], so `--jobs` workers each apply it independently.
pub fn set_watchdog_cycles(cycles: Option<u64>) {
    WATCHDOG.with(|w| w.set(cycles));
}

/// The watchdog window [`run_bench_with`] will actually use for `options`.
pub fn effective_watchdog(options: &SimulationOptions) -> u64 {
    WATCHDOG.with(|w| w.get()).unwrap_or(options.watchdog_cycles)
}

/// Give every subsequent simulation on *this* thread a wall-clock budget
/// (cooperative: the runner returns [`SimError::WallClockExceeded`], the
/// only *transient* failure, when a run overstays). `None` lifts the
/// budget. Thread-local like [`set_watchdog_cycles`], so `--jobs` workers
/// time out independently.
pub fn set_wall_clock_limit_ms(ms: Option<u64>) {
    WALL_LIMIT.with(|w| w.set(ms));
}

/// Pin the mesh floor plan for every subsequent run on *this* thread — the
/// `--mesh WxH` harness flag. The shape must hold exactly as many tiles as
/// the run has threads; [`run_bench_with`] panics on a mismatch rather than
/// silently simulating a different machine than the one asked for. `None`
/// restores the near-square default. Thread-local like [`set_stats_dir`].
pub fn set_mesh_override(mesh: Option<Mesh2D>) {
    MESH.with(|m| m.set(mesh));
}

/// Force the cycle loop dense (`Some(false)`) or event-driven
/// (`Some(true)`) for every subsequent run on *this* thread — the `--dense`
/// harness flag. Both modes march through identical machine states (the
/// idle-skip determinism contract); the knob exists for A/B self-profiling
/// and for paranoia reruns. `None` restores each driver's own options.
pub fn set_idle_skip(mode: Option<bool>) {
    IDLE_SKIP.with(|s| s.set(mode));
}

/// Apply this thread's `--mesh` / `--dense` overrides to a run that is
/// about to start: shapes `cfg`'s floor plan (validated against `threads`)
/// and pins the cycle-loop mode. [`run_bench_with`] calls this for the
/// standard benches; drivers that build their own [`Simulation`] call it
/// too, so the CLI knobs reach every experiment — service sweeps, fault
/// campaigns, ablations — not just the classic lock benches.
pub fn apply_machine_overrides(
    threads: usize,
    mut cfg: CmpConfig,
    options: &mut SimulationOptions,
) -> CmpConfig {
    if let Some(skip) = IDLE_SKIP.with(|s| s.get()) {
        options.idle_skip = skip;
    }
    if let Some(m) = MESH.with(|m| m.get()) {
        assert!(
            m.len() == threads,
            "--mesh {}x{} holds {} tiles but the workload runs {} threads",
            m.cols(),
            m.rows(),
            m.len(),
            threads
        );
        cfg = cfg.with_mesh(m);
    }
    cfg
}

/// Parse a `--mesh` argument of the form `WxH` (e.g. `32x32`) into a mesh.
pub fn parse_mesh(s: &str) -> Result<Mesh2D, String> {
    let (w, h) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("mesh '{s}' is not of the form WxH (e.g. 32x32)"))?;
    let w: u16 = w.trim().parse().map_err(|_| format!("mesh width '{w}' is not a number"))?;
    let h: u16 = h.trim().parse().map_err(|_| format!("mesh height '{h}' is not a number"))?;
    if w == 0 || h == 0 {
        return Err(format!("mesh '{s}' must be non-empty"));
    }
    Ok(Mesh2D::new(w, h))
}

/// Record a structured error for the sweep engine (done automatically by
/// [`run_bench_with`]; drivers that run `Simulation` by hand and swallow
/// the error themselves should call this so the journal still sees it).
pub fn record_sim_error(e: &SimError) {
    RUN_ERRORS.with(|r| r.borrow_mut().push(crate::journal::RunError::from_sim_error(e)));
}

/// Record a failure that is not a [`SimError`] — the fuzzer's
/// verification mismatches, a repro that fails to parse — so the sweep
/// engine still turns it into a failed journal row and a nonzero exit
/// code.
pub fn record_run_error(kind: &str, detail: &str) {
    RUN_ERRORS.with(|r| {
        r.borrow_mut().push(crate::journal::RunError {
            kind: kind.to_string(),
            transient: false,
            detail: detail.to_string(),
        })
    });
}

/// Take every error recorded on this thread since the last drain. The
/// sweep engine drains before and after each run: transient entries make
/// the run retryable, deterministic ones become journal rows.
pub fn drain_sim_errors() -> Vec<crate::journal::RunError> {
    RUN_ERRORS.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

/// Make a label safe for a filename (`MP-Lock` stays, `MCS/32` would not).
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' })
        .collect()
}

/// An open stats-recording session around one simulation run, created by
/// [`open_stats_session`]. Close it with [`StatsSession::finish`] (dumps
/// the report's snapshot) or [`StatsSession::abort`] (wedged run).
pub struct StatsSession {
    dir: String,
    tag: String,
    watch: glocks_stats::Stopwatch,
}

/// Open a stats session for one run if `set_stats_dir` is active on this
/// thread (`None` otherwise — zero cost). [`run_bench_with`] does this for
/// the standard path; drivers that assemble a `Simulation` by hand (fault
/// sweeps, multiprogramming, ablations) call it around `sim.run()` so
/// *every* experiment dumps stats under `--stats-json`. Open it **before**
/// `Simulation::new` — components register their histograms and series in
/// their constructors. `meta` key/value pairs land in the dump's `meta`
/// block.
pub fn open_stats_session(tag: &str, meta: &[(&str, &str)]) -> Option<StatsSession> {
    let dir = STATS_DIR.with(|d| d.borrow().clone())?;
    let ctx = STATS_CTX.with(|c| c.borrow().clone());
    let ctx = if ctx.is_empty() { "run".to_string() } else { ctx };
    let tag = format!("{ctx}_{}", sanitize(tag));
    let watch = glocks_stats::Stopwatch::start(&tag);
    glocks_stats::enable(glocks_stats::StatsConfig::default());
    glocks_stats::set_meta("experiment", &ctx);
    for (k, v) in meta {
        glocks_stats::set_meta(k, v);
    }
    Some(StatsSession { dir, tag, watch })
}

impl StatsSession {
    /// Dump the report's snapshot as `DIR/<tag>_<seq>.json`, profile the
    /// phase, and close the session.
    pub fn finish(self, report: &SimReport) {
        if let Some(dump) = &report.stats {
            let seq = STATS_SEQ.with(|s| {
                let v = s.get();
                s.set(v + 1);
                v
            });
            let path = format!("{}/{}_{seq}.json", self.dir, self.tag);
            if let Err(e) = std::fs::write(&path, dump.to_json()) {
                eprintln!("[harness] failed to write stats dump {path}: {e}");
            }
        }
        self.watch.stop(report.cycles);
        glocks_stats::disable();
    }

    /// Close the session after a wedged run: nothing to dump, and the
    /// phase is profiled as 0 simulated cycles so the sweep's BENCH file
    /// still accounts for the wall time spent.
    pub fn abort(self) {
        self.watch.stop(0);
        glocks_stats::disable();
    }
}

/// Global experiment options.
#[derive(Clone, Copy, Debug)]
pub struct ExpOptions {
    /// Use reduced input sizes (fast CI runs) instead of Table III sizes.
    pub quick: bool,
    /// Cores for the main experiments (the paper's baseline is 32).
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions { quick: false, threads: 32 }
    }
}

impl ExpOptions {
    pub fn bench(&self, kind: BenchKind) -> BenchConfig {
        self.bench_on(kind, self.threads)
    }

    pub fn bench_on(&self, kind: BenchKind, threads: usize) -> BenchConfig {
        if self.quick {
            BenchConfig::smoke(kind, threads)
        } else {
            BenchConfig::paper(kind, threads)
        }
    }
}

/// One verified simulation run.
pub struct RunResult {
    pub kind: BenchKind,
    pub label: &'static str,
    pub threads: usize,
    pub report: SimReport,
}

/// Run `kind` with the given lock mapping. A wedged run comes back as
/// `Err(SimError)` so a sweep can log it and keep going; a *verification*
/// failure still panics — every experiment doubles as a correctness test,
/// and a wrong answer (unlike a wedge under faults) is always a bug.
pub fn run_bench(bench: &BenchConfig, mapping: &LockMapping) -> Result<RunResult, SimError> {
    run_bench_with(bench, mapping, SimulationOptions::default())
}

/// [`run_bench`] with explicit simulation options (fault plans, watchdog
/// windows, ...).
pub fn run_bench_with(
    bench: &BenchConfig,
    mapping: &LockMapping,
    mut options: SimulationOptions,
) -> Result<RunResult, SimError> {
    options.watchdog_cycles = effective_watchdog(&options);
    if let Some(ms) = WALL_LIMIT.with(|w| w.get()) {
        options.wall_clock_limit_ms = Some(ms);
    }
    let session = open_stats_session(
        &format!("{}_{}_{}t", bench.kind.name(), mapping.label(), bench.threads),
        &[
            ("bench", bench.kind.name()),
            ("lock", mapping.label()),
            ("threads", &bench.threads.to_string()),
        ],
    );
    let inst = bench.build();
    let cfg = apply_machine_overrides(
        bench.threads,
        CmpConfig::paper_baseline().with_cores(bench.threads),
        &mut options,
    );
    let sim = Simulation::new(&cfg, mapping, inst.workloads, &inst.init, options);
    let (report, mem) = match sim.run() {
        Ok(x) => x,
        Err(e) => {
            if let Some(s) = session {
                s.abort();
            }
            record_sim_error(&e);
            return Err(e);
        }
    };
    if let Err(e) = (inst.verify)(mem.store()) {
        panic!(
            "{:?} with {} failed verification: {e}",
            bench.kind,
            mapping.label()
        );
    }
    if let Some(s) = session {
        s.finish(&report);
    }
    Ok(RunResult {
        kind: bench.kind,
        label: mapping.label(),
        threads: bench.threads,
        report,
    })
}

/// Sweep-friendly wrapper: log a wedged configuration to stderr and return
/// `None` so the caller's remaining experiments still run.
pub fn try_run_bench(bench: &BenchConfig, mapping: &LockMapping) -> Option<RunResult> {
    match run_bench(bench, mapping) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!(
                "[harness] {:?} x{} with {} wedged ({}); skipping\n{e}",
                bench.kind,
                bench.threads,
                mapping.label(),
                e.kind()
            );
            None
        }
    }
}

/// The paper's two principal configurations for a benchmark.
pub fn mcs_mapping(bench: &BenchConfig) -> LockMapping {
    LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Mcs, bench.n_locks())
}

pub fn glock_mapping(bench: &BenchConfig) -> LockMapping {
    LockMapping::hybrid(&bench.hc_locks(), LockAlgorithm::Glock, bench.n_locks())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_dir_dumps_schema_versioned_json() {
        let dir = std::env::temp_dir().join(format!("glocks_stats_exp_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        set_stats_dir(dir.to_str());
        set_stats_context("unit");
        let opts = ExpOptions { quick: true, threads: 4 };
        let bench = opts.bench(BenchKind::Sctr);
        let r = run_bench(&bench, &glock_mapping(&bench)).expect("fault-free run");
        set_stats_dir(None);
        let dump = r.report.stats.as_ref().expect("snapshot attached to report");
        assert_eq!(dump.schema_version, glocks_stats::SCHEMA_VERSION);
        let path = dir.join(format!(
            "unit_{}_{}_4t_0.json",
            bench.kind.name(),
            sanitize(r.label)
        ));
        let text = std::fs::read_to_string(&path).expect("dump file written");
        let parsed = glocks_stats::StatsDump::from_json(&text).expect("dump parses");
        assert_eq!(parsed.meta.get("bench").map(String::as_str), Some(bench.kind.name()));
        assert_eq!(parsed.meta.get("experiment").map(String::as_str), Some("unit"));
        assert!(parsed.counters.contains_key("sim.cycles"));
        assert!(!glocks_stats::is_enabled(), "session closed after the run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_override_is_revertible() {
        let opts = SimulationOptions::default();
        let default = opts.watchdog_cycles;
        assert_eq!(effective_watchdog(&opts), default);
        set_watchdog_cycles(Some(123));
        assert_eq!(effective_watchdog(&opts), 123);
        set_watchdog_cycles(None);
        assert_eq!(effective_watchdog(&opts), default);
    }

    #[test]
    fn mesh_flag_parses_and_rejects_garbage() {
        assert_eq!(parse_mesh("32x32").unwrap(), Mesh2D::new(32, 32));
        assert_eq!(parse_mesh("8X4").unwrap(), Mesh2D::new(8, 4));
        assert!(parse_mesh("32").is_err());
        assert!(parse_mesh("0x4").is_err());
        assert!(parse_mesh("ax4").is_err());
    }

    #[test]
    fn mesh_override_shapes_the_run() {
        let opts = ExpOptions { quick: true, threads: 4 };
        let bench = opts.bench(BenchKind::Sctr);
        set_mesh_override(Some(Mesh2D::new(1, 4)));
        let r = run_bench(&bench, &glock_mapping(&bench)).expect("fault-free run");
        set_mesh_override(None);
        assert!(r.report.cycles > 0);
    }

    // Each #[test] runs on its own thread, so the leaked thread-local
    // override dies with it.
    #[test]
    #[should_panic(expected = "--mesh 4x4")]
    fn mismatched_mesh_override_panics() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let bench = opts.bench(BenchKind::Sctr);
        set_mesh_override(Some(Mesh2D::new(4, 4)));
        let _ = run_bench(&bench, &glock_mapping(&bench));
    }

    #[test]
    fn quick_run_produces_report() {
        let opts = ExpOptions { quick: true, threads: 4 };
        let bench = opts.bench(BenchKind::Sctr);
        let r = run_bench(&bench, &mcs_mapping(&bench)).expect("fault-free run");
        assert!(r.report.cycles > 0);
        assert_eq!(r.label, "MCS");
    }
}
