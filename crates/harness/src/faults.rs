//! Fault-injection sweep (robustness study beyond the paper).
//!
//! SCTR runs under GLocks while a seeded [`FaultPlan`] drops a growing
//! fraction of G-line signal transmissions. The hardened protocol
//! (epoch-tagged tokens + retransmission timers) must keep the final
//! counter exact at any survivable rate, paying only retransmissions; a
//! rate high enough to kill liveness (100% loss) must come back as a
//! structured [`glocks_sim::SimError`] row instead of aborting the sweep.

use crate::exp::ExpOptions;
use glocks_locks::LockAlgorithm;
use glocks_sim::{LockMapping, Simulation, SimulationOptions};
use glocks_sim_base::fault::{FaultPlan, FaultRates};
use glocks_sim_base::table::TextTable;
use glocks_sim_base::CmpConfig;
use glocks_workloads::BenchKind;

/// Drop rates swept, in ppm of G-line signal transmissions.
pub const DROP_PPM: [u32; 6] = [0, 1_000, 10_000, 50_000, 200_000, 1_000_000];

/// Seed for the published sweep — reproduce any row with
/// `FaultPlan::seeded(SWEEP_SEED)` and the row's drop rate.
pub const SWEEP_SEED: u64 = 0xFA01;

pub fn run(opts: &ExpOptions) -> TextTable {
    let mut t = TextTable::new(
        "Fault injection — SCTR under GLocks with G-line signal loss",
    )
    .header(["drop rate", "outcome", "cycles", "grants", "signals", "dropped", "retransmits"]);
    for drop_ppm in DROP_PPM {
        let bench = opts.bench(BenchKind::Sctr);
        let inst = bench.build();
        let cfg = CmpConfig::paper_baseline().with_cores(bench.threads);
        let mapping = LockMapping::uniform(LockAlgorithm::Glock, 1);
        let mut plan = FaultPlan::seeded(SWEEP_SEED);
        plan.gline = FaultRates::drops(drop_ppm);
        let mut sim_opts = SimulationOptions {
            fault_plan: Some(plan),
            // Short window: a dead configuration should fail fast, and a
            // live one always grants within a few thousand cycles.
            watchdog_cycles: 200_000,
            ..Default::default()
        };
        let cfg = crate::exp::apply_machine_overrides(bench.threads, cfg, &mut sim_opts);
        // Before `Simulation::new`: components register their histograms
        // in their constructors, so the session must already be open.
        let session = crate::exp::open_stats_session(
            &format!("SCTR_GLock_drop{drop_ppm}ppm_{}t", bench.threads),
            &[
                ("bench", "SCTR"),
                ("lock", "GLock"),
                ("drop_ppm", &drop_ppm.to_string()),
            ],
        );
        let sim = Simulation::new(&cfg, &mapping, inst.workloads, &inst.init, sim_opts);
        let rate = format!("{}%", drop_ppm as f64 / 10_000.0);
        match sim.run() {
            Ok((report, mem)) => {
                (inst.verify)(mem.store()).expect("surviving a fault schedule means *correctly*");
                if let Some(s) = session {
                    s.finish(&report);
                }
                let g = report.glocks[0];
                t.row([
                    rate,
                    "completed".to_string(),
                    report.cycles.to_string(),
                    g.grants.to_string(),
                    g.signals.to_string(),
                    g.dropped.to_string(),
                    g.retransmits.to_string(),
                ]);
            }
            Err(e) => {
                if let Some(s) = session {
                    s.abort();
                }
                let g = e.snapshot().glocks.first().map(|g| g.stats).unwrap_or_default();
                t.row([
                    rate,
                    e.kind().to_string(),
                    "-".to_string(),
                    g.grants.to_string(),
                    g.signals.to_string(),
                    g.dropped.to_string(),
                    g.retransmits.to_string(),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_survivable_and_dead_rates() {
        let opts = ExpOptions { quick: true, threads: 8 };
        let t = run(&opts);
        assert_eq!(t.n_rows(), DROP_PPM.len());
        let csv = t.to_csv();
        let outcomes: Vec<&str> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap())
            .collect();
        // Every survivable rate completes; total loss is reported as a
        // structured wedge, and the sweep still rendered every row.
        assert!(outcomes[..outcomes.len() - 1].iter().all(|o| *o == "completed"), "{outcomes:?}");
        assert_eq!(outcomes[outcomes.len() - 1], "no-forward-progress");
    }
}
