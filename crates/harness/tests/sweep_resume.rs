//! The issue's acceptance scenario for the sweep engine, end to end
//! through the `glocks-experiments` CLI: a `--jobs` sweep containing one
//! panicking and one wedging configuration completes every healthy row,
//! records both failures as structured journal entries, and a `--resume`
//! rerun finishes the remainder without recomputing completed rows.

use glocks_harness::journal::{Journal, RunStatus};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_glocks-experiments"))
}

#[test]
fn injected_failures_journal_and_resume_finishes_the_rest() {
    let dir =
        std::env::temp_dir().join(format!("glocks_sweep_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("sweep.jsonl");

    // table1 is healthy; table2 panics; fig1's simulations all exhaust a
    // zero wall-clock budget (a genuine transient SimError, retried once).
    let out = bin()
        .args(["table1", "table2", "fig1"])
        .args(["--quick", "--threads", "4", "--jobs", "2"])
        .arg("--journal")
        .arg(&journal)
        .args(["--inject-panic", "table2", "--inject-wedge", "fig1"])
        .args(["--retries", "1", "--backoff-ms", "10"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "deterministic failure dominates the exit code; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I —"), "healthy row's output still printed");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("injected panic in table2"), "stderr:\n{stderr}");

    let rows = Journal::replay(&journal).unwrap();
    assert_eq!(rows["table1"].status, RunStatus::Done);
    assert_eq!(rows["table2"].status, RunStatus::Failed);
    assert_eq!(rows["table2"].errors[0].kind, "panic");
    assert!(!rows["table2"].errors[0].transient);
    assert_eq!(rows["fig1"].status, RunStatus::Wedged);
    assert_eq!(rows["fig1"].attempt, 2, "one retry before giving up");
    assert!(rows["fig1"].errors.iter().any(|e| e.kind == "wall-clock-exceeded" && e.transient));

    // Resume without the injections: the done row must not recompute.
    let out = bin()
        .args(["table1", "table2", "fig1"])
        .args(["--quick", "--threads", "4", "--jobs", "2", "--resume"])
        .arg("--journal")
        .arg(&journal)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("table1: already done in journal, skipped"),
        "stderr:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("Table I —"), "skipped rows print nothing");
    assert!(stdout.contains("Figure 1"), "previously wedged row now completes");

    let rows = Journal::replay(&journal).unwrap();
    assert_eq!(rows["table1"].status, RunStatus::Skipped);
    assert_eq!(rows["table2"].status, RunStatus::Done);
    assert_eq!(rows["fig1"].status, RunStatus::Done);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wedges_alone_exit_2() {
    let dir = std::env::temp_dir().join(format!("glocks_sweep_wedge_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let out = bin()
        .args(["table1", "fig1"])
        .args(["--quick", "--threads", "4"])
        .arg("--journal")
        .arg(dir.join("sweep.jsonl"))
        .args(["--inject-wedge", "fig1", "--retries", "0"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "transient-only sweeps exit 2; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
