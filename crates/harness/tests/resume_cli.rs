//! End-to-end crash/resume through the `glocks-run` CLI: a run killed at a
//! checkpoint boundary and resumed from disk must finish with a stats dump
//! byte-identical to an uninterrupted run's.

use glocks_harness::journal::{Journal, RunStatus};
use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_glocks-run"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glocks_resume_cli_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const RUN_ARGS: [&str; 7] = ["--bench", "SCTR", "--lock", "GLock", "--threads", "4", "--quick"];

#[test]
fn interrupted_run_resumes_to_a_byte_identical_dump() {
    let clean = tmp("clean");
    let crashy = tmp("crashy");

    // Reference: one uninterrupted run, no checkpointing at all.
    let st = bin().args(RUN_ARGS).arg("--out").arg(&clean).status().unwrap();
    assert!(st.success(), "clean run must pass");
    let golden = std::fs::read(clean.join("SCTR_GLock_4t.json")).unwrap();

    // Crash: die right after the first checkpoint hits disk.
    let st = bin()
        .args(RUN_ARGS)
        .arg("--out")
        .arg(&crashy)
        .args(["--checkpoint-every", "3000", "--die-after-checkpoints", "1"])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(42), "injected crash must exit 42");
    let ckpt = crashy.join("SCTR_GLock_4t.ckpt");
    assert!(ckpt.exists(), "checkpoint survives the crash");
    assert!(!crashy.join("SCTR_GLock_4t.json").exists(), "no dump from a dead run");

    // Resume from the checkpoint and run to completion.
    let st = bin()
        .args(RUN_ARGS)
        .arg("--out")
        .arg(&crashy)
        .args(["--checkpoint-every", "3000", "--resume"])
        .status()
        .unwrap();
    assert!(st.success(), "resumed run must pass");
    let resumed = std::fs::read(crashy.join("SCTR_GLock_4t.json")).unwrap();
    assert_eq!(golden, resumed, "resumed dump must be byte-identical to the clean run's");
    assert!(!ckpt.exists(), "finished run removes its stale checkpoint");

    let rows = Journal::replay(&crashy.join("journal.jsonl")).unwrap();
    assert_eq!(rows["SCTR_GLock_4t"].status, RunStatus::Done);
    assert_eq!(
        rows["SCTR_GLock_4t"].artifacts,
        vec![crashy.join("SCTR_GLock_4t.json").display().to_string()]
    );

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&crashy);
}

#[test]
fn snapshot_refuses_a_differently_shaped_machine() {
    let dir = tmp("mismatch");

    let st = bin()
        .args(RUN_ARGS)
        .arg("--out")
        .arg(&dir)
        .args(["--checkpoint-every", "3000", "--die-after-checkpoints", "1"])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(42));
    let ckpt = dir.join("SCTR_GLock_4t.ckpt");

    // Same snapshot file, 8-core machine: the fingerprint must refuse it.
    let out = bin()
        .args(["--bench", "SCTR", "--lock", "GLock", "--threads", "8", "--quick"])
        .arg("--out")
        .arg(&dir)
        .arg("--snapshot")
        .arg(&ckpt)
        .args(["--checkpoint-every", "3000", "--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "mismatched restore is a deterministic failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("snapshot refused"), "stderr: {stderr}");

    let rows = Journal::replay(&dir.join("journal.jsonl")).unwrap();
    assert_eq!(rows["SCTR_GLock_8t"].status, RunStatus::Failed);
    assert_eq!(rows["SCTR_GLock_8t"].errors[0].kind, "snapshot-refused");

    let _ = std::fs::remove_dir_all(&dir);
}
