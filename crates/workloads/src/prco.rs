//! PRCO: "a shared FIFO (bounded) array, protected by a single lock, that
//! is initially empty. Half the threads enqueue items into the FIFO that
//! are consumed by the other half of threads. Producers have to wait for
//! free slots in the FIFO whereas consumers have to wait for data to
//! consume before iterating the critical section code."
//!
//! A full/empty check failure releases the lock, backs off briefly and
//! retries — the classic lock-based bounded buffer, and the access pattern
//! the paper attributes to QSort's work queue.

use crate::{share, BenchConfig, BenchInstance, DATA_BASE};
use glocks_cpu::{Action, Workload};
use glocks_mem::MemOp;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, LockId};

/// FIFO capacity (slots).
pub const CAPACITY: u64 = 8;

fn count_addr() -> Addr {
    DATA_BASE
}

fn head_addr() -> Addr {
    Addr(DATA_BASE.0 + 64)
}

fn tail_addr() -> Addr {
    Addr(DATA_BASE.0 + 128)
}

fn slot_addr(i: u64) -> Addr {
    Addr(DATA_BASE.0 + 192 + (i % CAPACITY) * 64)
}

/// Where consumers accumulate a checksum of consumed items.
fn consumed_sum_addr(tid: usize) -> Addr {
    Addr(DATA_BASE.0 + 192 + CAPACITY * 64 + tid as u64 * 64)
}

enum Phase {
    Enter,
    CheckCount,
    ReadIndex,
    Transfer { count: u64 },
    BumpIndex { count: u64, index: u64, item: u64 },
    WriteCount { count: u64 },
    Exit,
    Backoff,
    Rest,
    SaveSum,
    StoreSum,
}

struct PrcoLoop {
    tid: usize,
    producer: bool,
    quota: u64,
    next_item: u64,
    my_sum: u64,
    phase: Phase,
}

impl Workload for PrcoLoop {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            Phase::Enter => {
                if self.quota == 0 {
                    return Action::Done;
                }
                self.phase = Phase::CheckCount;
                Action::Acquire(LockId(0))
            }
            Phase::CheckCount => {
                self.phase = Phase::ReadIndex;
                Action::Mem(MemOp::Load(count_addr()))
            }
            Phase::ReadIndex => {
                let count = last;
                let blocked = if self.producer { count >= CAPACITY } else { count == 0 };
                if blocked {
                    // Full (producer) / empty (consumer): release and retry.
                    self.phase = Phase::Backoff;
                    return Action::Release(LockId(0));
                }
                self.phase = Phase::Transfer { count };
                let idx = if self.producer { tail_addr() } else { head_addr() };
                Action::Mem(MemOp::Load(idx))
            }
            Phase::Transfer { count } => {
                let index = last;
                if self.producer {
                    let item = self.next_item;
                    self.phase = Phase::BumpIndex { count, index, item };
                    Action::Mem(MemOp::Store(slot_addr(index), item))
                } else {
                    self.phase = Phase::BumpIndex { count, index, item: 0 };
                    Action::Mem(MemOp::Load(slot_addr(index)))
                }
            }
            Phase::BumpIndex { count, index, item } => {
                let item = if self.producer { item } else { last };
                self.phase = Phase::WriteCount { count };
                if !self.producer {
                    // remember what we consumed for the checksum
                    self.my_sum += item;
                }
                let idx = if self.producer { tail_addr() } else { head_addr() };
                Action::Mem(MemOp::Store(idx, (index + 1) % CAPACITY))
            }
            Phase::WriteCount { count } => {
                self.phase = Phase::Exit;
                let new = if self.producer { count + 1 } else { count - 1 };
                Action::Mem(MemOp::Store(count_addr(), new))
            }
            Phase::Exit => {
                self.quota -= 1;
                if self.producer {
                    self.next_item += 1;
                    self.phase = Phase::Rest;
                } else {
                    self.phase = Phase::SaveSum;
                }
                Action::Release(LockId(0))
            }
            Phase::Backoff => {
                self.phase = Phase::Enter;
                Action::Compute(48)
            }
            Phase::Rest => {
                self.phase = Phase::Enter;
                Action::Compute(32)
            }
            Phase::SaveSum => {
                // Persist the running checksum (outside the lock).
                self.phase = Phase::StoreSum;
                Action::Mem(MemOp::Store(consumed_sum_addr(self.tid), self.my_sum))
            }
            Phase::StoreSum => {
                self.phase = Phase::Enter;
                Action::Compute(16)
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self.phase {
            Phase::Enter => w.u8(0),
            Phase::CheckCount => w.u8(1),
            Phase::ReadIndex => w.u8(2),
            Phase::Transfer { count } => {
                w.u8(3);
                w.u64(count);
            }
            Phase::BumpIndex { count, index, item } => {
                w.u8(4);
                w.u64(count);
                w.u64(index);
                w.u64(item);
            }
            Phase::WriteCount { count } => {
                w.u8(5);
                w.u64(count);
            }
            Phase::Exit => w.u8(6),
            Phase::Backoff => w.u8(7),
            Phase::Rest => w.u8(8),
            Phase::SaveSum => w.u8(9),
            Phase::StoreSum => w.u8(10),
        }
        w.u64(self.quota);
        w.u64(self.next_item);
        w.u64(self.my_sum);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.phase = match r.u8()? {
            0 => Phase::Enter,
            1 => Phase::CheckCount,
            2 => Phase::ReadIndex,
            3 => Phase::Transfer { count: r.u64()? },
            4 => Phase::BumpIndex { count: r.u64()?, index: r.u64()?, item: r.u64()? },
            5 => Phase::WriteCount { count: r.u64()? },
            6 => Phase::Exit,
            7 => Phase::Backoff,
            8 => Phase::Rest,
            9 => Phase::SaveSum,
            10 => Phase::StoreSum,
            tag => return Err(SnapError::BadTag { what: "prco phase", tag: u64::from(tag) }),
        };
        self.quota = r.u64()?;
        self.next_item = r.u64()?;
        self.my_sum = r.u64()?;
        Ok(())
    }
}

/// Build PRCO. Threads with even ids produce; odd ids consume. A single
/// thread alternating is not meaningful, so `threads ≥ 2` is required.
pub fn build(cfg: &BenchConfig) -> BenchInstance {
    assert!(cfg.threads >= 2, "PRCO needs at least one producer and one consumer");
    let threads = cfg.threads;
    let producers: Vec<usize> = (0..threads).filter(|t| t % 2 == 0).collect();
    let consumers: Vec<usize> = (0..threads).filter(|t| t % 2 == 1).collect();
    let total = cfg.scale;
    // item k (0-based) carries value k+1 so absent items are detectable
    let mut produce_start = vec![0u64; threads];
    let mut quota = vec![0u64; threads];
    let mut next = 1u64;
    for (i, &p) in producers.iter().enumerate() {
        let q = share(total, producers.len(), i);
        quota[p] = q;
        produce_start[p] = next;
        next += q;
    }
    for (i, &c) in consumers.iter().enumerate() {
        quota[c] = share(total, consumers.len(), i);
    }
    let consumer_ids = consumers.clone();
    let workloads = (0..threads)
        .map(|t| {
            Box::new(PrcoLoop {
                tid: t,
                producer: t % 2 == 0,
                quota: quota[t],
                next_item: produce_start[t],
                my_sum: 0,
                phase: Phase::Enter,
            }) as Box<dyn Workload>
        })
        .collect();
    // sum of item values 1..=total
    let expect_sum = total * (total + 1) / 2;
    BenchInstance {
        workloads,
        init: vec![],
        verify: Box::new(move |store| {
            let count = store.load(count_addr());
            if count != 0 {
                return Err(format!("FIFO still holds {count} items"));
            }
            let got: u64 = consumer_ids
                .iter()
                .map(|&c| store.load(consumed_sum_addr(c)))
                .sum();
            if got != expect_sum {
                return Err(format!(
                    "consumed checksum {got}, expected {expect_sum} (items lost or duplicated)"
                ));
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchKind;

    #[test]
    fn quotas_balance() {
        let cfg = BenchConfig::smoke(BenchKind::Prco, 6);
        let inst = cfg.build();
        assert_eq!(inst.workloads.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one producer")]
    fn rejects_single_thread() {
        let cfg = BenchConfig::smoke(BenchKind::Prco, 1);
        let _ = cfg.build();
    }

    #[test]
    fn slot_addresses_wrap() {
        assert_eq!(slot_addr(0), slot_addr(CAPACITY));
        assert_ne!(slot_addr(0), slot_addr(1));
    }
}
