//! ACTR: "two locks that protect two counters accessed consecutively by
//! all threads. For each iteration, all threads acquire the first lock to
//! update the first counter, barrier synchronizes them, and then the
//! second lock is acquired to modify the second counter."
//!
//! The interleaved barrier spreads acquisitions out, which is why the
//! paper measures a *moderate, homogeneous* contention level across the
//! whole grAC range for ACTR (Figure 7) — and why its MCS penalty is the
//! largest (MCS is inefficient at low contention).

use crate::{BenchConfig, BenchInstance, DATA_BASE};
use glocks_cpu::{Action, Workload};
use glocks_mem::MemOp;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, LockId};

fn ctr0() -> Addr {
    DATA_BASE
}

fn ctr1() -> Addr {
    Addr(DATA_BASE.0 + 64)
}

enum Phase {
    EnterFirst,
    LoadFirst,
    StoreFirst,
    ExitFirst,
    BarrierWait,
    EnterSecond,
    LoadSecond,
    StoreSecond,
    ExitSecond,
    EndBarrier,
}

struct ActrLoop {
    iters: u64,
    phase: Phase,
    seen: u64,
}

impl Workload for ActrLoop {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            Phase::EnterFirst => {
                if self.iters == 0 {
                    return Action::Done;
                }
                self.phase = Phase::LoadFirst;
                Action::Acquire(LockId(0))
            }
            Phase::LoadFirst => {
                self.phase = Phase::StoreFirst;
                Action::Mem(MemOp::Load(ctr0()))
            }
            Phase::StoreFirst => {
                self.seen = last;
                self.phase = Phase::ExitFirst;
                Action::Mem(MemOp::Store(ctr0(), self.seen + 1))
            }
            Phase::ExitFirst => {
                self.phase = Phase::BarrierWait;
                Action::Release(LockId(0))
            }
            Phase::BarrierWait => {
                self.phase = Phase::EnterSecond;
                Action::Barrier
            }
            Phase::EnterSecond => {
                self.phase = Phase::LoadSecond;
                Action::Acquire(LockId(1))
            }
            Phase::LoadSecond => {
                self.phase = Phase::StoreSecond;
                Action::Mem(MemOp::Load(ctr1()))
            }
            Phase::StoreSecond => {
                self.seen = last;
                self.phase = Phase::ExitSecond;
                Action::Mem(MemOp::Store(ctr1(), self.seen + 1))
            }
            Phase::ExitSecond => {
                self.iters -= 1;
                self.phase = Phase::EndBarrier;
                Action::Release(LockId(1))
            }
            Phase::EndBarrier => {
                self.phase = Phase::EnterFirst;
                Action::Barrier
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.phase {
            Phase::EnterFirst => 0,
            Phase::LoadFirst => 1,
            Phase::StoreFirst => 2,
            Phase::ExitFirst => 3,
            Phase::BarrierWait => 4,
            Phase::EnterSecond => 5,
            Phase::LoadSecond => 6,
            Phase::StoreSecond => 7,
            Phase::ExitSecond => 8,
            Phase::EndBarrier => 9,
        });
        w.u64(self.iters);
        w.u64(self.seen);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.phase = match r.u8()? {
            0 => Phase::EnterFirst,
            1 => Phase::LoadFirst,
            2 => Phase::StoreFirst,
            3 => Phase::ExitFirst,
            4 => Phase::BarrierWait,
            5 => Phase::EnterSecond,
            6 => Phase::LoadSecond,
            7 => Phase::StoreSecond,
            8 => Phase::ExitSecond,
            9 => Phase::EndBarrier,
            tag => return Err(SnapError::BadTag { what: "actr phase", tag: u64::from(tag) }),
        };
        self.iters = r.u64()?;
        self.seen = r.u64()?;
        Ok(())
    }
}

/// Build ACTR. All threads run the same number of iterations (the barrier
/// requires every thread to participate every round), so the per-thread
/// count is `scale / threads` rounded up to at least 1.
pub fn build(cfg: &BenchConfig) -> BenchInstance {
    let threads = cfg.threads;
    let iters = (cfg.scale / threads as u64).max(1);
    let total = iters * threads as u64;
    let workloads = (0..threads)
        .map(|_| Box::new(ActrLoop { iters, phase: Phase::EnterFirst, seen: 0 }) as Box<dyn Workload>)
        .collect();
    BenchInstance {
        workloads,
        init: vec![],
        verify: Box::new(move |store| {
            for (name, addr) in [("first", ctr0()), ("second", ctr1())] {
                let v = store.load(addr);
                if v != total {
                    return Err(format!("ACTR {name} counter = {v}, expected {total}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use crate::{BenchConfig, BenchKind};

    #[test]
    fn builds_with_uniform_iterations() {
        let inst = BenchConfig::smoke(BenchKind::Actr, 8).build();
        assert_eq!(inst.workloads.len(), 8);
    }
}
