//! DBLL: "a doubly-linked list, protected by a single lock, where threads
//! dequeue elements from the head of the list and enqueue them into the
//! tail of the list afterwards".
//!
//! The list lives entirely in simulated memory: node `i` has a `next` word
//! and a `prev` word in separate cache lines; a head and a tail sentinel
//! bracket the chain. Each iteration dequeues one node at the head (under
//! the lock), "uses" it, then enqueues it at the tail (under the lock).

use crate::{share, BenchConfig, BenchInstance, DATA_BASE};
use glocks_cpu::{Action, Workload};
use glocks_mem::store::WordStore;
use glocks_mem::MemOp;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, LockId};

/// Bytes per node record (next and prev words in separate lines).
const NODE_STRIDE: u64 = 128;
/// Extra free nodes beyond one per thread.
const SPARE_NODES: u64 = 4;

fn node_base(i: u64) -> Addr {
    Addr(DATA_BASE.0 + i * NODE_STRIDE)
}

fn next_of(node: Addr) -> Addr {
    node
}

fn prev_of(node: Addr) -> Addr {
    Addr(node.0 + 64)
}

enum Phase {
    EnterDeq,
    ReadHeadNext,
    ReadVictimNext,
    Unlink { victim: u64 },
    UnlinkBack { victim: u64, after: u64 },
    ExitDeq { victim: u64 },
    Use { victim: u64 },
    EnterEnq { victim: u64 },
    ReadTailPrev { victim: u64 },
    LinkPrev { victim: u64 },
    LinkNext { victim: u64, old_last: u64 },
    LinkTailPrev { victim: u64 },
    LinkNodeNext { victim: u64 },
    ExitEnq,
    Rest,
}

struct DbllLoop {
    head: Addr,
    tail: Addr,
    iters: u64,
    phase: Phase,
}

impl Workload for DbllLoop {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            Phase::EnterDeq => {
                if self.iters == 0 {
                    return Action::Done;
                }
                self.phase = Phase::ReadHeadNext;
                Action::Acquire(LockId(0))
            }
            Phase::ReadHeadNext => {
                self.phase = Phase::ReadVictimNext;
                Action::Mem(MemOp::Load(next_of(self.head)))
            }
            Phase::ReadVictimNext => {
                let victim = last;
                if victim == self.tail.0 {
                    // Empty list (another thread holds every node): retry.
                    self.phase = Phase::EnterDeq;
                    return Action::Release(LockId(0));
                }
                self.phase = Phase::Unlink { victim };
                Action::Mem(MemOp::Load(next_of(Addr(victim))))
            }
            Phase::Unlink { victim } => {
                let after = last;
                self.phase = Phase::UnlinkBack { victim, after };
                Action::Mem(MemOp::Store(next_of(self.head), after))
            }
            Phase::UnlinkBack { victim, after } => {
                self.phase = Phase::ExitDeq { victim };
                Action::Mem(MemOp::Store(prev_of(Addr(after)), self.head.0))
            }
            Phase::ExitDeq { victim } => {
                self.phase = Phase::Use { victim };
                Action::Release(LockId(0))
            }
            Phase::Use { victim } => {
                self.phase = Phase::EnterEnq { victim };
                Action::Compute(16)
            }
            Phase::EnterEnq { victim } => {
                self.phase = Phase::ReadTailPrev { victim };
                Action::Acquire(LockId(0))
            }
            Phase::ReadTailPrev { victim } => {
                self.phase = Phase::LinkPrev { victim };
                Action::Mem(MemOp::Load(prev_of(self.tail)))
            }
            Phase::LinkPrev { victim } => {
                let old_last = last;
                self.phase = Phase::LinkNext { victim, old_last };
                Action::Mem(MemOp::Store(prev_of(Addr(victim)), old_last))
            }
            Phase::LinkNext { victim, old_last } => {
                self.phase = Phase::LinkTailPrev { victim };
                Action::Mem(MemOp::Store(next_of(Addr(old_last)), victim))
            }
            Phase::LinkTailPrev { victim } => {
                self.phase = Phase::LinkNodeNext { victim };
                Action::Mem(MemOp::Store(prev_of(self.tail), victim))
            }
            Phase::LinkNodeNext { victim } => {
                self.phase = Phase::ExitEnq;
                Action::Mem(MemOp::Store(next_of(Addr(victim)), self.tail.0))
            }
            Phase::ExitEnq => {
                self.iters -= 1;
                self.phase = Phase::Rest;
                Action::Release(LockId(0))
            }
            Phase::Rest => {
                self.phase = Phase::EnterDeq;
                Action::Compute(24)
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self.phase {
            Phase::EnterDeq => w.u8(0),
            Phase::ReadHeadNext => w.u8(1),
            Phase::ReadVictimNext => w.u8(2),
            Phase::Unlink { victim } => {
                w.u8(3);
                w.u64(victim);
            }
            Phase::UnlinkBack { victim, after } => {
                w.u8(4);
                w.u64(victim);
                w.u64(after);
            }
            Phase::ExitDeq { victim } => {
                w.u8(5);
                w.u64(victim);
            }
            Phase::Use { victim } => {
                w.u8(6);
                w.u64(victim);
            }
            Phase::EnterEnq { victim } => {
                w.u8(7);
                w.u64(victim);
            }
            Phase::ReadTailPrev { victim } => {
                w.u8(8);
                w.u64(victim);
            }
            Phase::LinkPrev { victim } => {
                w.u8(9);
                w.u64(victim);
            }
            Phase::LinkNext { victim, old_last } => {
                w.u8(10);
                w.u64(victim);
                w.u64(old_last);
            }
            Phase::LinkTailPrev { victim } => {
                w.u8(11);
                w.u64(victim);
            }
            Phase::LinkNodeNext { victim } => {
                w.u8(12);
                w.u64(victim);
            }
            Phase::ExitEnq => w.u8(13),
            Phase::Rest => w.u8(14),
        }
        w.u64(self.iters);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.phase = match r.u8()? {
            0 => Phase::EnterDeq,
            1 => Phase::ReadHeadNext,
            2 => Phase::ReadVictimNext,
            3 => Phase::Unlink { victim: r.u64()? },
            4 => Phase::UnlinkBack { victim: r.u64()?, after: r.u64()? },
            5 => Phase::ExitDeq { victim: r.u64()? },
            6 => Phase::Use { victim: r.u64()? },
            7 => Phase::EnterEnq { victim: r.u64()? },
            8 => Phase::ReadTailPrev { victim: r.u64()? },
            9 => Phase::LinkPrev { victim: r.u64()? },
            10 => Phase::LinkNext { victim: r.u64()?, old_last: r.u64()? },
            11 => Phase::LinkTailPrev { victim: r.u64()? },
            12 => Phase::LinkNodeNext { victim: r.u64()? },
            13 => Phase::ExitEnq,
            14 => Phase::Rest,
            tag => return Err(SnapError::BadTag { what: "dbll phase", tag: u64::from(tag) }),
        };
        self.iters = r.u64()?;
        Ok(())
    }
}

/// Build DBLL: sentinels at nodes 0 (head) and 1 (tail); payload nodes
/// 2..2+k chained between them.
pub fn build(cfg: &BenchConfig) -> BenchInstance {
    let head = node_base(0);
    let tail = node_base(1);
    let k = cfg.threads as u64 + SPARE_NODES;
    let mut init = Vec::new();
    // chain: head -> 2 -> 3 -> ... -> (k+1) -> tail
    let chain: Vec<u64> = std::iter::once(head.0)
        .chain((2..2 + k).map(|i| node_base(i).0))
        .chain(std::iter::once(tail.0))
        .collect();
    for w in chain.windows(2) {
        init.push((next_of(Addr(w[0])), w[1]));
        init.push((prev_of(Addr(w[1])), w[0]));
    }
    let total = cfg.scale;
    let threads = cfg.threads;
    let workloads = (0..threads)
        .map(|t| {
            Box::new(DbllLoop {
                head,
                tail,
                iters: share(total, threads, t),
                phase: Phase::EnterDeq,
            }) as Box<dyn Workload>
        })
        .collect();
    BenchInstance {
        workloads,
        init,
        verify: Box::new(move |store| verify_list(store, head, tail, k)),
    }
}

/// Walk the list both ways and check structural integrity and node count.
fn verify_list(store: &WordStore, head: Addr, tail: Addr, k: u64) -> Result<(), String> {
    let mut count = 0u64;
    let mut cur = head.0;
    let mut hops = 0;
    while cur != tail.0 {
        let next = store.load(next_of(Addr(cur)));
        if next == 0 {
            return Err(format!("broken next chain at {cur:#x}"));
        }
        let back = store.load(prev_of(Addr(next)));
        if back != cur {
            return Err(format!(
                "prev({next:#x}) = {back:#x}, expected {cur:#x}"
            ));
        }
        if cur != head.0 {
            count += 1;
        }
        cur = next;
        hops += 1;
        if hops > 10_000 {
            return Err("next chain does not terminate".into());
        }
    }
    if count != k {
        return Err(format!("list holds {count} nodes, expected {k}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchKind;
    use glocks_mem::store::WordStore;

    #[test]
    fn initial_image_is_a_valid_list() {
        let cfg = BenchConfig::smoke(BenchKind::Dbll, 4);
        let inst = cfg.build();
        let mut store = WordStore::new();
        for &(a, v) in &inst.init {
            store.store(a, v);
        }
        assert!((inst.verify)(&store).is_ok());
    }

    #[test]
    fn verifier_rejects_corruption() {
        let cfg = BenchConfig::smoke(BenchKind::Dbll, 4);
        let inst = cfg.build();
        let mut store = WordStore::new();
        for &(a, v) in &inst.init {
            store.store(a, v);
        }
        // chop a node out of the next chain without fixing prev
        let second = store.load(next_of(node_base(0)));
        let third = store.load(next_of(Addr(second)));
        store.store(next_of(node_base(0)), third);
        assert!((inst.verify)(&store).is_err());
    }
}
