//! RAYTR: a Raytrace-style task-parallel renderer kernel.
//!
//! SPLASH-2 Raytrace (teapot) has 34 locks of which only 2 are highly
//! contended (Table III), both with SCTR-like access patterns: the global
//! ray-task queue lock and the ray-ID counter lock. This kernel reproduces
//! that structure: threads repeatedly grab the next ray from a shared task
//! counter under lock 0, render it (compute + private scratch memory),
//! bump the ray-ID counter under lock 1 for every second ray, and touch
//! one of 32 low-contention statistics locks for every eighth ray. A final
//! barrier closes the parallel phase.
//!
//! Knob calibration targets the paper's measured profile: under MCS at 32
//! cores, lock operations take roughly a third of the execution time
//! (Figures 1 and 8), with Busy/Memory dominating.

use crate::{BenchConfig, BenchInstance, DATA_BASE};
use glocks_cpu::{Action, Workload};
use glocks_mem::MemOp;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, LockId, SplitMix64};

/// Average per-ray render cost in instructions (plus jitter below).
const RENDER_BASE: u64 = 20000;
const RENDER_JITTER: u64 = 10000;
/// Scratch memory touches per ray (private loads/stores).
const SCRATCH_OPS: u64 = 6;

fn task_ctr() -> Addr {
    DATA_BASE
}

fn rayid_ctr() -> Addr {
    Addr(DATA_BASE.0 + 64)
}

fn stat_word(i: u64) -> Addr {
    Addr(DATA_BASE.0 + 0x1_0000 + i * 64)
}

fn scratch(tid: usize, k: u64) -> Addr {
    Addr(DATA_BASE.0 + 0x2_0000 + tid as u64 * 512 + (k % 4) * 64)
}

/// Deterministic per-ray hash for render-time jitter.
fn ray_hash(task: u64, seed: u64) -> u64 {
    SplitMix64::new(seed ^ task.wrapping_mul(0x9E37_79B9)).next_u64()
}

enum Phase {
    GrabEnter,
    GrabLoad,
    GrabStore,
    GrabExit { task: u64 },
    Render { task: u64 },
    Scratch { task: u64, k: u64 },
    RayIdLoad { task: u64 },
    RayIdStore { task: u64 },
    RayIdExit { task: u64 },
    StatEnter { task: u64 },
    StatLoad { task: u64 },
    StatStore { task: u64 },
    StatExit { task: u64 },
    FinalBarrier,
    Finished,
}

struct RaytrThread {
    tid: usize,
    n_rays: u64,
    seed: u64,
    phase: Phase,
    seen: u64,
}

impl RaytrThread {
    fn stat_lock_of(task: u64) -> LockId {
        LockId(2 + ((task / 8) % 32) as u16)
    }

    /// Next step after a ray's side work is done.
    fn after_ray(&mut self, task: u64) -> Action {
        if task.is_multiple_of(8) {
            self.phase = Phase::StatLoad { task };
            Action::Acquire(Self::stat_lock_of(task))
        } else {
            self.phase = Phase::GrabEnter;
            Action::Compute(64)
        }
    }
}

impl Workload for RaytrThread {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            Phase::GrabEnter => {
                self.phase = Phase::GrabLoad;
                Action::Acquire(LockId(0))
            }
            Phase::GrabLoad => {
                self.phase = Phase::GrabStore;
                Action::Mem(MemOp::Load(task_ctr()))
            }
            Phase::GrabStore => {
                self.seen = last;
                self.phase = Phase::GrabExit { task: self.seen };
                Action::Mem(MemOp::Store(task_ctr(), self.seen + 1))
            }
            Phase::GrabExit { task } => {
                self.phase = if task >= self.n_rays {
                    Phase::FinalBarrier
                } else {
                    Phase::Render { task }
                };
                Action::Release(LockId(0))
            }
            Phase::Render { task } => {
                let h = ray_hash(task, self.seed);
                self.phase = Phase::Scratch { task, k: 0 };
                Action::Compute(RENDER_BASE + h % RENDER_JITTER)
            }
            Phase::Scratch { task, k } => {
                if k < SCRATCH_OPS {
                    self.phase = Phase::Scratch { task, k: k + 1 };
                    let a = scratch(self.tid, k);
                    return if k % 2 == 0 {
                        Action::Mem(MemOp::Load(a))
                    } else {
                        Action::Mem(MemOp::Store(a, task))
                    };
                }
                if task % 2 == 0 {
                    self.phase = Phase::RayIdLoad { task };
                    Action::Acquire(LockId(1))
                } else {
                    self.phase = Phase::RayIdExit { task };
                    // skip the ray-ID CS for odd rays
                    self.next(0)
                }
            }
            Phase::RayIdLoad { task } => {
                self.phase = Phase::RayIdStore { task };
                Action::Mem(MemOp::Load(rayid_ctr()))
            }
            Phase::RayIdStore { task } => {
                self.seen = last;
                self.phase = Phase::RayIdExit { task };
                Action::Mem(MemOp::Store(rayid_ctr(), self.seen + 1))
            }
            Phase::RayIdExit { task } => {
                if task % 2 == 0 {
                    self.phase = Phase::StatEnter { task };
                    Action::Release(LockId(1))
                } else {
                    self.after_ray(task)
                }
            }
            Phase::StatEnter { task } => self.after_ray(task),
            Phase::StatLoad { task } => {
                self.phase = Phase::StatStore { task };
                Action::Mem(MemOp::Load(stat_word((task / 8) % 32)))
            }
            Phase::StatStore { task } => {
                self.seen = last;
                self.phase = Phase::StatExit { task };
                Action::Mem(MemOp::Store(stat_word((task / 8) % 32), self.seen + 1))
            }
            Phase::StatExit { task } => {
                self.phase = Phase::GrabEnter;
                Action::Release(Self::stat_lock_of(task))
            }
            Phase::FinalBarrier => {
                self.phase = Phase::Finished;
                Action::Barrier
            }
            Phase::Finished => Action::Done,
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self.phase {
            Phase::GrabEnter => w.u8(0),
            Phase::GrabLoad => w.u8(1),
            Phase::GrabStore => w.u8(2),
            Phase::GrabExit { task } => {
                w.u8(3);
                w.u64(task);
            }
            Phase::Render { task } => {
                w.u8(4);
                w.u64(task);
            }
            Phase::Scratch { task, k } => {
                w.u8(5);
                w.u64(task);
                w.u64(k);
            }
            Phase::RayIdLoad { task } => {
                w.u8(6);
                w.u64(task);
            }
            Phase::RayIdStore { task } => {
                w.u8(7);
                w.u64(task);
            }
            Phase::RayIdExit { task } => {
                w.u8(8);
                w.u64(task);
            }
            Phase::StatEnter { task } => {
                w.u8(9);
                w.u64(task);
            }
            Phase::StatLoad { task } => {
                w.u8(10);
                w.u64(task);
            }
            Phase::StatStore { task } => {
                w.u8(11);
                w.u64(task);
            }
            Phase::StatExit { task } => {
                w.u8(12);
                w.u64(task);
            }
            Phase::FinalBarrier => w.u8(13),
            Phase::Finished => w.u8(14),
        }
        w.u64(self.seen);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.phase = match r.u8()? {
            0 => Phase::GrabEnter,
            1 => Phase::GrabLoad,
            2 => Phase::GrabStore,
            3 => Phase::GrabExit { task: r.u64()? },
            4 => Phase::Render { task: r.u64()? },
            5 => Phase::Scratch { task: r.u64()?, k: r.u64()? },
            6 => Phase::RayIdLoad { task: r.u64()? },
            7 => Phase::RayIdStore { task: r.u64()? },
            8 => Phase::RayIdExit { task: r.u64()? },
            9 => Phase::StatEnter { task: r.u64()? },
            10 => Phase::StatLoad { task: r.u64()? },
            11 => Phase::StatStore { task: r.u64()? },
            12 => Phase::StatExit { task: r.u64()? },
            13 => Phase::FinalBarrier,
            14 => Phase::Finished,
            tag => return Err(SnapError::BadTag { what: "raytr phase", tag: u64::from(tag) }),
        };
        self.seen = r.u64()?;
        Ok(())
    }
}

/// Build RAYTR with `scale` rays.
pub fn build(cfg: &BenchConfig) -> BenchInstance {
    let n_rays = cfg.scale;
    let seed = cfg.seed;
    let workloads = (0..cfg.threads)
        .map(|t| {
            Box::new(RaytrThread {
                tid: t,
                n_rays,
                seed,
                phase: Phase::GrabEnter,
                seen: 0,
            }) as Box<dyn Workload>
        })
        .collect();
    let threads = cfg.threads as u64;
    BenchInstance {
        workloads,
        init: vec![],
        verify: Box::new(move |store| {
            // Each of rays 0..n_rays executed exactly once; each thread
            // overshoots by at most one grab.
            let tasks = store.load(task_ctr());
            if tasks < n_rays || tasks > n_rays + threads {
                return Err(format!(
                    "task counter = {tasks}, expected in [{n_rays}, {}]",
                    n_rays + threads
                ));
            }
            // Ray-ID bumps: one per even ray.
            let rayids = store.load(rayid_ctr());
            let expect = n_rays.div_ceil(2);
            if rayids != expect {
                return Err(format!("ray-id counter = {rayids}, expected {expect}"));
            }
            // Statistics: ray 8k bumps stat word (k mod 32).
            for w in 0..32u64 {
                let got = store.load(stat_word(w));
                let expect = (0..n_rays).filter(|t| t % 8 == 0 && (t / 8) % 32 == w).count() as u64;
                if got != expect {
                    return Err(format!("stat[{w}] = {got}, expected {expect}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchKind;

    #[test]
    fn builds() {
        let inst = BenchConfig::smoke(BenchKind::Raytr, 4).build();
        assert_eq!(inst.workloads.len(), 4);
    }

    #[test]
    fn ray_hash_is_deterministic() {
        assert_eq!(ray_hash(5, 1), ray_hash(5, 1));
        assert_ne!(ray_hash(5, 1), ray_hash(6, 1));
    }
}
