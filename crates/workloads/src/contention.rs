//! Figure 7's post-mortem lock-contention analysis (Eqs. 1–3).
//!
//! The simulator's `LockTracker` records, cycle by cycle, the number of
//! concurrent requesters (grAC) of every lock. This module turns those
//! histograms into the paper's Lock Contention Rate decomposition and the
//! highly-contended-lock classification used to choose which locks get a
//! GLock.

use glocks_sim_base::LockId;

/// Summarize a per-lock LCR decomposition (`lcr[lock][grac]`, Eq. 3) into
/// coarse grAC buckets for textual reporting — the shape of Figure 7's
/// z-axis at a glance.
#[derive(Clone, Debug, PartialEq)]
pub struct LcrSummary {
    pub lock: LockId,
    /// Fraction of all lock-wait cycles attributed to this lock.
    pub weight: f64,
    /// LCR mass in grAC buckets `1..=4`, `5..=12`, `13..=20`, `>20`.
    pub buckets: [f64; 4],
}

/// Bucket edges for the textual Figure 7.
pub const BUCKETS: [(usize, usize); 4] = [(1, 4), (5, 12), (13, 20), (21, usize::MAX)];

/// Summarize every lock of a benchmark.
pub fn summarize(lcr: &[Vec<f64>]) -> Vec<LcrSummary> {
    lcr.iter()
        .enumerate()
        .map(|(i, per_grac)| {
            let mut buckets = [0.0f64; 4];
            for (g, &v) in per_grac.iter().enumerate() {
                if g == 0 {
                    continue;
                }
                for (b, &(lo, hi)) in BUCKETS.iter().enumerate() {
                    if g >= lo && g <= hi {
                        buckets[b] += v;
                        break;
                    }
                }
            }
            LcrSummary {
                lock: LockId(i as u16),
                weight: per_grac.iter().sum(),
                buckets,
            }
        })
        .collect()
}

/// The paper's criterion (footnote 3): "highly-contended locks are those
/// locks accessed by all threads simultaneously or very close in time" —
/// and locks that, despite contending, run for a negligible number of
/// cycles are excluded. Classify a lock as highly contended when it
/// carries at least `weight_floor` of the benchmark's total contention
/// cycles and at least `tail_share` of its own mass sits above
/// `grac_threshold` concurrent requesters.
pub fn classify_hc(
    lcr: &[Vec<f64>],
    grac_threshold: usize,
    tail_share: f64,
    weight_floor: f64,
) -> Vec<LockId> {
    summarize(lcr)
        .into_iter()
        .filter(|s| {
            if s.weight < weight_floor {
                return false;
            }
            let per_grac = &lcr[s.lock.index()];
            let tail: f64 = per_grac
                .iter()
                .enumerate()
                .filter(|(g, _)| *g > grac_threshold)
                .map(|(_, v)| v)
                .sum();
            tail / s.weight >= tail_share
        })
        .map(|s| s.lock)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcr_fixture() -> Vec<Vec<f64>> {
        // lock 0: heavy, high-grAC; lock 1: light; lock 2: heavy, low-grAC
        let mut l0 = vec![0.0; 33];
        l0[30] = 0.5;
        l0[25] = 0.2;
        let mut l1 = vec![0.0; 33];
        l1[32] = 0.01;
        let mut l2 = vec![0.0; 33];
        l2[2] = 0.29;
        vec![l0, l1, l2]
    }

    #[test]
    fn summary_buckets_partition_mass() {
        let s = summarize(&lcr_fixture());
        assert_eq!(s.len(), 3);
        assert!((s[0].weight - 0.7).abs() < 1e-12);
        assert!((s[0].buckets[3] - 0.7).abs() < 1e-12, "all mass above 20");
        assert!((s[2].buckets[0] - 0.29).abs() < 1e-12, "low-grAC mass");
        let total: f64 = s.iter().map(|x| x.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hc_classification_follows_the_paper() {
        let hc = classify_hc(&lcr_fixture(), 20, 0.5, 0.05);
        // lock 0: heavy and high-grAC → HC.
        // lock 1: high-grAC but negligible cycles → excluded (footnote 3's
        //   "executed during a negligible amount of clock cycles").
        // lock 2: heavy but low contention → excluded.
        assert_eq!(hc, vec![LockId(0)]);
    }

    #[test]
    fn empty_lcr_classifies_nothing() {
        let lcr = vec![vec![0.0; 33]];
        assert!(classify_hc(&lcr, 20, 0.5, 0.05).is_empty());
    }
}
