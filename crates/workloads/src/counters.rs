//! SCTR and MCTR: the counter microbenchmarks.
//!
//! * **Single Counter (SCTR)** — "a counter (fits in a cache line),
//!   protected by a single lock, that is incremented by all threads in a
//!   loop".
//! * **Multiple Counter (MCTR)** — "an array of counters (residing in
//!   different cache lines), protected by a single lock, where each thread
//!   increments a different counter of the array in a loop".
//!
//! Increments are deliberately non-atomic load/compute/store sequences so
//! that a mutual-exclusion failure corrupts the final count.

use crate::{share, BenchConfig, BenchInstance, DATA_BASE};
use glocks_cpu::{Action, Workload};
use glocks_mem::MemOp;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, LockId};

/// Cycles of "work" between critical sections (keeps a short re-entry gap
/// so the lock stays saturated, as in the paper's microbenchmarks).
const REST_INSTRS: u64 = 24;
/// Instructions inside the critical section besides the two memory ops.
const CS_INSTRS: u64 = 4;

enum Phase {
    Enter,
    Load,
    Bump,
    Store,
    Exit,
    Rest,
}

struct CounterLoop {
    counter: Addr,
    iters: u64,
    phase: Phase,
    seen: u64,
}

impl CounterLoop {
    fn new(counter: Addr, iters: u64) -> Self {
        CounterLoop { counter, iters, phase: Phase::Enter, seen: 0 }
    }
}

impl Workload for CounterLoop {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            Phase::Enter => {
                if self.iters == 0 {
                    return Action::Done;
                }
                self.phase = Phase::Load;
                Action::Acquire(LockId(0))
            }
            Phase::Load => {
                self.phase = Phase::Bump;
                Action::Mem(MemOp::Load(self.counter))
            }
            Phase::Bump => {
                self.seen = last;
                self.phase = Phase::Store;
                Action::Compute(CS_INSTRS)
            }
            Phase::Store => {
                self.phase = Phase::Exit;
                Action::Mem(MemOp::Store(self.counter, self.seen + 1))
            }
            Phase::Exit => {
                self.iters -= 1;
                self.phase = Phase::Rest;
                Action::Release(LockId(0))
            }
            Phase::Rest => {
                self.phase = Phase::Enter;
                Action::Compute(REST_INSTRS)
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u8(match self.phase {
            Phase::Enter => 0,
            Phase::Load => 1,
            Phase::Bump => 2,
            Phase::Store => 3,
            Phase::Exit => 4,
            Phase::Rest => 5,
        });
        w.u64(self.iters);
        w.u64(self.seen);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.phase = match r.u8()? {
            0 => Phase::Enter,
            1 => Phase::Load,
            2 => Phase::Bump,
            3 => Phase::Store,
            4 => Phase::Exit,
            5 => Phase::Rest,
            tag => {
                return Err(SnapError::BadTag { what: "counter phase", tag: u64::from(tag) })
            }
        };
        self.iters = r.u64()?;
        self.seen = r.u64()?;
        Ok(())
    }
}

/// Build SCTR.
pub fn sctr(cfg: &BenchConfig) -> BenchInstance {
    let counter = DATA_BASE;
    let total = cfg.scale;
    let threads = cfg.threads;
    let workloads = (0..threads)
        .map(|t| {
            Box::new(CounterLoop::new(counter, share(total, threads, t))) as Box<dyn Workload>
        })
        .collect();
    BenchInstance {
        workloads,
        init: vec![],
        verify: Box::new(move |store| {
            let v = store.load(counter);
            if v == total {
                Ok(())
            } else {
                Err(format!("SCTR counter = {v}, expected {total} (lost updates)"))
            }
        }),
    }
}

/// Build MCTR: same loop, but thread `t` bumps its own line-separated
/// counter (still under the single global lock).
pub fn mctr(cfg: &BenchConfig) -> BenchInstance {
    let threads = cfg.threads;
    let total = cfg.scale;
    let counter_of = |t: usize| Addr(DATA_BASE.0 + t as u64 * 64);
    let shares: Vec<u64> = (0..threads).map(|t| share(total, threads, t)).collect();
    let workloads = (0..threads)
        .map(|t| Box::new(CounterLoop::new(counter_of(t), shares[t])) as Box<dyn Workload>)
        .collect();
    BenchInstance {
        workloads,
        init: vec![],
        verify: Box::new(move |store| {
            for (t, &expect) in shares.iter().enumerate() {
                let v = store.load(counter_of(t));
                if v != expect {
                    return Err(format!(
                        "MCTR counter[{t}] = {v}, expected {expect}"
                    ));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use crate::{BenchConfig, BenchKind};

    #[test]
    fn instances_have_expected_shape() {
        let c = BenchConfig::smoke(BenchKind::Sctr, 8);
        let inst = c.build();
        assert_eq!(inst.workloads.len(), 8);
        assert!(inst.init.is_empty());
        let c = BenchConfig::smoke(BenchKind::Mctr, 8);
        let inst = c.build();
        assert_eq!(inst.workloads.len(), 8);
    }
}
