//! OCEAN: an Ocean-style iterative grid solver kernel.
//!
//! SPLASH-2 Ocean (258×258) is barrier- and memory-dominated: each sweep
//! updates the thread's band of grid cells, then a *global reduction lock*
//! (the single highly-contended lock of Table III, SCTR-like) accumulates
//! the local residual, and a barrier closes the sweep. Two further locks
//! exist but are touched only by thread 0 once per sweep (low contention).
//! Less than 5 % of Ocean's time goes to locks (Figure 8), which this
//! kernel reproduces by giving every sweep a large compute/memory phase
//! with per-thread jitter that staggers arrivals at the reduction lock.

use crate::{BenchConfig, BenchInstance, DATA_BASE};
use glocks_cpu::{Action, Workload};
use glocks_mem::MemOp;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, LockId, SplitMix64};

/// Sweeps of the solver.
pub const ITERS: u64 = 4;

fn residual() -> Addr {
    DATA_BASE
}

fn aux_word(i: u64) -> Addr {
    Addr(DATA_BASE.0 + 64 + i * 64)
}

fn cell(idx: u64) -> Addr {
    Addr(DATA_BASE.0 + 0x10_0000 + idx * 8)
}

enum Phase {
    SweepStart { iter: u64 },
    CellLoad { iter: u64, i: u64 },
    CellStore { iter: u64, i: u64 },
    Jitter { iter: u64 },
    RedEnter { iter: u64 },
    RedLoad { iter: u64 },
    RedStore { iter: u64 },
    RedExit { iter: u64 },
    AuxEnter { iter: u64, which: u64 },
    AuxLoad { iter: u64, which: u64 },
    AuxStore { iter: u64, which: u64 },
    AuxExit { iter: u64, which: u64 },
    SweepBarrier { iter: u64 },
    Finished,
}

struct OceanThread {
    tid: usize,
    first_cell: u64,
    n_cells: u64,
    seed: u64,
    phase: Phase,
    seen: u64,
}

impl Workload for OceanThread {
    fn next(&mut self, last: u64) -> Action {
        match self.phase {
            Phase::SweepStart { iter } => {
                if iter == ITERS {
                    self.phase = Phase::Finished;
                    return Action::Done;
                }
                if self.n_cells == 0 {
                    self.phase = Phase::Jitter { iter };
                    return Action::Compute(8);
                }
                self.phase = Phase::CellStore { iter, i: 0 };
                Action::Mem(MemOp::Load(cell(self.first_cell)))
            }
            Phase::CellLoad { iter, i } => {
                self.phase = Phase::CellStore { iter, i };
                Action::Mem(MemOp::Load(cell(self.first_cell + i)))
            }
            Phase::CellStore { iter, i } => {
                self.seen = last;
                self.phase = if i + 1 < self.n_cells {
                    Phase::CellLoad { iter, i: i + 1 }
                } else {
                    Phase::Jitter { iter }
                };
                Action::Mem(MemOp::Store(cell(self.first_cell + i), self.seen + 1))
            }
            Phase::Jitter { iter } => {
                // Stencil arithmetic plus per-(thread, sweep) imbalance:
                // this staggers arrivals at the reduction lock, keeping its
                // contention moderate, as measured for the real Ocean.
                let h = SplitMix64::new(self.seed ^ (self.tid as u64) << 32 ^ iter).next_u64();
                self.phase = Phase::RedEnter { iter };
                Action::Compute(6000 + h % 20000)
            }
            Phase::RedEnter { iter } => {
                self.phase = Phase::RedLoad { iter };
                Action::Acquire(LockId(0))
            }
            Phase::RedLoad { iter } => {
                self.phase = Phase::RedStore { iter };
                Action::Mem(MemOp::Load(residual()))
            }
            Phase::RedStore { iter } => {
                self.seen = last;
                self.phase = Phase::RedExit { iter };
                Action::Mem(MemOp::Store(residual(), self.seen + 1))
            }
            Phase::RedExit { iter } => {
                self.phase = if self.tid == 0 {
                    Phase::AuxEnter { iter, which: 0 }
                } else {
                    Phase::SweepBarrier { iter }
                };
                Action::Release(LockId(0))
            }
            Phase::AuxEnter { iter, which } => {
                self.phase = Phase::AuxLoad { iter, which };
                Action::Acquire(LockId(1 + which as u16))
            }
            Phase::AuxLoad { iter, which } => {
                self.phase = Phase::AuxStore { iter, which };
                Action::Mem(MemOp::Load(aux_word(which)))
            }
            Phase::AuxStore { iter, which } => {
                self.seen = last;
                self.phase = Phase::AuxExit { iter, which };
                Action::Mem(MemOp::Store(aux_word(which), self.seen + 1))
            }
            Phase::AuxExit { iter, which } => {
                self.phase = if which == 0 {
                    Phase::AuxEnter { iter, which: 1 }
                } else {
                    Phase::SweepBarrier { iter }
                };
                Action::Release(LockId(1 + which as u16))
            }
            Phase::SweepBarrier { iter } => {
                self.phase = Phase::SweepStart { iter: iter + 1 };
                Action::Barrier
            }
            Phase::Finished => Action::Done,
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self.phase {
            Phase::SweepStart { iter } => {
                w.u8(0);
                w.u64(iter);
            }
            Phase::CellLoad { iter, i } => {
                w.u8(1);
                w.u64(iter);
                w.u64(i);
            }
            Phase::CellStore { iter, i } => {
                w.u8(2);
                w.u64(iter);
                w.u64(i);
            }
            Phase::Jitter { iter } => {
                w.u8(3);
                w.u64(iter);
            }
            Phase::RedEnter { iter } => {
                w.u8(4);
                w.u64(iter);
            }
            Phase::RedLoad { iter } => {
                w.u8(5);
                w.u64(iter);
            }
            Phase::RedStore { iter } => {
                w.u8(6);
                w.u64(iter);
            }
            Phase::RedExit { iter } => {
                w.u8(7);
                w.u64(iter);
            }
            Phase::AuxEnter { iter, which } => {
                w.u8(8);
                w.u64(iter);
                w.u64(which);
            }
            Phase::AuxLoad { iter, which } => {
                w.u8(9);
                w.u64(iter);
                w.u64(which);
            }
            Phase::AuxStore { iter, which } => {
                w.u8(10);
                w.u64(iter);
                w.u64(which);
            }
            Phase::AuxExit { iter, which } => {
                w.u8(11);
                w.u64(iter);
                w.u64(which);
            }
            Phase::SweepBarrier { iter } => {
                w.u8(12);
                w.u64(iter);
            }
            Phase::Finished => w.u8(13),
        }
        w.u64(self.seen);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.phase = match r.u8()? {
            0 => Phase::SweepStart { iter: r.u64()? },
            1 => Phase::CellLoad { iter: r.u64()?, i: r.u64()? },
            2 => Phase::CellStore { iter: r.u64()?, i: r.u64()? },
            3 => Phase::Jitter { iter: r.u64()? },
            4 => Phase::RedEnter { iter: r.u64()? },
            5 => Phase::RedLoad { iter: r.u64()? },
            6 => Phase::RedStore { iter: r.u64()? },
            7 => Phase::RedExit { iter: r.u64()? },
            8 => Phase::AuxEnter { iter: r.u64()?, which: r.u64()? },
            9 => Phase::AuxLoad { iter: r.u64()?, which: r.u64()? },
            10 => Phase::AuxStore { iter: r.u64()?, which: r.u64()? },
            11 => Phase::AuxExit { iter: r.u64()?, which: r.u64()? },
            12 => Phase::SweepBarrier { iter: r.u64()? },
            13 => Phase::Finished,
            tag => return Err(SnapError::BadTag { what: "ocean phase", tag: u64::from(tag) }),
        };
        self.seen = r.u64()?;
        Ok(())
    }
}

/// Build OCEAN on a `scale × scale` grid.
pub fn build(cfg: &BenchConfig) -> BenchInstance {
    let edge = cfg.scale;
    let cells = edge * edge;
    let threads = cfg.threads;
    // Contiguous bands of cells per thread.
    let mut first = 0u64;
    let mut workloads: Vec<Box<dyn Workload>> = Vec::with_capacity(threads);
    let mut bands = Vec::with_capacity(threads);
    for t in 0..threads {
        let n = crate::share(cells, threads, t);
        bands.push((first, n));
        workloads.push(Box::new(OceanThread {
            tid: t,
            first_cell: first,
            n_cells: n,
            seed: cfg.seed,
            phase: Phase::SweepStart { iter: 0 },
            seen: 0,
        }));
        first += n;
    }
    let n_threads = threads as u64;
    BenchInstance {
        workloads,
        init: vec![],
        verify: Box::new(move |store| {
            let r = store.load(residual());
            let expect = n_threads * ITERS;
            if r != expect {
                return Err(format!("residual = {r}, expected {expect}"));
            }
            for w in 0..2u64 {
                let v = store.load(aux_word(w));
                if v != ITERS {
                    return Err(format!("aux[{w}] = {v}, expected {ITERS}"));
                }
            }
            // Spot-check the grid: every sampled cell swept ITERS times.
            for idx in (0..cells).step_by((cells / 64).max(1) as usize) {
                let v = store.load(cell(idx));
                if v != ITERS {
                    return Err(format!("cell[{idx}] = {v}, expected {ITERS}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use crate::{BenchConfig, BenchKind};

    #[test]
    fn builds_with_bands() {
        let inst = BenchConfig::smoke(BenchKind::Ocean, 8).build();
        assert_eq!(inst.workloads.len(), 8);
    }
}
