//! QSORT: parallel quicksort of `scale` integers over a shared work stack
//! protected by a single lock.
//!
//! The work stack holds `(lo, hi)` subarray tasks; threads pop a task
//! under the lock, partition the subarray in simulated memory, push the
//! two halves back under the lock, and sort small segments locally. Idle
//! threads poll the stack under the lock — exactly the PRCO-like waiting
//! pattern Table III attributes to QSort, and the reason its contention
//! stays high (Figure 7) and its speedup saturates (Table IV).
//!
//! A `pending` task counter (also under the lock) distinguishes "stack
//! momentarily empty" from "sorting finished".

use crate::{BenchConfig, BenchInstance, DATA_BASE};
use glocks_cpu::{Action, Workload};
use glocks_mem::MemOp;
use glocks_sim_base::snap::{SnapError, SnapReader, SnapWriter};
use glocks_sim_base::{Addr, LockId, SplitMix64};

/// Segments at or below this length are sorted locally.
const GRAIN: u64 = 128;
/// Work-stack capacity (entries).
const STACK_CAP: u64 = 1024;
/// Idle-poll exponential backoff bounds (instructions) for the lockless
/// emptiness guard.
const MIN_BACKOFF: u64 = 128;
const MAX_BACKOFF: u64 = 2048;

fn sp_addr() -> Addr {
    DATA_BASE
}

fn pending_addr() -> Addr {
    Addr(DATA_BASE.0 + 64)
}

fn stack_slot(i: u64) -> Addr {
    Addr(DATA_BASE.0 + 128 + (i % STACK_CAP) * 64)
}

fn arr(i: u64) -> Addr {
    Addr(DATA_BASE.0 + 0x10_0000 + i * 8)
}

fn pack(lo: u64, hi: u64) -> u64 {
    (lo << 32) | hi
}

fn unpack(task: u64) -> (u64, u64) {
    (task >> 32, task & 0xFFFF_FFFF)
}

enum Phase {
    /// Lockless guard: peek at the stack pointer without the lock
    /// (test-and-test&set style), acquiring only when work seems present.
    PeekSp,
    PeekPending,
    PopEnter,
    PopSp,
    PopPending,
    PopRead { sp: u64 },
    PopCommit { task: u64 },
    PopExit { task: u64 },
    Backoff,
    // --- leaf: load segment, locally sort, store back ---
    LeafLoad { lo: u64, hi: u64, i: u64 },
    LeafStore { lo: u64, hi: u64, i: u64 },
    // --- partition (Hoare, pivot = a[(lo+hi)/2]): every element is
    //     loaded exactly once per pass and swap values stay in registers,
    //     like a register-allocated textbook implementation ---
    PivotIssue { lo: u64, hi: u64 },
    PivotWait { lo: u64, hi: u64 },
    UpWait { lo: u64, hi: u64, pivot: u64, i: u64, j: u64 },
    DownWait { lo: u64, hi: u64, pivot: u64, i: u64, j: u64, vi: u64 },
    StoreJWait { lo: u64, hi: u64, pivot: u64, i: u64, j: u64, vi: u64 },
    PostSwap { lo: u64, hi: u64, pivot: u64, i: u64, j: u64 },
    // --- push results ---
    PushEnter { t1: Option<u64>, t2: Option<u64> },
    PushSp { t1: Option<u64>, t2: Option<u64> },
    PushSlot1 { t1: u64, t2: Option<u64> },
    PushSlot2 { t2: u64, sp: u64 },
    PushBumpSp { sp: u64, pushed: u64 },
    AdjPendingLoad { delta: i64 },
    AdjPendingStore { delta: i64 },
    PushExit,
    Finished,
}

struct QsortThread {
    phase: Phase,
    /// Leaf buffer: values loaded from the current small segment.
    buf: Vec<u64>,
    /// Exponential idle-poll backoff (reset on a successful pop).
    backoff: u64,
}

impl Workload for QsortThread {
    fn next(&mut self, last: u64) -> Action {
        match std::mem::replace(&mut self.phase, Phase::Finished) {
            Phase::PeekSp => {
                self.phase = Phase::PeekPending;
                Action::Mem(MemOp::Load(sp_addr()))
            }
            Phase::PeekPending => {
                let sp = last;
                if sp > 0 {
                    // Work seems available: take the lock and re-check.
                    self.phase = Phase::PopEnter;
                    return self.next(0);
                }
                self.phase = Phase::Backoff;
                Action::Mem(MemOp::Load(pending_addr()))
            }
            Phase::Backoff => {
                // `last` is the pending count from the lockless peek.
                if last == 0 {
                    self.phase = Phase::Finished;
                    return Action::Done;
                }
                let d = self.backoff;
                self.backoff = (self.backoff * 2).min(MAX_BACKOFF);
                self.phase = Phase::PeekSp;
                Action::Compute(d)
            }
            Phase::PopEnter => {
                self.phase = Phase::PopSp;
                Action::Acquire(LockId(0))
            }
            Phase::PopSp => {
                self.phase = Phase::PopPending;
                Action::Mem(MemOp::Load(sp_addr()))
            }
            Phase::PopPending => {
                let sp = last;
                if sp == 0 {
                    self.phase = Phase::PopRead { sp: u64::MAX };
                    return Action::Mem(MemOp::Load(pending_addr()));
                }
                self.phase = Phase::PopRead { sp };
                Action::Mem(MemOp::Load(stack_slot(sp - 1)))
            }
            Phase::PopRead { sp } => {
                if sp == u64::MAX {
                    // Raced: the stack emptied between peek and lock.
                    // `last` is the pending count.
                    if last == 0 {
                        self.phase = Phase::Finished;
                        return Action::Release(LockId(0));
                    }
                    self.phase = Phase::PeekSp;
                    return Action::Release(LockId(0));
                }
                let task = last;
                self.phase = Phase::PopCommit { task };
                Action::Mem(MemOp::Store(sp_addr(), sp - 1))
            }
            Phase::PopCommit { task } => {
                self.backoff = MIN_BACKOFF;
                self.phase = Phase::PopExit { task };
                Action::Release(LockId(0))
            }
            Phase::PopExit { task } => {
                let (lo, hi) = unpack(task);
                if hi - lo < GRAIN {
                    self.buf.clear();
                    self.phase = Phase::LeafLoad { lo, hi, i: lo };
                    Action::Compute(32)
                } else {
                    self.phase = Phase::PivotIssue { lo, hi };
                    Action::Compute(16)
                }
            }
            // ---- leaf ----
            Phase::LeafLoad { lo, hi, i } => {
                if i > lo {
                    self.buf.push(last);
                }
                if i <= hi {
                    self.phase = Phase::LeafLoad { lo, hi, i: i + 1 };
                    return Action::Mem(MemOp::Load(arr(i)));
                }
                // All loaded: sort locally (modeled as n·log n work).
                self.buf.sort_unstable();
                let n = hi - lo + 1;
                self.phase = Phase::LeafStore { lo, hi, i: lo };
                Action::Compute(224 * n)
            }
            Phase::LeafStore { lo, hi, i } => {
                if i <= hi {
                    let v = self.buf[(i - lo) as usize];
                    self.phase = Phase::LeafStore { lo, hi, i: i + 1 };
                    return Action::Mem(MemOp::Store(arr(i), v));
                }
                self.phase = Phase::AdjPendingLoad { delta: -1 };
                Action::Acquire(LockId(0))
            }
            // ---- partition ----
            Phase::PivotIssue { lo, hi } => {
                let mid = lo + (hi - lo) / 2;
                self.phase = Phase::PivotWait { lo, hi };
                Action::Mem(MemOp::Load(arr(mid)))
            }
            Phase::PivotWait { lo, hi } => {
                let pivot = last;
                self.phase = Phase::UpWait { lo, hi, pivot, i: lo, j: hi };
                Action::Mem(MemOp::Load(arr(lo)))
            }
            Phase::UpWait { lo, hi, pivot, i, j } => {
                let vi = last;
                if vi < pivot {
                    // repeat i++ until a[i] >= pivot (the pivot's own
                    // position bounds the scan)
                    self.phase = Phase::UpWait { lo, hi, pivot, i: i + 1, j };
                    return Action::Mem(MemOp::Load(arr(i + 1)));
                }
                self.phase = Phase::DownWait { lo, hi, pivot, i, j, vi };
                Action::Mem(MemOp::Load(arr(j)))
            }
            Phase::DownWait { lo, hi, pivot, i, j, vi } => {
                let vj = last;
                if vj > pivot {
                    self.phase = Phase::DownWait { lo, hi, pivot, i, j: j - 1, vi };
                    return Action::Mem(MemOp::Load(arr(j - 1)));
                }
                if i >= j {
                    // Crossed at split point j ∈ [lo, hi-1]: spawn both
                    // halves (Hoare's invariants keep them non-empty).
                    let t1 = Some(pack(lo, j));
                    let t2 = Some(pack(j + 1, hi));
                    self.phase = Phase::PushEnter { t1, t2 };
                    return Action::Compute(8);
                }
                // swap a[i] <-> a[j]; both values are in registers
                self.phase = Phase::StoreJWait { lo, hi, pivot, i, j, vi };
                Action::Mem(MemOp::Store(arr(i), vj))
            }
            Phase::StoreJWait { lo, hi, pivot, i, j, vi } => {
                self.phase = Phase::PostSwap { lo, hi, pivot, i, j };
                Action::Mem(MemOp::Store(arr(j), vi))
            }
            Phase::PostSwap { lo, hi, pivot, i, j } => {
                self.phase = Phase::UpWait { lo, hi, pivot, i: i + 1, j: j - 1 };
                Action::Mem(MemOp::Load(arr(i + 1)))
            }
            // ---- push ----
            Phase::PushEnter { t1, t2 } => {
                self.phase = Phase::PushSp { t1, t2 };
                Action::Acquire(LockId(0))
            }
            Phase::PushSp { t1, t2 } => {
                match (t1, t2) {
                    (None, None) => {
                        // Both sides trivial: just account the finished task.
                        self.phase = Phase::AdjPendingLoad { delta: -1 };
                        self.next(0)
                    }
                    _ => {
                        self.phase = match t1 {
                            Some(v) => Phase::PushSlot1 { t1: v, t2 },
                            None => Phase::PushSlot1 { t1: t2.expect("one side"), t2: None },
                        };
                        Action::Mem(MemOp::Load(sp_addr()))
                    }
                }
            }
            Phase::PushSlot1 { t1, t2 } => {
                let sp = last;
                assert!(sp < STACK_CAP, "work stack overflow");
                self.phase = match t2 {
                    Some(v) => Phase::PushSlot2 { t2: v, sp },
                    None => Phase::PushBumpSp { sp, pushed: 1 },
                };
                Action::Mem(MemOp::Store(stack_slot(sp), t1))
            }
            Phase::PushSlot2 { t2, sp } => {
                self.phase = Phase::PushBumpSp { sp, pushed: 2 };
                Action::Mem(MemOp::Store(stack_slot(sp + 1), t2))
            }
            Phase::PushBumpSp { sp, pushed } => {
                self.phase = Phase::AdjPendingLoad { delta: pushed as i64 - 1 };
                Action::Mem(MemOp::Store(sp_addr(), sp + pushed))
            }
            Phase::AdjPendingLoad { delta } => {
                self.phase = Phase::AdjPendingStore { delta };
                Action::Mem(MemOp::Load(pending_addr()))
            }
            Phase::AdjPendingStore { delta } => {
                let new = (last as i64 + delta) as u64;
                self.phase = Phase::PushExit;
                Action::Mem(MemOp::Store(pending_addr(), new))
            }
            Phase::PushExit => {
                self.phase = Phase::PeekSp;
                Action::Release(LockId(0))
            }
            Phase::Finished => Action::Done,
        }
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        match self.phase {
            Phase::PeekSp => w.u8(0),
            Phase::PeekPending => w.u8(1),
            Phase::PopEnter => w.u8(2),
            Phase::PopSp => w.u8(3),
            Phase::PopPending => w.u8(4),
            Phase::PopRead { sp } => {
                w.u8(5);
                w.u64(sp);
            }
            Phase::PopCommit { task } => {
                w.u8(6);
                w.u64(task);
            }
            Phase::PopExit { task } => {
                w.u8(7);
                w.u64(task);
            }
            Phase::Backoff => w.u8(8),
            Phase::LeafLoad { lo, hi, i } => {
                w.u8(9);
                w.u64(lo);
                w.u64(hi);
                w.u64(i);
            }
            Phase::LeafStore { lo, hi, i } => {
                w.u8(10);
                w.u64(lo);
                w.u64(hi);
                w.u64(i);
            }
            Phase::PivotIssue { lo, hi } => {
                w.u8(11);
                w.u64(lo);
                w.u64(hi);
            }
            Phase::PivotWait { lo, hi } => {
                w.u8(12);
                w.u64(lo);
                w.u64(hi);
            }
            Phase::UpWait { lo, hi, pivot, i, j } => {
                w.u8(13);
                for v in [lo, hi, pivot, i, j] {
                    w.u64(v);
                }
            }
            Phase::DownWait { lo, hi, pivot, i, j, vi } => {
                w.u8(14);
                for v in [lo, hi, pivot, i, j, vi] {
                    w.u64(v);
                }
            }
            Phase::StoreJWait { lo, hi, pivot, i, j, vi } => {
                w.u8(15);
                for v in [lo, hi, pivot, i, j, vi] {
                    w.u64(v);
                }
            }
            Phase::PostSwap { lo, hi, pivot, i, j } => {
                w.u8(16);
                for v in [lo, hi, pivot, i, j] {
                    w.u64(v);
                }
            }
            Phase::PushEnter { t1, t2 } => {
                w.u8(17);
                w.opt_u64(t1);
                w.opt_u64(t2);
            }
            Phase::PushSp { t1, t2 } => {
                w.u8(18);
                w.opt_u64(t1);
                w.opt_u64(t2);
            }
            Phase::PushSlot1 { t1, t2 } => {
                w.u8(19);
                w.u64(t1);
                w.opt_u64(t2);
            }
            Phase::PushSlot2 { t2, sp } => {
                w.u8(20);
                w.u64(t2);
                w.u64(sp);
            }
            Phase::PushBumpSp { sp, pushed } => {
                w.u8(21);
                w.u64(sp);
                w.u64(pushed);
            }
            Phase::AdjPendingLoad { delta } => {
                w.u8(22);
                w.i64(delta);
            }
            Phase::AdjPendingStore { delta } => {
                w.u8(23);
                w.i64(delta);
            }
            Phase::PushExit => w.u8(24),
            Phase::Finished => w.u8(25),
        }
        w.u64_slice(&self.buf);
        w.u64(self.backoff);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.phase = match r.u8()? {
            0 => Phase::PeekSp,
            1 => Phase::PeekPending,
            2 => Phase::PopEnter,
            3 => Phase::PopSp,
            4 => Phase::PopPending,
            5 => Phase::PopRead { sp: r.u64()? },
            6 => Phase::PopCommit { task: r.u64()? },
            7 => Phase::PopExit { task: r.u64()? },
            8 => Phase::Backoff,
            9 => Phase::LeafLoad { lo: r.u64()?, hi: r.u64()?, i: r.u64()? },
            10 => Phase::LeafStore { lo: r.u64()?, hi: r.u64()?, i: r.u64()? },
            11 => Phase::PivotIssue { lo: r.u64()?, hi: r.u64()? },
            12 => Phase::PivotWait { lo: r.u64()?, hi: r.u64()? },
            13 => Phase::UpWait {
                lo: r.u64()?,
                hi: r.u64()?,
                pivot: r.u64()?,
                i: r.u64()?,
                j: r.u64()?,
            },
            14 => Phase::DownWait {
                lo: r.u64()?,
                hi: r.u64()?,
                pivot: r.u64()?,
                i: r.u64()?,
                j: r.u64()?,
                vi: r.u64()?,
            },
            15 => Phase::StoreJWait {
                lo: r.u64()?,
                hi: r.u64()?,
                pivot: r.u64()?,
                i: r.u64()?,
                j: r.u64()?,
                vi: r.u64()?,
            },
            16 => Phase::PostSwap {
                lo: r.u64()?,
                hi: r.u64()?,
                pivot: r.u64()?,
                i: r.u64()?,
                j: r.u64()?,
            },
            17 => Phase::PushEnter { t1: r.opt_u64()?, t2: r.opt_u64()? },
            18 => Phase::PushSp { t1: r.opt_u64()?, t2: r.opt_u64()? },
            19 => Phase::PushSlot1 { t1: r.u64()?, t2: r.opt_u64()? },
            20 => Phase::PushSlot2 { t2: r.u64()?, sp: r.u64()? },
            21 => Phase::PushBumpSp { sp: r.u64()?, pushed: r.u64()? },
            22 => Phase::AdjPendingLoad { delta: r.i64()? },
            23 => Phase::AdjPendingStore { delta: r.i64()? },
            24 => Phase::PushExit,
            25 => Phase::Finished,
            tag => return Err(SnapError::BadTag { what: "qsort phase", tag: u64::from(tag) }),
        };
        self.buf = r.u64_vec()?;
        self.backoff = r.u64()?;
        Ok(())
    }
}

/// Build QSORT over `scale` pseudo-random integers.
pub fn build(cfg: &BenchConfig) -> BenchInstance {
    let n = cfg.scale;
    assert!(n >= 2);
    let mut rng = SplitMix64::new(cfg.seed);
    let mut init: Vec<(Addr, u64)> = (0..n)
        .map(|i| (arr(i), rng.next_u64() % 1_000_000 + 1))
        .collect();
    let expected_sum: u64 = init.iter().map(|&(_, v)| v).sum();
    let expected_xor: u64 = init.iter().fold(0, |x, &(_, v)| x ^ v);
    init.push((sp_addr(), 1));
    init.push((stack_slot(0), pack(0, n - 1)));
    init.push((pending_addr(), 1));
    let workloads = (0..cfg.threads)
        .map(|_| Box::new(QsortThread { phase: Phase::PeekSp, buf: Vec::new(), backoff: MIN_BACKOFF }) as Box<dyn Workload>)
        .collect();
    BenchInstance {
        workloads,
        init,
        verify: Box::new(move |store| {
            if store.load(pending_addr()) != 0 {
                return Err("pending tasks remain".into());
            }
            let mut sum = 0u64;
            let mut xor = 0u64;
            let mut prev = 0u64;
            for i in 0..n {
                let v = store.load(arr(i));
                if v < prev {
                    return Err(format!("array not sorted at {i}: {prev} > {v}"));
                }
                prev = v;
                sum = sum.wrapping_add(v);
                xor ^= v;
            }
            if sum != expected_sum || xor != expected_xor {
                return Err("array is not a permutation of the input".into());
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        let t = pack(123, 456_789);
        assert_eq!(unpack(t), (123, 456_789));
    }

    #[test]
    fn initial_image_has_one_task() {
        let inst = BenchConfig {
            kind: crate::BenchKind::Qsort,
            threads: 4,
            scale: 256,
            seed: 7,
        }
        .build();
        assert!(inst.init.iter().any(|&(a, v)| a == sp_addr() && v == 1));
        assert!(inst.init.iter().any(|&(a, v)| a == pending_addr() && v == 1));
    }
}
