//! Multiprogrammed workloads — the paper's second future-work item
//! (Section V): "the current GLocks mechanism does not consider
//! multiprogrammed workloads. To deal with them, a few GLocks could be
//! statically or dynamically shared among all of the workloads."
//!
//! [`MultiprogConfig`] composes two benchmarks side by side on disjoint
//! core partitions with disjoint lock ids, data regions and barriers, so
//! the two hardware GLocks of the baseline CMP can be *statically* split —
//! one per workload — while everything else falls back to software locks.

use crate::{BenchConfig, BenchInstance};
use glocks_cpu::{Action, Workload};
use glocks_mem::store::WordStore;
use glocks_sim_base::{Addr, LockId};

/// Address offset applied to the second program's data region.
pub const B_DATA_OFFSET: u64 = 0x1000_0000;

/// A workload wrapper that relocates a thread program into a private
/// namespace: lock ids are shifted and data addresses ≥ `addr_floor` are
/// offset. Barrier actions stay as-is — the partitioned barrier backend
/// scopes them to the program's core group.
struct Relocated {
    inner: Box<dyn Workload>,
    lock_offset: u16,
    addr_floor: u64,
    addr_offset: u64,
}

impl Workload for Relocated {
    fn next(&mut self, last: u64) -> Action {
        match self.inner.next(last) {
            Action::Mem(op) => Action::Mem(relocate_op(op, self.addr_floor, self.addr_offset)),
            Action::Acquire(l) => Action::Acquire(LockId(l.0 + self.lock_offset)),
            Action::Release(l) => Action::Release(LockId(l.0 + self.lock_offset)),
            other => other,
        }
    }

    // The relocation parameters are config; only the wrapped program moves.
    fn save_state(
        &self,
        w: &mut glocks_sim_base::snap::SnapWriter,
    ) -> Result<(), glocks_sim_base::snap::SnapError> {
        self.inner.save_state(w)
    }

    fn load_state(
        &mut self,
        r: &mut glocks_sim_base::snap::SnapReader<'_>,
    ) -> Result<(), glocks_sim_base::snap::SnapError> {
        self.inner.load_state(r)
    }
}

fn relocate_addr(a: Addr, floor: u64, offset: u64) -> Addr {
    if a.0 >= floor {
        Addr(a.0 + offset)
    } else {
        a
    }
}

fn relocate_op(op: glocks_mem::MemOp, floor: u64, offset: u64) -> glocks_mem::MemOp {
    use glocks_mem::MemOp::*;
    match op {
        Load(a) => Load(relocate_addr(a, floor, offset)),
        Store(a, v) => Store(relocate_addr(a, floor, offset), v),
        Rmw(a, k) => Rmw(relocate_addr(a, floor, offset), k),
    }
}

/// Two benchmarks sharing one CMP on disjoint core partitions.
#[derive(Clone, Copy, Debug)]
pub struct MultiprogConfig {
    /// Runs on cores `0 .. a.threads`.
    pub a: BenchConfig,
    /// Runs on cores `a.threads .. a.threads + b.threads`.
    pub b: BenchConfig,
}

impl MultiprogConfig {
    pub fn total_threads(&self) -> usize {
        self.a.threads + self.b.threads
    }

    /// Total workload locks (A's ids, then B's ids shifted).
    pub fn n_locks(&self) -> usize {
        self.a.n_locks() + self.b.n_locks()
    }

    /// Highly-contended lock ids of both programs, in the combined
    /// namespace.
    pub fn hc_locks(&self) -> Vec<LockId> {
        let off = self.a.n_locks() as u16;
        self.a
            .hc_locks()
            .into_iter()
            .chain(self.b.hc_locks().into_iter().map(|l| LockId(l.0 + off)))
            .collect()
    }

    /// The paper's static hardware sharing: the *first* highly-contended
    /// lock of each program gets one of the CMP's two GLocks.
    pub fn statically_shared_hc(&self) -> Vec<LockId> {
        let off = self.a.n_locks() as u16;
        let mut v = Vec::new();
        if let Some(l) = self.a.hc_locks().first() {
            v.push(*l);
        }
        if let Some(l) = self.b.hc_locks().first() {
            v.push(LockId(l.0 + off));
        }
        v
    }

    /// Barrier partition sizes for `SimulationOptions::barrier_partitions`.
    pub fn barrier_partitions(&self) -> Vec<usize> {
        vec![self.a.threads, self.b.threads]
    }

    /// Build the composed instance.
    pub fn build(&self) -> BenchInstance {
        let ia = self.a.build();
        let ib = self.b.build();
        let lock_offset = self.a.n_locks() as u16;
        let mut workloads: Vec<Box<dyn Workload>> = ia.workloads;
        for w in ib.workloads {
            workloads.push(Box::new(Relocated {
                inner: w,
                lock_offset,
                addr_floor: crate::DATA_BASE.0,
                addr_offset: B_DATA_OFFSET,
            }));
        }
        let mut init = ia.init;
        for (a, v) in ib.init {
            init.push((relocate_addr(a, crate::DATA_BASE.0, B_DATA_OFFSET), v));
        }
        let va = ia.verify;
        let vb = ib.verify;
        BenchInstance {
            workloads,
            init,
            verify: Box::new(move |store| {
                va(store).map_err(|e| format!("program A: {e}"))?;
                // Project B's region back to its original addresses.
                let mut shadow = WordStore::new();
                for (a, v) in store.iter() {
                    if a.0 >= crate::DATA_BASE.0 + B_DATA_OFFSET {
                        shadow.store(Addr(a.0 - B_DATA_OFFSET), v);
                    }
                }
                vb(&shadow).map_err(|e| format!("program B: {e}"))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchKind;

    fn cfg() -> MultiprogConfig {
        MultiprogConfig {
            a: BenchConfig::smoke(BenchKind::Sctr, 4),
            b: BenchConfig::smoke(BenchKind::Prco, 4),
        }
    }

    #[test]
    fn namespaces_are_disjoint() {
        let m = cfg();
        assert_eq!(m.total_threads(), 8);
        assert_eq!(m.n_locks(), 2);
        assert_eq!(m.hc_locks(), vec![LockId(0), LockId(1)]);
        assert_eq!(m.statically_shared_hc(), vec![LockId(0), LockId(1)]);
        assert_eq!(m.barrier_partitions(), vec![4, 4]);
        let inst = m.build();
        assert_eq!(inst.workloads.len(), 8);
    }

    #[test]
    fn rmw_ops_relocate_too() {
        use glocks_mem::RmwKind;
        let op = relocate_op(
            glocks_mem::MemOp::Rmw(crate::DATA_BASE, RmwKind::FetchAdd(3)),
            crate::DATA_BASE.0,
            B_DATA_OFFSET,
        );
        match op {
            glocks_mem::MemOp::Rmw(a, RmwKind::FetchAdd(3)) => {
                assert_eq!(a, Addr(crate::DATA_BASE.0 + B_DATA_OFFSET));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn relocation_shifts_data_and_locks() {
        let op = relocate_op(
            glocks_mem::MemOp::Load(crate::DATA_BASE),
            crate::DATA_BASE.0,
            B_DATA_OFFSET,
        );
        assert_eq!(
            op,
            glocks_mem::MemOp::Load(Addr(crate::DATA_BASE.0 + B_DATA_OFFSET))
        );
        // lock-region addresses (below the data base) stay put
        let op2 = relocate_op(
            glocks_mem::MemOp::Load(Addr(0x10_000)),
            crate::DATA_BASE.0,
            B_DATA_OFFSET,
        );
        assert_eq!(op2, glocks_mem::MemOp::Load(Addr(0x10_000)));
    }
}
