//! The paper's benchmarks as simulated thread programs.
//!
//! **Microbenchmarks** (Section IV-B, re-implemented faithfully):
//! * `SCTR` — one counter, one lock, incremented by all threads in a loop;
//! * `MCTR` — an array of counters (distinct cache lines) under one lock,
//!   each thread bumping its own counter;
//! * `DBLL` — a doubly-linked list under one lock; threads dequeue from the
//!   head and enqueue at the tail;
//! * `PRCO` — a bounded FIFO under one lock; half the threads produce,
//!   half consume;
//! * `ACTR` — two locks protecting two counters, with a barrier between
//!   the two acquisitions of every iteration.
//!
//! **Applications** (Section IV-B; see DESIGN.md §4 for the substitution
//! rationale):
//! * `RAYTR` — a Raytrace-style task-parallel renderer kernel: 34 locks of
//!   which 2 are highly contended with SCTR-like access patterns
//!   (Table III);
//! * `OCEAN` — an Ocean-style iterative grid solver: per-sweep grid work,
//!   barriers, and one highly-contended reduction lock (3 locks total);
//! * `QSORT` — parallel quicksort of 16384 integers over a shared work
//!   stack protected by one lock (PRCO-like contention).
//!
//! Each benchmark provides per-thread [`Workload`] state machines, an
//! initial memory image, and a **verifier** over the final memory so every
//! experiment doubles as a correctness check of the lock implementations.

pub mod actr;
pub mod contention;
pub mod counters;
pub mod dbll;
pub mod multiprog;
pub mod ocean;
pub mod prco;
pub mod qsort;
pub mod raytr;

use glocks_cpu::Workload;
use glocks_mem::store::WordStore;
use glocks_sim_base::{Addr, LockId};

/// A post-run correctness check over the final simulated memory.
pub type Verifier = Box<dyn Fn(&WordStore) -> Result<(), String>>;

/// The eight benchmarks of Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchKind {
    Sctr,
    Mctr,
    Dbll,
    Prco,
    Actr,
    Raytr,
    Ocean,
    Qsort,
}

impl BenchKind {
    pub const MICROS: [BenchKind; 5] = [
        BenchKind::Sctr,
        BenchKind::Mctr,
        BenchKind::Dbll,
        BenchKind::Prco,
        BenchKind::Actr,
    ];

    pub const APPS: [BenchKind; 3] = [BenchKind::Raytr, BenchKind::Ocean, BenchKind::Qsort];

    pub const ALL: [BenchKind; 8] = [
        BenchKind::Sctr,
        BenchKind::Mctr,
        BenchKind::Dbll,
        BenchKind::Prco,
        BenchKind::Actr,
        BenchKind::Raytr,
        BenchKind::Ocean,
        BenchKind::Qsort,
    ];

    pub fn name(self) -> &'static str {
        match self {
            BenchKind::Sctr => "SCTR",
            BenchKind::Mctr => "MCTR",
            BenchKind::Dbll => "DBLL",
            BenchKind::Prco => "PRCO",
            BenchKind::Actr => "ACTR",
            BenchKind::Raytr => "RAYTR",
            BenchKind::Ocean => "OCEAN",
            BenchKind::Qsort => "QSORT",
        }
    }

    pub fn is_app(self) -> bool {
        matches!(self, BenchKind::Raytr | BenchKind::Ocean | BenchKind::Qsort)
    }

    /// Table III's "Input Size" column for the default scale.
    pub fn input_size_label(self) -> &'static str {
        match self {
            BenchKind::Sctr | BenchKind::Mctr | BenchKind::Dbll | BenchKind::Prco
            | BenchKind::Actr => "1,000 iterations",
            BenchKind::Raytr => "teapot (512 rays)",
            BenchKind::Ocean => "258x258 ocean",
            BenchKind::Qsort => "16384 elements",
        }
    }

    /// Table III's "Access Pattern" column: which microbenchmark the
    /// application's highly-contended locks resemble.
    pub fn access_pattern(self) -> &'static str {
        match self {
            BenchKind::Raytr | BenchKind::Ocean => "SCTR",
            BenchKind::Qsort => "PRCO",
            _ => "-",
        }
    }
}

/// A fully-specified benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    pub kind: BenchKind,
    pub threads: usize,
    /// Size knob; `default_scale` reproduces Table III's input sizes.
    pub scale: u64,
    pub seed: u64,
}

/// Base of the benchmark's private data region in simulated memory
/// (lock/barrier regions live below).
pub const DATA_BASE: Addr = Addr(0x0200_0000);

impl BenchConfig {
    /// The paper's configuration for `kind` on `threads` cores.
    pub fn paper(kind: BenchKind, threads: usize) -> Self {
        BenchConfig { kind, threads, scale: Self::default_scale(kind), seed: 0xB10C_5EED }
    }

    /// Table III input sizes.
    pub fn default_scale(kind: BenchKind) -> u64 {
        match kind {
            BenchKind::Sctr | BenchKind::Mctr | BenchKind::Dbll | BenchKind::Prco
            | BenchKind::Actr => 1000,
            BenchKind::Raytr => 512,   // rays ("teapot" scene)
            BenchKind::Ocean => 258,   // grid edge
            BenchKind::Qsort => 16384, // elements
        }
    }

    /// A reduced-size configuration for fast tests.
    pub fn smoke(kind: BenchKind, threads: usize) -> Self {
        let scale = match kind {
            BenchKind::Ocean => 66,
            BenchKind::Qsort => 2048,
            BenchKind::Raytr => 96,
            _ => 160,
        };
        BenchConfig { kind, threads, scale, seed: 0xB10C_5EED }
    }

    /// Table III "Locks" column.
    pub fn n_locks(&self) -> usize {
        match self.kind {
            BenchKind::Actr => 2,
            BenchKind::Raytr => 34,
            BenchKind::Ocean => 3,
            _ => 1,
        }
    }

    /// Table III "H-C Locks" column: the highly-contended lock ids.
    pub fn hc_locks(&self) -> Vec<LockId> {
        match self.kind {
            BenchKind::Actr | BenchKind::Raytr => vec![LockId(0), LockId(1)],
            _ => vec![LockId(0)],
        }
    }

    /// Instantiate: per-thread workloads, initial memory image, verifier.
    pub fn build(&self) -> BenchInstance {
        match self.kind {
            BenchKind::Sctr => counters::sctr(self),
            BenchKind::Mctr => counters::mctr(self),
            BenchKind::Dbll => dbll::build(self),
            BenchKind::Prco => prco::build(self),
            BenchKind::Actr => actr::build(self),
            BenchKind::Raytr => raytr::build(self),
            BenchKind::Ocean => ocean::build(self),
            BenchKind::Qsort => qsort::build(self),
        }
    }
}

/// A ready-to-run benchmark.
pub struct BenchInstance {
    /// One workload per core, in `ThreadId` order.
    pub workloads: Vec<Box<dyn Workload>>,
    /// Initial memory image.
    pub init: Vec<(Addr, u64)>,
    /// Post-run correctness check over the final memory; returns a
    /// description of the violation, if any.
    pub verify: Verifier,
}

/// Split `total` work items into per-thread shares (first threads get the
/// remainder).
pub(crate) fn share(total: u64, threads: usize, tid: usize) -> u64 {
    let base = total / threads as u64;
    let extra = total % threads as u64;
    base + u64::from((tid as u64) < extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_total() {
        for total in [0u64, 1, 7, 1000] {
            for threads in [1usize, 3, 8, 32] {
                let sum: u64 = (0..threads).map(|t| share(total, threads, t)).sum();
                assert_eq!(sum, total, "total={total} threads={threads}");
            }
        }
    }

    #[test]
    fn table_iii_lock_counts() {
        for (kind, locks, hc) in [
            (BenchKind::Sctr, 1, 1),
            (BenchKind::Mctr, 1, 1),
            (BenchKind::Dbll, 1, 1),
            (BenchKind::Prco, 1, 1),
            (BenchKind::Actr, 2, 2),
            (BenchKind::Raytr, 34, 2),
            (BenchKind::Ocean, 3, 1),
            (BenchKind::Qsort, 1, 1),
        ] {
            let c = BenchConfig::paper(kind, 32);
            assert_eq!(c.n_locks(), locks, "{kind:?}");
            assert_eq!(c.hc_locks().len(), hc, "{kind:?}");
        }
    }

    #[test]
    fn default_scales_match_table_iii() {
        assert_eq!(BenchConfig::default_scale(BenchKind::Sctr), 1000);
        assert_eq!(BenchConfig::default_scale(BenchKind::Ocean), 258);
        assert_eq!(BenchConfig::default_scale(BenchKind::Qsort), 16384);
    }

    #[test]
    fn every_benchmark_builds() {
        for kind in BenchKind::ALL {
            let c = BenchConfig::smoke(kind, 4);
            let inst = c.build();
            assert_eq!(inst.workloads.len(), 4, "{kind:?}");
        }
    }
}
